"""Profile the simulator hot path with cProfile.

Runs one of the ``benchmarks/bench_hotpath.py`` workloads under
cProfile and prints the top functions by cumulative and internal time —
the view used to drive the hot-path overhaul (inlined access walk,
heap scheduler, fused Q-table reads).

Usage::

    python tools/profile_hotpath.py                  # quad_core_chrome
    python tools/profile_hotpath.py single_core_lru --work 20000
    python tools/profile_hotpath.py --sort cumulative --top 40

Note: cProfile's tracing overhead inflates wall time roughly 3-4x on
this call-heavy code; use the relative ranking, not the absolute
seconds (measure those with bench_hotpath.py, uninstrumented).
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parents[1]
for entry in (str(_REPO / "benchmarks"), str(_REPO / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from bench_hotpath import BENCHES, FULL_WORK  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "bench",
        nargs="?",
        default="quad_core_chrome",
        choices=sorted(BENCHES),
        help="workload to profile (default: quad_core_chrome)",
    )
    parser.add_argument(
        "--work",
        type=int,
        default=None,
        help="override the bench's work amount (default: full-size)",
    )
    parser.add_argument(
        "--top", type=int, default=25, help="rows to print per table (default 25)"
    )
    parser.add_argument(
        "--sort",
        default="both",
        choices=["tottime", "cumulative", "both"],
        help="ranking: internal time, cumulative time, or both (default)",
    )
    parser.add_argument(
        "--dump", default=None, help="also write raw pstats data to this file"
    )
    args = parser.parse_args(argv)

    work = args.work if args.work is not None else FULL_WORK[args.bench]
    fn = BENCHES[args.bench]

    profiler = cProfile.Profile()
    profiler.enable()
    ops, seconds = fn(work)
    profiler.disable()

    print(
        f"{args.bench}: {ops} ops in {seconds:.3f}s under cProfile "
        f"({ops / seconds:,.0f} ops/s instrumented; expect ~3-4x faster bare)\n"
    )
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs()
    keys = ["tottime", "cumulative"] if args.sort == "both" else [args.sort]
    for key in keys:
        print(f"=== top {args.top} by {key} ===")
        stats.sort_stats(key).print_stats(args.top)
    if args.dump:
        stats.dump_stats(args.dump)
        print(f"raw pstats written to {args.dump}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
