#!/usr/bin/env python3
"""Splice benchmarks/results/*.txt into EXPERIMENTS.md placeholders.

Usage: python tools/fill_experiments.py
Replaces each ``{{ID}}`` placeholder with the rendered table from
``benchmarks/results/<id>.txt`` (lower-cased id), leaving placeholders
whose results are missing untouched.  Idempotent: always starts from
``tools/EXPERIMENTS.template.md``, so it can be re-run as the benchmark
suite produces more results.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"
TEMPLATE = ROOT / "tools" / "EXPERIMENTS.template.md"
TARGET = ROOT / "EXPERIMENTS.md"


def main() -> int:
    text = TEMPLATE.read_text()
    filled, missing = [], []
    for placeholder in set(re.findall(r"\{\{([A-Z0-9_]+)\}\}", text)):
        path = RESULTS / f"{placeholder.lower()}.txt"
        if path.exists():
            text = text.replace("{{" + placeholder + "}}", path.read_text().rstrip())
            filled.append(placeholder)
        else:
            missing.append(placeholder)
            if "--finalize" in sys.argv:
                note = (
                    f"(not regenerated in this run — produce with: "
                    f"chrome-repro run {placeholder.lower()})"
                )
                text = text.replace("{{" + placeholder + "}}", note)
    TARGET.write_text(text)
    print(f"filled: {sorted(filled)}")
    if missing:
        print(f"still missing: {sorted(missing)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
