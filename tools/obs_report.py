#!/usr/bin/env python
"""Summarize a repro.obs artifact directory from the command line.

Thin wrapper over :mod:`repro.obs.report` for runs launched outside
the ``chrome-repro`` CLI (e.g. ``benchmarks/bench_serve_faults.py
--obs-dir DIR``)::

    PYTHONPATH=src python tools/obs_report.py DIR
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.obs.report import render, summarize  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "obs_dir", nargs="?", default="obs-artifacts",
        help="obs artifact directory (default obs-artifacts)",
    )
    args = parser.parse_args()
    print(render(summarize(args.obs_dir)))
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:  # e.g. `tools/obs_report.py DIR | head`
        raise SystemExit(0)
