"""Ablation: cold-state arg-max tie-break direction

Beyond-the-paper design-choice study (see DESIGN.md); regenerated
through the experiment registry with the table saved under
benchmarks/results/.
"""

from repro.experiments.figures import _register_ablations

_register_ablations()


def test_abl_tiebreak(regenerate):
    result = regenerate("abl_tiebreak")
    assert len(result.rows) == 2
