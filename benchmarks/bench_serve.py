"""Serving-layer benchmark: CHROME vs. classic policies, with curves.

Runs the serve workload atlas (``zipf_scan``, ``multitenant``,
``phases``, ``proxy_burst``, ``retrieval``, ``storage_tier``) at the
default bench scale against every registered policy, records
object/byte hit ratios, backend load, latency and the cumulative
hit-ratio *curves* (how fast each policy converges), and writes
everything to ``benchmarks/results/BENCH_serve.json``.

The acceptance gates this file enforces (exit non-zero on any miss, so
the checks are mechanical, not editorial):

* on ``zipf_scan``, CHROME must beat LRU on **byte hit ratio** (the
  number a CDN bills by) — the original admission gate;
* on ``proxy_burst`` and ``retrieval``, CHROME must beat the **best**
  classic baseline (LRU/LFU/GDSF/S3-FIFO) on byte hit ratio — the
  atlas gate: the two families the related work (Cold-RL, Sun et al.)
  identifies as heuristic-hostile are exactly where learned admission
  must pay for itself against the strongest fixed policy, not just
  LRU.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_serve.py            # default scale
    PYTHONPATH=src python benchmarks/bench_serve.py --requests 6000 --warmup 1500
    PYTHONPATH=src python benchmarks/bench_serve.py --json /tmp/serve.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

# Allow `python benchmarks/bench_serve.py` without PYTHONPATH gymnastics.
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.runner import ExperimentScale  # noqa: E402
from repro.serve.experiments import (  # noqa: E402
    NUM_SEGMENTS,
    SERVE_POLICIES_COMPARED,
    serve_capacity,
)
from repro.serve.jobs import ServeJob  # noqa: E402

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_serve.json"

WORKLOADS = (
    "zipf_scan",
    "multitenant",
    "phases",
    "proxy_burst",
    "retrieval",
    "storage_tier",
)

#: atlas gate: CHROME must beat the best classic baseline on byte hit
#: ratio for these heuristic-hostile families
BEST_BASELINE_GATED = ("proxy_burst", "retrieval")


def run_one(
    workload: str,
    policy: str,
    requests: int,
    warmup: int,
    capacity: int,
    checkpoint_every: int,
) -> dict:
    job = ServeJob(
        workload=workload,
        policy=policy,
        num_requests=requests,
        warmup_requests=warmup,
        capacity_bytes=capacity,
        num_segments=NUM_SEGMENTS,
        num_clients=8,
        seed=0,
        checkpoint_every=checkpoint_every,
    )
    start = time.perf_counter()
    metrics = job.execute()
    elapsed = time.perf_counter() - start
    record = {
        "object_hit_ratio": round(metrics.object_hit_ratio, 4),
        "byte_hit_ratio": round(metrics.byte_hit_ratio, 4),
        "backend_load": round(metrics.backend_load, 4),
        "mean_latency_ms": round(metrics.mean_latency_ms, 3),
        "p99_latency_ms": round(metrics.p99_latency_ms, 3),
        "evictions": metrics.evictions,
        "bypassed": metrics.bypassed,
        "curve": [
            [n, round(ohr, 4), round(bhr, 4)] for n, ohr, bhr in metrics.curve
        ],
        "wall_seconds": round(elapsed, 2),
    }
    if policy == "chrome":
        record["telemetry"] = {
            k: metrics.telemetry[k]
            for k in ("q_updates", "bypass_decisions", "explorations")
            if k in metrics.telemetry
        }
    if workload == "multitenant":
        record["per_tenant_byte_hit"] = {
            str(t): round(tm.byte_hit_ratio, 4)
            for t, tm in sorted(metrics.per_tenant.items())
        }
    return record


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    scale = ExperimentScale.from_env()
    parser.add_argument(
        "--requests", type=int, default=scale.accesses_per_core,
        help="measured requests per run",
    )
    parser.add_argument(
        "--warmup", type=int, default=scale.warmup_per_core,
        help="warmup requests (trafficked but unmeasured)",
    )
    parser.add_argument(
        "--json", type=Path, default=RESULTS_PATH,
        help=f"output path (default {RESULTS_PATH})",
    )
    args = parser.parse_args()

    capacity = serve_capacity(scale)
    checkpoint_every = max(1, args.requests // 12)
    results: dict = {
        "description": (
            "Serving-layer comparison (benchmarks/bench_serve.py): each "
            "workload replayed against every registered policy through "
            "the concurrent asyncio driver (8 clients, deterministic). "
            "curve = cumulative [requests, object_hit_ratio, "
            "byte_hit_ratio] checkpoints."
        ),
        "config": {
            "requests": args.requests,
            "warmup": args.warmup,
            "capacity_bytes": capacity,
            "num_segments": NUM_SEGMENTS,
            "machine_scale": scale.machine_scale,
            "policies": list(SERVE_POLICIES_COMPARED),
        },
        "workloads": {},
    }

    for workload in WORKLOADS:
        table = {}
        for policy in SERVE_POLICIES_COMPARED:
            record = run_one(
                workload, policy, args.requests, args.warmup, capacity,
                checkpoint_every,
            )
            table[policy] = record
            print(
                f"{workload:12s} {policy:7s} "
                f"ohr={record['object_hit_ratio']:.4f} "
                f"bhr={record['byte_hit_ratio']:.4f} "
                f"p99={record['p99_latency_ms']:7.2f}ms "
                f"({record['wall_seconds']}s)"
            )
        results["workloads"][workload] = table

    zipf = results["workloads"]["zipf_scan"]
    chrome_bhr = zipf["chrome"]["byte_hit_ratio"]
    lru_bhr = zipf["lru"]["byte_hit_ratio"]
    results["acceptance"] = {
        "criterion": "chrome byte_hit_ratio > lru byte_hit_ratio on zipf_scan",
        "chrome_byte_hit_ratio": chrome_bhr,
        "lru_byte_hit_ratio": lru_bhr,
        "delta_points": round(100.0 * (chrome_bhr - lru_bhr), 2),
        "passed": chrome_bhr > lru_bhr,
    }
    atlas = {}
    for workload in BEST_BASELINE_GATED:
        table = results["workloads"][workload]
        chrome = table["chrome"]["byte_hit_ratio"]
        best_name, best = max(
            ((p, table[p]["byte_hit_ratio"]) for p in table if p != "chrome"),
            key=lambda item: item[1],
        )
        atlas[workload] = {
            "criterion": (
                "chrome byte_hit_ratio > best classic baseline "
                f"byte_hit_ratio on {workload}"
            ),
            "chrome_byte_hit_ratio": chrome,
            "best_baseline": best_name,
            "best_baseline_byte_hit_ratio": best,
            "delta_points": round(100.0 * (chrome - best), 2),
            "passed": chrome > best,
        }
    results["atlas_acceptance"] = atlas

    args.json.parent.mkdir(parents=True, exist_ok=True)
    args.json.write_text(json.dumps(results, indent=1) + "\n")
    print(f"wrote {args.json}")

    failed = False
    if not results["acceptance"]["passed"]:
        print(
            f"FAIL: chrome byte hit ratio {chrome_bhr:.4f} does not beat "
            f"lru {lru_bhr:.4f} on zipf_scan",
            file=sys.stderr,
        )
        failed = True
    else:
        print(
            f"OK: chrome beats lru on zipf_scan byte hit ratio "
            f"({chrome_bhr:.4f} vs {lru_bhr:.4f}, "
            f"{results['acceptance']['delta_points']:+.2f} pts)"
        )
    for workload, gate in atlas.items():
        if not gate["passed"]:
            print(
                f"FAIL: chrome byte hit ratio "
                f"{gate['chrome_byte_hit_ratio']:.4f} does not beat "
                f"{gate['best_baseline']} "
                f"{gate['best_baseline_byte_hit_ratio']:.4f} on {workload}",
                file=sys.stderr,
            )
            failed = True
        else:
            print(
                f"OK: chrome beats {gate['best_baseline']} on {workload} "
                f"byte hit ratio ({gate['chrome_byte_hit_ratio']:.4f} vs "
                f"{gate['best_baseline_byte_hit_ratio']:.4f}, "
                f"{gate['delta_points']:+.2f} pts)"
            )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
