"""Fig. 10: weighted speedup across random 4-core heterogeneous mixes (s-curve)

Regenerates the paper artifact through the experiment registry and
records the wall time under pytest-benchmark; the rendered table lands
in benchmarks/results/.
"""


def test_fig10(regenerate):
    result = regenerate("fig10")
    assert result.rows[-1][0] == "geomean"
    mixes = [r for r in result.rows if r[0] != "geomean"]
    chrome = [r[4] for r in mixes]
    assert chrome == sorted(chrome)  # ascending in CHROME, as plotted
