"""Extended baselines (random/SRRIP/DRRIP/SHiP++) vs CHROME

Beyond-the-paper design-choice study (see DESIGN.md); regenerated
through the experiment registry with the table saved under
benchmarks/results/.
"""

from repro.experiments.figures import _register_ablations

_register_ablations()


def test_extended_baselines(regenerate):
    result = regenerate("extended_baselines")
    assert "chrome" in result.column("scheme")
