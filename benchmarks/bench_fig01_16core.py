"""Fig. 1: speedup over LRU on a 16-core system (homogeneous SPEC mixes)

Regenerates the paper artifact through the experiment registry and
records the wall time under pytest-benchmark; the rendered table lands
in benchmarks/results/.
"""


def test_fig1(regenerate):
    result = regenerate("fig1")
    assert set(result.column("scheme")) == {"hawkeye", "glider", "mockingjay", "care", "chrome"}
    assert all(isinstance(v, float) for v in result.column("speedup_pct"))
