"""Fig. 11: scalability across 4/8/16 cores, homogeneous and heterogeneous

Regenerates the paper artifact through the experiment registry and
records the wall time under pytest-benchmark; the rendered table lands
in benchmarks/results/.
"""


def test_fig11(regenerate):
    result = regenerate("fig11")
    labels = set(result.column("config"))
    assert {"homo-4c", "homo-8c", "homo-16c", "hetero-4c", "hetero-8c", "hetero-16c"} == labels
