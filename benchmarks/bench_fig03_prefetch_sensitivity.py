"""Fig. 3: Hawkeye/Glider/Mockingjay under two multi-level prefetch configurations

Regenerates the paper artifact through the experiment registry and
records the wall time under pytest-benchmark; the rendered table lands
in benchmarks/results/.
"""


def test_fig3(regenerate):
    result = regenerate("fig3")
    prefetches = set(result.column("prefetch"))
    assert prefetches == {"nl_stride", "stride_streamer"}
