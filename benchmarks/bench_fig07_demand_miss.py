"""Fig. 7: LLC demand miss ratio per scheme (same runs as Fig. 6)

Regenerates the paper artifact through the experiment registry and
records the wall time under pytest-benchmark; the rendered table lands
in benchmarks/results/.
"""


def test_fig7(regenerate):
    result = regenerate("fig7")
    mean = result.row_by_key("mean")
    assert all(0 <= v <= 100 for v in mean[1:])
