"""Table VII: EQ FIFO depth sweep (speedup, UPKSA, overhead)

Regenerates the paper artifact through the experiment registry and
records the wall time under pytest-benchmark; the rendered table lands
in benchmarks/results/.
"""


def test_tab7(regenerate):
    result = regenerate("tab7")
    sizes = result.column("fifo_size")
    assert sizes == [12, 16, 20, 24, 28, 32, 36]
    upksa = result.column("upksa")
    assert upksa[0] >= upksa[-1]  # larger FIFOs update less often
