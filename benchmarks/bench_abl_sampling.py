"""Ablation: sampled-set training density sweep

Beyond-the-paper design-choice study (see DESIGN.md); regenerated
through the experiment registry with the table saved under
benchmarks/results/.
"""

from repro.experiments.figures import _register_ablations

_register_ablations()


def test_abl_sampling(regenerate):
    result = regenerate("abl_sampling")
    densities = result.column("sampled_sets")
    assert densities == sorted(densities)
