"""Table IV: storage overhead across schemes

Regenerates the paper artifact through the experiment registry and
records the wall time under pytest-benchmark; the rendered table lands
in benchmarks/results/.
"""


def test_tab4(regenerate):
    result = regenerate("tab4")
    rows = {r[0]: r for r in result.rows}
    assert rows["chrome"][3] == min(r[3] for r in result.rows)
