"""Fig. 2: fraction of LLC blocks evicted unused under Glider, and how many came from prefetching

Regenerates the paper artifact through the experiment registry and
records the wall time under pytest-benchmark; the rendered table lands
in benchmarks/results/.
"""


def test_fig2(regenerate):
    result = regenerate("fig2")
    mean = result.row_by_key("mean")
    assert 0 <= mean[1] <= 100  # unused fraction is a percentage
    assert mean[1] >= mean[2]  # requested-again is a subset of unused
