"""Ablation: CHROME with the bypass action removed

Beyond-the-paper design-choice study (see DESIGN.md); regenerated
through the experiment registry with the table saved under
benchmarks/results/.
"""

from repro.experiments.figures import _register_ablations

_register_ablations()


def test_abl_bypass(regenerate):
    result = regenerate("abl_bypass")
    variants = set(result.column("variant"))
    assert variants == {"chrome", "chrome-nobypass"}
