"""Fig. 12: CHROME vs N-CHROME (concurrency feedback ablation)

Regenerates the paper artifact through the experiment registry and
records the wall time under pytest-benchmark; the rendered table lands
in benchmarks/results/.
"""


def test_fig12(regenerate):
    result = regenerate("fig12")
    assert set(result.column("cores")) == {"4c", "8c", "16c"}
