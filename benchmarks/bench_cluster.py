"""Cluster benchmark: the federated fleet vs. going it alone.

Runs three fleets over each serve workload family (``zipf_scan``,
``multitenant``, ``phases``) at the default bench scale:

* **federated** — 4 shards on the consistent-hash ring, periodic
  Q-table federation plus hot-key splitting;
* **unfederated** — the same ring with isolated shard agents (no
  merges, no hot-key handling);
* **isolated shards** — the no-clustering baseline: four independent
  shard-sized caches (total capacity / 4) each serving the *full*
  request stream alone, differing only in their shard-derived agent
  seed.  "Best isolated shard" is the best byte-hit ratio among them.

The acceptance gate this file enforces (and CI runs): on at least one
workload family, the federated 4-shard fleet must reach a byte-hit
ratio >= the best isolated shard.  That is the scaling claim — pooling
capacity behind the ring plus federating what the shards learn beats
the best any single shard-sized cache can do by itself.  The script
exits non-zero if no family passes, so the check is mechanical.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_cluster.py              # default scale
    PYTHONPATH=src python benchmarks/bench_cluster.py --requests 6000 --warmup 1200
    PYTHONPATH=src python benchmarks/bench_cluster.py --json /tmp/cluster.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

# Allow `python benchmarks/bench_cluster.py` without PYTHONPATH gymnastics.
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.cluster.experiments import (  # noqa: E402
    NUM_SHARDS,
    REPLICATION,
)
from repro.cluster.jobs import ClusterJob  # noqa: E402
from repro.experiments.runner import ExperimentScale  # noqa: E402
from repro.serve.config import ServiceConfig  # noqa: E402
from repro.serve.experiments import NUM_SEGMENTS, serve_capacity  # noqa: E402
from repro.serve.service import run_configured  # noqa: E402
from repro.serve.workloads import build_workload  # noqa: E402

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_cluster.json"

WORKLOADS = ("zipf_scan", "multitenant", "phases")

SEED = 11


def fleet_record(metrics, elapsed: float) -> dict:
    fleet = metrics.fleet
    return {
        "object_hit_ratio": round(fleet.object_hit_ratio, 4),
        "byte_hit_ratio": round(fleet.byte_hit_ratio, 4),
        "backend_load": round(fleet.backend_load, 4),
        "p99_latency_ms": round(fleet.p99_latency_ms, 3),
        "per_shard_byte_hit": [
            round(m.byte_hit_ratio, 4) for m in metrics.per_shard
        ],
        "routed": list(metrics.routed),
        "reroutes": metrics.reroutes,
        "ring_changes": metrics.ring_changes,
        "federations": metrics.federations,
        "hot_splits": metrics.hot_splits,
        "hot_evictions": metrics.hot_evictions,
        "wall_seconds": round(elapsed, 2),
    }


def run_fleet(
    workload: str, requests: int, warmup: int, capacity: int, federate: bool
) -> dict:
    job = ClusterJob(
        workload=workload,
        policy="chrome",
        num_requests=requests,
        warmup_requests=warmup,
        capacity_bytes=capacity,
        num_segments=NUM_SEGMENTS,
        num_shards=NUM_SHARDS,
        replication=REPLICATION,
        num_clients=8,
        seed=SEED,
        federate_every=max(1, requests // 8) if federate else 0,
        hotkey_window=max(256, requests // 16) if federate else 0,
    )
    start = time.perf_counter()
    metrics = job.execute()
    return fleet_record(metrics, time.perf_counter() - start)


def run_isolated_shards(
    workload: str, requests: int, warmup: int, capacity: int
) -> dict:
    """Four shard-sized caches, each alone against the full stream."""
    stream = build_workload(workload, requests + warmup, seed=SEED)
    base = ServiceConfig.from_params(
        capacity_bytes=capacity // NUM_SHARDS,
        num_segments=NUM_SEGMENTS,
        policy="chrome",
        num_clients=8,
        warmup_requests=warmup,
        seed=SEED,
        workload_name=workload,
    )
    start = time.perf_counter()
    ratios = []
    for shard in range(NUM_SHARDS):
        metrics = run_configured(list(stream), base.for_shard(shard))
        ratios.append(round(metrics.byte_hit_ratio, 4))
    return {
        "shard_byte_hit": ratios,
        "best_byte_hit": max(ratios),
        "wall_seconds": round(time.perf_counter() - start, 2),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    scale = ExperimentScale.from_env()
    parser.add_argument(
        "--requests", type=int, default=scale.accesses_per_core,
        help="measured requests per run",
    )
    parser.add_argument(
        "--warmup", type=int, default=scale.warmup_per_core,
        help="warmup requests (trafficked but unmeasured)",
    )
    parser.add_argument(
        "--json", type=Path, default=RESULTS_PATH,
        help=f"output path (default {RESULTS_PATH})",
    )
    args = parser.parse_args()

    capacity = serve_capacity(scale)
    results: dict = {
        "description": (
            "Cluster comparison (benchmarks/bench_cluster.py): a "
            f"{NUM_SHARDS}-shard consistent-hash fleet (replication "
            f"{REPLICATION}) with and without Q-table federation, vs. "
            "four isolated shard-sized caches each serving the full "
            "stream alone.  The gate: the federated fleet's aggregate "
            "byte-hit ratio reaches >= the best isolated shard on at "
            "least one workload family."
        ),
        "config": {
            "requests": args.requests,
            "warmup": args.warmup,
            "total_capacity_bytes": capacity,
            "per_shard_capacity_bytes": capacity // NUM_SHARDS,
            "num_segments": NUM_SEGMENTS,
            "num_shards": NUM_SHARDS,
            "replication": REPLICATION,
            "seed": SEED,
            "machine_scale": scale.machine_scale,
        },
        "workloads": {},
    }

    passed_families = []
    for workload in WORKLOADS:
        federated = run_fleet(
            workload, args.requests, args.warmup, capacity, federate=True
        )
        unfederated = run_fleet(
            workload, args.requests, args.warmup, capacity, federate=False
        )
        isolated = run_isolated_shards(
            workload, args.requests, args.warmup, capacity
        )
        gate = federated["byte_hit_ratio"] >= isolated["best_byte_hit"]
        if gate:
            passed_families.append(workload)
        results["workloads"][workload] = {
            "federated_fleet": federated,
            "unfederated_fleet": unfederated,
            "isolated_shards": isolated,
            "federated_beats_best_isolated": gate,
        }
        print(
            f"{workload:12s} fed={federated['byte_hit_ratio']:.4f} "
            f"unfed={unfederated['byte_hit_ratio']:.4f} "
            f"best_isolated={isolated['best_byte_hit']:.4f} "
            f"{'PASS' if gate else 'fail'}"
        )

    results["acceptance"] = {
        "criterion": (
            "federated fleet byte_hit_ratio >= best isolated shard on "
            ">=1 workload family"
        ),
        "passed_families": passed_families,
        "passed": bool(passed_families),
    }

    args.json.parent.mkdir(parents=True, exist_ok=True)
    args.json.write_text(json.dumps(results, indent=1) + "\n")
    print(f"wrote {args.json}")

    if not passed_families:
        print(
            "FAIL: the federated fleet did not reach the best isolated "
            "shard's byte-hit ratio on any workload family",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: federation beats the best isolated shard on "
        f"{', '.join(passed_families)}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
