"""Fig. 9: bypass coverage and efficiency, Mockingjay vs CHROME

Regenerates the paper artifact through the experiment registry and
records the wall time under pytest-benchmark; the rendered table lands
in benchmarks/results/.
"""


def test_fig9(regenerate):
    result = regenerate("fig9")
    mean = result.row_by_key("mean")
    assert all(0 <= v <= 100 for v in mean[1:])
