"""Hot-path microbenchmarks: raw simulator accesses/sec.

Unlike the ``bench_fig*`` files (which regenerate paper artifacts),
this file measures the *simulator itself*: how many trace records per
second the access path sustains.  Three benches cover the three hot
loops the perf work targets:

* ``single_core_lru``   — the plain hierarchy walk (no RL, no sharing);
* ``quad_core_chrome``  — the paper's default configuration: 4 cores,
  heap-scheduled interleaving, CHROME deciding at the LLC;
* ``qtable_loop``       — the RL decision/update kernel in isolation
  (``best_action`` lookups with interleaved ``apply_delta`` updates);
* ``batch_qtable``      — the chunk-grained Q-table kernels
  (``best_actions``/``apply_deltas`` over pre-classified chunks) on
  the selected backend; this is where ``--backend numpy`` shows its
  vectorization win (the per-record benches above are sequential by
  nature and cannot batch).

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_hotpath.py               # full scale
    PYTHONPATH=src python benchmarks/bench_hotpath.py --tiny        # CI scale
    PYTHONPATH=src python benchmarks/bench_hotpath.py --backend numpy
    PYTHONPATH=src python benchmarks/bench_hotpath.py \
        --baseline benchmarks/hotpath_ci_baseline.json --tolerance 0.30

``--json PATH`` writes the measured rates; ``--baseline`` compares
against a committed baseline and exits non-zero if any bench regresses
by more than ``--tolerance`` (fractional).  ``--update-baseline``
rewrites the baseline file from this run — refusing the committed CI
baselines unless ``--force`` is also passed.  The repo-level perf
trajectory lives in ``benchmarks/results/BENCH_hotpath.json``
(before/after rates for each optimization PR).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

# Allow `python benchmarks/bench_hotpath.py` without PYTHONPATH gymnastics.
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.backend import make_qtable, resolve_backend  # noqa: E402
from repro.core.chrome import ChromePolicy  # noqa: E402
from repro.core.config import MISS_ACTIONS, ChromeConfig  # noqa: E402
from repro.core.qtable import QTable  # noqa: E402
from repro.sim.multicore import MultiCoreSystem, SystemConfig  # noqa: E402
from repro.sim.replacement.lru import LRUPolicy  # noqa: E402
from repro.traces.mixes import heterogeneous_mix, homogeneous_mix  # noqa: E402

#: machine scale for the simulation benches (matches the bench suite)
SCALE = 1 / 16

#: per-bench work at full scale; --tiny divides by 10 for CI smoke runs
FULL_WORK = {
    "single_core_lru": 60_000,
    "quad_core_chrome": 15_000,  # per core -> 60K records total
    "qtable_loop": 150_000,
    "batch_qtable": 400_000,  # chunk-grained decide+update ops
}

#: committed CI baselines — --update-baseline refuses these without --force
_COMMITTED_BASELINES = (
    Path(__file__).resolve().parent / "perf_baseline_tiny.json",
    Path(__file__).resolve().parent / "perf_baseline_tiny_numpy.json",
)


def bench_single_core_lru(work: int) -> tuple:
    """Time the run loop only: traces are pre-materialized and the
    system is built before the clock starts, so the measurement is the
    simulator hot path, not setup or trace synthesis."""
    traces = [
        t.materialize() for t in homogeneous_mix("libquantum06", 1, work, seed=1, scale=SCALE)
    ]
    system = MultiCoreSystem(
        SystemConfig(num_cores=1, scale=SCALE), llc_policy=LRUPolicy()
    )
    start = time.perf_counter()
    system.run(traces)
    return work, time.perf_counter() - start


def bench_quad_core_chrome(work: int) -> tuple:
    traces = [
        t.materialize()
        for t in heterogeneous_mix(
            ["mcf06", "libquantum06", "lbm17", "omnetpp17"], work, seed=2, scale=SCALE
        )
    ]
    system = MultiCoreSystem(
        SystemConfig(num_cores=4, scale=SCALE), llc_policy=ChromePolicy()
    )
    start = time.perf_counter()
    system.run(traces)
    return 4 * work, time.perf_counter() - start


def bench_qtable_loop(work: int) -> tuple:
    qtable = QTable(num_features=2, config=ChromeConfig())
    states = [((i * 17) & 0xFFFF, (i * 29) & 0x3FFF) for i in range(2048)]
    mask = len(states) - 1
    start = time.perf_counter()
    for i in range(work):
        state = states[i & mask]
        action = qtable.best_action(state, MISS_ACTIONS)
        if i & 3 == 0:
            qtable.apply_delta(state, action, 0.0625)
    return work, time.perf_counter() - start


def bench_batch_qtable(work: int) -> tuple:
    """Chunk-grained kernels: decide a 2048-state chunk, train 512.

    Chunk preparation (state arrays, actions, deltas) happens before
    the clock starts — that is the pre-classified-chunk contract: the
    batched access paths hand the Q-table whole columnar chunks.  The
    numpy backend gets read-only uint64 arrays (enabling its row-index
    memo, the batch analogue of the scalar table's row caches); the
    scalar reference gets the same states as tuples, which its own
    per-value memos serve.  Both sides then run identical
    ``best_actions``/``apply_deltas`` call sequences.
    """
    backend = resolve_backend(None)
    qtable = make_qtable(2, ChromeConfig())
    decide_n, update_n, num_chunks = 2048, 512, 16
    chunks = []
    for c in range(num_chunks):
        states = [
            (((i * 17 + c * 8191) & 0xFFFF), ((i * 29 + c * 524287) & 0x3FFF))
            for i in range(decide_n)
        ]
        update_states = states[:update_n]
        actions = [(i * 7 + c) & 3 for i in range(update_n)]
        deltas = [0.0625 * ((i + c) % 7 - 3) for i in range(update_n)]
        if backend == "numpy":
            import numpy as np

            darr = np.asarray(states, dtype=np.uint64)
            darr.flags.writeable = False
            uarr = np.asarray(update_states, dtype=np.uint64)
            uarr.flags.writeable = False
            chunks.append((darr, uarr, actions, deltas))
        else:
            chunks.append((states, update_states, actions, deltas))
    ops_per_chunk = decide_n + update_n
    iterations = max(1, work // ops_per_chunk)
    start = time.perf_counter()
    for i in range(iterations):
        decide_states, update_states, actions, deltas = chunks[i % num_chunks]
        qtable.best_actions(decide_states, MISS_ACTIONS)
        qtable.apply_deltas(update_states, actions, deltas)
    return iterations * ops_per_chunk, time.perf_counter() - start


BENCHES = {
    "single_core_lru": bench_single_core_lru,
    "quad_core_chrome": bench_quad_core_chrome,
    "qtable_loop": bench_qtable_loop,
    "batch_qtable": bench_batch_qtable,
}


def run_benches(tiny: bool = False, repeat: int = 1) -> dict:
    """Run every bench; return ``{name: {ops, seconds, ops_per_sec}}``.

    Each bench times only its hot section (setup excluded).  With
    ``repeat > 1`` the best (fastest) round is kept, which damps
    scheduler noise on shared CI machines.
    """
    results = {}
    for name, fn in BENCHES.items():
        work = FULL_WORK[name] // (10 if tiny else 1)
        best = None
        ops = 0
        for _ in range(max(1, repeat)):
            ops, elapsed = fn(work)
            if best is None or elapsed < best:
                best = elapsed
        results[name] = {
            "ops": ops,
            "seconds": round(best, 4),
            "ops_per_sec": round(ops / best, 1),
        }
    return results


def check_against_baseline(results: dict, baseline: dict, tolerance: float) -> list:
    """Return a list of human-readable regression descriptions (empty = ok)."""
    failures = []
    for name, entry in baseline.get("benches", {}).items():
        if name not in results:
            failures.append(f"{name}: present in baseline but not measured")
            continue
        floor = entry["ops_per_sec"] * (1.0 - tolerance)
        measured = results[name]["ops_per_sec"]
        if measured < floor:
            failures.append(
                f"{name}: {measured:.0f} ops/s < floor {floor:.0f} "
                f"(baseline {entry['ops_per_sec']:.0f}, tolerance {tolerance:.0%})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true", help="CI-sized workloads (1/10)")
    parser.add_argument("--repeat", type=int, default=1, help="keep best of N rounds")
    parser.add_argument("--json", type=Path, help="write results to this file")
    parser.add_argument("--baseline", type=Path, help="baseline JSON to compare against")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional regression vs. baseline (default 0.30)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline from this run instead of checking",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="allow --update-baseline to overwrite a committed CI baseline",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=["scalar", "numpy"],
        help="Q-table execution backend (sets REPRO_BACKEND for this run)",
    )
    args = parser.parse_args(argv)

    if args.backend is not None:
        import os

        os.environ["REPRO_BACKEND"] = resolve_backend(args.backend)

    results = run_benches(tiny=args.tiny, repeat=args.repeat)
    for name, entry in results.items():
        print(
            f"{name:20s} {entry['ops']:>9d} ops  {entry['seconds']:>8.3f}s  "
            f"{entry['ops_per_sec']:>12,.0f} ops/s"
        )

    payload = {"tiny": args.tiny, "backend": resolve_backend(None), "benches": results}
    if args.json:
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")

    if args.baseline:
        if args.update_baseline:
            if args.baseline.resolve() in _COMMITTED_BASELINES and not args.force:
                print(
                    f"refusing to overwrite committed CI baseline "
                    f"{args.baseline} (pass --force to override; remember "
                    f"to re-derate the floors, see the baseline's note)",
                    file=sys.stderr,
                )
                return 2
            args.baseline.write_text(json.dumps(payload, indent=2) + "\n")
            print(f"updated baseline {args.baseline}")
        elif args.baseline.exists():
            baseline = json.loads(args.baseline.read_text())
            failures = check_against_baseline(results, baseline, args.tolerance)
            if failures:
                for failure in failures:
                    print(f"PERF REGRESSION: {failure}", file=sys.stderr)
                return 1
            print(f"perf ok (within {args.tolerance:.0%} of {args.baseline})")
        else:
            print(f"baseline {args.baseline} missing; skipping check", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
