"""Fig. 16: hyper-parameter sensitivity (alpha, gamma, epsilon)

Regenerates the paper artifact through the experiment registry and
records the wall time under pytest-benchmark; the rendered table lands
in benchmarks/results/.
"""


def test_fig16(regenerate):
    result = regenerate("fig16")
    params = set(result.column("parameter"))
    assert params == {"alpha", "gamma", "epsilon"}
