"""Table III: CHROME storage overhead budget

Regenerates the paper artifact through the experiment registry and
records the wall time under pytest-benchmark; the rendered table lands
in benchmarks/results/.
"""


def test_tab3(regenerate):
    result = regenerate("tab3")
    assert result.row_by_key("total")[1] == 92.7
