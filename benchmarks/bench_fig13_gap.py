"""Fig. 13: GAP graph workloads (unseen during tuning), 4/8/16 cores

Regenerates the paper artifact through the experiment registry and
records the wall time under pytest-benchmark; the rendered table lands
in benchmarks/results/.
"""


def test_fig13(regenerate):
    result = regenerate("fig13")
    assert set(result.column("cores")) == {"4c", "8c", "16c"}
