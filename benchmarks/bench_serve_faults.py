"""Chaos benchmark: graceful degradation vs. naive failure handling.

Replays the ``serve_faults`` fault model (periodic full outages, error
bursts, latency spikes, post-outage slow start) against each stressed
policy twice — once with the resilient configuration (request latency
budget, retries with seeded-jitter backoff, per-tenant circuit
breaker, stale serving, load shedding) and once with the naive control
(one attempt, no breaker, no stale copies) — and writes both sides to
``benchmarks/results/BENCH_serve_faults.json``.

The acceptance gate this file enforces: for every stressed policy, the
resilient configuration must have a **strictly lower error rate** and
a **strictly lower p99 latency** than the naive control under the same
faults.  "Graceful degradation" is a measured property here, not a
slogan: the script exits non-zero if resilience does not pay for
itself.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_serve_faults.py
    PYTHONPATH=src python benchmarks/bench_serve_faults.py --requests 4000 --warmup 800
    PYTHONPATH=src python benchmarks/bench_serve_faults.py --json /tmp/faults.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

# Allow `python benchmarks/bench_serve_faults.py` without PYTHONPATH gymnastics.
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.runner import ExperimentScale  # noqa: E402
from repro.serve.experiments import (  # noqa: E402
    FAULT_POLICIES,
    NAIVE_PARAMS,
    NUM_SEGMENTS,
    chaos_fault_params,
    resilient_params,
    serve_capacity,
)
from repro.serve.jobs import ServeJob  # noqa: E402

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_serve_faults.json"


def run_one(
    policy: str,
    resilience_params: tuple,
    fault_params: tuple,
    requests: int,
    warmup: int,
    capacity: int,
    obs=None,
) -> dict:
    job = ServeJob(
        workload="zipf_scan",
        policy=policy,
        num_requests=requests,
        warmup_requests=warmup,
        capacity_bytes=capacity,
        num_segments=NUM_SEGMENTS,
        num_clients=8,
        seed=0,
        fault_params=fault_params,
        resilience_params=resilience_params,
    )
    start = time.perf_counter()
    metrics = job.execute(obs=obs)
    elapsed = time.perf_counter() - start
    return {
        "object_hit_ratio": round(metrics.object_hit_ratio, 4),
        "byte_hit_ratio": round(metrics.byte_hit_ratio, 4),
        "error_rate": round(metrics.error_rate, 4),
        "p99_latency_ms": round(metrics.p99_latency_ms, 3),
        "mean_latency_ms": round(metrics.mean_latency_ms, 3),
        "degraded_requests": metrics.degraded_requests,
        "degraded_p99_latency_ms": round(metrics.degraded_p99_latency_ms, 3),
        "errors": metrics.errors,
        "shed": metrics.shed,
        "stale_served": metrics.stale_served,
        "retries": metrics.retries,
        "timeouts": metrics.timeouts,
        "breaker_opens": metrics.breaker_opens,
        "breaker_denied": metrics.breaker_denied,
        "wall_seconds": round(elapsed, 2),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    scale = ExperimentScale.from_env()
    parser.add_argument(
        "--requests", type=int, default=scale.accesses_per_core,
        help="measured requests per run",
    )
    parser.add_argument(
        "--warmup", type=int, default=scale.warmup_per_core,
        help="warmup requests (trafficked but unmeasured)",
    )
    parser.add_argument(
        "--json", type=Path, default=RESULTS_PATH,
        help=f"output path (default {RESULTS_PATH})",
    )
    parser.add_argument(
        "--obs-dir", default=None, metavar="DIR",
        help="record repro.obs telemetry artifacts into DIR (off by default)",
    )
    args = parser.parse_args()

    obs = None
    if args.obs_dir is not None:
        from repro.obs import ObsConfig

        obs = ObsConfig(out_dir=args.obs_dir)

    run_scale = replace(
        scale, accesses_per_core=args.requests, warmup_per_core=args.warmup
    )
    fault_params = chaos_fault_params(run_scale)
    res_params = resilient_params(run_scale)
    capacity = serve_capacity(scale)

    results: dict = {
        "description": (
            "Chaos comparison (benchmarks/bench_serve_faults.py): the "
            "serve_faults fault model (outages, error bursts, latency "
            "spikes, slow-start recovery) replayed per policy with the "
            "resilient configuration vs. the naive control, through the "
            "concurrent asyncio driver (8 clients, deterministic)."
        ),
        "config": {
            "requests": args.requests,
            "warmup": args.warmup,
            "capacity_bytes": capacity,
            "num_segments": NUM_SEGMENTS,
            "machine_scale": scale.machine_scale,
            "policies": list(FAULT_POLICIES),
            "fault_params": {k: v for k, v in fault_params},
            "resilient_params": {k: v for k, v in res_params},
        },
        "policies": {},
    }

    acceptance = {"criterion": (
        "per policy: resilient error_rate < naive error_rate AND "
        "resilient p99_latency_ms < naive p99_latency_ms under the "
        "same injected faults"
    ), "per_policy": {}, "passed": True}

    for policy in FAULT_POLICIES:
        table = {}
        for mode, params in (("naive", NAIVE_PARAMS), ("resilient", res_params)):
            record = run_one(
                policy, params, fault_params, args.requests, args.warmup,
                capacity, obs=obs,
            )
            table[mode] = record
            print(
                f"{policy:7s} {mode:9s} "
                f"err={record['error_rate']:.4f} "
                f"p99={record['p99_latency_ms']:7.2f}ms "
                f"retries={record['retries']:4d} "
                f"stale={record['stale_served']:3d} "
                f"breaker_opens={record['breaker_opens']:3d} "
                f"({record['wall_seconds']}s)"
            )
        results["policies"][policy] = table
        naive, resilient = table["naive"], table["resilient"]
        verdict = {
            "naive_error_rate": naive["error_rate"],
            "resilient_error_rate": resilient["error_rate"],
            "naive_p99_ms": naive["p99_latency_ms"],
            "resilient_p99_ms": resilient["p99_latency_ms"],
            "error_rate_improved": resilient["error_rate"] < naive["error_rate"],
            "p99_improved": resilient["p99_latency_ms"] < naive["p99_latency_ms"],
        }
        acceptance["per_policy"][policy] = verdict
        if not (verdict["error_rate_improved"] and verdict["p99_improved"]):
            acceptance["passed"] = False

    results["acceptance"] = acceptance
    args.json.parent.mkdir(parents=True, exist_ok=True)
    args.json.write_text(json.dumps(results, indent=1) + "\n")
    print(f"wrote {args.json}")

    if not acceptance["passed"]:
        for policy, verdict in acceptance["per_policy"].items():
            if not (verdict["error_rate_improved"] and verdict["p99_improved"]):
                print(
                    f"FAIL: {policy}: resilient "
                    f"err={verdict['resilient_error_rate']:.4f} "
                    f"p99={verdict['resilient_p99_ms']:.2f}ms vs naive "
                    f"err={verdict['naive_error_rate']:.4f} "
                    f"p99={verdict['naive_p99_ms']:.2f}ms",
                    file=sys.stderr,
                )
        return 1
    for policy, verdict in acceptance["per_policy"].items():
        print(
            f"OK: {policy}: resilient degrades gracefully "
            f"(err {verdict['resilient_error_rate']:.4f} < "
            f"{verdict['naive_error_rate']:.4f}, p99 "
            f"{verdict['resilient_p99_ms']:.2f} < "
            f"{verdict['naive_p99_ms']:.2f}ms)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
