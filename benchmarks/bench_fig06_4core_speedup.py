"""Fig. 6: per-workload speedup over LRU, 4-core SPEC homogeneous mixes

Regenerates the paper artifact through the experiment registry and
records the wall time under pytest-benchmark; the rendered table lands
in benchmarks/results/.
"""


def test_fig6(regenerate):
    result = regenerate("fig6")
    geomean = result.row_by_key("geomean")
    assert len(geomean) == 6  # workload + five schemes
