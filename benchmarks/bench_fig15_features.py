"""Fig. 15: state-feature ablation (PC only / PN only / PC+PN)

Regenerates the paper artifact through the experiment registry and
records the wall time under pytest-benchmark; the rendered table lands
in benchmarks/results/.
"""


def test_fig15(regenerate):
    result = regenerate("fig15")
    assert set(result.column("features")) == {"pc_only", "pn_only", "pc+pn"}
