"""Fig. 14: alternative prefetching schemes (stride+streamer, IPCP)

Regenerates the paper artifact through the experiment registry and
records the wall time under pytest-benchmark; the rendered table lands
in benchmarks/results/.
"""


def test_fig14(regenerate):
    result = regenerate("fig14")
    assert set(result.column("prefetch")) == {"stride_streamer", "ipcp"}
