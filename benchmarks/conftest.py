"""Shared fixtures for the benchmark harness.

Each ``bench_*`` file regenerates one paper artifact (table or figure)
through the experiment registry.  pytest-benchmark records the wall
time of the regeneration; the rendered table is printed and saved under
``benchmarks/results/<id>.txt`` so EXPERIMENTS.md can be assembled from
the artifacts.

Run sizes: benchmarks default to a laptop-scale reduction (machine and
working sets at 1/16 scale, 12K measured accesses per core).  Override
through the same environment variables the CLI uses::

    REPRO_SCALE=0.125 REPRO_ACCESSES=50000 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.figures import run_experiment
from repro.experiments.report import ExperimentResult, render
from repro.experiments.runner import ExperimentScale, Runner

#: bench-suite defaults (env vars still win)
#: Online-RL convergence needs run length: CHROME keeps improving up to
#: ~50K accesses/core at 1/16 scale (see EXPERIMENTS.md), so the bench
#: defaults spend most of their budget on warmup.
BENCH_DEFAULTS = {
    "REPRO_SCALE": str(1 / 16),
    "REPRO_ACCESSES": "8000",
    "REPRO_WARMUP": "10000",
    "REPRO_WORKLOADS": "4",
    "REPRO_MIXES": "4",
}

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def experiment_runner() -> Runner:
    """One Runner for the whole session: Figs. 6-9 share simulations,
    and every experiment shares the cached LRU baselines."""
    for key, value in BENCH_DEFAULTS.items():
        os.environ.setdefault(key, value)
    return Runner(ExperimentScale.from_env())


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def regenerate(benchmark, experiment_runner, results_dir):
    """Run one experiment under pytest-benchmark and persist its table."""

    def _run(experiment_id: str) -> ExperimentResult:
        result = benchmark.pedantic(
            lambda: run_experiment(experiment_id, experiment_runner),
            rounds=1,
            iterations=1,
        )
        text = render(result)
        (results_dir / f"{experiment_id}.txt").write_text(text + "\n")
        print()
        print(text)
        return result

    return _run
