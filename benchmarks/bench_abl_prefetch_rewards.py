"""Ablation: demand/prefetch reward differentiation disabled

Beyond-the-paper design-choice study (see DESIGN.md); regenerated
through the experiment registry with the table saved under
benchmarks/results/.
"""

from repro.experiments.figures import _register_ablations

_register_ablations()


def test_abl_prefetch_rewards(regenerate):
    result = regenerate("abl_prefetch_rewards")
    assert len(result.rows) == 2
