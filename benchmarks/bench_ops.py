"""Ops benchmark: the guardrail must pay for itself under a bad deploy.

Simulates the live-operations story end to end on a drifting (phases)
workload with a queue-divergent origin: at window 6 the champion's
Q-tables are overwritten with the worst on-grid policy (bypass
everything — the cache freezes), exactly the way a bad model deploy
ships a broken policy to production.  Three runs:

* **clean** — no degradation, no guardrail: the ceiling;
* **unguarded** — the bad deploy lands and nothing reacts: misses
  flood the origin, the queue diverges, and tail latency grows for the
  rest of the run;
* **guarded** — the same bad deploy under the ops guardrail
  (byte-hit-EWMA trip + last-known-good snapshot ring): the trip fires
  within a few windows and rollback restores the pre-deploy agent.

The acceptance gate this file enforces (and CI runs): the guarded run
must strictly beat the unguarded run on BOTH final byte-hit ratio and
p99 latency.  Every run is deterministic (fixed seed, virtual time),
so the gate is mechanical, not statistical.  The script exits non-zero
when the gate fails.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_ops.py                 # default scale
    PYTHONPATH=src python benchmarks/bench_ops.py --requests 2000 --warmup 400
    PYTHONPATH=src python benchmarks/bench_ops.py --json /tmp/ops.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

# Allow `python benchmarks/bench_ops.py` without PYTHONPATH gymnastics.
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.ops import OpsConfig, run_ops  # noqa: E402
from repro.serve.config import LatencyConfig, ServiceConfig  # noqa: E402
from repro.serve.workloads import build_workload  # noqa: E402

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_ops.json"

SEED = 17
CAPACITY_BYTES = 2 << 20
NUM_SEGMENTS = 64
NUM_PHASES = 8
DEGRADE_WINDOW = 6
#: queue growth per outstanding fetch > inter-arrival rate: under a
#: 100%-miss flood the origin queue diverges instead of settling, so
#: reacting late costs real tail latency (the p99 side of the gate)
QUEUE_PENALTY_MS = 0.6


def _service_config(num_requests: int, warmup: int) -> ServiceConfig:
    return ServiceConfig.from_params(
        capacity_bytes=CAPACITY_BYTES,
        num_segments=NUM_SEGMENTS,
        policy="chrome",
        num_clients=8,
        warmup_requests=warmup,
        seed=SEED,
        workload_name="phases",
        latency=LatencyConfig(queue_penalty_ms=QUEUE_PENALTY_MS),
    )


def _ops_config(window: int, guarded: bool, degrade: bool) -> OpsConfig:
    return OpsConfig(
        window=window,
        min_byte_hit_ewma=0.05 if guarded else -1.0,
        trip_after=2,
        warmup_windows=2,
        snapshot_every=2 if guarded else 0,
        degrade_at_window=DEGRADE_WINDOW if degrade else -1,
    )


def _run(scenario: str, requests, config, ops) -> dict:
    start = time.perf_counter()
    result = run_ops(requests, config, ops)
    m = result.champion
    return {
        "scenario": scenario,
        "byte_hit_ratio": round(m.byte_hit_ratio, 4),
        "object_hit_ratio": round(m.object_hit_ratio, 4),
        "p99_latency_ms": round(m.p99_latency_ms, 3),
        "snapshots": result.snapshots,
        "trips": result.trips,
        "rollbacks": result.rollbacks,
        "degradations": result.degradations,
        "events": [
            {k: e[k] for k in ("kind", "window", "seq")} for e in result.events
        ],
        "wall_seconds": round(time.perf_counter() - start, 2),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--requests", type=int, default=4000, help="measured requests"
    )
    parser.add_argument(
        "--warmup", type=int, default=200,
        help="warmup requests (trafficked but unmeasured)",
    )
    parser.add_argument(
        "--json", type=Path, default=RESULTS_PATH,
        help=f"output path (default {RESULTS_PATH})",
    )
    args = parser.parse_args()

    total = args.requests + args.warmup
    # ~21 evaluation windows regardless of scale, so the bad deploy at
    # window 6 always lands in the first third of the run.
    window = max(50, total // 21)
    requests = build_workload(
        "phases", total, seed=SEED, num_phases=NUM_PHASES
    )
    config = _service_config(total, args.warmup)

    runs = {}
    for scenario, guarded, degrade in (
        ("clean", False, False),
        ("unguarded_degrade", False, True),
        ("guarded_degrade", True, True),
    ):
        ops = _ops_config(window, guarded, degrade)
        runs[scenario] = _run(scenario, requests, config, ops)
        r = runs[scenario]
        print(
            f"{scenario:18s} byte_hit={r['byte_hit_ratio']:.4f} "
            f"p99={r['p99_latency_ms']:8.2f}ms trips={r['trips']} "
            f"rollbacks={r['rollbacks']}"
        )

    guarded, unguarded = runs["guarded_degrade"], runs["unguarded_degrade"]
    gate_byte_hit = guarded["byte_hit_ratio"] > unguarded["byte_hit_ratio"]
    gate_p99 = guarded["p99_latency_ms"] < unguarded["p99_latency_ms"]
    reacted = guarded["trips"] >= 1 and guarded["rollbacks"] >= 1

    results = {
        "description": (
            "Live-operations guardrail benchmark (benchmarks/bench_ops.py): "
            "a simulated bad model deploy (bypass-everything Q-tables "
            f"injected at window {DEGRADE_WINDOW}) on the drifting "
            "'phases' workload with a queue-divergent origin.  The gate: "
            "the guarded run (byte-hit-EWMA guardrail + snapshot-ring "
            "rollback) strictly beats the unguarded run on BOTH byte-hit "
            "ratio and p99 latency, and actually tripped/rolled back."
        ),
        "config": {
            "requests": args.requests,
            "warmup": args.warmup,
            "window": window,
            "capacity_bytes": CAPACITY_BYTES,
            "num_segments": NUM_SEGMENTS,
            "num_phases": NUM_PHASES,
            "degrade_at_window": DEGRADE_WINDOW,
            "queue_penalty_ms": QUEUE_PENALTY_MS,
            "min_byte_hit_ewma": 0.05,
            "seed": SEED,
        },
        "runs": runs,
        "acceptance": {
            "criterion": (
                "guarded beats unguarded on byte_hit AND p99, with >=1 "
                "trip and >=1 rollback"
            ),
            "gate_byte_hit": gate_byte_hit,
            "gate_p99": gate_p99,
            "guardrail_reacted": reacted,
            "passed": gate_byte_hit and gate_p99 and reacted,
        },
    }

    args.json.parent.mkdir(parents=True, exist_ok=True)
    args.json.write_text(json.dumps(results, indent=1) + "\n")
    print(f"wrote {args.json}")

    if not results["acceptance"]["passed"]:
        print(
            "FAIL: guarded run did not strictly beat the unguarded run "
            f"(byte_hit {gate_byte_hit}, p99 {gate_p99}, reacted {reacted})",
            file=sys.stderr,
        )
        return 1
    print(
        "OK: rollback recovered the fleet — guarded "
        f"byte_hit {guarded['byte_hit_ratio']:.4f} > "
        f"{unguarded['byte_hit_ratio']:.4f} and p99 "
        f"{guarded['p99_latency_ms']:.2f}ms < "
        f"{unguarded['p99_latency_ms']:.2f}ms"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
