#!/usr/bin/env python3
"""Workload atlas: characterize the whole SPEC-like suite without
running a single simulation.

Uses :mod:`repro.traces.analysis` to profile each Table VI workload —
footprint, memory intensity, sequentiality, reuse-distance-based LRU
hit-ratio estimate at the scaled LLC capacity — and prints the suite
sorted from most-cacheable to most-streaming.  This is the map that
explains *why* different LLC policies win on different workloads.

Run:  python examples/workload_atlas.py [accesses-per-trace]
"""

import sys

from repro.sim.multicore import SystemConfig
from repro.traces import ALL_SPEC_WORKLOADS, build_spec_trace, profile_trace
from repro.traces.analysis import compare_profiles

SCALE = 1 / 16


def main():
    accesses = int(sys.argv[1]) if len(sys.argv) > 1 else 6000
    config = SystemConfig(num_cores=4, scale=SCALE)
    llc_blocks = config.llc_effective_size // 64

    profiles = {}
    for name in ALL_SPEC_WORKLOADS:
        trace = build_spec_trace(name, accesses, seed=1, scale=SCALE)
        profiles[name] = profile_trace(trace)

    print(f"suite profile at scale {SCALE} ({accesses} accesses/trace); "
          f"LLC = {llc_blocks} blocks shared by {config.num_cores} cores\n")
    print(f"{'workload':<14} {'est.hit%':>8} {'APKI':>7} {'footprintKB':>12} "
          f"{'seq%':>6} {'wr%':>5} {'pcs':>4}")
    print("-" * 62)
    ranked = compare_profiles(profiles, cache_blocks=llc_blocks // config.num_cores)
    for name, hit_ratio, apki in ranked:
        p = profiles[name]
        print(
            f"{name:<14} {100 * hit_ratio:>7.1f} {apki:>7.0f} "
            f"{p.footprint_bytes // 1024:>11} {100 * p.sequential_fraction:>5.1f} "
            f"{100 * p.write_fraction:>4.1f} {p.distinct_pcs:>4}"
        )
    print()
    print("High est.hit%: retention-friendly (reuse within capacity) —")
    print("replacement quality matters. Low est.hit% + high seq%: streams —")
    print("prefetching and bypassing matter. Low est.hit% + low seq%:")
    print("irregular giants (mcf-like) — bypass to protect what little fits.")


if __name__ == "__main__":
    main()
