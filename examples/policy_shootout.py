#!/usr/bin/env python3
"""Policy shoot-out: all five paper schemes on a heterogeneous mix.

Reproduces the flavour of the paper's Fig. 10 on a single mix: four
different SPEC-like workloads share the LLC; every scheme (Hawkeye,
Glider, Mockingjay, CARE, CHROME) runs the identical mix and is
normalized against a shared LRU baseline.

Run:  python examples/policy_shootout.py [mix-members ...]
e.g.  python examples/policy_shootout.py mcf06 libquantum06 omnetpp17 hmmer06
"""

import sys

from repro.experiments.metrics import speedup_percent, summarize, weighted_speedup
from repro.experiments.runner import resolve_policy
from repro.sim.multicore import MultiCoreSystem, SystemConfig
from repro.traces import ALL_SPEC_WORKLOADS, heterogeneous_mix

SCALE = 1 / 16
ACCESSES = 26_000
WARMUP = 8_000
SCHEMES = ("hawkeye", "glider", "mockingjay", "care", "chrome")


def run(policy_name, names):
    system = MultiCoreSystem(
        SystemConfig(num_cores=len(names), scale=SCALE),
        llc_policy=resolve_policy(policy_name, SCALE),
        prefetch_config="nl_stride",
    )
    traces = heterogeneous_mix(names, ACCESSES, scale=SCALE)
    return system.run(traces, warmup_accesses=WARMUP)


def main():
    names = sys.argv[1:] or ["mcf06", "libquantum06", "omnetpp17", "hmmer06"]
    unknown = [n for n in names if n not in ALL_SPEC_WORKLOADS]
    if unknown:
        raise SystemExit(f"unknown workloads {unknown}; choose from {ALL_SPEC_WORKLOADS}")

    print(f"mix: {' + '.join(names)}")
    print("running lru baseline ...")
    base = run("lru", names)

    rows = []
    for scheme in SCHEMES:
        print(f"running {scheme} ...")
        result = run(scheme, names)
        metrics = summarize(result, base)
        rows.append((scheme, metrics))

    print()
    print(f"{'scheme':<12} {'speedup%':>9} {'miss%':>7} {'EPHR%':>7} {'bypass%':>8}")
    print("-" * 48)
    for scheme, m in rows:
        print(
            f"{scheme:<12} {m.speedup_percent:>8.2f} "
            f"{100 * m.demand_miss_ratio:>6.1f} {100 * m.ephr:>6.1f} "
            f"{100 * m.bypass_coverage:>7.1f}"
        )
    best = max(rows, key=lambda r: r[1].weighted_speedup)
    print(f"\nbest scheme on this mix: {best[0]} "
          f"({best[1].speedup_percent:+.2f}% over LRU)")


if __name__ == "__main__":
    main()
