"""Serving-layer quickstart: CHROME as an object-cache admission/eviction brain.

Replays a Zipf-with-scans request stream against a byte-budgeted object
store three times — LRU, S3-FIFO, and the CHROME serve agent — through
the concurrent asyncio front-end (8 clients; results are bit-identical
for any client count).  Then demonstrates warm starts: the trained
agent is saved to JSON, restored into a fresh policy, and the restored
agent continues on new traffic deterministically (two restores replay
to bit-identical Q-tables).

Run:
    PYTHONPATH=src python examples/serve_quickstart.py
    PYTHONPATH=src python examples/serve_quickstart.py --requests 30000
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.serve import (  # noqa: E402
    ChromeServePolicy,
    build_workload,
    make_serve_policy,
    run_service,
)

CAPACITY = 16 << 20  # 16 MiB object store
SEGMENTS = 128


def compare_policies(requests, warmup: int) -> ChromeServePolicy:
    """CHROME vs classic baselines on identical traffic."""
    print(f"{'policy':8s} {'object_hit':>10s} {'byte_hit':>9s} "
          f"{'backend':>8s} {'p99_ms':>7s}")
    chrome_policy = None
    for name in ("lru", "lfu", "gdsf", "s3fifo", "chrome"):
        policy = make_serve_policy(name, **({"seed": 7} if name == "chrome" else {}))
        metrics = run_service(
            requests, policy, CAPACITY, SEGMENTS,
            num_clients=8, warmup_requests=warmup,
        )
        print(f"{name:8s} {metrics.object_hit_ratio:10.4f} "
              f"{metrics.byte_hit_ratio:9.4f} {metrics.backend_load:8.4f} "
              f"{metrics.p99_latency_ms:7.2f}")
        if name == "chrome":
            chrome_policy = policy
    return chrome_policy


def warm_start_round_trip(trained: ChromeServePolicy, requests) -> None:
    """Save the trained agent, restore it twice, continue deterministically."""
    with tempfile.TemporaryDirectory() as tmp:
        snapshot = Path(tmp) / "serve_agent.json"
        trained.agent.save(snapshot)
        print(f"\nsaved trained agent ({trained.agent.qtable.updates} Q-updates) "
              f"-> {snapshot.name}")

        continuations = []
        for attempt in range(2):
            policy = ChromeServePolicy(seed=7)
            policy.agent.restore(snapshot)
            metrics = run_service(requests, policy, CAPACITY, SEGMENTS,
                                  num_clients=4)
            continuations.append(
                (metrics.hits, policy.agent.qtable.state_dict())
            )
            print(f"restore #{attempt + 1}: byte_hit={metrics.byte_hit_ratio:.4f} "
                  f"q_updates={policy.agent.qtable.updates}")
        identical = continuations[0] == continuations[1]
        print(f"restored continuations bit-identical: {identical}")
        assert identical, "warm-start continuation must be deterministic"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=20_000)
    parser.add_argument("--warmup", type=int, default=4_000)
    args = parser.parse_args()

    requests = build_workload(
        "zipf_scan", args.requests + args.warmup, seed=0
    )
    trained = compare_policies(requests, args.warmup)

    fresh_traffic = build_workload("zipf_scan", max(2_000, args.requests // 4),
                                   seed=99)
    warm_start_round_trip(trained, fresh_traffic)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
