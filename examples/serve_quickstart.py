"""Serving-layer quickstart: CHROME as an object-cache admission/eviction brain.

Replays a Zipf-with-scans request stream against a byte-budgeted object
store three times — LRU, S3-FIFO, and the CHROME serve agent — through
the concurrent asyncio front-end (8 clients; results are bit-identical
for any client count).  Then demonstrates warm starts: the trained
agent is saved to JSON, restored into a fresh policy, and the restored
agent continues on new traffic deterministically (two restores replay
to bit-identical Q-tables).  Finally, a chaos demo: a per-tenant
brownout is injected into a multi-tenant run, and the resilient
configuration (circuit breaker + stale serving + retries) is compared
against a naive control on the same faults.

Run:
    PYTHONPATH=src python examples/serve_quickstart.py
    PYTHONPATH=src python examples/serve_quickstart.py --requests 30000
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.serve import (  # noqa: E402
    ChromeServePolicy,
    FaultConfig,
    ResilienceConfig,
    build_workload,
    make_serve_policy,
    run_service,
)

CAPACITY = 16 << 20  # 16 MiB object store
SEGMENTS = 128


def compare_policies(requests, warmup: int) -> ChromeServePolicy:
    """CHROME vs classic baselines on identical traffic."""
    print(f"{'policy':8s} {'object_hit':>10s} {'byte_hit':>9s} "
          f"{'backend':>8s} {'p99_ms':>7s}")
    chrome_policy = None
    for name in ("lru", "lfu", "gdsf", "s3fifo", "chrome"):
        policy = make_serve_policy(name, **({"seed": 7} if name == "chrome" else {}))
        metrics = run_service(
            requests, policy, CAPACITY, SEGMENTS,
            num_clients=8, warmup_requests=warmup,
        )
        print(f"{name:8s} {metrics.object_hit_ratio:10.4f} "
              f"{metrics.byte_hit_ratio:9.4f} {metrics.backend_load:8.4f} "
              f"{metrics.p99_latency_ms:7.2f}")
        if name == "chrome":
            chrome_policy = policy
    return chrome_policy


def warm_start_round_trip(trained: ChromeServePolicy, requests) -> None:
    """Save the trained agent, restore it twice, continue deterministically."""
    with tempfile.TemporaryDirectory() as tmp:
        snapshot = Path(tmp) / "serve_agent.json"
        trained.agent.save(snapshot)
        print(f"\nsaved trained agent ({trained.agent.qtable.updates} Q-updates) "
              f"-> {snapshot.name}")

        continuations = []
        for attempt in range(2):
            policy = ChromeServePolicy(seed=7)
            policy.agent.restore(snapshot)
            metrics = run_service(requests, policy, CAPACITY, SEGMENTS,
                                  num_clients=4)
            continuations.append(
                (metrics.hits, policy.agent.qtable.state_dict())
            )
            print(f"restore #{attempt + 1}: byte_hit={metrics.byte_hit_ratio:.4f} "
                  f"q_updates={policy.agent.qtable.updates}")
        identical = continuations[0] == continuations[1]
        print(f"restored continuations bit-identical: {identical}")
        assert identical, "warm-start continuation must be deterministic"


def brownout_demo(num_requests: int) -> None:
    """Inject a per-tenant brownout; compare graceful vs. naive failure.

    Tenant 0's origin shard (the Zipf service) degrades periodically:
    70% of its fetches fail and the survivors run 3x slow.  The naive
    control surfaces every failure as an error; the resilient
    configuration retries with seeded-jitter backoff (a 70%-failing
    attempt becomes a ~34%-failing request at 3 attempts) and serves
    evicted-but-retained objects stale instead of erroring — Zipf
    traffic re-requests its evicted tail, which is exactly what the
    stale LRU holds.  Faults are pure functions of (seed, request,
    virtual time), so both runs see *exactly* the same brownouts.
    """
    horizon = num_requests * 0.5  # virtual ms at the default arrival rate
    faults = FaultConfig(
        seed=11,
        error_rate=0.005,
        brownout_tenant=0,
        brownout_every_ms=horizon / 4,
        brownout_duration_ms=horizon / 10,
        brownout_error_rate=0.7,
        brownout_multiplier=3.0,
    )
    # Budget above the 3x-multiplied fetch latency: a partial brownout
    # is a retry problem, not a fast-fail problem (the breaker stays
    # closed unless failures run 8+ consecutive).
    resilient = ResilienceConfig(
        timeout_ms=60.0,
        breaker_open_ms=max(2.0, horizon / 150),
        stale_entries=4096,
    )
    traffic = build_workload("multitenant", num_requests, seed=5)
    # A small store so evictions happen and stale serving has copies.
    capacity, segments = 2 << 20, 64
    print(f"\nbrownout chaos demo (tenant 0, {num_requests} requests):")
    print(f"{'mode':10s} {'err%':>6s} {'t0_miss%':>9s} {'stale':>6s} "
          f"{'retries':>8s} {'breaker':>8s} {'p99_ms':>7s}")
    outcomes = {}
    for mode, policy_config in (
        ("naive", ResilienceConfig.none()),
        ("resilient", resilient),
    ):
        metrics = run_service(
            traffic, make_serve_policy("lru"), capacity, segments,
            num_clients=8, faults=faults, resilience=policy_config,
        )
        # errors concentrate on the browned-out tenant; per-tenant hit
        # ratios show the blast radius stays contained
        t0 = metrics.per_tenant[0]
        outcomes[mode] = metrics
        print(f"{mode:10s} {100 * metrics.error_rate:6.2f} "
              f"{100 * (1 - t0.object_hit_ratio):9.2f} "
              f"{metrics.stale_served:6d} {metrics.retries:8d} "
              f"{metrics.breaker_opens:8d} {metrics.p99_latency_ms:7.2f}")
    naive, res = outcomes["naive"], outcomes["resilient"]
    print(f"resilient turned {res.stale_served} would-be errors into stale "
          f"serves and cut the error rate "
          f"{100 * naive.error_rate:.2f}% -> {100 * res.error_rate:.2f}%")
    assert res.error_rate < naive.error_rate, (
        "resilience must lower the error rate under a brownout"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=20_000)
    parser.add_argument("--warmup", type=int, default=4_000)
    args = parser.parse_args()

    requests = build_workload(
        "zipf_scan", args.requests + args.warmup, seed=0
    )
    trained = compare_policies(requests, args.warmup)

    fresh_traffic = build_workload("zipf_scan", max(2_000, args.requests // 4),
                                   seed=99)
    warm_start_round_trip(trained, fresh_traffic)

    brownout_demo(max(3_000, args.requests // 4))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
