"""Cluster quickstart: the serve tier scaled out to a sharded fleet.

Three demos on one seeded ``zipf_scan`` stream:

1. **Scaling + federation** — a 4-shard consistent-hash fleet (each
   shard its own CHROME serve agent, Q-tables federated periodically,
   hot keys split across replicas) against the no-clustering baseline:
   a single shard-sized cache serving the full stream alone.  The
   fleet's aggregate byte-hit ratio beats the best isolated shard —
   the gate `benchmarks/bench_cluster.py` enforces in CI.
2. **Shard kill** — shard 2 dies for a quarter of the run via the same
   deterministic fault machinery the chaos layer uses; the ring skips
   it (replicas absorb its keys), heals when it returns, and the run
   stays bit-identical when repeated.
3. **Client-count invariance** — the killed-shard fleet produces
   byte-identical metrics with 1 and 64 concurrent clients, because
   routing, liveness and federation are all pure functions of the
   ticket-sequenced virtual clock.

Run:
    PYTHONPATH=src python examples/cluster_quickstart.py
    PYTHONPATH=src python examples/cluster_quickstart.py --requests 20000
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.cluster import ClusterJob  # noqa: E402
from repro.serve import ServiceConfig, build_workload, run_configured  # noqa: E402

NUM_SHARDS = 4
CAPACITY = 8 << 20  # total fleet capacity, split across shards
SEGMENTS = 64
SEED = 11


def base_job(requests: int, warmup: int) -> ClusterJob:
    return ClusterJob(
        workload="zipf_scan",
        policy="chrome",
        num_requests=requests,
        warmup_requests=warmup,
        capacity_bytes=CAPACITY,
        num_segments=SEGMENTS,
        num_shards=NUM_SHARDS,
        replication=2,
        num_clients=8,
        seed=SEED,
        federate_every=max(1, requests // 8),
        hotkey_window=512,
    )


def federation_demo(requests: int, warmup: int) -> None:
    """Fleet vs. the best single shard-sized cache going it alone."""
    fleet = base_job(requests, warmup).execute()
    stream = build_workload("zipf_scan", requests + warmup, seed=SEED)
    solo = ServiceConfig.from_params(
        capacity_bytes=CAPACITY // NUM_SHARDS,
        num_segments=SEGMENTS,
        policy="chrome",
        num_clients=8,
        warmup_requests=warmup,
        seed=SEED,
        workload_name="zipf_scan",
    )
    isolated = [
        run_configured(list(stream), solo.for_shard(i)).byte_hit_ratio
        for i in range(NUM_SHARDS)
    ]
    print(f"{NUM_SHARDS}-shard federated fleet on zipf_scan "
          f"({requests} requests):")
    print(f"  fleet byte_hit      {fleet.fleet.byte_hit_ratio:.4f} "
          f"(per shard: {[round(m.byte_hit_ratio, 3) for m in fleet.per_shard]})")
    print(f"  isolated shards     {[round(r, 3) for r in isolated]} "
          f"(best {max(isolated):.4f})")
    print(f"  federation rounds   {fleet.federations}, hot-key splits "
          f"{fleet.hot_splits}")
    assert fleet.fleet.byte_hit_ratio >= max(isolated), (
        "the pooled, federated fleet must beat the best isolated shard"
    )
    print("  fleet beats the best isolated shard: True")


def shard_kill_demo(requests: int, warmup: int) -> ClusterJob:
    """Kill shard 2 mid-run; the ring routes around it and heals."""
    horizon_ms = (requests + warmup) * 0.5  # virtual clock, 0.5 ms arrivals
    job = replace(
        base_job(requests, warmup),
        kill_shard=2,
        kill_fault_params=(
            ("seed", 3),
            ("outage_every_ms", round(horizon_ms, 3)),
            ("outage_duration_ms", round(horizon_ms / 4.0, 3)),
        ),
    )
    metrics = job.execute()
    print(f"\nshard-kill demo (shard 2 down ~25% of the run):")
    print(f"  ring changes {metrics.ring_changes} (down, then healed), "
          f"reroutes {metrics.reroutes}, unroutable {metrics.unroutable}")
    print(f"  fleet byte_hit {metrics.fleet.byte_hit_ratio:.4f}, "
          f"routed per shard {list(metrics.routed)}")
    assert metrics.ring_changes == 2 and metrics.unroutable == 0
    return job


def invariance_demo(job: ClusterJob) -> None:
    """Same fleet, 1 vs 64 concurrent clients: byte-identical."""
    one = replace(job, num_clients=1).execute()
    many = replace(job, num_clients=64).execute()
    identical = one == many
    print(f"\nnum_clients 1 vs 64 (with the mid-run kill): "
          f"bit-identical = {identical}")
    assert identical, "cluster metrics must not depend on client count"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=8_000)
    parser.add_argument("--warmup", type=int, default=1_600)
    args = parser.parse_args()

    federation_demo(args.requests, args.warmup)
    killed = shard_kill_demo(args.requests, args.warmup)
    invariance_demo(killed)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
