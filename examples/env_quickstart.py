"""Environment-protocol quickstart: one RL core, four domains, one recipe.

Part 1 walks the registry: every registered environment (the LLC
simulator, the object-cache service, the sharded fleet, and the toy
DRAM-row cache) is built from the same ``build_environment`` call and
run to completion — four domains, zero domain-specific driver code.

Part 2 shows the snapshot seam the protocol standardizes: the toy
environment is trained, its agent state is captured, and a fresh
instance resumes from the snapshot — the same save/restore contract
the ops guardrail's rollback and the cluster's federation use.

Part 3 is the "new domain in one file" recipe, live: a miniature
environment for a TLB-style translation cache is defined *inside this
example* (~40 lines, no learning code), registered, and immediately
driven by the generic run loop — everything RL comes from the shared
:class:`~repro.env.driver.AgentCore`.

Run:
    PYTHONPATH=src python examples/env_quickstart.py
"""

from __future__ import annotations

import sys
from dataclasses import replace
from pathlib import Path
from typing import Dict, List

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.config import ACTION_BYPASS, ACTION_TO_EPV, ChromeConfig  # noqa: E402
from repro.env import (  # noqa: E402
    AgentCore,
    Environment,
    Observation,
    available_environments,
    build_environment,
    register_environment,
    run_steps,
)
from repro.sim.address import fold_hash, mix_hash  # noqa: E402

#: small run sizes so the whole tour finishes in seconds
SMALL = {
    "sim": dict(accesses_per_core=800, warmup_accesses=200),
    "serve": dict(num_requests=800, warmup_requests=160),
    "cluster": dict(num_requests=800),
    "toy": dict(num_steps=3000),
}


def tour_registry() -> None:
    """Part 1: every domain through the same two calls."""
    print("== one protocol, every domain ==")
    for name in available_environments():
        result = build_environment(name, **SMALL.get(name, {})).run()
        headline = {
            "sim": lambda r: f"llc hits {r['llc_hits']}/{r['llc_accesses']}",
            "serve": lambda r: (
                f"object hit {100 * r['hits'] / r['requests']:.1f}%"
            ),
            "cluster": lambda r: (
                f"fleet hit {100 * r['fleet']['hits'] / r['fleet']['requests']:.1f}%"
            ),
            "toy": lambda r: f"row hit {100 * r['row_hit_ratio']:.1f}%",
        }[name](result)
        print(f"  {name:8s} -> {headline}")


def snapshot_seam() -> None:
    """Part 2: train, snapshot, resume in a fresh instance."""
    print("\n== the snapshot seam ==")
    env = build_environment("toy", num_steps=3000)
    env.run()
    states = env.agent_states()
    q_updates = states[0]["qtable"]["updates"]
    print(f"  trained 3000 steps ({q_updates} Q-updates), snapshot taken")

    warm = build_environment("toy", num_steps=3000, seed=99)
    warm.load_agent_states(states, keep_rng=True)  # hot swap: keep own RNG
    result = warm.run()
    print(f"  warm-started fresh instance: "
          f"row hit {100 * result['row_hit_ratio']:.1f}% on unseen traffic")


# --- Part 3: a brand-new domain, defined right here --------------------------------


class TranslationCacheEnvironment(Environment):
    """A TLB-style translation cache — the one-adapter-file recipe, live.

    The binding supplies exactly what Algorithm 1 leaves abstract:
    a unit population (TLB sets), a key (virtual page), a 2-feature
    state, and what each action means to the cached structure.  No
    rewards, exploration, EQ, or SARSA appear below — all of it comes
    from the shared AgentCore.
    """

    name = "tlb-demo"
    snapshot_kind = "tlb-demo-agent"

    def __init__(self, *, num_steps: int = 3000, num_sets: int = 32,
                 ways: int = 4, seed: int = 0) -> None:
        self._num_steps = num_steps
        self._num_sets = num_sets
        self._ways = ways
        self._seed = seed
        config = replace(ChromeConfig(), sampled_sets=num_sets)
        self.agent = AgentCore(config, num_features=2,
                               rng_seed=mix_hash(seed ^ 0xB00))
        self.agent.attach_sampled(num_sets)
        self._sets: List[Dict[int, int]] = [dict() for _ in range(num_sets)]
        self.hits = 0
        self.misses = 0

    def steps(self):
        for i in range(self._num_steps):
            h = mix_hash(self._seed ^ (i << 3))
            # 3/4 of accesses walk a hot working set, 1/4 stride a big one
            vpage = (h >> 6) % 48 if (h & 0x3) else (i * 7) % 4096
            s = vpage % self._num_sets
            yield Observation(key=vpage, unit=s, hit=vpage in self._sets[s])

    def extract(self, obs: Observation):
        return (fold_hash(obs.key, 16), fold_hash(obs.key >> 5, 14))

    def apply(self, obs: Observation, action: int) -> None:
        entries = self._sets[obs.unit]
        if obs.hit:
            self.hits += 1
            entries[obs.key] = ACTION_TO_EPV[action]
            return
        self.misses += 1
        if action == ACTION_BYPASS:
            return
        if len(entries) >= self._ways:
            del entries[max(entries, key=entries.__getitem__)]
        entries[obs.key] = ACTION_TO_EPV[action]

    def run(self):
        steps = run_steps(self.agent, self)
        return {"steps": steps, "hits": self.hits, "misses": self.misses,
                "hit_ratio": self.hits / max(1, self.hits + self.misses)}

    def agent_states(self):
        from repro.core.persistence import agent_state
        return [agent_state(self.agent, self.snapshot_kind)]

    def load_agent_states(self, states, *, keep_rng: bool = False):
        from repro.env import restore_agent_state
        restore_agent_state(self.agent, states[0], self.snapshot_kind,
                            keep_rng=keep_rng)


def new_domain_recipe() -> None:
    """Part 3: register the in-file domain and run it generically."""
    print("\n== a new domain in one adapter ==")
    register_environment("tlb-demo", TranslationCacheEnvironment)
    result = build_environment("tlb-demo").run()
    print(f"  tlb-demo -> hit {100 * result['hit_ratio']:.1f}% "
          f"over {result['steps']} steps "
          "(zero learning code in the adapter)")


def main() -> None:
    tour_registry()
    snapshot_seam()
    new_domain_recipe()


if __name__ == "__main__":
    main()
