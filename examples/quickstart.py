#!/usr/bin/env python3
"""Quickstart: run CHROME against LRU on one workload.

Builds a scaled 4-core system (private L1D/L2, shared LLC, DDR4-like
memory, next-line + stride prefetching), runs four copies of an
mcf-like pointer-chasing workload, and reports the metrics the paper
reports: weighted speedup over LRU, LLC demand miss ratio, EPHR, and
CHROME's bypass behaviour.

Run:  python examples/quickstart.py
"""

from repro import ChromePolicy, MultiCoreSystem, SystemConfig
from repro.experiments.metrics import speedup_percent, weighted_speedup
from repro.sim.replacement import make_policy
from repro.traces import homogeneous_mix

SCALE = 1 / 16  # machine and working sets shrink together
CORES = 4
ACCESSES = 30_000  # per core (warmup + measured)
WARMUP = 10_000


def run(policy):
    system = MultiCoreSystem(
        SystemConfig(num_cores=CORES, scale=SCALE),
        llc_policy=policy,
        prefetch_config="nl_stride",
    )
    traces = homogeneous_mix("mcf06", CORES, ACCESSES, scale=SCALE)
    return system.run(traces, warmup_accesses=WARMUP)


def main():
    print("running LRU baseline ...")
    lru = run(make_policy("lru"))
    print("running CHROME ...")
    chrome = run(ChromePolicy())

    ws = weighted_speedup(chrome.ipcs, lru.ipcs)
    print()
    print(f"workload                mcf06 x{CORES} (homogeneous)")
    print(f"LRU    IPCs             {[round(i, 3) for i in lru.ipcs]}")
    print(f"CHROME IPCs             {[round(i, 3) for i in chrome.ipcs]}")
    print(f"weighted speedup        {speedup_percent(ws):+.2f}% over LRU")
    print(f"LLC demand miss ratio   LRU {lru.llc_stats.demand_miss_ratio:.1%}  "
          f"CHROME {chrome.llc_stats.demand_miss_ratio:.1%}")
    print(f"EPHR                    LRU {lru.llc_mgmt.ephr:.1%}  "
          f"CHROME {chrome.llc_mgmt.ephr:.1%}")
    print(f"CHROME bypass coverage  {chrome.llc_mgmt.bypass_coverage:.1%}")
    print(f"CHROME bypass efficiency {chrome.llc_mgmt.bypass_efficiency:.1%}")
    telemetry = chrome.extra["policy_telemetry"]
    print(f"Q-table updates         {telemetry['q_updates']} "
          f"(UPKSA {telemetry['upksa']:.0f})")


if __name__ == "__main__":
    main()
