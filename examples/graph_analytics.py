#!/usr/bin/env python3
"""Graph analytics on the shared LLC — the paper's GAP generalization
study (Sec. VII-D) in miniature.

GAP workloads were *not* used for CHROME's hyper-parameter tuning, so
they test generalization.  This example runs real graph kernels (BFS,
PageRank, SSSP) over synthetic power-law and uniform graphs in CSR
layout, on a 4-core system, and compares CHROME against CARE (the
second-best scheme in the paper's GAP results) and LRU.

Run:  python examples/graph_analytics.py
"""

from repro.experiments.metrics import speedup_percent, weighted_speedup
from repro.experiments.runner import resolve_policy
from repro.sim.multicore import MultiCoreSystem, SystemConfig
from repro.traces import build_gap_trace
from repro.traces.mixes import ADDRESS_SPACE_STRIDE

SCALE = 1 / 16
ACCESSES = 26_000
WARMUP = 8_000
KERNELS = ("bfs-tw", "pr-ur", "sssp-or")


def gap_mix(name, cores):
    base = build_gap_trace(name, ACCESSES, scale=SCALE)
    return [
        base.with_address_offset((c + 1) * ADDRESS_SPACE_STRIDE) for c in range(cores)
    ]


def run(policy_name, traces):
    system = MultiCoreSystem(
        SystemConfig(num_cores=len(traces), scale=SCALE),
        llc_policy=resolve_policy(policy_name, SCALE),
    )
    return system.run(traces, warmup_accesses=WARMUP)


def main():
    print(f"{'kernel':<10} {'scheme':<8} {'speedup%':>9} {'miss%':>7} {'camat':>8}")
    print("-" * 46)
    for kernel in KERNELS:
        base = run("lru", gap_mix(kernel, 4))
        for scheme in ("care", "chrome"):
            result = run(scheme, gap_mix(kernel, 4))
            ws = weighted_speedup(result.ipcs, base.ipcs)
            camat = sum(result.camat_summary["per_core_camat"]) / 4
            print(
                f"{kernel:<10} {scheme:<8} {speedup_percent(ws):>8.2f} "
                f"{100 * result.llc_stats.demand_miss_ratio:>6.1f} {camat:>8.1f}"
            )
    print()
    print("Graph kernels mix sequential offset/neighbor sweeps with")
    print("scattered property-array accesses; concurrency-aware schemes")
    print("(CARE, CHROME) exploit the resulting overlapped-miss phases.")


if __name__ == "__main__":
    main()
