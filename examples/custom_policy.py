#!/usr/bin/env python3
"""Extending the framework: write and evaluate your own LLC policy.

The simulator treats LLC management as a plug-in.  This example builds
a tiny custom policy from scratch — "PC-bimodal": remember per PC
whether its blocks were reused, insert never-reused PCs at distant
priority — and benchmarks it against LRU and CHROME on a
pollution-heavy workload.  ~40 lines of policy code.

Run:  python examples/custom_policy.py
"""

from typing import Dict, Sequence

from repro import ChromePolicy, MultiCoreSystem, SystemConfig
from repro.experiments.metrics import speedup_percent, weighted_speedup
from repro.sim.access import AccessInfo, WRITEBACK
from repro.sim.block import CacheBlock
from repro.sim.replacement.base import ReplacementPolicy, oldest_way
from repro.traces import homogeneous_mix

SCALE = 1 / 16
ACCESSES = 24_000
WARMUP = 8_000


class PCBimodalPolicy(ReplacementPolicy):
    """Insert blocks from not-yet-reused PCs at distant priority.

    Per-block state rides in ``CacheBlock.epv`` (0 = keep, 2 = evict
    first); the per-PC reuse table is a plain dict, as a sampled SHCT
    would be in hardware.
    """

    name = "pc-bimodal"

    def __init__(self) -> None:
        super().__init__()
        self._reused_pcs: Dict[int, int] = {}

    def find_victim(self, info: AccessInfo, blocks: Sequence[CacheBlock]) -> int:
        distant = [w for w, b in enumerate(blocks) if b.epv == 2]
        if distant:
            return min(distant, key=lambda w: blocks[w].last_touch)
        return oldest_way(blocks)

    def on_hit(self, info: AccessInfo, blocks: Sequence[CacheBlock], way: int) -> None:
        if info.type == WRITEBACK:
            return
        block = blocks[way]
        block.epv = 0
        counter = self._reused_pcs.get(block.pc, 1)
        self._reused_pcs[block.pc] = min(3, counter + 1)

    def on_fill(self, info: AccessInfo, blocks: Sequence[CacheBlock], way: int) -> None:
        counter = self._reused_pcs.get(info.pc, 1)
        blocks[way].epv = 2 if counter == 0 else 0

    def on_eviction(
        self, info: AccessInfo, blocks: Sequence[CacheBlock], way: int
    ) -> None:
        block = blocks[way]
        if not block.reused:
            counter = self._reused_pcs.get(block.pc, 1)
            self._reused_pcs[block.pc] = max(0, counter - 1)


def run(policy):
    system = MultiCoreSystem(
        SystemConfig(num_cores=2, scale=SCALE), llc_policy=policy
    )
    traces = homogeneous_mix("astar06", 2, ACCESSES, scale=SCALE)
    return system.run(traces, warmup_accesses=WARMUP)


def main():
    from repro.sim.replacement.lru import LRUPolicy

    base = run(LRUPolicy())
    print(f"{'policy':<12} {'speedup%':>9} {'miss%':>7}")
    print("-" * 30)
    for policy in (LRUPolicy(), PCBimodalPolicy(), ChromePolicy()):
        result = run(policy)
        ws = weighted_speedup(result.ipcs, base.ipcs)
        print(
            f"{result.policy_name:<12} {speedup_percent(ws):>8.2f} "
            f"{100 * result.llc_stats.demand_miss_ratio:>6.1f}"
        )


if __name__ == "__main__":
    main()
