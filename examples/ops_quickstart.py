"""Ops quickstart: shadow evaluation, bad-deploy rollback, determinism.

Three demos of the live-operations layer (`repro.ops`, DESIGN.md §10):

1. **Shadow zero-impact** — an LRU challenger shadows a CHROME
   champion on a seeded ``zipf_scan`` stream.  The challenger sees a
   duplicate of every request, yet the champion's metrics stay
   byte-identical to a plain un-shadowed run: shadow evaluation is
   free from the champion's point of view.
2. **Guardrail + rollback** — a simulated bad model deploy (the worst
   on-grid policy: bypass everything) lands at window 6 of a drifting
   ``phases`` workload.  Unguarded, the cache freezes and misses flood
   the origin for the rest of the run.  Guarded, the byte-hit EWMA
   trips within a few windows and the controller rolls the agent back
   to the newest known-good snapshot — the guarded run beats the
   unguarded one on both byte-hit and tail latency, the same gate
   `benchmarks/bench_ops.py` enforces in CI.
3. **Client-count invariance** — the full guarded run (windows, trips,
   rollbacks, every event's seq and virtual timestamp) is bit-identical
   with 1 and 64 concurrent clients, because every ops decision fires
   at window boundaries of the global ticket sequence.

Run:
    PYTHONPATH=src python examples/ops_quickstart.py
    PYTHONPATH=src python examples/ops_quickstart.py --requests 8000
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.ops import OpsConfig, run_ops  # noqa: E402
from repro.serve import (  # noqa: E402
    LatencyConfig,
    ServiceConfig,
    build_workload,
    run_configured,
)

CAPACITY = 2 << 20
SEGMENTS = 64
SEED = 17
DEGRADE_WINDOW = 6


def _config(workload: str, warmup: int, **overrides) -> ServiceConfig:
    params = dict(
        capacity_bytes=CAPACITY,
        num_segments=SEGMENTS,
        policy="chrome",
        num_clients=8,
        warmup_requests=warmup,
        seed=SEED,
        workload_name=workload,
    )
    params.update(overrides)
    return ServiceConfig.from_params(**params)


def shadow_demo(requests: int, warmup: int) -> None:
    """An LRU challenger shadows the champion at zero champion cost."""
    stream = build_workload("zipf_scan", requests + warmup, seed=SEED)
    config = _config("zipf_scan", warmup)
    plain = run_configured(list(stream), config)
    window = max(50, (requests + warmup) // 16)
    shadowed = run_ops(
        list(stream), config,
        OpsConfig(window=window, challenger_policy="lru"),
    )
    print(f"shadow demo ({requests} zipf_scan requests, window {window}):")
    print(f"  champion byte_hit   {shadowed.champion.byte_hit_ratio:.4f} "
          f"(challenger lru: {shadowed.challenger.byte_hit_ratio:.4f})")
    identical = shadowed.champion == plain
    print(f"  champion unchanged by the shadow: {identical}")
    assert identical, "shadow evaluation must not perturb the champion"


def rollback_demo(requests: int, warmup: int) -> OpsConfig:
    """Bad deploy at window 6: the guardrail pays for itself."""
    total = requests + warmup
    stream = build_workload("phases", total, seed=SEED, num_phases=8)
    # queue-divergent origin: reacting late costs real tail latency
    config = _config(
        "phases", warmup, latency=LatencyConfig(queue_penalty_ms=0.6)
    )
    window = max(50, total // 21)

    def ops(guarded: bool) -> OpsConfig:
        return OpsConfig(
            window=window,
            min_byte_hit_ewma=0.05 if guarded else -1.0,
            trip_after=2,
            warmup_windows=2,
            snapshot_every=2 if guarded else 0,
            degrade_at_window=DEGRADE_WINDOW,
        )

    unguarded = run_ops(list(stream), config, ops(False))
    guarded = run_ops(list(stream), config, ops(True))
    print(f"\nbad-deploy demo (phases workload, degrade at window "
          f"{DEGRADE_WINDOW}):")
    for label, r in (("unguarded", unguarded), ("guarded", guarded)):
        print(f"  {label:10s} byte_hit {r.champion.byte_hit_ratio:.4f}  "
              f"p99 {r.champion.p99_latency_ms:8.2f}ms  "
              f"trips {r.trips}  rollbacks {r.rollbacks}")
    assert guarded.rollbacks >= 1, "the guardrail must have fired"
    assert guarded.champion.byte_hit_ratio > unguarded.champion.byte_hit_ratio
    assert guarded.champion.p99_latency_ms < unguarded.champion.p99_latency_ms
    print("  guarded beats unguarded on byte_hit AND p99: True")
    return ops(True)


def invariance_demo(requests: int, warmup: int, guarded: OpsConfig) -> None:
    """Same guarded run, 1 vs 64 clients: every event bit-identical."""
    total = requests + warmup
    stream = build_workload("phases", total, seed=SEED, num_phases=8)
    base = _config(
        "phases", warmup, latency=LatencyConfig(queue_penalty_ms=0.6)
    )
    one = run_ops(list(stream), replace(base, num_clients=1), guarded)
    many = run_ops(list(stream), replace(base, num_clients=64), guarded)
    identical = one == many
    print(f"\nnum_clients 1 vs 64 (guarded run, rollback included): "
          f"bit-identical = {identical}")
    assert identical, "ops decisions must not depend on client count"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=4_000)
    parser.add_argument("--warmup", type=int, default=200)
    args = parser.parse_args()

    shadow_demo(args.requests, args.warmup)
    guarded = rollback_demo(args.requests, args.warmup)
    invariance_demo(args.requests, args.warmup, guarded)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
