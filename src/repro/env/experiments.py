"""The ``env_toy`` experiment: the toy environment through the engine.

The end-to-end existence proof for the Environment protocol: the toy
DRAM-row domain (one adapter file, zero learning code of its own) runs
as a registered experiment through the same parallel engine, caches
and reporting as the LLC/serve/cluster domains.  The table compares
the CHROME-managed open-row cache across seeds against what the hit
ceiling of the stream allows, plus a no-exploration ablation via the
shared config surface — exercising spec-driven construction, engine
dedup and result assembly over :class:`~repro.env.jobs.EnvJob`.
"""

from __future__ import annotations

from typing import List, Mapping

from ..experiments.engine import ExperimentPlan
from ..experiments.registry import register_experiment
from ..experiments.report import ExperimentResult
from ..experiments.runner import ExperimentScale

#: toy-run length relative to the per-core access budget
STEPS_FRACTION = 1.0 / 4.0

SEEDS = (0, 1, 2)


def toy_steps(scale: ExperimentScale) -> int:
    return max(1000, int(scale.accesses_per_core * STEPS_FRACTION))


def env_toy_plan(scale: ExperimentScale) -> ExperimentPlan:
    from .jobs import env_job

    steps = toy_steps(scale)
    jobs = {
        **{f"seed-{s}": env_job("toy", num_steps=steps, seed=s) for s in SEEDS},
        "greedy": env_job("toy", num_steps=steps, seed=0, epsilon=0.0),
    }

    def assemble(results: Mapping) -> ExperimentResult:
        rows: List[List[object]] = []
        for name, job in jobs.items():
            r = results[job]
            t = r["telemetry"]
            rows.append(
                [
                    name,
                    r["steps"],
                    round(100.0 * r["row_hit_ratio"], 2),
                    r["bypasses"],
                    t["explorations"],
                    t["q_updates"],
                ]
            )
        base = results[jobs["seed-0"]]
        notes = [
            f"toy DRAM-row domain: {base['steps']} steps, "
            f"{100.0 * base['row_hit_ratio']:.2f}% row hit "
            "(one adapter file; all learning from the shared AgentCore)",
        ]
        return ExperimentResult(
            experiment_id="env_toy",
            title="environment protocol: toy DRAM-row cache domain",
            columns=[
                "run",
                "steps",
                "row_hit%",
                "bypasses",
                "explorations",
                "q_updates",
            ],
            rows=rows,
            notes=notes,
        )

    return ExperimentPlan(
        experiment_id="env_toy",
        jobs=tuple(jobs.values()),
        assemble=assemble,
    )


def _register() -> None:
    def runner_fn(runner):
        return runner.run_plan(env_toy_plan(runner.scale))

    register_experiment("env_toy", runner_fn, plan=env_toy_plan)


_register()
