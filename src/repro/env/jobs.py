"""Declarative environment jobs for the parallel experiment engine.

An :class:`EnvJob` names a registered environment plus its constructor
overrides and nothing else — the same frozen, hashable,
self-describing spec discipline every other job kind follows, which is
what lets any :class:`~repro.env.protocol.Environment` adapter flow
through the engine's dedup, memo/disk caches and the ``--jobs 1`` vs
``--jobs N`` bit-identity checks without engine changes.  The result
is whatever the environment's ``run()`` returns (a picklable,
value-equal mapping by contract).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .registry import build_environment

#: Bump when environment semantics change in a way that must
#: invalidate previously cached environment results.
ENV_CODE_VERSION = "env-1"


@dataclass(frozen=True)
class EnvJob:
    """One schedulable run of a registered environment."""

    environment: str
    #: constructor overrides as a sorted spec tuple (hashable, literal)
    env_params: Tuple[Tuple[str, object], ...] = ()

    @property
    def label(self) -> str:
        return f"env:{self.environment}"

    def canonical(self) -> Tuple:
        """Stable literal-only identity (cache key + dedup key)."""
        return ("env", ENV_CODE_VERSION, self.environment, self.env_params)

    def execute(self, obs=None) -> Dict[str, object]:
        """Build the environment from the spec alone and run it.

        ``obs`` is accepted for engine-dispatch uniformity;
        environment runs are not obs-instrumented (their adapters
        wrap subsystems that carry their own instrumentation).
        """
        env = build_environment(self.environment, **dict(self.env_params))
        return env.run()


def env_job(environment: str, **overrides) -> EnvJob:
    """Spec-tuple convenience: ``env_job("toy", seed=3)``."""
    return EnvJob(
        environment=environment,
        env_params=tuple(sorted(overrides.items())),
    )
