"""Environment adapter registry.

Adapters register a *factory* under their domain name; factories accept
keyword overrides (scale knobs, seeds, ``backend``) and return a fresh
:class:`~repro.env.protocol.Environment`.  The conformance suite
(``tests/test_env_protocol.py``) parametrizes over every registered
name, so registering an adapter is what buys it the protocol
guarantees (determinism, save/restore round-trip, backend identity).

Importing :mod:`repro.env` eagerly registers the built-in adapters
(sim, serve, cluster, toy) — same discipline as the experiment
registry: no private bootstrap calls.
"""

from __future__ import annotations

from typing import Callable, Dict, List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .protocol import Environment

EnvironmentFactory = Callable[..., "Environment"]

#: name -> adapter factory
ENVIRONMENTS: Dict[str, EnvironmentFactory] = {}

_BUILTINS_LOADED = False


def _load_builtin_adapters() -> None:
    """Import the built-in adapter modules (each self-registers).

    Lazy on first registry query — the adapters import the domain
    packages (which themselves import :mod:`repro.env.driver`), so an
    eager import here would cycle during package initialization.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from . import toy as _toy  # noqa: F401
    from ..sim import env as _sim_env  # noqa: F401
    from ..serve import env as _serve_env  # noqa: F401
    from ..cluster import env as _cluster_env  # noqa: F401


def register_environment(
    name: str, factory: EnvironmentFactory, *, overwrite: bool = True
) -> None:
    """Register an environment adapter (last registration wins)."""
    if not overwrite and name in ENVIRONMENTS:
        return
    ENVIRONMENTS[name] = factory


def available_environments() -> List[str]:
    """Sorted names of every registered environment adapter."""
    _load_builtin_adapters()
    return sorted(ENVIRONMENTS)


def build_environment(name: str, **overrides) -> "Environment":
    """Instantiate a registered adapter with keyword overrides."""
    _load_builtin_adapters()
    try:
        factory = ENVIRONMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown environment {name!r}; "
            f"available: {available_environments()}"
        ) from None
    return factory(**overrides)
