"""One Environment protocol for every CHROME domain.

``repro.env`` is the seam between the shared RL core and the domains
that drive it:

* :mod:`repro.env.protocol` — the frozen :class:`Observation` record
  and the :class:`Environment` run/snapshot contract;
* :mod:`repro.env.driver` — :class:`AgentCore`, the single
  implementation of Algorithm 1's decision/training pipeline that the
  LLC policy, the serve agent and every new domain bind;
* :mod:`repro.env.registry` — named adapter factories; registering an
  adapter opts it into the conformance suite;
* :mod:`repro.env.toy` — the existence proof: a single-tier DRAM-row
  cache as one small adapter file;
* :mod:`repro.env.jobs` / :mod:`repro.env.experiments` — frozen
  :class:`EnvJob` specs and the ``env_toy`` experiment on the
  parallel engine.

This package's top level imports only leaf modules: the domain
adapters (``repro.sim.env``, ``repro.serve.env``, ``repro.cluster.env``)
are loaded lazily on first registry use, because the domains
themselves import :mod:`repro.env.driver`.
"""

from .driver import AgentCore, restore_agent_state, run_steps
from .jobs import EnvJob, env_job
from .protocol import Environment, Observation
from .registry import (
    available_environments,
    build_environment,
    register_environment,
)

__all__ = [
    "AgentCore",
    "EnvJob",
    "Environment",
    "Observation",
    "available_environments",
    "build_environment",
    "env_job",
    "register_environment",
    "restore_agent_state",
    "run_steps",
]
