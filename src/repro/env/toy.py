"""Toy domain: a single-tier DRAM-row cache, as one adapter file.

The existence proof for the :class:`~repro.env.protocol.Environment`
protocol: a complete new CHROME domain — row-buffer management for a
banked DRAM device — in ~150 lines, none of which are learning code.
Everything RL comes from :class:`~repro.env.driver.AgentCore`; this
file supplies only the bindings the protocol asks for:

* **unit population** — DRAM banks (the sampled-unit role LLC sets and
  store segments play elsewhere);
* **key** — the row id within its bank (the re-request identity);
* **features** — a 2-feature state: hashed row signature (row + hit
  bit, the PC-signature analogue) and the row's neighborhood (the
  page-number analogue);
* **obstruction** — per-bank miss-pressure EWMA
  (:class:`BankPressureMonitor`): a bank thrashing its open-row cache
  is where a wasted slot hurts most, so NR rewards amplify there;
* **actions** — the shared surface verbatim: on a miss, bypass (serve
  the access without caching the row) or cache it with an EPV; on a
  hit, set the EPV; eviction takes the highest EPV, oldest-first.

The access stream is a deterministic pure-hash mix of hot rows and
sequential sweeps, so two instances with the same spec replay the same
stream — the conformance suite pins run-twice equality and the
save/restore round trip like every other adapter.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.config import ACTION_BYPASS, ACTION_TO_EPV, ChromeConfig
from ..core.persistence import agent_state
from ..sim.address import fold_hash, mix_hash
from .driver import AgentCore, restore_agent_state, run_steps
from .protocol import Environment, Observation
from .registry import register_environment

ROW_SIG_BITS = 17
REGION_BITS = 16

#: fraction of the mixed stream drawn from the hot-row set (out of 16)
_HOT_SIXTEENTHS = 11


class BankPressureMonitor:
    """Per-bank miss-rate EWMA — the toy domain's obstruction source."""

    def __init__(self, threshold: float = 0.6, beta: float = 0.05) -> None:
        self.threshold = threshold
        self.beta = beta
        self._ewma: Dict[int, float] = {}

    def observe(self, bank: int, hit: bool) -> None:
        prev = self._ewma.get(bank, 0.0)
        self._ewma[bank] = prev + self.beta * ((0.0 if hit else 1.0) - prev)

    def is_obstructed(self, bank: int) -> bool:
        return self._ewma.get(bank, 0.0) > self.threshold


class ToyRowFeatureExtractor:
    """Two-feature state for a row access (signature + neighborhood)."""

    num_features = 2

    def extract(self, row: int, bank: int, hit: bool) -> Tuple[int, int]:
        sig = fold_hash((row << 2) | ((bank & 0x1) << 1) | (1 if hit else 0),
                        ROW_SIG_BITS)
        region = fold_hash(((row >> 3) << 8) ^ bank, REGION_BITS)
        return (sig, region)


class ToyRowCacheEnvironment(Environment):
    """A banked DRAM device whose open-row cache CHROME manages."""

    name = "toy"
    snapshot_kind = "toy-agent"

    def __init__(
        self,
        *,
        num_steps: int = 4000,
        num_banks: int = 16,
        rows_per_bank: int = 4,
        hot_rows: int = 8,
        row_space: int = 512,
        seed: int = 0,
        epsilon: float | None = None,
        backend: str | None = None,
    ) -> None:
        from dataclasses import replace

        self._num_steps = num_steps
        self._num_banks = num_banks
        self._rows_per_bank = rows_per_bank
        self._hot_rows = hot_rows
        self._row_space = row_space
        self._seed = seed
        self.features = ToyRowFeatureExtractor()
        config = replace(ChromeConfig(), sampled_sets=num_banks, backend=backend)
        if epsilon is not None:
            config = replace(config, epsilon=epsilon)
        self.agent = AgentCore(
            config, self.features.num_features, mix_hash((config.seed << 9) ^ seed)
        )
        self.agent.attach_sampled(num_banks)
        self.monitor = BankPressureMonitor()
        self.agent.bind_obstruction(self.monitor)
        #: bank -> {row: epv}; insertion order doubles as age (oldest first)
        self._open: List[Dict[int, int]] = [dict() for _ in range(num_banks)]
        self._clock = 0
        # run metrics
        self.hits = 0
        self.misses = 0
        self.bypasses = 0

    # --- the generic-driver surface ----------------------------------------------

    def steps(self):
        """Deterministic mixed stream: hot rows + sequential sweeps."""
        for i in range(self._num_steps):
            h = mix_hash(self._seed ^ (i << 1))
            if (h & 0xF) < _HOT_SIXTEENTHS:
                row = (h >> 8) % self._hot_rows
            else:
                row = (i + ((h >> 16) & 0x7)) % self._row_space
            bank = mix_hash(row) % self._num_banks
            yield Observation(
                key=row,
                unit=bank,
                actor=bank,
                hit=row in self._open[bank],
            )

    def extract(self, obs: Observation) -> Tuple[int, int]:
        return self.features.extract(obs.key, obs.unit, obs.hit)

    def apply(self, obs: Observation, action: int) -> None:
        bank = self._open[obs.unit]
        self.monitor.observe(obs.unit, obs.hit)
        self._clock += 1
        if obs.hit:
            self.hits += 1
            bank[obs.key] = ACTION_TO_EPV[action]
            return
        self.misses += 1
        if action == ACTION_BYPASS:
            self.bypasses += 1
            return
        if len(bank) >= self._rows_per_bank:
            # Highest EPV first, oldest-first among ties (dict order = age).
            victim = max(bank, key=lambda row: bank[row])
            del bank[victim]
        bank[obs.key] = ACTION_TO_EPV[action]

    # --- the Environment contract --------------------------------------------------

    def run(self) -> Dict[str, object]:
        steps = run_steps(self.agent, self)
        accesses = self.hits + self.misses
        return {
            "steps": steps,
            "hits": self.hits,
            "misses": self.misses,
            "bypasses": self.bypasses,
            "row_hit_ratio": self.hits / accesses if accesses else 0.0,
            "telemetry": {
                "sampled_steps": self.agent.sampled_steps,
                **self.agent.core_telemetry(),
            },
        }

    def agent_states(self) -> List[dict]:
        return [agent_state(self.agent, self.snapshot_kind)]

    def load_agent_states(
        self, states: List[dict], *, keep_rng: bool = False
    ) -> None:
        restore_agent_state(
            self.agent, states[0], self.snapshot_kind, keep_rng=keep_rng
        )


register_environment("toy", ToyRowCacheEnvironment)
