"""The shared CHROME agent driver: Algorithm 1 with the domain unplugged.

:class:`AgentCore` is the decision/training pipeline that used to live
twice in this repo — once in :class:`~repro.core.chrome.ChromePolicy`
(LLC accesses) and once in :class:`~repro.serve.agent.ServeAgent`
(cache requests), line-for-line siblings.  Everything domain-neutral
now lives here exactly once:

* the Q-table / EQ / exploration-RNG trio and its construction,
* per-unit sampling (the 64-sampled-sets scheme, generalized to any
  unit population: LLC sets, store segments, DRAM banks, ...),
* the reward-match on re-request (R_AC/R_IN),
* epsilon-greedy action selection over the legal-action tuples,
* EQ recording, the OB/NOB no-re-request rewards at EQ eviction, and
  the SARSA update pairing an evicted entry with the queue's new head,
* the telemetry counters every binding reports.

A domain *binding* supplies only what Algorithm 1 leaves abstract: a
feature extractor (state vector), the sampled-unit index and key of
each step, the reward flag (``is_prefetch`` / ``is_refresh``), the
acting core/tenant, the obstruction monitor (C-AMAT flags, backend
latency EWMAs, bank pressure), and the RNG seed discipline.  See
:mod:`repro.env.protocol` for the frozen observation/environment
contract and ``DESIGN.md`` §11 for the adapter table.

Hot-path note: bindings call :meth:`rl_decide` with positional scalars
(state tuple, unit index, key, hit, flag, actor) instead of a boxed
:class:`~repro.env.protocol.Observation` — the LLC loop takes this
path tens of thousands of times per run and an allocation per access
would show up in the perf gate.  The dataclass form is for the generic
:func:`run_steps` driver and new low-rate domains.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from ..core.backend import make_qtable
from ..core.config import (
    ACTION_BYPASS,
    ACTION_EPV_HIGH,
    HIT_ACTIONS,
    MISS_ACTIONS,
    ChromeConfig,
)
from ..core.eq import EQEntry, EvaluationQueue, hash_block_address
from ..sim.replacement.optgen import choose_sampled_sets


class AgentCore:
    """Algorithm 1's decision + training pipeline, domain-unplugged.

    Subclasses (the domain bindings) keep direct attribute access to
    ``qtable`` / ``eq`` / ``_rng`` / ``config`` — that is the seam the
    persistence helpers (:mod:`repro.core.persistence`) and the ops
    snapshot ring rely on, and it is what keeps the bindings thin.
    """

    def __init__(
        self, config: ChromeConfig, num_features: int, rng_seed: int
    ) -> None:
        self.config = config
        self.qtable = make_qtable(num_features, config)
        self.eq = EvaluationQueue(config.sampled_sets, config.eq_fifo_size)
        self._rng = random.Random(rng_seed)
        # Hot-path hoists: the bound RNG method and the (construction-
        # time) exploration rate, saving attribute chains per decision.
        self._rand = self._rng.random
        self._epsilon = config.epsilon
        self._rewards = config.rewards
        # Legal-action orderings (first element wins arg-max ties);
        # instance attributes so variants/ablations can reorder them.
        self._miss_actions: Tuple[int, ...] = MISS_ACTIONS
        self._hit_actions: Tuple[int, ...] = HIT_ACTIONS
        #: obstruction source: anything with ``is_obstructed(actor)``
        #: (C-AMAT monitor, backend-latency monitor, bank pressure...)
        self._obstruction = None
        self._sampled_queue: Dict[int, int] = {}
        # telemetry
        self.sampled_steps = 0
        self.decisions = 0
        self.explorations = 0
        self.bypass_decisions = 0
        # reward-family mix (Sec. IV-C): how training signal splits
        # between re-request rewards (R_AC/R_IN) and the OB/NOB
        # no-re-request rewards assigned at EQ eviction.
        self.rewards_accurate = 0
        self.rewards_inaccurate = 0
        self.rewards_nr_accurate = 0
        self.rewards_nr_inaccurate = 0
        self.rewards_nr_obstructed = 0

    # --- wiring -----------------------------------------------------------------

    def attach_sampled(self, num_units: int) -> None:
        """Choose the sampled training units (64-sampled-set scheme)."""
        sampled = sorted(
            choose_sampled_sets(num_units, self.config.sampled_sets)
        )
        self._sampled_queue = {s: i for i, s in enumerate(sampled)}
        if len(sampled) != self.eq.num_queues:
            self.eq = EvaluationQueue(len(sampled), self.config.eq_fifo_size)

    def bind_obstruction(self, monitor) -> None:
        """Receive the domain's obstruction monitor (OB/NOB flags)."""
        self._obstruction = monitor

    # --- the RL decision + training pipeline ------------------------------------

    def rl_decide(
        self,
        state: Tuple[int, ...],
        unit_idx: int,
        key: int,
        hit: bool,
        flag: bool,
        actor: int,
    ) -> int:
        """Lines 2-38 of Algorithm 1 for one step.

        ``state`` is the binding's extracted feature vector, ``unit_idx``
        the sampled-unit index (LLC set, store segment, bank), ``key``
        the re-request identity (block address, object key, row),
        ``flag`` the reward split bit (is_prefetch / is_refresh) and
        ``actor`` the core/tenant whose obstruction judges NR rewards.
        Bypass accounting stays in the bindings (the no-bypass ablation
        remaps the action before counting).
        """
        queue_idx = self._sampled_queue.get(unit_idx)

        if queue_idx is not None:
            hashed = hash_block_address(key)
            self.sampled_steps += 1
            # Lines 3-8: reward a matching earlier action.
            entry = self.eq.find(queue_idx, hashed)
            if entry is not None and entry.reward is None:
                self.eq.reward_matches += 1
                rewards = self._rewards
                if hit:
                    entry.reward = rewards.accurate(flag)
                    self.rewards_accurate += 1
                else:
                    entry.reward = rewards.inaccurate(flag)
                    self.rewards_inaccurate += 1

        # Lines 10-19: epsilon-greedy action selection over legal actions.
        legal = self._hit_actions if hit else self._miss_actions
        self.decisions += 1
        if self._rand() < self._epsilon:
            action = legal[self._rng.randrange(len(legal))]
            self.explorations += 1
        else:
            action = self.qtable.best_action(state, legal)

        # Lines 21-38: record the action on sampled units; learn on eviction.
        if queue_idx is not None:
            new_entry = EQEntry(
                state=state,
                action=action,
                trigger_hit=hit,
                hashed_addr=hashed,
                core=actor,
            )
            evicted, head = self.eq.insert(queue_idx, new_entry)
            if evicted is not None and head is not None:
                if not evicted.has_reward:
                    evicted.reward = self._no_rerequest_reward(evicted)
                self._sarsa_update(evicted, head)
        return action

    def _no_rerequest_reward(self, entry: EQEntry) -> float:
        """NR rewards (lines 24-34): praise actions that de-prioritized a
        block nobody asked for again, penalize actions that retained it;
        magnitudes scale with the acting core's obstruction."""
        rewards = self._rewards
        obstructed = (
            self._obstruction.is_obstructed(entry.core)
            if self._obstruction is not None
            else False
        )
        if obstructed:
            self.rewards_nr_obstructed += 1
        if entry.trigger_hit:
            deprioritized = entry.action == ACTION_EPV_HIGH
        else:
            deprioritized = entry.action == ACTION_BYPASS
        if deprioritized:
            self.rewards_nr_accurate += 1
            return rewards.accurate_no_rerequest(obstructed)
        self.rewards_nr_inaccurate += 1
        return rewards.inaccurate_no_rerequest(obstructed)

    def _sarsa_update(self, evicted: EQEntry, head: EQEntry) -> None:
        """Line 38: Q(S1,A1) += alpha [R + gamma Q(S2,A2) - Q(S1,A1)]."""
        cfg = self.config
        q_next = self.qtable.q(head.state, head.action)
        q_cur = self.qtable.q(evicted.state, evicted.action)
        assert evicted.reward is not None
        delta = cfg.alpha * (evicted.reward + cfg.gamma * q_next - q_cur)
        self.qtable.apply_delta(evicted.state, evicted.action, delta)

    # --- reporting ---------------------------------------------------------------

    def reward_mix(self) -> dict:
        """Cumulative reward-family counts (the obs timeline samples
        this each epoch; deltas between epochs give the per-epoch mix)."""
        return {
            "accurate": self.rewards_accurate,
            "inaccurate": self.rewards_inaccurate,
            "nr_accurate": self.rewards_nr_accurate,
            "nr_inaccurate": self.rewards_nr_inaccurate,
            "nr_obstructed": self.rewards_nr_obstructed,
        }

    def core_telemetry(self) -> dict:
        """The binding-independent slice of the telemetry counters."""
        return {
            "decisions": self.decisions,
            "explorations": self.explorations,
            "bypass_decisions": self.bypass_decisions,
            "q_updates": self.qtable.updates,
            "eq_reward_matches": self.eq.reward_matches,
            **{f"reward_{k}": v for k, v in self.reward_mix().items()},
            **self.qtable.snapshot_stats(),
        }


def restore_agent_state(
    agent: AgentCore, state: dict, kind: str, *, keep_rng: bool = False
) -> None:
    """Load a persistence snapshot into a live agent, ops-style.

    ``keep_rng=False`` (rollback) restores the snapshot completely —
    Q-table, counters and exploration RNG.  ``keep_rng=True``
    (promotion / injection / federation) swaps only the Q-table
    values: the live agent keeps its own RNG stream and lookup/update
    counters, so a mid-run swap never replays another agent's
    exploration randomness.  This is the single implementation of the
    discipline every domain's ``load_agent_states`` follows.
    """
    from ..core.persistence import load_agent_state

    if keep_rng:
        qtable = dict(state["qtable"])
        qtable["lookups"] = agent.qtable.lookups
        qtable["updates"] = agent.qtable.updates
        state = dict(state)
        state["qtable"] = qtable
        state["rng_state"] = None
    load_agent_state(agent, state, kind)


def run_steps(agent: AgentCore, environment, max_steps: Optional[int] = None):
    """Generic run loop: drive ``agent`` through an environment's steps.

    ``environment`` yields :class:`~repro.env.protocol.Observation`
    steps via ``steps()`` and applies actions via
    ``apply(obs, action)``; the loop owns the agent side (feature
    extraction via ``environment.extract(obs)``, the EQ/SARSA cadence
    inside :meth:`AgentCore.rl_decide`).  This is the convenience path
    for new low-rate domains — the LLC/serve bindings inline the same
    sequence for speed.
    """
    steps = 0
    for obs in environment.steps():
        if max_steps is not None and steps >= max_steps:
            break
        state = environment.extract(obs)
        action = agent.rl_decide(
            state, obs.unit, obs.key, obs.hit, obs.flag, obs.actor
        )
        environment.apply(obs, action)
        steps += 1
    return steps
