"""The ``Environment`` protocol: one contract for every CHROME domain.

The repo grows by domain — the LLC hierarchy (``sim/``), the object
cache (``serve/``), the sharded fleet (``cluster/``), and whatever
lands next (Cold-RL's NGINX setting, Phoebe's storage model).  Each
domain drives the *same* RL core (:class:`~repro.env.driver.AgentCore`)
and differs only in its bindings; this module freezes what a domain
must provide so that a new domain is one adapter file, not a
subsystem:

* :class:`Observation` — the frozen per-step record: the sampled-unit
  index, the re-request key, the acting core/tenant, the hit/miss
  outcome, and the reward-split flag (``is_prefetch``/``is_refresh``).
  Hot bindings pass these as positional scalars instead (see the
  perf note in :mod:`repro.env.driver`); the dataclass is the
  reference form and the one the generic driver consumes.
* :class:`Environment` — the run-level contract: ``run()`` executes
  the whole domain loop and returns a picklable metrics mapping that
  is a pure function of the construction spec (run-twice equality is
  the conformance test's first claim), and ``agent_states()`` /
  ``load_agent_states()`` expose the version-tagged snapshot seam the
  ops layer (shadowing, rollback, warm starts) already speaks.

The action surface is shared by construction: every domain picks from
the same four actions (``ACTION_BYPASS`` + three insert/set-EPV
levels), with ``MISS_ACTIONS``/``HIT_ACTIONS`` defining legality —
that is what lets one Q-table geometry, one EQ, and one persistence
format serve every adapter.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class Observation:
    """One step as the agent sees it, before feature extraction.

    ``unit`` indexes the sampled-unit population (LLC set, store
    segment, DRAM bank), ``key`` is the re-request identity within it
    (block address, object key, row id), ``actor`` the core/tenant the
    obstruction monitor judges, ``hit`` the domain-resolved outcome of
    this step, and ``flag`` the reward-split bit (``is_prefetch`` for
    the LLC, ``is_refresh`` for serve, domain-defined elsewhere).
    ``size`` and ``pc`` carry the optional feature inputs domains that
    have them (serve sizes, LLC program counters) hand their extractor.
    """

    key: int
    unit: int
    actor: int = 0
    hit: bool = False
    flag: bool = False
    size: int = 0
    pc: int = 0


class Environment(ABC):
    """A runnable CHROME domain: spec in, metrics + agent snapshots out.

    Implementations are *one-shot*: construct from a frozen spec, call
    :meth:`run` once, read the results.  Determinism is part of the
    contract — two instances built from the same spec must produce
    equal :meth:`run` results and equal :meth:`agent_states`, on either
    Q-table backend (the conformance suite pins both claims for every
    registered adapter).
    """

    #: registry id ("sim", "serve", "cluster", "toy", ...)
    name: str = "env"
    #: persistence kind tag of this domain's agent snapshots
    snapshot_kind: str = "chrome-agent"

    @abstractmethod
    def run(self) -> Dict[str, object]:
        """Execute the domain loop; return a picklable metrics mapping."""

    @abstractmethod
    def agent_states(self) -> List[dict]:
        """Version-tagged JSON-safe snapshots of every live agent."""

    @abstractmethod
    def load_agent_states(
        self, states: List[dict], *, keep_rng: bool = False
    ) -> None:
        """Restore snapshots produced by :meth:`agent_states`.

        ``keep_rng`` preserves each agent's live exploration RNG (the
        ops rollback discipline: restored *learned* state must not
        rewind the exploration stream).
        """
