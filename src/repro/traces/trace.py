"""Memory-access trace primitives.

The simulator is trace-driven: a *trace* is a finite iterable of
:class:`MemoryAccess` records, each describing one memory instruction
(its program counter, the byte address it touches, whether it is a
store, and how many non-memory instructions preceded it since the last
memory instruction).  This mirrors the information content of a
ChampSim/DPC-3 trace record, which is what the paper's evaluation
consumes.

Delivery model: the run loop consumes traces through
:meth:`Trace.iter_chunks`, which yields pre-materialized lists of
records so the per-record cost is a plain list index instead of a
generator resumption.  ``with_address_offset`` and ``truncated`` are
*views* — composing them folds the offset/limit into one transform
layer instead of stacking generator wrappers, so a truncated, offset
copy of a trace still pays only one pass over the base records.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

#: records per chunk handed to the run loop; large enough to amortize
#: the per-chunk call, small enough to stay cache- and memory-friendly
CHUNK_SIZE = 4096


@dataclass(frozen=True, slots=True)
class MemoryAccess:
    """A single memory instruction in a trace.

    Attributes:
        pc: program counter of the memory instruction (byte address).
        address: virtual/physical byte address touched (we model a flat
            physical address space; multi-programmed mixes disambiguate
            cores by giving each core a distinct address-space offset).
        is_write: True for stores, False for loads.
        gap: number of non-memory instructions executed since the
            previous memory instruction (used by the core timing model).
    """

    pc: int
    address: int
    is_write: bool = False
    gap: int = 0


@dataclass
class Trace:
    """A named, finite sequence of memory accesses.

    Traces come in three flavours:

    * **materialized** (``records``) — all records in memory;
    * **factory-backed** (``factory``) — produced lazily from a
      generator factory, which keeps very long benchmark traces out of
      memory; iterating always restarts from the beginning, so a single
      Trace can be replayed for every policy under comparison;
    * **views** (``base`` + ``address_offset``/``limit``) — a
      lazily-applied address shift and/or truncation of another trace.
      Views compose flat: offsetting or truncating a view produces a
      new single-layer view over the original base, never a stack of
      generator wrappers.
    """

    name: str
    records: Sequence[MemoryAccess] | None = None
    factory: Callable[[], Iterator[MemoryAccess]] | None = None
    metadata: dict = field(default_factory=dict)
    #: view parameters — when ``base`` is set, this trace is ``base``
    #: with every address shifted by ``address_offset``, truncated to
    #: the first ``limit`` records (``None`` = unlimited).
    base: Optional["Trace"] = None
    address_offset: int = 0
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        sources = sum(
            1 for source in (self.records, self.factory, self.base) if source is not None
        )
        if sources != 1:
            raise ValueError("exactly one of records/factory/base must be given")

    # --- iteration ---------------------------------------------------------

    def __iter__(self) -> Iterator[MemoryAccess]:
        if self.records is not None:
            return iter(self.records)
        if self.base is not None:
            return self._view_iter()
        assert self.factory is not None
        return self.factory()

    def _view_iter(self) -> Iterator[MemoryAccess]:
        """One generator applying the whole offset+limit transform."""
        offset = self.address_offset
        source: Iterable[MemoryAccess] = self.base  # type: ignore[assignment]
        if self.limit is not None:
            source = itertools.islice(iter(source), self.limit)
        if offset == 0:
            yield from source
        else:
            for rec in source:
                yield MemoryAccess(rec.pc, rec.address + offset, rec.is_write, rec.gap)

    def iter_chunks(self, chunk_size: int = CHUNK_SIZE) -> Iterator[Sequence[MemoryAccess]]:
        """Yield the trace as pre-materialized record chunks.

        The run loop iterates these lists directly, which removes a
        generator resumption (and, for views, a wrapper frame) from the
        per-record hot path.  Chunks must not be mutated; the last one
        may be shorter than ``chunk_size``.
        """
        if self.records is not None:
            records = self.records
            for start in range(0, len(records), chunk_size):
                yield records[start : start + chunk_size]
        elif self.base is not None:
            offset = self.address_offset
            remaining = self.limit
            for chunk in self.base.iter_chunks(chunk_size):
                if remaining is not None:
                    if remaining <= 0:
                        return
                    if len(chunk) > remaining:
                        chunk = chunk[:remaining]
                    remaining -= len(chunk)
                if offset:
                    chunk = [
                        MemoryAccess(r.pc, r.address + offset, r.is_write, r.gap)
                        for r in chunk
                    ]
                yield chunk
        else:
            assert self.factory is not None
            source = self.factory()
            while True:
                chunk = list(itertools.islice(source, chunk_size))
                if not chunk:
                    return
                yield chunk

    # --- materialization / sizing -----------------------------------------

    def materialize(self) -> "Trace":
        """Return an equivalent trace with all records in memory."""
        if self.records is not None:
            return self
        return Trace(name=self.name, records=list(self), metadata=dict(self.metadata))

    def __len__(self) -> int:
        if self.records is not None:
            return len(self.records)
        if self.base is not None:
            try:
                base_len = len(self.base)
            except TypeError:
                pass
            else:
                return base_len if self.limit is None else min(base_len, self.limit)
        raise TypeError(
            f"trace {self.name!r} is lazily generated; materialize() it "
            "before asking for its length"
        )

    # --- derived traces -----------------------------------------------------

    def with_address_offset(self, offset: int) -> "Trace":
        """Return a copy whose addresses live in a shifted address space.

        Multi-programmed homogeneous mixes run *identical copies* of a
        trace on every core; offsetting the address space per core
        reproduces ChampSim's behaviour where each core has a private
        address space and copies do not alias in the shared LLC.
        """
        name = f"{self.name}@+{offset:#x}"
        if self.base is not None:
            return Trace(
                name=name,
                base=self.base,
                address_offset=self.address_offset + offset,
                limit=self.limit,
                metadata=dict(self.metadata),
            )
        return Trace(
            name=name,
            base=self,
            address_offset=offset,
            metadata=dict(self.metadata),
        )

    def truncated(self, max_records: int) -> "Trace":
        """Return a copy that yields at most ``max_records`` accesses."""
        if self.records is not None:
            # Materialized: slice directly (keeps __len__ and random access).
            return Trace(
                name=self.name,
                records=self.records[:max_records],
                metadata=dict(self.metadata),
            )
        if self.base is not None:
            limit = (
                max_records if self.limit is None else min(self.limit, max_records)
            )
            return Trace(
                name=self.name,
                base=self.base,
                address_offset=self.address_offset,
                limit=limit,
                metadata=dict(self.metadata),
            )
        return Trace(
            name=self.name,
            base=self,
            limit=max_records,
            metadata=dict(self.metadata),
        )


def from_tuples(
    name: str, tuples: Iterable[tuple], default_gap: int = 0
) -> Trace:
    """Build a materialized trace from (pc, address[, is_write[, gap]]) tuples."""
    records: List[MemoryAccess] = []
    for t in tuples:
        pc, address = t[0], t[1]
        is_write = bool(t[2]) if len(t) > 2 else False
        gap = int(t[3]) if len(t) > 3 else default_gap
        records.append(MemoryAccess(pc, address, is_write, gap))
    return Trace(name=name, records=records)
