"""Memory-access trace primitives.

The simulator is trace-driven: a *trace* is a finite iterable of
:class:`MemoryAccess` records, each describing one memory instruction
(its program counter, the byte address it touches, whether it is a
store, and how many non-memory instructions preceded it since the last
memory instruction).  This mirrors the information content of a
ChampSim/DPC-3 trace record, which is what the paper's evaluation
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Sequence


@dataclass(frozen=True, slots=True)
class MemoryAccess:
    """A single memory instruction in a trace.

    Attributes:
        pc: program counter of the memory instruction (byte address).
        address: virtual/physical byte address touched (we model a flat
            physical address space; multi-programmed mixes disambiguate
            cores by giving each core a distinct address-space offset).
        is_write: True for stores, False for loads.
        gap: number of non-memory instructions executed since the
            previous memory instruction (used by the core timing model).
    """

    pc: int
    address: int
    is_write: bool = False
    gap: int = 0


@dataclass
class Trace:
    """A named, finite sequence of memory accesses.

    Traces can either be fully materialized (``records``) or produced
    lazily from a generator factory (``factory``), which keeps very
    long benchmark traces out of memory.  Iterating a factory-backed
    trace always restarts it from the beginning, so a single Trace can
    be replayed for every policy under comparison.
    """

    name: str
    records: Sequence[MemoryAccess] | None = None
    factory: Callable[[], Iterator[MemoryAccess]] | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if (self.records is None) == (self.factory is None):
            raise ValueError("exactly one of records/factory must be given")

    def __iter__(self) -> Iterator[MemoryAccess]:
        if self.records is not None:
            return iter(self.records)
        assert self.factory is not None
        return self.factory()

    def materialize(self) -> "Trace":
        """Return an equivalent trace with all records in memory."""
        if self.records is not None:
            return self
        return Trace(name=self.name, records=list(self), metadata=dict(self.metadata))

    def __len__(self) -> int:
        if self.records is None:
            raise TypeError(
                f"trace {self.name!r} is lazily generated; materialize() it "
                "before asking for its length"
            )
        return len(self.records)

    def with_address_offset(self, offset: int) -> "Trace":
        """Return a copy whose addresses live in a shifted address space.

        Multi-programmed homogeneous mixes run *identical copies* of a
        trace on every core; offsetting the address space per core
        reproduces ChampSim's behaviour where each core has a private
        address space and copies do not alias in the shared LLC.
        """
        base = self

        def shifted() -> Iterator[MemoryAccess]:
            for rec in base:
                yield MemoryAccess(rec.pc, rec.address + offset, rec.is_write, rec.gap)

        return Trace(
            name=f"{self.name}@+{offset:#x}",
            factory=shifted,
            metadata=dict(self.metadata),
        )

    def truncated(self, max_records: int) -> "Trace":
        """Return a copy that yields at most ``max_records`` accesses."""
        base = self

        def limited() -> Iterator[MemoryAccess]:
            for i, rec in enumerate(base):
                if i >= max_records:
                    return
                yield rec

        return Trace(
            name=self.name,
            factory=limited,
            metadata=dict(self.metadata),
        )


def from_tuples(
    name: str, tuples: Iterable[tuple], default_gap: int = 0
) -> Trace:
    """Build a materialized trace from (pc, address[, is_write[, gap]]) tuples."""
    records: List[MemoryAccess] = []
    for t in tuples:
        pc, address = t[0], t[1]
        is_write = bool(t[2]) if len(t) > 2 else False
        gap = int(t[3]) if len(t) > 3 else default_gap
        records.append(MemoryAccess(pc, address, is_write, gap))
    return Trace(name=name, records=records)
