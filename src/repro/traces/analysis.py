"""Trace characterization utilities.

Answers the questions one asks before pointing a cache policy at a
workload: how big is its footprint, how are reuse distances
distributed, how sequential is it, how write-heavy, how memory-intense?
The same statistics the paper uses to select "memory-intensive" traces
(LLC MPKI > 1, Sec. VI) and that DESIGN.md's workload parameterization
is based on.

All functions accept any iterable of
:class:`~repro.traces.trace.MemoryAccess` (a Trace works directly).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..sim.address import BLOCK_SIZE
from .trace import MemoryAccess


@dataclass
class TraceProfile:
    """Summary statistics for one trace."""

    accesses: int
    instructions: int
    footprint_blocks: int
    write_fraction: float
    sequential_fraction: float
    distinct_pcs: int
    reuse_distance_histogram: Dict[int, int]  # log2 bucket -> count
    cold_fraction: float  # accesses with no prior touch of the block

    @property
    def footprint_bytes(self) -> int:
        return self.footprint_blocks * BLOCK_SIZE

    @property
    def accesses_per_kilo_instruction(self) -> float:
        """Memory intensity: every one of these that misses is MPKI."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.accesses / self.instructions

    def reuse_distance_cdf(self) -> List[Tuple[int, float]]:
        """(distance upper bound, cumulative fraction) per log2 bucket."""
        total = sum(self.reuse_distance_histogram.values())
        if not total:
            return []
        out = []
        acc = 0
        for bucket in sorted(self.reuse_distance_histogram):
            acc += self.reuse_distance_histogram[bucket]
            out.append((1 << bucket, acc / total))
        return out

    def estimated_hit_ratio(self, cache_blocks: int) -> float:
        """Stack-distance hit-ratio estimate for a fully-associative
        LRU cache of ``cache_blocks`` lines (the classical Mattson
        result: an access hits iff its reuse distance < capacity)."""
        total = self.accesses
        if not total:
            return 0.0
        hits = 0
        for bucket, count in self.reuse_distance_histogram.items():
            # bucket stores floor(log2(distance)); treat the bucket's
            # upper bound conservatively.
            if (1 << (bucket + 1)) - 1 < cache_blocks:
                hits += count
        return hits / total


def _log2_bucket(value: int) -> int:
    return value.bit_length() - 1 if value > 0 else 0


def profile_trace(
    records: Iterable[MemoryAccess], max_records: Optional[int] = None
) -> TraceProfile:
    """Single-pass characterization of a trace.

    Reuse distances are *stack distances* over blocks (number of
    distinct blocks touched between consecutive uses), computed exactly
    with an ordered-map LRU stack; O(n log n) overall via lazy rank
    recomputation on an epoch schedule.
    """
    # LRU stack via an access-order list with tombstones: the stack
    # distance of a re-access is the number of live entries above the
    # block's previous position.  Tombstones are compacted when they
    # dominate, keeping the scan cost amortized-bounded.
    touch_order: List[int] = []  # sequence of block ids (compacted lazily)
    live_positions: Dict[int, int] = {}  # block -> index in touch_order

    histogram: Dict[int, int] = {}
    accesses = 0
    instructions = 0
    writes = 0
    sequential = 0
    cold = 0
    pcs = set()
    prev_block: Optional[int] = None

    for record in records:
        if max_records is not None and accesses >= max_records:
            break
        block = record.address >> 6
        accesses += 1
        instructions += record.gap + 1
        if record.is_write:
            writes += 1
        pcs.add(record.pc)
        if prev_block is not None and block == prev_block + 1:
            sequential += 1
        prev_block = block

        position = live_positions.get(block)
        if position is None:
            cold += 1
        else:
            # stack distance = number of live entries after `position`
            distance = 0
            for other in touch_order[position + 1 :]:
                if other >= 0:
                    distance += 1
            bucket = _log2_bucket(max(distance, 1))
            histogram[bucket] = histogram.get(bucket, 0) + 1
            touch_order[position] = -1  # tombstone
        live_positions[block] = len(touch_order)
        touch_order.append(block)

        # Compact tombstones when they dominate (amortized O(1)).
        if len(touch_order) > 4 * max(1, len(live_positions)):
            compacted = []
            for b in touch_order:
                if b >= 0 and live_positions.get(b) is not None:
                    live_positions[b] = len(compacted)
                    compacted.append(b)
            touch_order = compacted

    return TraceProfile(
        accesses=accesses,
        instructions=instructions,
        footprint_blocks=len(live_positions),
        write_fraction=writes / accesses if accesses else 0.0,
        sequential_fraction=sequential / accesses if accesses else 0.0,
        distinct_pcs=len(pcs),
        reuse_distance_histogram=histogram,
        cold_fraction=cold / accesses if accesses else 0.0,
    )


def compare_profiles(
    profiles: Dict[str, TraceProfile], cache_blocks: int
) -> List[Tuple[str, float, float]]:
    """Rank workloads by estimated LRU hit ratio at a given capacity.

    Returns (name, estimated hit ratio, accesses-per-kilo-instruction)
    sorted most-cacheable first — a quick way to predict which suite
    members reward retention vs. bypassing.
    """
    rows = [
        (name, p.estimated_hit_ratio(cache_blocks), p.accesses_per_kilo_instruction)
        for name, p in profiles.items()
    ]
    rows.sort(key=lambda r: -r[1])
    return rows
