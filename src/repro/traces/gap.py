"""GAP benchmark suite workloads (Table VI): real graph kernels on
synthetic graphs.

The paper evaluates Betweenness Centrality (bc), Breadth-First Search
(bfs), Connected Components (cc), PageRank (pr), and Single-Source
Shortest Paths (sssp) on the orkut, twitter, and urand datasets.  The
datasets are multi-GB downloads, so we substitute synthetic graphs with
matching *degree structure* (orkut/twitter: power-law with different
skew; urand: uniform random) and run the **actual kernels** over a CSR
layout, recording the true address stream of the offsets / neighbors /
property arrays.  The resulting traces exhibit GAP's signature memory
behaviour: sequential offset walks, bursty neighbor-array streams, and
scattered property-array accesses — precisely the irregular pattern the
paper uses these suites to stress (and which CHROME never saw during
hyper-parameter tuning; Sec. VII-D).
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Iterator, List, Tuple

import numpy as np

from .synthetic import make_trace
from .trace import MemoryAccess, Trace

# Array base addresses (disjoint 1 GB regions).
OFFSETS_BASE = 0x40_0000_0000
NEIGHBORS_BASE = 0x80_0000_0000
PROP_BASE = 0xC0_0000_0000
PROP2_BASE = 0x100_0000_0000
WEIGHTS_BASE = 0x140_0000_0000

ELEM = 8  # bytes per array element

# Fake PCs for the kernels' access sites.
PC_OFFSETS = 0x500000
PC_NEIGHBORS = 0x500010
PC_PROP_READ = 0x500020
PC_PROP_WRITE = 0x500030
PC_PROP2 = 0x500040
PC_WEIGHTS = 0x500050

DATASETS = ("or", "tw", "ur")
KERNELS = ("bc", "bfs", "cc", "pr", "sssp")

GAP_TRACES: Tuple[str, ...] = tuple(
    f"{kernel}-{dataset}" for kernel in KERNELS for dataset in DATASETS
)

#: vertex count at full machine scale (12 MB LLC); shrinks with ``scale``.
#: Sized so the per-core property arrays land between the private L2 and
#: the per-core LLC share — the regime where LLC retention decisions
#: matter for graph kernels (neighbor arrays always stream).
FULL_SCALE_VERTICES = 262_144
DEFAULT_VERTICES = 8192
DEFAULT_AVG_DEGREE = 12


@lru_cache(maxsize=16)
def build_graph(
    dataset: str,
    num_vertices: int = DEFAULT_VERTICES,
    avg_degree: int = DEFAULT_AVG_DEGREE,
    seed: int = 1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Build a CSR graph (offsets, neighbors) for a named dataset style.

    * ``or`` (orkut-like): power-law degree, moderate skew;
    * ``tw`` (twitter-like): power-law, heavy skew (celebrity hubs);
    * ``ur`` (urand): uniform random endpoints.
    """
    if dataset not in DATASETS:
        raise KeyError(f"unknown dataset {dataset!r}; choose from {DATASETS}")
    rng = np.random.default_rng(seed + hash(dataset) % 1000)
    num_edges = num_vertices * avg_degree
    if dataset == "ur":
        src = rng.integers(0, num_vertices, num_edges)
        dst = rng.integers(0, num_vertices, num_edges)
    else:
        skew = 1.6 if dataset == "tw" else 2.0
        # Power-law endpoint popularity via Zipf over a random vertex rank.
        perm = rng.permutation(num_vertices)

        def zipf_vertices(n: int) -> np.ndarray:
            raw = rng.zipf(skew, n)
            return perm[np.minimum(raw - 1, num_vertices - 1)]

        src = zipf_vertices(num_edges)
        dst = zipf_vertices(num_edges)
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    offsets = np.zeros(num_vertices + 1, dtype=np.int64)
    np.add.at(offsets, src + 1, 1)
    np.cumsum(offsets, out=offsets)
    return offsets, dst.astype(np.int64)


def _acc(pc: int, base: int, index: int, write: bool = False, gap: int = 2) -> MemoryAccess:
    return MemoryAccess(pc, base + index * ELEM, write, gap)


def _edge_accesses(
    offsets: np.ndarray, neighbors: np.ndarray, u: int
) -> Iterator[Tuple[int, MemoryAccess]]:
    """Yield (neighbor, access) pairs for scanning vertex u's edge list."""
    start, end = int(offsets[u]), int(offsets[u + 1])
    for i in range(start, end):
        v = int(neighbors[i])
        yield v, _acc(PC_NEIGHBORS, NEIGHBORS_BASE, i)


# --- kernels (each an infinite generator: the algorithm restarts forever) ---


def bfs_kernel(
    offsets: np.ndarray, neighbors: np.ndarray, seed: int = 0
) -> Iterator[MemoryAccess]:
    """Breadth-first search from random sources, top-down."""
    rng = random.Random(seed)
    n = len(offsets) - 1
    while True:
        parent = [-1] * n
        source = rng.randrange(n)
        parent[source] = source
        frontier: List[int] = [source]
        while frontier:
            next_frontier: List[int] = []
            for u in frontier:
                yield _acc(PC_OFFSETS, OFFSETS_BASE, u)
                for v, access in _edge_accesses(offsets, neighbors, u):
                    yield access
                    yield _acc(PC_PROP_READ, PROP_BASE, v)
                    if parent[v] < 0:
                        parent[v] = u
                        yield _acc(PC_PROP_WRITE, PROP_BASE, v, write=True)
                        next_frontier.append(v)
            frontier = next_frontier


def pr_kernel(
    offsets: np.ndarray, neighbors: np.ndarray, seed: int = 0
) -> Iterator[MemoryAccess]:
    """PageRank power iterations (pull direction)."""
    n = len(offsets) - 1
    while True:
        for u in range(n):
            yield _acc(PC_OFFSETS, OFFSETS_BASE, u)
            for v, access in _edge_accesses(offsets, neighbors, u):
                yield access
                yield _acc(PC_PROP_READ, PROP_BASE, v)
            yield _acc(PC_PROP2, PROP2_BASE, u, write=True)


def cc_kernel(
    offsets: np.ndarray, neighbors: np.ndarray, seed: int = 0
) -> Iterator[MemoryAccess]:
    """Connected components by label propagation."""
    n = len(offsets) - 1
    while True:
        labels = list(range(n))
        changed = True
        rounds = 0
        while changed and rounds < 32:
            changed = False
            rounds += 1
            for u in range(n):
                yield _acc(PC_OFFSETS, OFFSETS_BASE, u)
                yield _acc(PC_PROP_READ, PROP_BASE, u)
                best = labels[u]
                for v, access in _edge_accesses(offsets, neighbors, u):
                    yield access
                    yield _acc(PC_PROP_READ, PROP_BASE, v)
                    if labels[v] < best:
                        best = labels[v]
                if best < labels[u]:
                    labels[u] = best
                    changed = True
                    yield _acc(PC_PROP_WRITE, PROP_BASE, u, write=True)


def sssp_kernel(
    offsets: np.ndarray, neighbors: np.ndarray, seed: int = 0
) -> Iterator[MemoryAccess]:
    """Single-source shortest paths: frontier-based Bellman-Ford."""
    rng = random.Random(seed)
    n = len(offsets) - 1
    inf = float("inf")
    while True:
        dist = [inf] * n
        source = rng.randrange(n)
        dist[source] = 0.0
        frontier: List[int] = [source]
        rounds = 0
        while frontier and rounds < 64:
            rounds += 1
            next_frontier: List[int] = []
            for u in frontier:
                yield _acc(PC_OFFSETS, OFFSETS_BASE, u)
                base_dist = dist[u]
                start = int(offsets[u])
                for k, (v, access) in enumerate(_edge_accesses(offsets, neighbors, u)):
                    yield access
                    yield _acc(PC_WEIGHTS, WEIGHTS_BASE, start + k)
                    yield _acc(PC_PROP_READ, PROP_BASE, v)
                    weight = 1.0 + ((u * 2654435761 + v) & 7)
                    if base_dist + weight < dist[v]:
                        dist[v] = base_dist + weight
                        yield _acc(PC_PROP_WRITE, PROP_BASE, v, write=True)
                        next_frontier.append(v)
            frontier = next_frontier


def bc_kernel(
    offsets: np.ndarray, neighbors: np.ndarray, seed: int = 0
) -> Iterator[MemoryAccess]:
    """Betweenness centrality: BFS forward pass + dependency back-sweep."""
    rng = random.Random(seed)
    n = len(offsets) - 1
    while True:
        depth = [-1] * n
        source = rng.randrange(n)
        depth[source] = 0
        order: List[int] = [source]
        frontier = [source]
        while frontier:
            next_frontier: List[int] = []
            for u in frontier:
                yield _acc(PC_OFFSETS, OFFSETS_BASE, u)
                for v, access in _edge_accesses(offsets, neighbors, u):
                    yield access
                    yield _acc(PC_PROP_READ, PROP_BASE, v)
                    if depth[v] < 0:
                        depth[v] = depth[u] + 1
                        yield _acc(PC_PROP_WRITE, PROP_BASE, v, write=True)
                        next_frontier.append(v)
                        order.append(v)
            frontier = next_frontier
        # Reverse sweep: accumulate dependencies toward the source.
        for u in reversed(order):
            yield _acc(PC_OFFSETS, OFFSETS_BASE, u)
            for v, access in _edge_accesses(offsets, neighbors, u):
                yield access
                yield _acc(PC_PROP2, PROP2_BASE, v)
            yield _acc(PC_PROP2, PROP2_BASE, u, write=True)


_KERNEL_FNS = {
    "bfs": bfs_kernel,
    "pr": pr_kernel,
    "cc": cc_kernel,
    "sssp": sssp_kernel,
    "bc": bc_kernel,
}


def build_gap_trace(
    name: str,
    num_accesses: int,
    seed: int = 0,
    num_vertices: int | None = None,
    avg_degree: int = DEFAULT_AVG_DEGREE,
    scale: float = 1.0,
) -> Trace:
    """Build a finite GAP trace, e.g. ``bfs-ur`` or ``pr-tw``.

    ``scale`` sizes the graph relative to the paper's full machine
    (``FULL_SCALE_VERTICES`` vertices at scale 1.0); an explicit
    ``num_vertices`` overrides it.
    """
    try:
        kernel_name, dataset = name.split("-")
        kernel = _KERNEL_FNS[kernel_name]
    except (ValueError, KeyError):
        raise KeyError(
            f"unknown GAP trace {name!r}; available: {GAP_TRACES}"
        ) from None
    if num_vertices is None:
        num_vertices = max(1024, int(FULL_SCALE_VERTICES * scale))
    offsets, neighbors = build_graph(dataset, num_vertices, avg_degree)
    return make_trace(
        name,
        lambda: kernel(offsets, neighbors, seed=seed),
        num_accesses,
        metadata={"suite": "gap", "kernel": kernel_name, "dataset": dataset},
    )
