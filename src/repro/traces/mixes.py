"""Multi-programmed workload-mix construction (Sec. VI).

* **homogeneous** mixes run n identical copies of one trace, one per
  core, each in a private address space (so copies do not alias in the
  shared LLC — matching ChampSim's multi-programmed mode);
* **heterogeneous** mixes run a different randomly chosen trace per
  core.  The paper uses 150 4-core, 25 8-core, and 25 16-core mixes.

Beyond the paper's random mixes, this module ships the **Kill-Llama
mix ladder** (zhian66/Kill-Llama, ``benchmark/Benchmark.md``): seven
named 4-core mixes — mix1 through mix7 — whose aggregate LLC MPKI
increases monotonically up the ladder, built from SPEC/GAP workloads
plus the four STREAM bandwidth kernels (add/copy/scale/triad).  The
original apps that our synthetic registry does not model are
substituted by registry workloads with the same published memory
character (see :data:`KILL_LLAMA_APP_MAP`); the monotone-MPKI contract
is enforced by ``tests/test_mixes.py`` under the tiny sim config.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Sequence, Tuple

from .gap import build_gap_trace
from .spec import ALL_SPEC_WORKLOADS, build_spec_trace
from .synthetic import make_trace, stream_kernel
from .trace import Trace

#: distance between per-core address spaces (1 TB)
ADDRESS_SPACE_STRIDE = 1 << 40

TraceBuilder = Callable[[str, int, int, float], Trace]  # (name, accesses, seed, scale)


def _default_builder(name: str, num_accesses: int, seed: int, scale: float) -> Trace:
    """Resolve a workload name against the SPEC, STREAM, then GAP registries.

    ``scale`` shrinks working sets / graph sizes in lock-step with the
    simulated machine (see :class:`repro.sim.SystemConfig`).
    """
    if name in ALL_SPEC_WORKLOADS:
        return build_spec_trace(name, num_accesses, seed=seed, scale=scale)
    if name in STREAM_KERNELS:
        return build_stream_trace(name, num_accesses, seed=seed, scale=scale)
    return build_gap_trace(name, num_accesses, seed=seed, scale=scale)


# --- STREAM bandwidth kernels -------------------------------------------------

#: kernel name -> array shape + per-element instruction gap.  Accesses
#: are block-granular (the vectorized kernels touch each 64 B line
#: once); the gap tuples are the calibration knob — per-kernel
#: instruction mixes chosen so the synthetic suite reproduces the
#: published Kill-Llama property that the mix ladder's MPKI rises
#: monotonically (see :data:`KILL_LLAMA_MIXES`).
STREAM_KERNELS: Dict[str, dict] = {
    "stream_copy": dict(num_reads=1, num_writes=1, elem_bytes=64, gap=(3, 7)),
    "stream_scale": dict(num_reads=1, num_writes=1, elem_bytes=64, gap=(7, 15)),
    "stream_add": dict(num_reads=2, num_writes=1, elem_bytes=64, gap=(10, 20)),
    "stream_triad": dict(num_reads=2, num_writes=1, elem_bytes=64, gap=(5, 11)),
}

STREAM_TRACES: Tuple[str, ...] = tuple(STREAM_KERNELS)

#: STREAM arrays sized against the full machine like SPEC working sets
_STREAM_FULL_SCALE_WRAP_BLOCKS = 4 << 20


def build_stream_trace(
    name: str, num_accesses: int, seed: int = 0, scale: float = 1.0
) -> Trace:
    """Build a finite trace for one STREAM kernel (e.g. ``stream_triad``)."""
    try:
        params = STREAM_KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown STREAM kernel {name!r}; available: {sorted(STREAM_KERNELS)}"
        ) from None
    wrap_blocks = max(1 << 12, int(_STREAM_FULL_SCALE_WRAP_BLOCKS * scale))
    return make_trace(
        name,
        lambda: stream_kernel(
            0, 0x2000_0000, wrap_blocks=wrap_blocks, seed=seed, **params
        ),
        num_accesses,
        metadata={"suite": "stream", "kernel": name, "seed": seed},
    )


def homogeneous_mix(
    name: str,
    num_cores: int,
    num_accesses: int,
    seed: int = 0,
    scale: float = 1.0,
    builder: TraceBuilder = _default_builder,
) -> List[Trace]:
    """n identical copies of one workload, address-space separated."""
    base_trace = builder(name, num_accesses, seed, scale)
    return [
        base_trace.with_address_offset((core + 1) * ADDRESS_SPACE_STRIDE)
        for core in range(num_cores)
    ]


def heterogeneous_mix(
    names: Sequence[str],
    num_accesses: int,
    seed: int = 0,
    scale: float = 1.0,
    builder: TraceBuilder = _default_builder,
) -> List[Trace]:
    """One (possibly distinct) workload per core."""
    return [
        builder(name, num_accesses, seed + core, scale).with_address_offset(
            (core + 1) * ADDRESS_SPACE_STRIDE
        )
        for core, name in enumerate(names)
    ]


# --- the Kill-Llama mix ladder ------------------------------------------------

#: Kill-Llama app -> registry workload standing in for it.  Apps our
#: synthetic SPEC registry models directly map onto their counterparts
#: (mcf/lbm/omnetpp); the rest are substitutes calibrated — like the
#: STREAM gaps above — so the seven mixes reproduce the published
#: monotone-MPKI ladder: imagick/leela on the registry's cache-friendly
#: compute apps, deepsjeng on a pointer-heavy integer app, and the GAP
#: kernels on the road/twitter datasets.
KILL_LLAMA_APP_MAP: Dict[str, str] = {
    "imagick": "hmmer06",
    "leela": "gromacs06",
    "deepsjeng": "xalancbmk06",
    "omnetpp": "omnetpp17",
    "mcf": "mcf17",
    "lbm": "lbm17",
    "sssp": "sssp-or",
    "bfs": "bfs-tw",
    "stream_add": "stream_add",
    "stream_copy": "stream_copy",
    "stream_scale": "stream_scale",
    "stream_triad": "stream_triad",
}

#: the published 4-core compositions (zhian66/Kill-Llama,
#: benchmark/Benchmark.md), in original app names; MPKI increases from
#: mix1 to mix7 (enforced by tests/test_mixes.py on the substitutes).
KILL_LLAMA_MIXES: Dict[str, Tuple[str, str, str, str]] = {
    "mix1": ("imagick", "sssp", "stream_add", "mcf"),
    "mix2": ("leela", "deepsjeng", "omnetpp", "stream_copy"),
    "mix3": ("sssp", "bfs", "stream_scale", "lbm"),
    "mix4": ("bfs", "stream_add", "mcf", "lbm"),
    "mix5": ("bfs", "mcf", "stream_triad", "lbm"),
    "mix6": ("sssp", "stream_scale", "stream_triad", "stream_copy"),
    "mix7": ("mcf", "stream_triad", "lbm", "stream_copy"),
}

KILL_LLAMA_MIX_NAMES: Tuple[str, ...] = tuple(
    f"mix{i}" for i in range(1, len(KILL_LLAMA_MIXES) + 1)
)


def kill_llama_apps(name: str) -> Tuple[str, ...]:
    """The registry workloads behind one Kill-Llama mix name."""
    try:
        apps = KILL_LLAMA_MIXES[name]
    except KeyError:
        raise KeyError(
            f"unknown Kill-Llama mix {name!r}; available: {KILL_LLAMA_MIX_NAMES}"
        ) from None
    return tuple(KILL_LLAMA_APP_MAP[app] for app in apps)


def kill_llama_mix(
    name: str,
    num_accesses: int,
    seed: int = 0,
    scale: float = 1.0,
    builder: TraceBuilder = _default_builder,
) -> List[Trace]:
    """One named Kill-Llama mix as a 4-core heterogeneous mix."""
    return heterogeneous_mix(
        kill_llama_apps(name), num_accesses, seed=seed, scale=scale,
        builder=builder,
    )


def random_mix_names(
    num_mixes: int,
    num_cores: int,
    pool: Sequence[str] | None = None,
    seed: int = 42,
) -> List[Tuple[str, ...]]:
    """Reproducibly sample heterogeneous mix compositions.

    Mirrors the paper's methodology: each mix draws ``num_cores``
    workloads (with replacement) from the memory-intensive SPEC pool.
    """
    rng = random.Random(seed)
    pool = list(pool or ALL_SPEC_WORKLOADS)
    return [
        tuple(rng.choice(pool) for _ in range(num_cores)) for _ in range(num_mixes)
    ]
