"""Multi-programmed workload-mix construction (Sec. VI).

* **homogeneous** mixes run n identical copies of one trace, one per
  core, each in a private address space (so copies do not alias in the
  shared LLC — matching ChampSim's multi-programmed mode);
* **heterogeneous** mixes run a different randomly chosen trace per
  core.  The paper uses 150 4-core, 25 8-core, and 25 16-core mixes.
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence, Tuple

from .gap import build_gap_trace
from .spec import ALL_SPEC_WORKLOADS, build_spec_trace
from .trace import Trace

#: distance between per-core address spaces (1 TB)
ADDRESS_SPACE_STRIDE = 1 << 40

TraceBuilder = Callable[[str, int, int, float], Trace]  # (name, accesses, seed, scale)


def _default_builder(name: str, num_accesses: int, seed: int, scale: float) -> Trace:
    """Resolve a workload name against the SPEC then GAP registries.

    ``scale`` shrinks working sets / graph sizes in lock-step with the
    simulated machine (see :class:`repro.sim.SystemConfig`).
    """
    if name in ALL_SPEC_WORKLOADS:
        return build_spec_trace(name, num_accesses, seed=seed, scale=scale)
    return build_gap_trace(name, num_accesses, seed=seed, scale=scale)


def homogeneous_mix(
    name: str,
    num_cores: int,
    num_accesses: int,
    seed: int = 0,
    scale: float = 1.0,
    builder: TraceBuilder = _default_builder,
) -> List[Trace]:
    """n identical copies of one workload, address-space separated."""
    base_trace = builder(name, num_accesses, seed, scale)
    return [
        base_trace.with_address_offset((core + 1) * ADDRESS_SPACE_STRIDE)
        for core in range(num_cores)
    ]


def heterogeneous_mix(
    names: Sequence[str],
    num_accesses: int,
    seed: int = 0,
    scale: float = 1.0,
    builder: TraceBuilder = _default_builder,
) -> List[Trace]:
    """One (possibly distinct) workload per core."""
    return [
        builder(name, num_accesses, seed + core, scale).with_address_offset(
            (core + 1) * ADDRESS_SPACE_STRIDE
        )
        for core, name in enumerate(names)
    ]


def random_mix_names(
    num_mixes: int,
    num_cores: int,
    pool: Sequence[str] | None = None,
    seed: int = 42,
) -> List[Tuple[str, ...]]:
    """Reproducibly sample heterogeneous mix compositions.

    Mirrors the paper's methodology: each mix draws ``num_cores``
    workloads (with replacement) from the memory-intensive SPEC pool.
    """
    rng = random.Random(seed)
    pool = list(pool or ALL_SPEC_WORKLOADS)
    return [
        tuple(rng.choice(pool) for _ in range(num_cores)) for _ in range(num_mixes)
    ]
