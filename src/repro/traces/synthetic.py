"""Primitive synthetic access-pattern generators.

These are the building blocks the SPEC-like workload definitions
(:mod:`repro.traces.spec`) are composed from.  Each primitive is an
**infinite** generator of :class:`~repro.traces.trace.MemoryAccess`
records; composition utilities interleave, phase, and truncate them
into finite traces.

The primitives span the axes cache-management policies actually react
to:

* reuse distance (tight loops vs. giant scans),
* regularity (streams/strides vs. pointer chasing),
* prefetch friendliness (sequential vs. random),
* pollution (single-use data mixed into hot working sets),
* read/write mix and phase changes.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator, List, Sequence, Tuple

from ..sim.address import BLOCK_SIZE
from .trace import MemoryAccess, Trace

#: distinct synthetic "code regions"; PCs inside a primitive come from here
PC_REGION = 0x400000


def _pc(region: int, site: int) -> int:
    """A stable fake program counter for code site ``site`` of a region."""
    return PC_REGION + region * 0x1000 + site * 4


def stream(
    region: int,
    base: int,
    *,
    stride: int = BLOCK_SIZE,
    gap: Tuple[int, int] = (4, 12),
    write_every: int = 0,
    wrap_blocks: int = 1 << 24,
    seed: int = 0,
) -> Iterator[MemoryAccess]:
    """Sequential stream: one-pass data, prefetch-friendly, no reuse."""
    rng = random.Random(seed)
    randint = rng.randint
    lo, hi = gap
    pc = _pc(region, 0)
    wrap = wrap_blocks * BLOCK_SIZE
    offset = 0
    count = 0
    while True:
        addr = base + (offset % wrap)
        count += 1
        is_write = write_every > 0 and count % write_every == 0
        yield MemoryAccess(pc, addr, is_write, randint(lo, hi))
        offset += stride


def strided(
    region: int,
    base: int,
    *,
    stride: int,
    length_blocks: int,
    gap: Tuple[int, int] = (4, 12),
    seed: int = 0,
) -> Iterator[MemoryAccess]:
    """Repeated strided sweep over a fixed region (stencil-like reuse)."""
    rng = random.Random(seed)
    randint = rng.randint
    lo, hi = gap
    pc = _pc(region, 0)
    span = length_blocks * BLOCK_SIZE
    offset = 0
    while True:
        yield MemoryAccess(pc, base + offset % span, False, randint(lo, hi))
        offset += stride


def working_set_loop(
    region: int,
    base: int,
    *,
    ws_blocks: int,
    gap: Tuple[int, int] = (4, 12),
    write_fraction: float = 0.0,
    seed: int = 0,
) -> Iterator[MemoryAccess]:
    """Tight sequential loop over a working set.

    Reuse distance equals the working-set size: hits if it fits in the
    cache, classic thrashing if slightly over (LRU pathology; scan-
    resistant policies shine here).
    """
    rng = random.Random(seed)
    randint = rng.randint
    rand = rng.random
    lo, hi = gap
    pc = _pc(region, 0)
    idx = 0
    while True:
        addr = base + (idx % ws_blocks) * BLOCK_SIZE
        is_write = write_fraction > 0 and rand() < write_fraction
        yield MemoryAccess(pc, addr, is_write, randint(lo, hi))
        idx += 1


def pointer_chase(
    region: int,
    base: int,
    *,
    ws_blocks: int,
    gap: Tuple[int, int] = (8, 24),
    seed: int = 0,
) -> Iterator[MemoryAccess]:
    """Dependent random walk over a permutation cycle.

    Irregular, prefetch-hostile, with reuse distance ~= working-set
    size.  The permutation is fixed per seed, so the chain is
    deterministic and eventually revisits every block.
    """
    rng = random.Random(seed)
    perm = list(range(ws_blocks))
    rng.shuffle(perm)
    randint = rng.randint
    lo, hi = gap
    pc = _pc(region, 0)
    node = 0
    while True:
        yield MemoryAccess(pc, base + node * BLOCK_SIZE, False, randint(lo, hi))
        node = perm[node]


def random_region(
    region: int,
    base: int,
    *,
    region_blocks: int,
    gap: Tuple[int, int] = (6, 18),
    write_fraction: float = 0.0,
    hot_fraction: float = 0.0,
    hot_blocks: int = 0,
    seed: int = 0,
) -> Iterator[MemoryAccess]:
    """Independent random accesses over a region, optionally with a hot
    subset receiving ``hot_fraction`` of the traffic (Zipf-ish skew)."""
    rng = random.Random(seed)
    rand = rng.random
    randrange = rng.randrange
    randint = rng.randint
    lo, hi = gap
    pc_hot, pc_cold = _pc(region, 0), _pc(region, 1)
    while True:
        if hot_blocks and rand() < hot_fraction:
            block = randrange(hot_blocks)
            pc = pc_hot
        else:
            block = randrange(region_blocks)
            pc = pc_cold
        is_write = write_fraction > 0 and rand() < write_fraction
        yield MemoryAccess(pc, base + block * BLOCK_SIZE, is_write, randint(lo, hi))


def hot_plus_scan(
    region: int,
    base: int,
    *,
    hot_blocks: int,
    hot_fraction: float = 0.6,
    gap: Tuple[int, int] = (4, 12),
    seed: int = 0,
) -> Iterator[MemoryAccess]:
    """A hot working set polluted by an endless one-pass scan.

    The scan's blocks are used exactly once — the bypass-friendly
    pattern motivating the paper's holistic view (Sec. III-A).
    """
    rng = random.Random(seed)
    rand = rng.random
    randrange = rng.randrange
    randint = rng.randint
    lo, hi = gap
    pc_hot, pc_scan = _pc(region, 0), _pc(region, 1)
    scan_base = base + hot_blocks * BLOCK_SIZE * 4
    scan_offset = 0
    while True:
        if rand() < hot_fraction:
            addr = base + randrange(hot_blocks) * BLOCK_SIZE
            yield MemoryAccess(pc_hot, addr, False, randint(lo, hi))
        else:
            yield MemoryAccess(pc_scan, scan_base + scan_offset, False, randint(lo, hi))
            scan_offset += BLOCK_SIZE


def multi_stream(
    region: int,
    base: int,
    *,
    num_streams: int,
    stream_spacing_blocks: int = 1 << 16,
    gap: Tuple[int, int] = (4, 12),
    write_streams: int = 0,
    seed: int = 0,
) -> Iterator[MemoryAccess]:
    """Several interleaved sequential streams (array-sweep codes)."""
    rng = random.Random(seed)
    randrange = rng.randrange
    randint = rng.randint
    lo, hi = gap
    offsets = [0] * num_streams
    pcs = [_pc(region, s) for s in range(num_streams)]
    spacing = stream_spacing_blocks * BLOCK_SIZE
    while True:
        s = randrange(num_streams)
        addr = base + s * spacing + offsets[s]
        offsets[s] += BLOCK_SIZE
        is_write = s < write_streams
        yield MemoryAccess(pcs[s], addr, is_write, randint(lo, hi))


def stream_kernel(
    region: int,
    base: int,
    *,
    num_reads: int,
    num_writes: int = 1,
    elem_bytes: int = 8,
    array_spacing_blocks: int = 1 << 20,
    wrap_blocks: int = 1 << 22,
    gap: Tuple[int, int] = (2, 6),
    seed: int = 0,
) -> Iterator[MemoryAccess]:
    """A STREAM-style bandwidth kernel: lockstep array sweeps.

    Each iteration reads element ``i`` of ``num_reads`` source arrays
    and writes element ``i`` of ``num_writes`` destination arrays —
    copy is (1r, 1w), add/triad are (2r, 1w).  With the default
    ``elem_bytes=8`` every 64 B block is touched 8 times before the
    sweep moves on; ``elem_bytes=64`` models the vectorized kernels
    where the trace records one access per line.  Either way the
    traffic is sequential and reuse-free, so its MPKI is set almost
    entirely by the ``gap`` instruction mix — which is the calibration
    knob the mix ladder uses (:data:`repro.traces.mixes.STREAM_KERNELS`).
    """
    rng = random.Random(seed)
    randint = rng.randint
    lo, hi = gap
    read_pcs = [_pc(region, s) for s in range(num_reads)]
    write_pcs = [_pc(region, num_reads + s) for s in range(num_writes)]
    spacing = array_spacing_blocks * BLOCK_SIZE
    wrap = wrap_blocks * BLOCK_SIZE
    offset = 0
    while True:
        for s in range(num_reads):
            yield MemoryAccess(
                read_pcs[s], base + s * spacing + offset, False, randint(lo, hi)
            )
        for s in range(num_writes):
            yield MemoryAccess(
                write_pcs[s],
                base + (num_reads + s) * spacing + offset,
                True,
                randint(lo, hi),
            )
        offset = (offset + elem_bytes) % wrap


# --- composition -----------------------------------------------------------


def interleave(
    components: Sequence[Iterator[MemoryAccess]],
    weights: Sequence[float],
    seed: int = 0,
) -> Iterator[MemoryAccess]:
    """Probabilistically interleave generators with given weights."""
    if len(components) != len(weights):
        raise ValueError("one weight per component required")
    rng = random.Random(seed)
    rand = rng.random
    total = sum(weights)
    cumulative: List[float] = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    pairs = list(zip(cumulative, components))
    while True:
        r = rand()
        for bound, component in pairs:
            if r <= bound:
                yield next(component)
                break


def phased(
    segments: Sequence[Tuple[Iterator[MemoryAccess], int]],
) -> Iterator[MemoryAccess]:
    """Run each (generator, length) segment in order, then cycle.

    Models phase-changing applications — the adaptability argument of
    Sec. III-B.
    """
    while True:
        for component, length in segments:
            for _ in range(length):
                yield next(component)


def make_trace(
    name: str,
    generator_factory,
    num_accesses: int,
    metadata: dict | None = None,
) -> Trace:
    """Wrap an infinite-generator factory into a replayable finite trace."""

    def factory() -> Iterator[MemoryAccess]:
        return itertools.islice(generator_factory(), num_accesses)

    return Trace(name=name, factory=factory, metadata=metadata or {})
