"""SPEC CPU2006 / CPU2017-like workload definitions (Table VI).

The paper uses DPC-3 ChampSim traces of the memory-intensive SPEC
workloads (LLC MPKI > 1).  Those traces are not redistributable, so
each workload here is a synthetic composition of the primitive
patterns in :mod:`repro.traces.synthetic`, parameterized to match the
workload's published memory character (streaming vs. pointer-chasing
vs. mixed; working-set size relative to the cache hierarchy; write
traffic; phase behaviour).  See DESIGN.md for the substitution
rationale.

Working-set sizes are expressed at the paper's full machine scale
(12 MB LLC = 196608 blocks for 4 cores) and shrink with the ``scale``
argument so scaled-down machines see geometrically similar pressure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Tuple

from .synthetic import (
    hot_plus_scan,
    interleave,
    make_trace,
    multi_stream,
    phased,
    pointer_chase,
    random_region,
    stream,
    strided,
    working_set_loop,
)
from .trace import MemoryAccess, Trace

GeneratorFactory = Callable[[int, float], Iterator[MemoryAccess]]


def _blocks(full_scale_blocks: int, scale: float) -> int:
    """Scale a full-machine working-set size, keeping it nontrivial."""
    return max(64, int(full_scale_blocks * scale))


def _base(region: int) -> int:
    """Disjoint address regions per component (256 MB apart)."""
    return 0x1000_0000 + region * 0x1000_0000


@dataclass(frozen=True)
class WorkloadSpec:
    """One Table VI workload: a name, suite tag, and generator factory."""

    name: str
    suite: str
    description: str
    factory: GeneratorFactory


def _spec(name: str, suite: str, description: str):
    """Decorator registering a workload builder."""

    def wrap(fn: GeneratorFactory) -> GeneratorFactory:
        WORKLOADS[name] = WorkloadSpec(name, suite, description, fn)
        return fn

    return wrap


WORKLOADS: Dict[str, WorkloadSpec] = {}


# --- SPEC CPU2006 ------------------------------------------------------------


@_spec("gcc06", "spec06", "phased compiler: loops, pointer chasing, scans")
def _gcc06(seed: int, scale: float) -> Iterator[MemoryAccess]:
    return phased(
        [
            (working_set_loop(0, _base(0), ws_blocks=_blocks(15_000, scale), seed=seed), 10000),
            (pointer_chase(1, _base(1), ws_blocks=_blocks(80_000, scale), seed=seed + 1), 8000),
            (stream(2, _base(2), seed=seed + 2), 8000),
        ]
    )


@_spec("bwaves06", "spec06", "blast-wave solver: wide multi-stream sweeps")
def _bwaves06(seed: int, scale: float) -> Iterator[MemoryAccess]:
    return interleave(
        [
            multi_stream(0, _base(0), num_streams=4, seed=seed),
            strided(1, _base(1), stride=128, length_blocks=_blocks(120_000, scale), seed=seed + 1),
        ],
        [0.7, 0.3],
        seed=seed,
    )


@_spec("mcf06", "spec06", "network simplex: giant pointer chase, LLC-hostile")
def _mcf06(seed: int, scale: float) -> Iterator[MemoryAccess]:
    return interleave(
        [
            pointer_chase(0, _base(0), ws_blocks=_blocks(600_000, scale), seed=seed),
            random_region(
                1,
                _base(1),
                region_blocks=_blocks(400_000, scale),
                hot_blocks=_blocks(12_000, scale),
                hot_fraction=0.35,
                seed=seed + 1,
            ),
        ],
        [0.55, 0.45],
        seed=seed,
    )


@_spec("milc06", "spec06", "lattice QCD: long-stride sweeps, weak locality")
def _milc06(seed: int, scale: float) -> Iterator[MemoryAccess]:
    return interleave(
        [
            strided(0, _base(0), stride=256, length_blocks=_blocks(300_000, scale), seed=seed),
            stream(1, _base(1), seed=seed + 1),
        ],
        [0.65, 0.35],
        seed=seed,
    )


@_spec("zeusmp06", "spec06", "CFD stencil: three interleaved strided sweeps")
def _zeusmp06(seed: int, scale: float) -> Iterator[MemoryAccess]:
    return interleave(
        [
            strided(0, _base(0), stride=64, length_blocks=_blocks(90_000, scale), seed=seed),
            strided(1, _base(1), stride=128, length_blocks=_blocks(90_000, scale), seed=seed + 1),
            strided(2, _base(2), stride=512, length_blocks=_blocks(90_000, scale), seed=seed + 2),
        ],
        [0.4, 0.35, 0.25],
        seed=seed,
    )


@_spec("gromacs06", "spec06", "molecular dynamics: warm working set + neighbors")
def _gromacs06(seed: int, scale: float) -> Iterator[MemoryAccess]:
    return interleave(
        [
            working_set_loop(0, _base(0), ws_blocks=_blocks(8_000, scale), seed=seed),
            random_region(
                1,
                _base(1),
                region_blocks=_blocks(40_000, scale),
                hot_blocks=_blocks(4_000, scale),
                hot_fraction=0.7,
                seed=seed + 1,
            ),
        ],
        [0.6, 0.4],
        seed=seed,
    )


@_spec("leslie3d06", "spec06", "turbulence: many streams + warm loop")
def _leslie3d06(seed: int, scale: float) -> Iterator[MemoryAccess]:
    return interleave(
        [
            multi_stream(0, _base(0), num_streams=6, seed=seed),
            working_set_loop(1, _base(1), ws_blocks=_blocks(12_000, scale), seed=seed + 1),
        ],
        [0.65, 0.35],
        seed=seed,
    )


@_spec("soplex06", "spec06", "LP solver: sparse random + index scans")
def _soplex06(seed: int, scale: float) -> Iterator[MemoryAccess]:
    return interleave(
        [
            random_region(
                0,
                _base(0),
                region_blocks=_blocks(150_000, scale),
                hot_blocks=_blocks(15_000, scale),
                hot_fraction=0.5,
                seed=seed,
            ),
            stream(1, _base(1), write_every=6, seed=seed + 1),
        ],
        [0.6, 0.4],
        seed=seed,
    )


@_spec("hmmer06", "spec06", "profile HMM: small hot working set")
def _hmmer06(seed: int, scale: float) -> Iterator[MemoryAccess]:
    return interleave(
        [
            working_set_loop(0, _base(0), ws_blocks=_blocks(10_000, scale), seed=seed),
            stream(1, _base(1), gap=(8, 20), seed=seed + 1),
        ],
        [0.8, 0.2],
        seed=seed,
    )


@_spec("GemsFDTD06", "spec06", "FDTD: wide streaming with write streams")
def _gems06(seed: int, scale: float) -> Iterator[MemoryAccess]:
    return multi_stream(
        0, _base(0), num_streams=8, write_streams=2, seed=seed
    )


@_spec("libquantum06", "spec06", "quantum sim: pure streaming, single-use data")
def _libquantum06(seed: int, scale: float) -> Iterator[MemoryAccess]:
    return stream(0, _base(0), write_every=4, gap=(3, 8), seed=seed)


@_spec("astar06", "spec06", "pathfinding: pointer chase + polluted hot set")
def _astar06(seed: int, scale: float) -> Iterator[MemoryAccess]:
    return interleave(
        [
            pointer_chase(0, _base(0), ws_blocks=_blocks(120_000, scale), seed=seed),
            hot_plus_scan(
                1,
                _base(1),
                hot_blocks=_blocks(10_000, scale),
                hot_fraction=0.65,
                seed=seed + 1,
            ),
        ],
        [0.5, 0.5],
        seed=seed,
    )


@_spec("wrf06", "spec06", "weather model: phased stream/stencil/loop")
def _wrf06(seed: int, scale: float) -> Iterator[MemoryAccess]:
    return phased(
        [
            (stream(0, _base(0), seed=seed), 12000),
            (strided(1, _base(1), stride=128, length_blocks=_blocks(60_000, scale), seed=seed + 1), 10000),
            (working_set_loop(2, _base(2), ws_blocks=_blocks(16_000, scale), seed=seed + 2), 10000),
        ]
    )


@_spec("xalancbmk06", "spec06", "XML transform: mid-size pointer chasing")
def _xalancbmk06(seed: int, scale: float) -> Iterator[MemoryAccess]:
    return interleave(
        [
            pointer_chase(0, _base(0), ws_blocks=_blocks(40_000, scale), seed=seed),
            random_region(
                1,
                _base(1),
                region_blocks=_blocks(80_000, scale),
                hot_blocks=_blocks(8_000, scale),
                hot_fraction=0.6,
                seed=seed + 1,
            ),
        ],
        [0.55, 0.45],
        seed=seed,
    )


# --- SPEC CPU2017 --------------------------------------------------------------


@_spec("gcc17", "spec17", "compiler (2017 inputs): phased irregular mix")
def _gcc17(seed: int, scale: float) -> Iterator[MemoryAccess]:
    return phased(
        [
            (pointer_chase(0, _base(0), ws_blocks=_blocks(100_000, scale), seed=seed), 9000),
            (working_set_loop(1, _base(1), ws_blocks=_blocks(20_000, scale), seed=seed + 1), 9000),
            (hot_plus_scan(2, _base(2), hot_blocks=_blocks(9_000, scale), seed=seed + 2), 8000),
        ]
    )


@_spec("bwaves17", "spec17", "blast waves (2017): five-array sweeps")
def _bwaves17(seed: int, scale: float) -> Iterator[MemoryAccess]:
    return multi_stream(0, _base(0), num_streams=5, write_streams=1, seed=seed)


@_spec("mcf17", "spec17", "network simplex (2017): even larger chase")
def _mcf17(seed: int, scale: float) -> Iterator[MemoryAccess]:
    return interleave(
        [
            pointer_chase(0, _base(0), ws_blocks=_blocks(800_000, scale), seed=seed),
            random_region(
                1,
                _base(1),
                region_blocks=_blocks(500_000, scale),
                hot_blocks=_blocks(16_000, scale),
                hot_fraction=0.3,
                seed=seed + 1,
            ),
        ],
        [0.6, 0.4],
        seed=seed,
    )


@_spec("cactuBSSN17", "spec17", "numerical relativity: many stencil arrays")
def _cactu17(seed: int, scale: float) -> Iterator[MemoryAccess]:
    return interleave(
        [
            multi_stream(0, _base(0), num_streams=10, seed=seed),
            strided(1, _base(1), stride=192, length_blocks=_blocks(110_000, scale), seed=seed + 1),
        ],
        [0.7, 0.3],
        seed=seed,
    )


@_spec("lbm17", "spec17", "lattice Boltzmann: stream read + stream write")
def _lbm17(seed: int, scale: float) -> Iterator[MemoryAccess]:
    return multi_stream(
        0, _base(0), num_streams=3, write_streams=1, gap=(3, 9), seed=seed
    )


@_spec("omnetpp17", "spec17", "discrete-event sim: scattered heap walk")
def _omnetpp17(seed: int, scale: float) -> Iterator[MemoryAccess]:
    return interleave(
        [
            pointer_chase(0, _base(0), ws_blocks=_blocks(250_000, scale), seed=seed),
            random_region(
                1,
                _base(1),
                region_blocks=_blocks(120_000, scale),
                hot_blocks=_blocks(10_000, scale),
                hot_fraction=0.45,
                seed=seed + 1,
            ),
        ],
        [0.5, 0.5],
        seed=seed,
    )


@_spec("wrf17", "spec17", "weather (2017): phased stencil mix")
def _wrf17(seed: int, scale: float) -> Iterator[MemoryAccess]:
    return phased(
        [
            (multi_stream(0, _base(0), num_streams=4, seed=seed), 12000),
            (working_set_loop(1, _base(1), ws_blocks=_blocks(22_000, scale), seed=seed + 1), 12000),
        ]
    )


@_spec("xalancbmk17", "spec17", "XML transform (2017): pointer chase + hot")
def _xalancbmk17(seed: int, scale: float) -> Iterator[MemoryAccess]:
    return interleave(
        [
            pointer_chase(0, _base(0), ws_blocks=_blocks(55_000, scale), seed=seed),
            hot_plus_scan(
                1,
                _base(1),
                hot_blocks=_blocks(7_000, scale),
                hot_fraction=0.7,
                seed=seed + 1,
            ),
        ],
        [0.5, 0.5],
        seed=seed,
    )


@_spec("cam417", "spec17", "atmosphere model: strided physics + loops")
def _cam417(seed: int, scale: float) -> Iterator[MemoryAccess]:
    return interleave(
        [
            strided(0, _base(0), stride=128, length_blocks=_blocks(70_000, scale), seed=seed),
            working_set_loop(1, _base(1), ws_blocks=_blocks(14_000, scale), seed=seed + 1),
            stream(2, _base(2), seed=seed + 2),
        ],
        [0.4, 0.35, 0.25],
        seed=seed,
    )


@_spec("pop217", "spec17", "ocean model: multi-stream + mid strides")
def _pop217(seed: int, scale: float) -> Iterator[MemoryAccess]:
    return interleave(
        [
            multi_stream(0, _base(0), num_streams=4, seed=seed),
            strided(1, _base(1), stride=256, length_blocks=_blocks(80_000, scale), seed=seed + 1),
        ],
        [0.6, 0.4],
        seed=seed,
    )


@_spec("fotonik3d17", "spec17", "photonics FDTD: streaming stencils")
def _fotonik17(seed: int, scale: float) -> Iterator[MemoryAccess]:
    return interleave(
        [
            stream(0, _base(0), gap=(3, 9), seed=seed),
            strided(1, _base(1), stride=64, length_blocks=_blocks(140_000, scale), seed=seed + 1),
        ],
        [0.55, 0.45],
        seed=seed,
    )


@_spec("roms17", "spec17", "ocean model: phased stream + loop")
def _roms17(seed: int, scale: float) -> Iterator[MemoryAccess]:
    return phased(
        [
            (stream(0, _base(0), write_every=8, seed=seed), 13000),
            (working_set_loop(1, _base(1), ws_blocks=_blocks(18_000, scale), seed=seed + 1), 12000),
        ]
    )


@_spec("xz17", "spec17", "compressor: dictionary randomness + sequential IO")
def _xz17(seed: int, scale: float) -> Iterator[MemoryAccess]:
    return interleave(
        [
            random_region(
                0,
                _base(0),
                region_blocks=_blocks(200_000, scale),
                hot_blocks=_blocks(10_000, scale),
                hot_fraction=0.55,
                write_fraction=0.15,
                seed=seed,
            ),
            stream(1, _base(1), seed=seed + 1),
        ],
        [0.65, 0.35],
        seed=seed,
    )


# --- public API ------------------------------------------------------------------

SPEC06_WORKLOADS: Tuple[str, ...] = tuple(
    n for n, s in WORKLOADS.items() if s.suite == "spec06"
)
SPEC17_WORKLOADS: Tuple[str, ...] = tuple(
    n for n, s in WORKLOADS.items() if s.suite == "spec17"
)
ALL_SPEC_WORKLOADS: Tuple[str, ...] = SPEC06_WORKLOADS + SPEC17_WORKLOADS


def build_spec_trace(
    name: str, num_accesses: int, seed: int = 0, scale: float = 1.0
) -> Trace:
    """Build a finite trace for one named SPEC-like workload."""
    try:
        spec = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown SPEC workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None
    return make_trace(
        name,
        lambda: spec.factory(seed, scale),
        num_accesses,
        metadata={"suite": spec.suite, "description": spec.description, "seed": seed},
    )


def representative_workloads() -> List[str]:
    """The eight-workload subset used by Fig. 3-style comparisons."""
    return [
        "soplex06",
        "wrf06",
        "mcf06",
        "libquantum06",
        "xalancbmk17",
        "omnetpp17",
        "lbm17",
        "gcc17",
    ]
