"""Workload substrate: trace records, synthetic SPEC-like generators,
real graph kernels (GAP), and multi-programmed mix builders."""

from .analysis import TraceProfile, compare_profiles, profile_trace
from .gap import DATASETS, GAP_TRACES, KERNELS, build_gap_trace, build_graph
from .mixes import (
    ADDRESS_SPACE_STRIDE,
    heterogeneous_mix,
    homogeneous_mix,
    random_mix_names,
)
from .spec import (
    ALL_SPEC_WORKLOADS,
    SPEC06_WORKLOADS,
    SPEC17_WORKLOADS,
    WORKLOADS,
    build_spec_trace,
    representative_workloads,
)
from .trace import MemoryAccess, Trace, from_tuples

__all__ = [
    "ADDRESS_SPACE_STRIDE",
    "TraceProfile",
    "compare_profiles",
    "profile_trace",
    "ALL_SPEC_WORKLOADS",
    "DATASETS",
    "GAP_TRACES",
    "KERNELS",
    "MemoryAccess",
    "SPEC06_WORKLOADS",
    "SPEC17_WORKLOADS",
    "Trace",
    "WORKLOADS",
    "build_gap_trace",
    "build_graph",
    "build_spec_trace",
    "from_tuples",
    "heterogeneous_mix",
    "homogeneous_mix",
    "random_mix_names",
    "representative_workloads",
]
