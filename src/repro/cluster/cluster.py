"""ClusterService: a sharded cache fleet behind one request stream.

The serving layer scaled out: N independent
:class:`~repro.serve.service.CacheService` shards (each with its own
store, policy/agent, backend model, fault injector and resilience
state) behind a consistent-hash router
(:class:`~repro.cluster.ring.HashRing`), with hot-key splitting
(:mod:`~repro.cluster.hotkeys`) and periodic Q-table federation
(:mod:`~repro.cluster.federate`).

The determinism argument is the serve layer's, applied once more:

* the cluster exposes the same ``process(seq, req)`` surface as a
  single service, so the *same* ticket-sequenced driver
  (:func:`~repro.serve.service._drive` / ``replay_requests``) runs it —
  requests enter the router in global sequence order at any client
  count;
* every routing input is a pure function of that global sequence:
  virtual time is ``seq x inter_arrival``, shard liveness is a
  :class:`~repro.serve.faults.FaultInjector` outage oracle over virtual
  time, hot sets roll at fixed ``seq`` boundaries, federation fires at
  fixed ``seq`` boundaries, and the ring itself is static;
* therefore a mid-run shard kill reroutes, heals and re-balances
  bit-identically at ``num_clients=1`` and ``num_clients=64`` — the
  failover golden pins exactly this.

Shards never flip their own warmup gates (they are built with a ``-1``
sentinel): the cluster flips every shard recorder at the *global*
warmup boundary, so per-shard and fleet metrics share one measurement
window regardless of how traffic splits.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..serve.config import LatencyConfig, ServiceConfig
from ..serve.faults import FaultConfig, FaultInjector
from ..serve.metrics import (
    MetricsRecorder,
    ServeMetrics,
    TenantMetrics,
    percentile,
)
from ..serve.service import CacheService, _drive, replay_requests
from ..serve.workloads import Request
from ..sim.address import mix_hash
from .federate import federate_agents
from .hotkeys import HotKeyDetector
from .ring import HashRing


@dataclass
class ClusterMetrics:
    """Complete, picklable result of one cluster run.

    ``fleet`` aggregates the shard recorders exactly (integer sums, a
    re-sorted union of the raw latency samples for the percentiles —
    not percentile-of-percentiles); ``per_shard`` keeps each shard's
    own :class:`ServeMetrics` for imbalance analysis.
    """

    fleet: ServeMetrics
    per_shard: List[ServeMetrics] = field(default_factory=list)
    #: requests routed to each shard (post-failover, post-splitting)
    routed: List[int] = field(default_factory=list)
    #: requests whose static primary was dead at arrival time
    reroutes: int = 0
    #: requests with no live replica at all (dropped, served by no shard)
    unroutable: int = 0
    #: liveness-mask transitions observed (kill + heal = 2)
    ring_changes: int = 0
    federations: int = 0
    hot_windows: int = 0
    hot_promotions: int = 0
    #: hot-key requests sent to a non-primary replica
    hot_splits: int = 0
    #: evictions of currently-hot keys (capacity losing to the hot set)
    hot_evictions: int = 0


class ClusterService:
    """Consistent-hash fleet with the single-service ``process`` surface."""

    def __init__(
        self,
        config: ServiceConfig,
        num_shards: int,
        *,
        replication: int = 2,
        vnodes: int = 64,
        federate_every: int = 0,
        hotkey_window: int = 0,
        hotkey_top_k: int = 8,
        hotkey_min_count: int = 16,
        kill_shard: int = -1,
        kill_faults: Optional[FaultConfig] = None,
        obs=None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        per_shard_capacity = config.capacity_bytes // num_shards
        if per_shard_capacity < config.num_segments:
            raise ValueError(
                "fleet capacity too small: each shard needs at least one "
                "byte per segment"
            )
        self.config = config
        self.num_shards = num_shards
        self.latency = config.latency or LatencyConfig()
        self.warmup_requests = config.warmup_requests
        self.ring = HashRing(
            num_shards,
            replication=replication,
            vnodes=vnodes,
            seed=mix_hash((config.seed << 4) ^ 0x51A6),
        )
        # N shards from one config: same shape, per-shard derived seeds
        # (exploration RNG and origin-chaos streams never shared).
        shard_base = replace(config, capacity_bytes=per_shard_capacity)
        self.recorders: List[MetricsRecorder] = []
        self.shards: List[CacheService] = []
        self._policies = []
        for idx in range(num_shards):
            shard_cfg = shard_base.for_shard(idx)
            policy = shard_cfg.build_policy()
            recorder = MetricsRecorder(
                policy=config.policy, workload=config.workload_name
            )
            store = shard_cfg.build_store(policy)
            # warmup_requests=-1: the sentinel never equals a real seq,
            # so the shard's own warmup flip never fires — the cluster
            # flips all recorders at the global warmup boundary below.
            self.shards.append(
                CacheService(
                    store,
                    recorder=recorder,
                    warmup_requests=-1,
                    config=shard_cfg,
                )
            )
            self.recorders.append(recorder)
            self._policies.append(policy)
        # Shard-kill oracle: outage windows of a FaultConfig, evaluated
        # in virtual time — liveness is a pure function of now_ms.
        self._kill_shard = kill_shard if kill_faults is not None else -1
        self._kill_oracle = (
            FaultInjector(kill_faults)
            if kill_faults is not None and 0 <= kill_shard < num_shards
            else None
        )
        self._all_live: Tuple[bool, ...] = (True,) * num_shards
        self._last_live: Tuple[bool, ...] = self._all_live
        # Hot-key detection needs replicas to split across.
        if hotkey_window > 0 and self.ring.replication > 1:
            self.hotkeys: Optional[HotKeyDetector] = HotKeyDetector(
                window=hotkey_window,
                top_k=hotkey_top_k,
                min_count=hotkey_min_count,
            )
            for shard in self.shards:
                shard.store.add_evict_listener(self.hotkeys.on_evict)
        else:
            self.hotkeys = None
        self.federate_every = federate_every
        self._agents = [
            p.agent for p in self._policies if hasattr(p, "agent")
        ]
        if len(self._agents) != num_shards:
            self._agents = []  # federation is all-or-nothing
        # cluster-level counters
        self.routed = [0] * num_shards
        self.reroutes = 0
        self.unroutable = 0
        self.ring_changes = 0
        self.federations = 0
        self.hot_splits = 0
        self._measuring = config.warmup_requests == 0
        # Live-operations tap (repro.ops): same per-request seam the
        # single service exposes — None by default, one attribute test.
        self._ops_tap = None
        self._fleet_requests = 0
        self._fleet_hits = 0
        self._fleet_bytes = 0
        self._fleet_bytes_hit = 0
        self._curve: List[Tuple[int, float, float]] = []
        for recorder in self.recorders:
            recorder.set_measuring(self._measuring)
        self._obs = obs
        if obs is not None:
            self._obs_window = max(1, obs.config.serve_window)
            self._obs_next = self._obs_window - 1
            obs.tracer.name_thread(0, "cluster")
            obs.timeline.record("ring_topology", **self.ring.describe())
        else:
            self._obs_window = 0
            self._obs_next = -1

    # --- liveness -----------------------------------------------------------------

    def live_mask(self, now_ms: float) -> Tuple[bool, ...]:
        """Which shards are up at ``now_ms`` (pure in virtual time)."""
        if self._kill_oracle is None:
            return self._all_live
        down, _ = self._kill_oracle.outage_state(now_ms)
        if not down:
            return self._all_live
        mask = list(self._all_live)
        mask[self._kill_shard] = False
        return tuple(mask)

    # --- request path ---------------------------------------------------------------

    def process(self, seq: int, req: Request) -> bool:
        """Route one request to its shard at its virtual arrival time.

        Same contract as :meth:`CacheService.process`, so the ticket-
        sequenced driver runs a cluster exactly as it runs one service.
        """
        if seq == self.warmup_requests:
            self._measuring = True
            for recorder in self.recorders:
                recorder.set_measuring(True)
        now_ms = seq * self.latency.inter_arrival_ms
        live = self.live_mask(now_ms)
        if live != self._last_live:
            self.ring_changes += 1
            self._last_live = live
            if self._obs is not None:
                down = [i for i, up in enumerate(live) if not up]
                self._obs.timeline.record(
                    "ring_change", seq=seq, now_ms=now_ms, down_shards=down,
                    live=int(sum(live)),
                )
                self._obs.tracer.instant(
                    "ring_change", now_ms * 1000.0,
                    args={"down": down},
                )
        hotkeys = self.hotkeys
        if hotkeys is not None and seq > 0 and seq % hotkeys.window == 0:
            hot = hotkeys.roll()
            if self._obs is not None:
                self._obs.timeline.record(
                    "hot_window", seq=seq, now_ms=now_ms,
                    hot_keys=len(hot),
                    hot_evictions=hotkeys.hot_evictions,
                )
        pref = self.ring.preference(req.key, live=live)
        if not pref:
            self.unroutable += 1
            if self._ops_tap is not None:
                self._ops_tap(seq, req)
            return False
        if hotkeys is not None and len(pref) > 1 and hotkeys.is_hot(req.key):
            # Split the hot key: rotate over its live replica set by
            # global sequence — deterministic round-robin load spread.
            target = pref[seq % len(pref)]
            if target != pref[0]:
                self.hot_splits += 1
        else:
            target = pref[0]
        if not live[self.ring.primary(req.key)]:
            self.reroutes += 1
        self.routed[target] += 1
        if hotkeys is not None:
            hotkeys.observe(req.key)
        hit = self.shards[target].process(seq, req)
        if self._measuring:
            self._fleet_requests += 1
            self._fleet_bytes += req.size
            if hit:
                self._fleet_hits += 1
                self._fleet_bytes_hit += req.size
            every = self.config.checkpoint_every
            if every and self._fleet_requests % every == 0:
                self._curve.append(
                    (
                        self._fleet_requests,
                        self._fleet_hits / self._fleet_requests,
                        self._fleet_bytes_hit / self._fleet_bytes,
                    )
                )
        if self._agents and self.federate_every > 0:
            if (seq + 1) % self.federate_every == 0:
                federate_agents(self._agents)
                self.federations += 1
                if self._obs is not None:
                    self._obs.timeline.record(
                        "federation", seq=seq, now_ms=now_ms,
                        round=self.federations, agents=len(self._agents),
                    )
        if self._obs is not None and seq == self._obs_next:
            self._obs_sample(seq, now_ms, live)
        if self._ops_tap is not None:
            self._ops_tap(seq, req)
        return hit

    # --- live-operations seams (repro.ops) ------------------------------------------

    def attach_ops_tap(self, tap) -> None:
        """Install the per-request ops callback (``tap(seq, req)``).

        Fires inside the sequenced section after the fleet has fully
        processed the request — including unroutable drops, so window
        boundaries land at the same global sequence numbers whether or
        not shards are down.
        """
        self._ops_tap = tap

    def signal_recorders(self) -> List[MetricsRecorder]:
        """All shard recorders; the SignalReader sums windows fleet-wide."""
        return list(self.recorders)

    def agent_states(self) -> List[dict]:
        """Snapshot every shard agent (index order) for the ops ring."""
        if not self._agents:
            raise ValueError(
                f"policy {self.config.policy!r} has no learning agents; "
                "ops hot-swap/rollback require a learned (chrome) fleet"
            )
        from ..core.persistence import agent_state

        return [agent_state(a, kind="serve-agent") for a in self._agents]

    def load_agent_states(self, states: List[dict], *, keep_rng: bool = False) -> None:
        """Swap learned state into the fleet at an epoch boundary.

        ``len(states) == num_shards`` restores shard-for-shard (the
        rollback path: every shard returns to its own last-known-good
        table).  ``len(states) == 1`` broadcasts one state to every
        shard (the promotion path: a single challenger table deploys
        fleet-wide).  ``keep_rng`` follows the single-service contract
        — promotion keeps each shard's own RNG stream and counters,
        rollback restores everything.
        """
        if not self._agents:
            raise ValueError(
                f"policy {self.config.policy!r} has no learning agents; "
                "ops hot-swap/rollback require a learned (chrome) fleet"
            )
        if len(states) == 1 and self.num_shards > 1:
            states = states * self.num_shards
        if len(states) != self.num_shards:
            raise ValueError(
                f"expected 1 or {self.num_shards} agent states, got {len(states)}"
            )
        from ..env.driver import restore_agent_state

        for agent, state in zip(self._agents, states):
            restore_agent_state(agent, state, "serve-agent", keep_rng=keep_rng)

    # --- observability --------------------------------------------------------------

    def _obs_sample(self, seq: int, now_ms: float, live: Tuple[bool, ...]) -> None:
        """One fleet timeline row per ``serve_window`` global requests."""
        obs = self._obs
        self._obs_next += self._obs_window
        breaker_states: Dict[int, Dict[int, str]] = {}
        for idx, shard in enumerate(self.shards):
            if shard.resilience is not None:
                states = shard.resilience.breaker_states()
                if states:
                    breaker_states[idx] = states
        row = {
            "seq": seq,
            "now_ms": now_ms,
            "live": int(sum(live)),
            "routed": list(self.routed),
            "reroutes": self.reroutes,
            "hot_splits": self.hot_splits,
            "federations": self.federations,
            "fleet_requests": self._fleet_requests,
            "fleet_object_hit_ratio": (
                self._fleet_hits / self._fleet_requests
                if self._fleet_requests
                else 0.0
            ),
        }
        if breaker_states:
            row["breaker_states"] = {
                str(idx): states for idx, states in breaker_states.items()
            }
        if self.hotkeys is not None:
            row["hot_keys"] = len(self.hotkeys.hot_keys)
        obs.timeline.record("cluster_window", **row)
        obs.tracer.counter(
            "cluster.live_shards", now_ms * 1000.0, {"live": row["live"]}
        )

    def _obs_summary(self, metrics: ClusterMetrics) -> None:
        obs = self._obs
        if obs is None:
            return
        fleet = metrics.fleet
        obs.timeline.record(
            "cluster_summary",
            policy=fleet.policy,
            workload=fleet.workload,
            num_shards=self.num_shards,
            requests=fleet.requests,
            object_hit_ratio=fleet.object_hit_ratio,
            byte_hit_ratio=fleet.byte_hit_ratio,
            p99_latency_ms=fleet.p99_latency_ms,
            reroutes=metrics.reroutes,
            ring_changes=metrics.ring_changes,
            federations=metrics.federations,
            hot_splits=metrics.hot_splits,
            hot_evictions=metrics.hot_evictions,
            per_shard_byte_hit=[m.byte_hit_ratio for m in metrics.per_shard],
        )
        reg = obs.registry
        reg.counter("cluster.requests").inc(fleet.requests)
        reg.counter("cluster.reroutes").inc(metrics.reroutes)
        reg.counter("cluster.ring_changes").inc(metrics.ring_changes)
        reg.counter("cluster.federations").inc(metrics.federations)
        reg.counter("cluster.hot_splits").inc(metrics.hot_splits)
        reg.gauge("cluster.byte_hit_ratio").set(fleet.byte_hit_ratio)
        reg.gauge("cluster.p99_latency_ms").set(fleet.p99_latency_ms)

    # --- results --------------------------------------------------------------------

    def finalize(self) -> ClusterMetrics:
        """Per-shard and fleet-aggregate metrics for the completed run."""
        per_shard: List[ServeMetrics] = []
        latencies: List[float] = []
        degraded: List[float] = []
        for recorder, policy in zip(self.recorders, self._policies):
            m = recorder.finalize()
            m.telemetry = dict(policy.telemetry())
            per_shard.append(m)
            latencies.extend(recorder.latency_samples())
            degraded.extend(recorder.degraded_latency_samples())
        fleet = _aggregate_fleet(
            self.config.policy,
            self.config.workload_name,
            per_shard,
            latencies,
            degraded,
        )
        fleet.curve = list(self._curve)
        metrics = ClusterMetrics(
            fleet=fleet,
            per_shard=per_shard,
            routed=list(self.routed),
            reroutes=self.reroutes,
            unroutable=self.unroutable,
            ring_changes=self.ring_changes,
            federations=self.federations,
            hot_windows=self.hotkeys.windows if self.hotkeys else 0,
            hot_promotions=self.hotkeys.promotions if self.hotkeys else 0,
            hot_splits=self.hot_splits,
            hot_evictions=self.hotkeys.hot_evictions if self.hotkeys else 0,
        )
        self._obs_summary(metrics)
        return metrics


_SUM_FIELDS = (
    "requests",
    "hits",
    "bytes_requested",
    "bytes_hit",
    "backend_fetches",
    "backend_bytes",
    "admitted",
    "admitted_bytes",
    "bypassed",
    "bypassed_bytes",
    "evictions",
    "evicted_bytes",
    "origin_served",
    "shed",
    "stale_served",
    "errors",
    "retries",
    "timeouts",
    "breaker_opens",
    "breaker_denied",
)


def _aggregate_fleet(
    policy: str,
    workload: str,
    per_shard: Sequence[ServeMetrics],
    latencies: List[float],
    degraded: List[float],
) -> ServeMetrics:
    """Exact fleet roll-up of finalized shard metrics.

    Integer counters sum, ``peak_outstanding`` takes the max (it is a
    peak over per-shard backends), per-tenant slices merge, and the
    latency percentiles are recomputed over the sorted union of the raw
    samples — the fleet p99 is the true fleet p99.
    """
    fleet = ServeMetrics(policy=policy, workload=workload)
    for m in per_shard:
        for name in _SUM_FIELDS:
            setattr(fleet, name, getattr(fleet, name) + getattr(m, name))
        if m.peak_outstanding > fleet.peak_outstanding:
            fleet.peak_outstanding = m.peak_outstanding
        for tenant, tm in m.per_tenant.items():
            agg = fleet.per_tenant.get(tenant)
            if agg is None:
                agg = fleet.per_tenant[tenant] = TenantMetrics()
            agg.requests += tm.requests
            agg.hits += tm.hits
            agg.bytes_requested += tm.bytes_requested
            agg.bytes_hit += tm.bytes_hit
    if latencies:
        ordered = sorted(latencies)
        fleet.mean_latency_ms = sum(ordered) / len(ordered)
        fleet.p50_latency_ms = percentile(ordered, 0.50)
        fleet.p99_latency_ms = percentile(ordered, 0.99)
    if degraded:
        ordered = sorted(degraded)
        fleet.degraded_requests = len(ordered)
        fleet.degraded_p99_latency_ms = percentile(ordered, 0.99)
    return fleet


def run_cluster(
    requests: Sequence[Request],
    config: ServiceConfig,
    num_shards: int,
    *,
    replication: int = 2,
    vnodes: int = 64,
    federate_every: int = 0,
    hotkey_window: int = 0,
    hotkey_top_k: int = 8,
    hotkey_min_count: int = 16,
    kill_shard: int = -1,
    kill_faults: Optional[FaultConfig] = None,
    obs=None,
) -> ClusterMetrics:
    """Run a request stream through a sharded fleet, end to end.

    ``config`` describes the *fleet*: ``capacity_bytes`` is total fleet
    capacity (split evenly), ``num_clients`` shapes the driver only —
    the returned :class:`ClusterMetrics` is bit-identical at any client
    count, shard kills and all.
    """
    cluster = ClusterService(
        config,
        num_shards,
        replication=replication,
        vnodes=vnodes,
        federate_every=federate_every,
        hotkey_window=hotkey_window,
        hotkey_top_k=hotkey_top_k,
        hotkey_min_count=hotkey_min_count,
        kill_shard=kill_shard,
        kill_faults=kill_faults,
        obs=obs,
    )
    if config.num_clients <= 1:
        replay_requests(cluster, requests)
    else:
        asyncio.run(_drive(cluster, requests, config.num_clients))
    return cluster.finalize()
