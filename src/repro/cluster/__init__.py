"""``repro.cluster`` — a sharded cache fleet with Q-table federation.

The serving layer scaled out toward the north star's production tier:
a consistent-hash ring with seeded virtual nodes and replication
(:mod:`.ring`) routes one request stream over N independent
:class:`~repro.serve.service.CacheService` shards
(:mod:`.cluster`), each running its own CHROME serve agent.  Shard
kills are FaultConfig outage windows evaluated in virtual time, so the
ring reroutes and heals bit-identically at any client count; hot keys
are detected by windowed top-k (:mod:`.hotkeys`) and split across
replicas; and the shards' Q-tables are periodically merged by
entrywise averaging (:mod:`.federate`) built on the PR 3
``state_dict`` persistence layer — the fleet learns faster than any
isolated shard (the bench gate pins this).

Importing this package registers the ``cluster`` experiment with the
shared registry; :class:`~repro.cluster.jobs.ClusterJob` specs run on
the parallel experiment engine like every other job kind.
"""

from .cluster import ClusterMetrics, ClusterService, run_cluster
from .federate import federate_agents, merge_qtable_states
from .hotkeys import HotKeyDetector
from .jobs import CLUSTER_CODE_VERSION, ClusterJob
from .ring import HashRing

from . import experiments as _experiments  # noqa: F401  (eager registration)

__all__ = [
    "CLUSTER_CODE_VERSION",
    "ClusterJob",
    "ClusterMetrics",
    "ClusterService",
    "HashRing",
    "HotKeyDetector",
    "federate_agents",
    "merge_qtable_states",
    "run_cluster",
]
