"""Consistent-hash ring with seeded virtual nodes and replication.

The fleet's router: ``num_shards`` cache shards each own ``vnodes``
points on a 64-bit ring, a key hashes to a point, and its *preference
order* is the clockwise walk from that point collecting distinct
shards.  The design choices are the standard ones (Karger rings,
Dynamo preference lists), made deterministic the repro way:

* **seeded virtual nodes** — point positions are ``mix_hash`` of
  ``(seed, shard, vnode)``, pure arithmetic with no ``hash()``
  involvement, so two processes (or two machines) build bit-identical
  rings;
* **replication factor R** — :meth:`HashRing.preference` returns up to
  R distinct shards; replica walks are how failover works: a dead
  shard is *skipped*, not removed, so the ring "heals" without moving
  any point and un-heals identically when the shard returns;
* **static topology, dynamic liveness** — the point set never changes
  mid-run.  Liveness is an argument to the walk, which keeps routing a
  pure function of ``(ring, key, live-mask)`` — the property the
  cluster's bit-identical failover golden rests on.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Sequence, Tuple

from ..sim.address import mix_hash

_MASK64 = (1 << 64) - 1


class HashRing:
    """Seeded consistent-hash ring over ``num_shards`` shards."""

    def __init__(
        self,
        num_shards: int,
        *,
        replication: int = 2,
        vnodes: int = 64,
        seed: int = 0,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if not 1 <= replication:
            raise ValueError("replication must be >= 1")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.num_shards = num_shards
        self.replication = min(replication, num_shards)
        self.vnodes = vnodes
        self.seed = seed
        points: List[Tuple[int, int]] = []
        for shard in range(num_shards):
            for v in range(vnodes):
                point = mix_hash(
                    ((seed & _MASK64) << 1)
                    ^ (shard * 0x9E3779B97F4A7C15)
                    ^ (v << 20)
                )
                points.append((point, shard))
        points.sort()
        self._points = points
        self._hashes = [p for p, _ in points]

    # --- routing ------------------------------------------------------------------

    def preference(
        self, key: int, live: Optional[Sequence[bool]] = None
    ) -> List[int]:
        """Up to ``replication`` distinct shards in preference order.

        The clockwise walk from the key's ring position, skipping dead
        shards when a ``live`` mask is given.  Element 0 is the
        (currently live) primary; a shard kill therefore shifts every
        key it owned one step down its preference list and *nothing
        else moves* — consistent hashing's whole point.  Returns fewer
        than R shards only when fewer than R are live.
        """
        points = self._points
        n = len(points)
        idx = bisect_left(self._hashes, mix_hash(key))
        want = self.replication
        chosen: List[int] = []
        for step in range(n):
            shard = points[(idx + step) % n][1]
            if shard in chosen:
                continue
            if live is not None and not live[shard]:
                continue
            chosen.append(shard)
            if len(chosen) == want:
                break
        return chosen

    def primary(self, key: int) -> int:
        """The key's home shard ignoring liveness (reroute accounting)."""
        points = self._points
        idx = bisect_left(self._hashes, mix_hash(key))
        return points[idx % len(points)][1]

    # --- introspection ------------------------------------------------------------

    def describe(self) -> dict:
        """Topology summary for obs rows / debugging."""
        owned = [0] * self.num_shards
        for _, shard in self._points:
            owned[shard] += 1
        return {
            "num_shards": self.num_shards,
            "replication": self.replication,
            "vnodes": self.vnodes,
            "seed": self.seed,
            "points": len(self._points),
            "vnodes_per_shard": owned,
        }
