"""Q-table federation: periodic merge/averaging across shard agents.

Each shard runs its own CHROME serve agent, so each shard only learns
from the slice of traffic the ring routes to it.  Federation closes
that gap the federated-averaging way: every ``federate_every`` requests
the cluster snapshots every agent's Q-table
(:meth:`~repro.core.qtable.QTable.state_dict`), averages them entry by
entry, and loads the merged table back into every agent
(:meth:`~repro.core.qtable.QTable.load_state_dict`) — one shard's
"large scan objects are not worth their bytes" lesson reaches the
whole fleet without any shard seeing another's requests.

Determinism discipline:

* **order independence** — each entry's per-shard values are sorted
  before summing, so float addition order cannot depend on shard
  enumeration order; ``merge_qtable_states(reversed(states))`` is
  bit-identical to the forward merge (pinned by test);
* **grid quantization** — the mean is snapped back to the agents'
  16-bit fixed-point grid, so a merged table is a *valid* table (every
  value representable in the hardware design) and save/merge/restore
  round-trips bit-identically through JSON;
* **counters stay local** — merged ``lookups``/``updates`` are summed
  for the merged snapshot, but each agent keeps its own counters on
  load-back (they are telemetry about the shard, not learned state),
  and agent exploration RNGs are never touched.

When every agent runs the numpy backend, :func:`federate_agents` takes
a vectorized path over the integer tick arrays instead of nested-list
snapshots.  It is bit-identical to the scalar merge: tick sums are
exact integer arithmetic (order independent by construction), the
power-of-two quantum commutes with IEEE rounding, and ``np.rint`` and
Python ``round`` share half-to-even semantics — pinned differentially
by ``tests/test_federate_numpy.py``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def merge_qtable_states(states: Sequence[dict], quantum: float) -> dict:
    """Entrywise average of same-geometry Q-table snapshots.

    ``quantum`` is the fixed-point grid step
    (:attr:`QTable._quantum <repro.core.qtable.QTable>`); every merged
    value is ``round(mean / quantum) * quantum``.  Raises ``ValueError``
    on empty input or mismatched geometry.
    """
    if not states:
        raise ValueError("cannot merge zero Q-table states")
    base = states[0]
    geometry = ("version", "num_features", "num_subtables", "rows", "num_actions")
    for state in states[1:]:
        mismatched = {
            k: (state.get(k), base.get(k))
            for k in geometry
            if state.get(k) != base.get(k)
        }
        if mismatched:
            raise ValueError(f"Q-table geometry mismatch in merge: {mismatched}")
    n = len(states)
    if n == 1:
        # Degenerate merge: still re-quantize, so one-shard federation
        # is the identity (values already live on the grid).
        tables = [
            [
                [
                    [round(v / quantum) * quantum for v in row]
                    for row in subtable
                ]
                for subtable in feature
            ]
            for feature in base["tables"]
        ]
    else:
        all_tables = [s["tables"] for s in states]
        tables = []
        for f, base_feature in enumerate(all_tables[0]):
            feature_out: List[List[List[float]]] = []
            for k, base_subtable in enumerate(base_feature):
                rows_out: List[List[float]] = []
                for r, base_row in enumerate(base_subtable):
                    row_out: List[float] = []
                    for a in range(len(base_row)):
                        # Sorted before summing: the sum (and thus the
                        # mean) is independent of shard order.
                        values = sorted(t[f][k][r][a] for t in all_tables)
                        total = 0.0
                        for v in values:
                            total += v
                        row_out.append(round(total / n / quantum) * quantum)
                    rows_out.append(row_out)
                feature_out.append(rows_out)
            tables.append(feature_out)
    return {
        "version": base["version"],
        "num_features": base["num_features"],
        "num_subtables": base["num_subtables"],
        "rows": base["rows"],
        "num_actions": base["num_actions"],
        "tables": tables,
        "lookups": sum(int(s.get("lookups", 0)) for s in states),
        "updates": sum(int(s.get("updates", 0)) for s in states),
    }


def _numpy_tick_arrays(agents: Sequence) -> Optional[list]:
    """The fleet's integer tick arrays when *every* agent runs the
    numpy backend with matching geometry, else None (generic path)."""
    ticks = []
    for agent in agents:
        arr = getattr(agent.qtable, "_ticks", None)
        if arr is None:
            return None
        ticks.append(arr)
    shape = ticks[0].shape
    if any(t.shape != shape for t in ticks[1:]):
        return None  # geometry mismatch: let the generic merge raise
    return ticks


def _federate_numpy(agents: Sequence, ticks: list) -> dict:
    """Vectorized federation round over numpy-backend agents.

    Sums the integer tick arrays (exact, order independent), averages
    once in float64, and rounds half-to-even — the same value the
    scalar merge computes entry by entry, because the power-of-two
    quantum scales in and out of the division without changing any
    rounding decision.
    """
    import numpy as np

    n = len(ticks)
    total = ticks[0].astype(np.int64)
    for arr in ticks[1:]:
        total += arr.astype(np.int64)
    if n == 1:
        merged_ticks = total.astype(np.float64)
    else:
        merged_ticks = np.rint(total / n)
    for agent in agents:
        qt = agent.qtable
        # Fresh per-agent array (never shared): shards keep training
        # independently between federation rounds.
        qt._ticks = merged_ticks.astype(qt._dtype)
        qt._views = [qt._ticks[f] for f in range(qt.num_features)]
    qt0 = agents[0].qtable
    return {
        "version": 1,
        "num_features": qt0.num_features,
        "num_subtables": qt0.num_subtables,
        "rows": qt0.rows,
        "num_actions": int(total.shape[3]),
        "tables": (merged_ticks * qt0._quantum).tolist(),
        "lookups": sum(int(agent.qtable.lookups) for agent in agents),
        "updates": sum(int(agent.qtable.updates) for agent in agents),
    }


def federate_agents(agents: Sequence) -> dict:
    """One federation round over live agents (in place).

    Snapshots every agent's Q-table, merges, loads the merged table
    back into each — preserving each agent's own lookup/update counters
    and leaving exploration RNG state untouched.  Returns the merged
    snapshot (for persistence or obs).  All-numpy fleets skip the
    nested-list snapshots entirely and merge on the tick arrays
    (bit-identical; see module docstring).
    """
    if not agents:
        raise ValueError("cannot federate zero agents")
    ticks = _numpy_tick_arrays(agents)
    if ticks is not None:
        return _federate_numpy(agents, ticks)
    states = [agent.qtable.state_dict() for agent in agents]
    merged = merge_qtable_states(states, agents[0].qtable._quantum)
    for agent in agents:
        lookups, updates = agent.qtable.lookups, agent.qtable.updates
        agent.qtable.load_state_dict(merged)
        agent.qtable.lookups, agent.qtable.updates = lookups, updates
    return merged
