"""The ``cluster`` experiment: fleet configurations head to head.

One registered experiment (import-time, like the serve experiments)
comparing four fleets of identical total capacity on the ``zipf_scan``
admission workload:

* ``lru``            — 4-shard LRU fleet (the non-learned baseline);
* ``chrome``         — 4 isolated CHROME agents (each learns only from
  its ring slice);
* ``chrome+fed``     — the same fleet with periodic Q-table federation
  and hot-key splitting;
* ``chrome+fed+kill``— the federated fleet with shard 2 killed mid-run
  via FaultConfig outage windows: the ring reroutes around it, heals
  when it returns, and the row quantifies the damage.

The note at the bottom prints the comparison the bench gate formalizes:
fleet-aggregate byte hit of the federated fleet vs. the *best isolated
shard* of the unfederated one.
"""

from __future__ import annotations

from typing import List, Mapping, Tuple

from ..experiments.engine import ExperimentPlan
from ..experiments.registry import register_experiment
from ..experiments.report import ExperimentResult
from ..experiments.runner import ExperimentScale

# NOTE: sibling cluster modules and serve run-size helpers are imported
# lazily inside the builders — this module loads mid-import of both
# ``repro.cluster`` (package init) and ``repro.serve`` (the experiments
# package's eager registration), before either has finished.

NUM_SHARDS = 4
REPLICATION = 2

#: which shard the chaos scenario kills (mid-ring, nothing special)
KILLED_SHARD = 2


def kill_fault_params(
    scale: ExperimentScale, seed: int = 3
) -> Tuple[Tuple[str, object], ...]:
    """Outage windows that take one shard down for ~25% of the run.

    ``outage_every_ms`` equals the virtual horizon, so exactly one
    window lands inside the run (its jittered start is always early
    enough for the full outage to fit); the ring loses the shard, heals
    around it, and gets it back before the run ends.
    """
    from ..serve.experiments import INTER_ARRIVAL_MS

    horizon = (scale.accesses_per_core + scale.warmup_per_core) * INTER_ARRIVAL_MS
    return (
        ("seed", seed),
        ("outage_every_ms", round(horizon, 3)),
        ("outage_duration_ms", round(horizon / 4.0, 3)),
    )


def cluster_job(
    scale: ExperimentScale,
    policy: str,
    *,
    federate: bool = False,
    kill: bool = False,
    seed: int = 0,
):
    from ..serve.experiments import NUM_SEGMENTS, serve_capacity
    from .jobs import ClusterJob

    num_requests = scale.accesses_per_core
    return ClusterJob(
        workload="zipf_scan",
        policy=policy,
        num_requests=num_requests,
        warmup_requests=scale.warmup_per_core,
        capacity_bytes=serve_capacity(scale),
        num_segments=NUM_SEGMENTS,
        num_shards=NUM_SHARDS,
        replication=REPLICATION,
        num_clients=8,
        seed=seed,
        federate_every=max(1, num_requests // 8) if federate else 0,
        hotkey_window=max(256, num_requests // 16) if federate else 0,
        kill_shard=KILLED_SHARD if kill else -1,
        kill_fault_params=kill_fault_params(scale) if kill else (),
    )


def cluster_plan(scale: ExperimentScale) -> ExperimentPlan:
    jobs = {
        "lru": cluster_job(scale, "lru"),
        "chrome": cluster_job(scale, "chrome"),
        "chrome+fed": cluster_job(scale, "chrome", federate=True),
        "chrome+fed+kill": cluster_job(
            scale, "chrome", federate=True, kill=True
        ),
    }

    def assemble(results: Mapping) -> ExperimentResult:
        rows: List[List[object]] = []
        for name, job in jobs.items():
            cm = results[job]
            fleet = cm.fleet
            rows.append(
                [
                    name,
                    round(100.0 * fleet.object_hit_ratio, 2),
                    round(100.0 * fleet.byte_hit_ratio, 2),
                    round(fleet.p99_latency_ms, 2),
                    cm.reroutes,
                    cm.ring_changes,
                    cm.federations,
                    cm.hot_splits,
                ]
            )
        isolated = results[jobs["chrome"]]
        federated = results[jobs["chrome+fed"]]
        killed = results[jobs["chrome+fed+kill"]]
        best_isolated = max(
            m.byte_hit_ratio for m in isolated.per_shard
        )
        notes = [
            "federated fleet byte hit "
            f"{100.0 * federated.fleet.byte_hit_ratio:.2f}% vs best "
            f"isolated shard {100.0 * best_isolated:.2f}%",
            f"shard {KILLED_SHARD} kill: {killed.reroutes} reroutes, "
            f"{killed.ring_changes} ring changes, byte hit "
            f"{100.0 * killed.fleet.byte_hit_ratio:.2f}%",
        ]
        return ExperimentResult(
            experiment_id="cluster",
            title=(
                f"{NUM_SHARDS}-shard cache fleet: consistent hashing, "
                "federation, shard kill"
            ),
            columns=[
                "fleet",
                "object_hit%",
                "byte_hit%",
                "p99_ms",
                "reroutes",
                "ring_changes",
                "federations",
                "hot_splits",
            ],
            rows=rows,
            notes=notes,
        )

    return ExperimentPlan(
        experiment_id="cluster",
        jobs=tuple(jobs.values()),
        assemble=assemble,
    )


def _register() -> None:
    def runner_fn(runner):
        return runner.run_plan(cluster_plan(runner.scale))

    register_experiment("cluster", runner_fn, plan=cluster_plan)


_register()
