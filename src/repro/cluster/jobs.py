"""Declarative cluster jobs for the parallel experiment engine.

:class:`ClusterJob` follows the :class:`~repro.serve.jobs.ServeJob`
contract exactly — frozen, hashable, entirely self-describing, with a
namespaced ``canonical()`` tuple — so the engine schedules, dedups and
disk-caches fleet runs with zero new engine code (it dispatches on
``job.execute()``).

``capacity_bytes`` is **total fleet capacity**, split evenly across
shards: a 4-shard fleet and a 1-shard "fleet" of the same
``capacity_bytes`` cache the same number of bytes, which is what makes
federated-vs-isolated comparisons fair (the bench gate relies on it).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

from ..serve.config import ServiceConfig, build_fault_config
from ..serve.faults import FaultConfig
from ..serve.workloads import build_workload
from .cluster import ClusterMetrics, run_cluster

#: Bump when cluster semantics change in a way that must invalidate
#: previously cached cluster results.
CLUSTER_CODE_VERSION = "cluster-1"


@dataclass(frozen=True)
class ClusterJob:
    """One schedulable fleet run: (workload, policy, ring, fleet shape)."""

    workload: str
    policy: str
    num_requests: int
    warmup_requests: int
    capacity_bytes: int  # TOTAL fleet capacity, split across shards
    num_segments: int  # per shard
    num_shards: int = 4
    replication: int = 2
    vnodes: int = 64
    num_clients: int = 8
    seed: int = 0
    workload_params: Tuple[Tuple[str, object], ...] = ()
    policy_params: Tuple[Tuple[str, object], ...] = ()
    checkpoint_every: int = 0
    federate_every: int = 0
    hotkey_window: int = 0
    hotkey_top_k: int = 8
    hotkey_min_count: int = 16
    #: per-shard origin chaos (FaultConfig.params()); empty = healthy
    fault_params: Tuple[Tuple[str, object], ...] = ()
    #: ring-level shard kill: which shard dies, and the FaultConfig
    #: whose outage windows define *when* (empty = no kill)
    kill_shard: int = -1
    kill_fault_params: Tuple[Tuple[str, object], ...] = ()

    @property
    def label(self) -> str:
        suffix = ""
        if self.kill_fault_params:
            suffix += f" +kill{self.kill_shard}"
        if self.federate_every:
            suffix += " +fed"
        return (
            f"cluster:{self.workload} {self.policy} "
            f"x{self.num_shards}{suffix}"
        )

    def canonical(self) -> Tuple:
        """Stable literal-only identity (cache key + dedup key)."""
        return (
            "cluster",
            CLUSTER_CODE_VERSION,
            self.workload,
            self.workload_params,
            self.policy,
            self.policy_params,
            self.num_requests,
            self.warmup_requests,
            self.capacity_bytes,
            self.num_segments,
            self.num_shards,
            self.replication,
            self.vnodes,
            self.num_clients,
            self.seed,
            self.checkpoint_every,
            self.federate_every,
            self.hotkey_window,
            self.hotkey_top_k,
            self.hotkey_min_count,
            self.fault_params,
            self.kill_shard,
            self.kill_fault_params,
        )

    def service_config(self) -> ServiceConfig:
        """The fleet-level runtime spec (per-shard variants derive
        from it inside :class:`~repro.cluster.cluster.ClusterService`)."""
        return ServiceConfig.from_params(
            capacity_bytes=self.capacity_bytes,
            num_segments=self.num_segments,
            policy=self.policy,
            policy_params=self.policy_params,
            num_clients=self.num_clients,
            warmup_requests=self.warmup_requests,
            checkpoint_every=self.checkpoint_every,
            seed=self.seed,
            workload_name=self.workload,
            fault_params=self.fault_params,
        )

    def build_kill_faults(self) -> Optional[FaultConfig]:
        """The shard-kill outage spec (None = no kill scheduled)."""
        return build_fault_config(self.kill_fault_params)

    def execute(self, obs=None) -> ClusterMetrics:
        """Run this fleet from its spec alone (pure given the spec)."""
        total = self.num_requests + self.warmup_requests
        requests = build_workload(
            self.workload, total, seed=self.seed, **dict(self.workload_params)
        )
        session = None
        if obs is not None:
            digest = hashlib.sha256(
                repr(self.canonical()).encode()
            ).hexdigest()[:10]
            session = obs.session(
                f"cluster-{self.workload}-{self.policy}-{digest}"
            )
        metrics = run_cluster(
            requests,
            self.service_config(),
            self.num_shards,
            replication=self.replication,
            vnodes=self.vnodes,
            federate_every=self.federate_every,
            hotkey_window=self.hotkey_window,
            hotkey_top_k=self.hotkey_top_k,
            hotkey_min_count=self.hotkey_min_count,
            kill_shard=self.kill_shard,
            kill_faults=self.build_kill_faults(),
            obs=session,
        )
        if session is not None:
            session.export()
        return metrics
