"""Windowed top-k hot-key detection with replica splitting.

A handful of keys usually dominate cache traffic (the Zipf head), and
under consistent hashing each of them lands on exactly one shard — the
classic hot-partition problem.  The detector runs the textbook
mitigation, kept deterministic:

* **windowed top-k by frequency** — every ``window`` requests the
  detector closes its counting window and promotes the top ``top_k``
  keys (count >= ``min_count``) to the *hot set* for the next window.
  Tie-break is ``(-count, key)``, so the hot set is a pure function of
  the request stream, independent of dict iteration order;
* **key splitting** — a hot key stops pinning to its primary: the
  cluster rotates it across its live replica set (round-robin by
  global sequence number), so its load — and its bytes — spread over R
  shards.  Splitting trades some duplicate bytes for shard balance,
  exactly the trade real fleets make;
* **eviction tap** — :meth:`HotKeyDetector.on_evict` subscribes to
  each shard store's eviction stream (the multi-listener hook this PR
  adds to :class:`~repro.serve.store.ObjectStore`) and counts hot keys
  being evicted: sustained hot evictions mean the split factor or the
  shard capacity is losing to the working set.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple


class HotKeyDetector:
    """Deterministic windowed top-k frequency tracker."""

    def __init__(
        self, window: int = 1024, top_k: int = 8, min_count: int = 16
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        self.window = window
        self.top_k = top_k
        self.min_count = min_count
        self._counts: Dict[int, int] = {}
        self._hot: FrozenSet[int] = frozenset()
        #: windows closed so far / distinct promotions (telemetry)
        self.windows = 0
        self.promotions = 0
        self.hot_evictions = 0

    def observe(self, key: int) -> None:
        """Count one request for ``key`` in the current window."""
        self._counts[key] = self._counts.get(key, 0) + 1

    def roll(self) -> Tuple[int, ...]:
        """Close the window: promote its top-k, reset the counts.

        Returns the new hot set (sorted, for stable obs rows).  Callers
        invoke this at fixed global-sequence boundaries, which is what
        keeps hot sets identical at any client count.
        """
        ranked: List[Tuple[int, int]] = sorted(
            ((count, key) for key, count in self._counts.items()
             if count >= self.min_count),
            key=lambda item: (-item[0], item[1]),
        )
        hot = frozenset(key for _, key in ranked[: self.top_k])
        self.promotions += len(hot - self._hot)
        self._hot = hot
        self._counts = {}
        self.windows += 1
        return tuple(sorted(hot))

    def is_hot(self, key: int) -> bool:
        return key in self._hot

    @property
    def hot_keys(self) -> Tuple[int, ...]:
        return tuple(sorted(self._hot))

    # --- eviction subscriber (ObjectStore.add_evict_listener) ---------------------

    def on_evict(self, obj) -> None:
        """Store eviction tap: count currently-hot keys being evicted."""
        if obj.key in self._hot:
            self.hot_evictions += 1
