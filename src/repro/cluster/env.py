"""The sharded fleet as an :class:`~repro.env.protocol.Environment`.

The cluster domain binding: per-shard
:class:`~repro.serve.agent.ServeAgent` instances (the serve binding of
the shared :class:`~repro.env.driver.AgentCore`) behind the consistent
ring, with optional Q-table federation.  The snapshot seam is
fleet-shaped — :meth:`ClusterService.agent_states` already speaks the
broadcast / per-shard restore discipline the ops rollback uses, so the
adapter delegates verbatim.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, List, Optional

from ..env.protocol import Environment
from ..env.registry import register_environment
from ..serve.config import ServiceConfig
from ..serve.workloads import build_workload
from .cluster import ClusterService


class ClusterEnvironment(Environment):
    """One CHROME-managed cache fleet, run over a workload stream."""

    name = "cluster"
    snapshot_kind = "serve-agent"

    def __init__(
        self,
        *,
        workload: str = "zipf_scan",
        num_requests: int = 900,
        warmup_requests: int = 0,
        num_shards: int = 3,
        capacity_bytes: int = 1 << 20,
        num_segments: int = 64,
        seed: int = 17,
        federate_every: int = 0,
        backend: Optional[str] = None,
    ) -> None:
        self._num_requests = num_requests
        self.config = ServiceConfig.from_params(
            capacity_bytes=capacity_bytes,
            num_segments=num_segments,
            policy="chrome",
            num_clients=1,
            warmup_requests=warmup_requests,
            seed=seed,
            workload_name=workload,
            backend=backend,
        )
        self.cluster = ClusterService(
            self.config, num_shards, federate_every=federate_every
        )

    def run(self) -> Dict[str, object]:
        requests = build_workload(
            self.config.workload_name,
            self._num_requests + self.config.warmup_requests,
            seed=self.config.seed,
        )
        for seq, req in enumerate(requests):
            self.cluster.process(seq, req)
        return asdict(self.cluster.finalize())

    def agent_states(self) -> List[dict]:
        return self.cluster.agent_states()

    def load_agent_states(
        self, states: List[dict], *, keep_rng: bool = False
    ) -> None:
        self.cluster.load_agent_states(states, keep_rng=keep_rng)


register_environment("cluster", ClusterEnvironment)
