"""``repro.ops`` — deterministic live operations for the serving tiers.

Production cache fleets are not just *run*, they are *operated*: new
policies are evaluated in shadow before they touch traffic, promoted
when they win, and rolled back automatically when a deploy goes bad.
This package reproduces that whole loop on top of the repo's
determinism discipline — every decision is a pure function of the
global request sequence and seeded metrics, so an entire operational
history (snapshots, promotions, trips, rollbacks) is bit-identical at
any client count and across process boundaries.

* :class:`~repro.ops.config.OpsConfig` — the frozen spec (window size,
  challenger policy, promotion/guardrail thresholds, snapshot cadence);
* :class:`~repro.ops.shadow.ShadowHarness` — an isolated challenger
  service fed the champion's ticket-sequenced request stream, with
  zero effect on served results;
* :class:`~repro.ops.guardrail.Guardrail` — obs-derived window signals
  (p99, byte-hit EWMA, error/shed/breaker fractions) against
  thresholds, with arming, streaks and post-rollback cooldown;
* :class:`~repro.ops.snapshots.SnapshotRing` — bounded last-known-good
  agent snapshots (also the cluster warm-start vehicle);
* :class:`~repro.ops.controller.OpsController` — the window-boundary
  pipeline tying it together, over a single service or a whole fleet;
  :func:`~repro.ops.controller.run_ops` /
  :func:`~repro.ops.controller.run_cluster_ops` are the entry points;
* :class:`~repro.ops.events.OpsEventLog` — the versioned record every
  transition lands in (and the thing the determinism golden pins).
"""

from .config import OpsConfig
from .controller import (
    OpsController,
    OpsResult,
    run_cluster_ops,
    run_ops,
    sabotaged_states,
)
from .events import (
    EVENT_DEGRADE,
    EVENT_PROMOTE,
    EVENT_ROLLBACK,
    EVENT_SNAPSHOT,
    EVENT_TRIP,
    OPS_EVENT_VERSION,
    OpsEvent,
    OpsEventLog,
)
from .guardrail import Guardrail, GuardrailVerdict
from .shadow import ShadowHarness
from .snapshots import SnapshotRing, load_fleet_states, save_fleet_states

__all__ = [
    "EVENT_DEGRADE",
    "EVENT_PROMOTE",
    "EVENT_ROLLBACK",
    "EVENT_SNAPSHOT",
    "EVENT_TRIP",
    "Guardrail",
    "GuardrailVerdict",
    "OPS_EVENT_VERSION",
    "OpsConfig",
    "OpsController",
    "OpsEvent",
    "OpsEventLog",
    "OpsResult",
    "ShadowHarness",
    "SnapshotRing",
    "load_fleet_states",
    "run_cluster_ops",
    "run_ops",
    "sabotaged_states",
    "save_fleet_states",
]
