"""Declarative ops jobs for the parallel experiment engine.

An :class:`OpsJob` is a :class:`~repro.serve.jobs.ServeJob` with an
ops control loop attached: the same frozen, hashable, self-describing
spec discipline, plus an ``ops_params`` spec tuple rebuilt into an
:class:`~repro.ops.config.OpsConfig` at execution time.  ``num_shards``
selects the champion tier — ``0`` runs a single
:class:`~repro.serve.service.CacheService`, ``>= 1`` a
:class:`~repro.cluster.cluster.ClusterService` fleet — under the same
controller either way.

The result is an :class:`~repro.ops.controller.OpsResult` (picklable,
value-equal), so ops jobs flow through the engine's memo/disk caches
and the ``--jobs 1`` vs ``--jobs N`` bit-identity checks exactly like
serve and cluster jobs do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..serve.config import ServiceConfig
from ..serve.workloads import build_workload
from .config import OpsConfig
from .controller import OpsResult, run_cluster_ops, run_ops

#: Bump when ops semantics change in a way that must invalidate
#: previously cached ops results.
OPS_CODE_VERSION = "ops-1"


@dataclass(frozen=True)
class OpsJob:
    """One schedulable ops-managed run (serve or cluster champion)."""

    workload: str
    policy: str
    num_requests: int
    warmup_requests: int
    capacity_bytes: int
    num_segments: int
    num_clients: int = 8
    seed: int = 0
    workload_params: Tuple[Tuple[str, object], ...] = ()
    policy_params: Tuple[Tuple[str, object], ...] = ()
    checkpoint_every: int = 0
    #: OpsConfig.params() spec tuples; empty = the inert default config
    ops_params: Tuple[Tuple[str, object], ...] = ()
    #: 0 = single-service champion; >= 1 = cluster fleet champion
    num_shards: int = 0
    replication: int = 2
    federate_every: int = 0

    @property
    def label(self) -> str:
        tier = f" x{self.num_shards}" if self.num_shards else ""
        return f"ops:{self.workload} {self.policy}{tier}"

    def canonical(self) -> Tuple:
        """Stable literal-only identity (cache key + dedup key)."""
        return (
            "ops",
            OPS_CODE_VERSION,
            self.workload,
            self.workload_params,
            self.policy,
            self.policy_params,
            self.num_requests,
            self.warmup_requests,
            self.capacity_bytes,
            self.num_segments,
            self.num_clients,
            self.seed,
            self.checkpoint_every,
            self.ops_params,
            self.num_shards,
            self.replication,
            self.federate_every,
        )

    def service_config(self) -> ServiceConfig:
        """The champion's runtime spec."""
        return ServiceConfig.from_params(
            capacity_bytes=self.capacity_bytes,
            num_segments=self.num_segments,
            policy=self.policy,
            policy_params=self.policy_params,
            num_clients=self.num_clients,
            warmup_requests=self.warmup_requests,
            checkpoint_every=self.checkpoint_every,
            seed=self.seed,
            workload_name=self.workload,
        )

    def ops_config(self) -> OpsConfig:
        """The control-loop spec this job carries."""
        return OpsConfig.from_params(self.ops_params)

    def execute(self, obs=None) -> OpsResult:
        """Run this job from its spec alone (pure given the spec)."""
        total = self.num_requests + self.warmup_requests
        requests = build_workload(
            self.workload, total, seed=self.seed, **dict(self.workload_params)
        )
        session = None
        if obs is not None:
            import hashlib

            digest = hashlib.sha256(
                repr(self.canonical()).encode()
            ).hexdigest()[:10]
            session = obs.session(f"ops-{self.workload}-{self.policy}-{digest}")
        config = self.service_config()
        ops = self.ops_config()
        if self.num_shards:
            result = run_cluster_ops(
                requests,
                config,
                self.num_shards,
                ops,
                replication=self.replication,
                federate_every=self.federate_every,
                obs=session,
            )
        else:
            result = run_ops(requests, config, ops, obs=session)
        if session is not None:
            session.export()
        return result
