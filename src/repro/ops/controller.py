"""The ops control loop: shadow, promote, guard, roll back — deterministically.

:class:`OpsController` is the one place live-operations decisions are
made.  It installs itself as the per-request *tap* of a champion
service (single :class:`~repro.serve.service.CacheService` or whole
:class:`~repro.cluster.cluster.ClusterService` — both expose the same
four seams: ``attach_ops_tap`` / ``signal_recorders`` /
``agent_states`` / ``load_agent_states``), duplicates each request into
the optional shadow challenger, and at every window boundary
``(seq + 1) % window == 0`` runs the evaluation pipeline:

1. read champion (and challenger) :class:`~repro.obs.signals.WindowSignals`;
2. record the window row (champion-vs-challenger deltas, guardrail state);
3. **promotion** — if the challenger has out-hit the champion for
   ``promote_after`` consecutive measured windows, snapshot the
   champion to the ring and hot-swap the challenger's learned state in
   (Q-table only; the champion keeps its own RNG stream — the same
   discipline cluster federation uses);
4. **guardrail** — fold the window into the
   :class:`~repro.ops.guardrail.Guardrail`; on a trip, restore the
   newest ring snapshot (full restore, RNG included) and start the
   cooldown;
5. **snapshot** — every ``snapshot_every`` healthy measured windows,
   push the champion's learned state as the new last-known-good;
6. **degradation injection** (benches/CI only) — at the configured
   window, overwrite the champion's Q-tables with the worst on-grid
   policy (everything admitted at evict-first priority), simulating a
   bad model deploy that the guardrail must catch.

Every step runs inside the sequenced section at a fixed global
sequence number, and every input is a pure function of (seed, seq), so
the entire event log — trips, rollbacks, promotions, snapshot ids — is
bit-identical at ``num_clients=1`` and ``num_clients=64`` and across
process boundaries (the ``ops_determinism`` golden pins whole runs).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.config import ACTION_BYPASS
from ..obs.signals import SignalReader, WindowSignals
from ..serve.config import LatencyConfig, ServiceConfig
from ..serve.metrics import MetricsRecorder, ServeMetrics
from ..serve.service import CacheService, _drive, replay_requests
from ..serve.store import ObjectStore
from ..serve.workloads import Request
from .config import OpsConfig
from .events import (
    EVENT_DEGRADE,
    EVENT_PROMOTE,
    EVENT_ROLLBACK,
    EVENT_SNAPSHOT,
    EVENT_TRIP,
    OpsEventLog,
)
from .guardrail import Guardrail
from .shadow import ShadowHarness
from .snapshots import SnapshotRing


def sabotaged_states(states: List[dict]) -> List[dict]:
    """The worst on-grid policy, shaped like the given agent snapshots.

    Every Q-row becomes ``[clamp_hi at ACTION_BYPASS, clamp_lo, ...]``:
    the agent then bypasses every miss, so the cache *freezes* — no
    admissions, no evictions, serving only whatever happened to be
    cached at injection time.  On any workload whose popularity drifts
    (phases, scans, bursts) byte-hit collapses as the frozen content
    goes stale, and the resulting miss flood queues at the origin
    (p99 rises).  Both clamp bounds sit exactly on the snapshot
    config's fixed-point grid, so the states load cleanly through the
    grid-validated persistence path; this is the deterministic "bad
    model deploy" the guardrail benches and CI smoke inject.
    """
    out = []
    for state in states:
        cfg = state["config"]
        quantum = 1.0 / (1 << cfg["q_fixed_point_fraction_bits"])
        limit = (1 << (cfg["q_value_bits"] - 1)) * quantum
        hi, lo = limit - quantum, -limit
        qt = state["qtable"]
        row = [hi if a == ACTION_BYPASS else lo for a in range(qt["num_actions"])]
        tables = [
            [[list(row) for _ in subtable] for subtable in feature]
            for feature in qt["tables"]
        ]
        out.append({**state, "qtable": {**qt, "tables": tables}})
    return out


@dataclass
class OpsResult:
    """Complete, value-equal result of one ops-managed run."""

    #: the served metrics (ServeMetrics, or ClusterMetrics for a fleet)
    champion: object
    #: the shadow challenger's metrics (None when no shadow ran)
    challenger: Optional[ServeMetrics] = None
    #: one row per evaluation window (champion/challenger/guardrail view)
    windows: List[dict] = field(default_factory=list)
    #: the versioned OpsEvent log as JSON-ready rows
    events: List[dict] = field(default_factory=list)
    snapshots: int = 0
    promotions: int = 0
    trips: int = 0
    rollbacks: int = 0
    degradations: int = 0


class OpsController:
    """Window-boundary decision loop over one champion service."""

    def __init__(
        self,
        service,
        ops: OpsConfig,
        *,
        latency: Optional[LatencyConfig] = None,
        shadow: Optional[ShadowHarness] = None,
        obs=None,
    ) -> None:
        if ops.window < 1:
            raise ValueError("ops window must be >= 1")
        self.service = service
        self.ops = ops
        self.latency = latency or LatencyConfig()
        self.shadow = shadow
        self.guardrail = Guardrail(ops) if ops.guard_enabled else None
        self.ring = SnapshotRing(ops.ring_capacity)
        self.log = OpsEventLog()
        self.windows: List[dict] = []
        self._reader = SignalReader(service.signal_recorders())
        self._shadow_reader = (
            SignalReader([shadow.recorder]) if shadow is not None else None
        )
        self._window_index = -1
        self._healthy_windows = 0
        self._win_streak = 0
        self._obs = obs
        self.snapshots = 0
        self.promotions = 0
        self.trips = 0
        self.rollbacks = 0
        self.degradations = 0
        service.attach_ops_tap(self.on_request)

    # --- the per-request tap --------------------------------------------------------

    def on_request(self, seq: int, req: Request) -> None:
        """Called by the champion inside the sequenced section."""
        if self.shadow is not None:
            self.shadow.process(seq, req)
        if (seq + 1) % self.ops.window == 0:
            self._window_index += 1
            self._evaluate(self._window_index, seq)

    # --- the window-boundary pipeline -----------------------------------------------

    def _evaluate(self, window: int, seq: int) -> None:
        now_ms = seq * self.latency.inter_arrival_ms
        champ = self._reader.read()
        chall = (
            self._shadow_reader.read() if self._shadow_reader is not None else None
        )
        row = self._record_window(window, seq, now_ms, champ, chall)
        if chall is not None:
            self._check_promotion(window, seq, now_ms, champ, chall)
        suspect = self._check_guardrail(window, seq, now_ms, champ, row)
        self._maybe_snapshot(window, seq, now_ms, champ, suspect)
        if window == self.ops.degrade_at_window:
            self._inject_degradation(window, seq, now_ms)

    def _record_window(
        self,
        window: int,
        seq: int,
        now_ms: float,
        champ: WindowSignals,
        chall: Optional[WindowSignals],
    ) -> dict:
        row: Dict[str, object] = {"window": window, "seq": seq, "now_ms": now_ms}
        for key, value in champ.as_row().items():
            row[f"champion_{key}"] = value
        if chall is not None:
            for key, value in chall.as_row().items():
                row[f"challenger_{key}"] = value
            row["delta_byte_hit"] = chall.byte_hit - champ.byte_hit
            row["delta_p99_ms"] = chall.p99_ms - champ.p99_ms
        self.windows.append(row)
        if self._obs is not None:
            self._obs.timeline.record("ops_window", **row)
        return row

    def _check_promotion(
        self,
        window: int,
        seq: int,
        now_ms: float,
        champ: WindowSignals,
        chall: WindowSignals,
    ) -> None:
        ops = self.ops
        if ops.promote_after <= 0 or self.promotions:
            return  # promotion disabled, or already deployed this run
        if champ.requests == 0 or chall.requests == 0:
            return  # warmup / empty window: no verdict
        if chall.byte_hit >= champ.byte_hit + ops.promote_margin:
            self._win_streak += 1
        else:
            self._win_streak = 0
        if self._win_streak < ops.promote_after:
            return
        # The outgoing champion is the state rollback would return to.
        self.ring.push(window, self.service.agent_states())
        self.snapshots += 1
        self.service.load_agent_states(self.shadow.agent_states(), keep_rng=True)
        self.promotions += 1
        self._win_streak = 0
        event = self.log.append(
            EVENT_PROMOTE,
            window,
            seq,
            now_ms,
            challenger=self.shadow.policy.name,
            win_streak=self.ops.promote_after,
            champion_byte_hit=champ.byte_hit,
            challenger_byte_hit=chall.byte_hit,
        )
        self._emit(event)

    def _check_guardrail(
        self,
        window: int,
        seq: int,
        now_ms: float,
        champ: WindowSignals,
        row: dict,
    ) -> bool:
        """Returns whether this window is suspect (blocks snapshots)."""
        if self.guardrail is None:
            return False
        verdict = self.guardrail.observe(champ)
        row["byte_hit_ewma"] = verdict.byte_hit_ewma
        row["guard_streak"] = verdict.streak
        row["guard_armed"] = verdict.armed
        row["guard_suspect"] = verdict.suspect
        if not verdict.tripped:
            return verdict.suspect
        self.trips += 1
        event = self.log.append(
            EVENT_TRIP,
            window,
            seq,
            now_ms,
            breaches=[
                [name, value, threshold]
                for name, value, threshold in verdict.breaches
            ],
            streak=verdict.streak,
        )
        self._emit(event)
        latest = self.ring.pop_latest()
        if latest is None:
            return True  # nothing known-good yet: trip is logged, no swap
        # Rollback consumes the entry it restores: if this state trips
        # again (a poisoned snapshot captured while a bad deploy was
        # still coasting), the next rollback walks one entry further
        # back instead of restoring the same bad state forever.
        good_window, states = latest
        self.service.load_agent_states(states, keep_rng=False)
        self.guardrail.reset_after_rollback()
        self.rollbacks += 1
        event = self.log.append(
            EVENT_ROLLBACK,
            window,
            seq,
            now_ms,
            restored_window=good_window,
            agents=len(states),
        )
        self._emit(event)
        return True

    def _maybe_snapshot(
        self,
        window: int,
        seq: int,
        now_ms: float,
        champ: WindowSignals,
        suspect: bool,
    ) -> None:
        ops = self.ops
        if ops.snapshot_every <= 0 or champ.requests == 0 or suspect:
            return
        self._healthy_windows += 1
        if self._healthy_windows % ops.snapshot_every:
            return
        self.ring.push(window, self.service.agent_states())
        self.snapshots += 1
        event = self.log.append(
            EVENT_SNAPSHOT,
            window,
            seq,
            now_ms,
            ring_depth=len(self.ring),
            healthy_windows=self._healthy_windows,
        )
        self._emit(event)

    def _inject_degradation(self, window: int, seq: int, now_ms: float) -> None:
        bad = sabotaged_states(self.service.agent_states())
        self.service.load_agent_states(bad, keep_rng=True)
        self.degradations += 1
        event = self.log.append(
            EVENT_DEGRADE, window, seq, now_ms, agents=len(bad)
        )
        self._emit(event)

    def _emit(self, event) -> None:
        if self._obs is not None:
            self._obs.timeline.record("ops_event", **event.to_dict())

    # --- results --------------------------------------------------------------------

    def result(self, champion_metrics) -> OpsResult:
        challenger = self.shadow.finalize() if self.shadow is not None else None
        return OpsResult(
            champion=champion_metrics,
            challenger=challenger,
            windows=list(self.windows),
            events=self.log.to_rows(),
            snapshots=self.snapshots,
            promotions=self.promotions,
            trips=self.trips,
            rollbacks=self.rollbacks,
            degradations=self.degradations,
        )


def run_ops(
    requests: Sequence[Request],
    config: ServiceConfig,
    ops: OpsConfig,
    *,
    obs=None,
) -> OpsResult:
    """Run a single champion service under the ops control loop.

    Mirrors :func:`~repro.serve.service.run_configured` exactly — with
    an all-defaults (inert) :class:`OpsConfig` the champion metrics are
    byte-identical to a plain ``run_configured`` run, and with a shadow
    attached they *still* are (the zero-impact contract the ops tests
    and goldens pin).
    """
    policy = config.build_policy()
    recorder = MetricsRecorder(
        policy=policy.name,
        workload=config.workload_name,
        checkpoint_every=config.checkpoint_every,
    )
    store = ObjectStore(config.capacity_bytes, config.num_segments, policy)
    service = CacheService(
        store,
        recorder=recorder,
        warmup_requests=config.warmup_requests,
        obs=obs,
        config=config,
    )
    from ..core.backend import resolve_backend

    if resolve_backend(config.backend) == "numpy":
        keys = [req.key for req in requests]
        for start in range(0, len(keys), 4096):
            store.preclassify(keys[start : start + 4096])
    shadow = ShadowHarness(config, ops) if ops.shadow_enabled else None
    controller = OpsController(
        service,
        ops,
        latency=config.latency,
        shadow=shadow,
        obs=obs,
    )
    if config.num_clients <= 1:
        replay_requests(service, requests)
    else:
        asyncio.run(_drive(service, requests, config.num_clients))
    metrics = recorder.finalize()
    metrics.telemetry = dict(policy.telemetry())
    service.obs_summary(metrics)
    return controller.result(metrics)


def run_cluster_ops(
    requests: Sequence[Request],
    config: ServiceConfig,
    num_shards: int,
    ops: OpsConfig,
    *,
    replication: int = 2,
    vnodes: int = 64,
    federate_every: int = 0,
    hotkey_window: int = 0,
    hotkey_top_k: int = 8,
    hotkey_min_count: int = 16,
    kill_shard: int = -1,
    kill_faults=None,
    obs=None,
) -> OpsResult:
    """Run a sharded fleet under the ops control loop.

    The controller sees the whole fleet as one service: signals sum
    across shard recorders (window p99 over the union of samples),
    snapshots carry one agent state per shard, rollback restores all
    shards to the same boundary, and a promoted challenger broadcasts
    fleet-wide.  The shadow challenger (when configured) is a single
    service with the fleet's full capacity — the "what if we replaced
    the fleet's policy" comparison, fed the identical request stream.
    """
    from ..cluster.cluster import ClusterService

    cluster = ClusterService(
        config,
        num_shards,
        replication=replication,
        vnodes=vnodes,
        federate_every=federate_every,
        hotkey_window=hotkey_window,
        hotkey_top_k=hotkey_top_k,
        hotkey_min_count=hotkey_min_count,
        kill_shard=kill_shard,
        kill_faults=kill_faults,
        obs=obs,
    )
    shadow = ShadowHarness(config, ops) if ops.shadow_enabled else None
    controller = OpsController(
        cluster,
        ops,
        latency=config.latency,
        shadow=shadow,
        obs=obs,
    )
    if config.num_clients <= 1:
        replay_requests(cluster, requests)
    else:
        asyncio.run(_drive(cluster, requests, config.num_clients))
    return controller.result(cluster.finalize())
