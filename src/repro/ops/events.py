"""The versioned ops event log: every control-plane transition, recorded.

A live-operations decision that is not written down did not happen — an
operator debugging "why did the fleet roll back at 3am" needs the exact
sequence of snapshot / promote / trip / rollback transitions, each tied
to the virtual time and global sequence number it fired at.
:class:`OpsEventLog` is that record: an append-only list of
:class:`OpsEvent` rows, version-tagged so persisted logs (obs timeline
exports, golden files) stay readable across ops-layer revisions.

Because every event fires at a window boundary — a fixed global
sequence number — the log is bit-identical at any client count and
across process boundaries; the ``ops_determinism`` golden pins whole
logs, not just final counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: bump when the event row shape changes incompatibly
OPS_EVENT_VERSION = 1

#: the transition kinds the controller emits
EVENT_SNAPSHOT = "snapshot"
EVENT_PROMOTE = "promote"
EVENT_TRIP = "trip"
EVENT_ROLLBACK = "rollback"
EVENT_DEGRADE = "degrade"


@dataclass(frozen=True)
class OpsEvent:
    """One control-plane transition at one window boundary."""

    kind: str
    #: absolute evaluation-window index (counts from run start)
    window: int
    #: the boundary's global sequence number (last request of the window)
    seq: int
    #: virtual time of the boundary in ms
    now_ms: float
    #: event-specific literals (reasons, streaks, snapshot ids, ...)
    details: Tuple[Tuple[str, object], ...] = ()

    def to_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "version": OPS_EVENT_VERSION,
            "kind": self.kind,
            "window": self.window,
            "seq": self.seq,
            "now_ms": self.now_ms,
        }
        row.update(self.details)
        return row


@dataclass
class OpsEventLog:
    """Append-only transition record for one run."""

    events: List[OpsEvent] = field(default_factory=list)

    def append(
        self, kind: str, window: int, seq: int, now_ms: float, **details
    ) -> OpsEvent:
        event = OpsEvent(
            kind=kind,
            window=window,
            seq=seq,
            now_ms=now_ms,
            details=tuple(sorted(details.items())),
        )
        self.events.append(event)
        return event

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def to_rows(self) -> List[Dict[str, object]]:
        """JSON-ready rows (golden files, obs timeline, CLI output)."""
        return [e.to_dict() for e in self.events]

    def __len__(self) -> int:
        return len(self.events)
