"""The guardrail: obs signals in, trip/healthy verdicts out.

A :class:`Guardrail` consumes one :class:`~repro.obs.signals.WindowSignals`
per evaluation window and decides two things:

* **suspect** — did *this* window breach any raw threshold?  Suspect
  windows never push last-known-good snapshots, so a degraded state is
  never captured as the thing rollback would restore.
* **tripped** — have ``trip_after`` consecutive windows breached while
  the guardrail is armed?  Tripping is what triggers the rollback.

Byte-hit is smoothed with an EWMA before the trip comparison (one noisy
window should not revert a healthy fleet) while p99 and the
error/shed/breaker fractions compare raw — a latency or error explosion
is exactly the thing that must not be averaged away.  The guardrail
arms only after ``warmup_windows`` measured windows (letting the EWMA
settle past cold-start noise) and holds fire for ``cooldown_windows``
after a rollback (giving the restored state time to re-warm before it
can be judged again).

Everything here is a pure function of the signal sequence: no clocks,
no randomness — the same run trips at the same window every time, at
any client count.

**Window accounting.**  Three different counters advance on three
different window populations, and the distinction is deliberate:

* **warmup** counts *measured* windows only (``signals.requests > 0``)
  — arming waits for the EWMA to settle, and the EWMA only moves when
  a window carries samples, so empty windows cannot burn warmup.  The
  guardrail is armed from the ``warmup_windows``-th measured window
  onward (``_windows_seen >= warmup_windows``): once that many windows
  have been measured, the very next judgment happens armed.
* **cooldown** counts *every* elapsed window, empty ones included —
  the post-rollback grace period is a span of run time, not of
  traffic, so an idle stretch after a rollback cannot pin the
  guardrail disarmed forever.
* **the trip streak** counts consecutive *breaching* windows.  A
  window that breaches only the raw byte-hit sample (while the EWMA
  still coasts on healthy history) is suspect but neutral: it neither
  extends nor resets the streak.  Only a fully healthy window resets
  it — otherwise degradation that alternates EWMA-breach and
  raw-only-breach windows would never accumulate ``trip_after``
  consecutive breaches and never roll back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..obs.signals import WindowSignals
from .config import OpsConfig


@dataclass
class GuardrailVerdict:
    """What the guardrail concluded about one window."""

    #: raw breach descriptions for this window ((signal, value, threshold))
    breaches: Tuple[Tuple[str, float, float], ...] = ()
    #: this window breached raw thresholds (blocks snapshot pushes)
    suspect: bool = False
    #: the consecutive-breach streak crossed ``trip_after`` while armed
    tripped: bool = False
    #: byte-hit EWMA after folding in this window (None before first sample)
    byte_hit_ewma: Optional[float] = None
    #: consecutive breaching windows so far
    streak: int = 0
    #: guardrail was armed when this window was judged
    armed: bool = False


class Guardrail:
    """Threshold watcher over windowed obs signals."""

    def __init__(self, config: OpsConfig) -> None:
        self.config = config
        self._ewma: Optional[float] = None
        self._streak = 0
        self._windows_seen = 0
        self._cooldown = 0
        #: total trips over the run (telemetry)
        self.trips = 0

    @property
    def byte_hit_ewma(self) -> Optional[float]:
        return self._ewma

    def observe(self, signals: WindowSignals) -> GuardrailVerdict:
        """Judge one completed window.  Empty windows are skipped."""
        cfg = self.config
        if signals.requests == 0:
            # Nothing measured: no EWMA update, no streak movement, and
            # the window does not count toward warmup — but cooldown is
            # a span of elapsed windows, so it still ticks down (see
            # the window-accounting rule in the module docstring).
            if self._cooldown:
                self._cooldown -= 1
            return GuardrailVerdict(
                byte_hit_ewma=self._ewma, streak=self._streak
            )
        self._windows_seen += 1
        sample = signals.byte_hit
        if self._ewma is None:
            self._ewma = sample
        else:
            beta = cfg.ewma_beta
            self._ewma = (1.0 - beta) * self._ewma + beta * sample

        breaches: List[Tuple[str, float, float]] = []
        raw_breach = False
        if cfg.max_p99_ms > 0.0 and signals.p99_ms > cfg.max_p99_ms:
            breaches.append(("p99_ms", signals.p99_ms, cfg.max_p99_ms))
        if cfg.min_byte_hit_ewma >= 0.0:
            if self._ewma < cfg.min_byte_hit_ewma:
                breaches.append(
                    ("byte_hit_ewma", self._ewma, cfg.min_byte_hit_ewma)
                )
            # The *raw* window byte-hit marks this window suspect even
            # while the EWMA is still coasting on healthy history —
            # otherwise the first post-degradation windows would push
            # poisoned snapshots into the last-known-good ring and
            # rollback would restore the very state it fled.
            if sample < cfg.min_byte_hit_ewma:
                raw_breach = True
        if (
            cfg.max_error_fraction < 1.0
            and signals.error_fraction > cfg.max_error_fraction
        ):
            breaches.append(
                ("error_fraction", signals.error_fraction, cfg.max_error_fraction)
            )
        if (
            cfg.max_shed_fraction < 1.0
            and signals.shed_fraction > cfg.max_shed_fraction
        ):
            breaches.append(
                ("shed_fraction", signals.shed_fraction, cfg.max_shed_fraction)
            )
        if (
            cfg.max_breaker_denied_fraction < 1.0
            and signals.breaker_denied_fraction > cfg.max_breaker_denied_fraction
        ):
            breaches.append(
                (
                    "breaker_denied_fraction",
                    signals.breaker_denied_fraction,
                    cfg.max_breaker_denied_fraction,
                )
            )

        suspect = bool(breaches) or raw_breach
        if breaches:
            self._streak += 1
        elif not raw_breach:
            # A raw-only breach is neutral: suspect (no snapshot push)
            # but it neither extends nor resets the streak, so
            # alternating EWMA-breach / raw-only-breach degradation
            # still accumulates toward ``trip_after``.
            self._streak = 0

        armed = self._windows_seen >= cfg.warmup_windows and self._cooldown == 0
        if self._cooldown:
            self._cooldown -= 1
        tripped = armed and suspect and self._streak >= cfg.trip_after
        if tripped:
            self.trips += 1
        return GuardrailVerdict(
            breaches=tuple(breaches),
            suspect=suspect,
            tripped=tripped,
            byte_hit_ewma=self._ewma,
            streak=self._streak,
            armed=armed,
        )

    def reset_after_rollback(self) -> None:
        """Restored state gets a fresh EWMA and a cooldown grace period."""
        self._streak = 0
        self._ewma = None
        self._cooldown = self.config.cooldown_windows
