"""The frozen spec of one live-operations control loop.

:class:`OpsConfig` declares everything the :class:`~repro.ops.controller.
OpsController` does at window boundaries: whether a shadow challenger
runs, when it is promoted, which guardrail thresholds arm auto-rollback,
how often last-known-good snapshots are taken, and (for benches/CI) when
a simulated bad deploy is injected.  Like every other config in the
repo it is a frozen, literal-only dataclass with a spec-tuple
``params()`` form, so it embeds in frozen job specs, crosses process
boundaries, and keys caches.

Epochs are **request windows**: every ``window`` global sequence
numbers the controller evaluates the window that just ended.  All
thresholds compare against :class:`~repro.obs.signals.WindowSignals`
values — window byte-hit (EWMA-smoothed for the trip decision), window
p99 in virtual ms, and the error/shed/breaker-denied fractions — so
every decision is a pure function of (seed, sequence number), never of
wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Tuple

#: the spec-tuple form frozen job dataclasses embed: ((name, value), ...)
Params = Tuple[Tuple[str, object], ...]


@dataclass(frozen=True)
class OpsConfig:
    """Knobs of the shadow / hot-swap / guardrail state machine.

    Disabled-state conventions match :class:`~repro.serve.resilience.
    ResilienceConfig`: ``0`` / ``-1`` / ``>= 1.0`` turn a knob off, and
    the all-defaults config is *inert* — no shadow, no promotion, no
    guardrail, no injection — so attaching it changes nothing.
    """

    #: requests per evaluation window (the ops epoch)
    window: int = 256
    #: challenger policy name ("" = no shadow evaluation)
    challenger_policy: str = ""
    #: literal policy params for the challenger (picklable spec tuples)
    challenger_params: Params = ()
    #: consecutive winning windows that promote the challenger (0 = never)
    promote_after: int = 0
    #: challenger window byte-hit must beat champion by this margin
    promote_margin: float = 0.0
    #: trip when the window p99 exceeds this many virtual ms (0 = off)
    max_p99_ms: float = 0.0
    #: trip when the byte-hit EWMA falls below this ratio (< 0 = off)
    min_byte_hit_ewma: float = -1.0
    #: trip when a window's error fraction exceeds this (>= 1 = off)
    max_error_fraction: float = 1.0
    #: trip when a window's shed fraction exceeds this (>= 1 = off)
    max_shed_fraction: float = 1.0
    #: trip when a window's breaker-denied fraction exceeds this (>= 1 = off)
    max_breaker_denied_fraction: float = 1.0
    #: EWMA weight of the newest window's byte-hit sample
    ewma_beta: float = 0.35
    #: consecutive breaching windows required to trip the guardrail
    trip_after: int = 2
    #: measured windows observed before the guardrail arms (EWMA settle)
    warmup_windows: int = 2
    #: measured windows the guardrail holds fire after a rollback
    cooldown_windows: int = 4
    #: push a last-known-good snapshot every N healthy windows (0 = off;
    #: snapshots need a learned policy, so the default stays off)
    snapshot_every: int = 0
    #: snapshots retained in the in-memory ring
    ring_capacity: int = 4
    #: inject a simulated bad deploy at the end of this absolute window
    #: index (-1 = never) — the bench/CI degradation scenario
    degrade_at_window: int = -1

    @property
    def shadow_enabled(self) -> bool:
        return bool(self.challenger_policy)

    @property
    def guard_enabled(self) -> bool:
        """Any rollback threshold armed?"""
        return (
            self.max_p99_ms > 0.0
            or self.min_byte_hit_ewma >= 0.0
            or self.max_error_fraction < 1.0
            or self.max_shed_fraction < 1.0
            or self.max_breaker_denied_fraction < 1.0
        )

    def params(self) -> Params:
        """Spec-tuple form for embedding in a frozen OpsJob."""
        return tuple((f.name, getattr(self, f.name)) for f in fields(self))

    @classmethod
    def from_params(cls, params: Params) -> "OpsConfig":
        """Rebuild from :meth:`params` output (tuples round-trip as-is)."""
        kwargs = dict(params)
        challenger = kwargs.get("challenger_params")
        if challenger is not None:
            kwargs["challenger_params"] = tuple(
                (str(k), v) for k, v in challenger
            )
        return cls(**kwargs)
