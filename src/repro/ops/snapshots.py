"""Last-known-good agent snapshots: the ring auto-rollback restores from.

The controller pushes full agent states (the
:func:`~repro.core.persistence.agent_state` dict — Q-table, RNG,
config fingerprint) into a bounded :class:`SnapshotRing` at healthy
window boundaries; rollback loads the newest entry back.  Entries are
*fleet-shaped*: one state per champion agent (length 1 for a single
service, one per shard for a cluster), so a fleet rolls back all
shards to the same boundary atomically.

The ring also persists: :meth:`SnapshotRing.save_latest` writes the
newest entry as one JSON file per agent via the same atomic-rename
discipline as :func:`~repro.core.persistence.save_agent`, and
:func:`load_fleet_states` reads such a directory back — which is
exactly the cluster warm-start path (train a fleet, save per-shard
snapshots, rebuild the fleet in a different process, restore, continue
bit-identically; ``tests/test_fleet_warmstart.py`` pins this across a
real process boundary).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

#: per-agent snapshot file name inside a ring directory
_SHARD_FILE = "agent-{idx:03d}.json"


class SnapshotRing:
    """Bounded ring of (window, fleet-state-list) snapshots.

    Only *healthy* boundaries are pushed (the controller skips windows
    whose signals breach any raw threshold), so the newest entry is by
    construction the last known good state.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("snapshot ring capacity must be >= 1")
        self.capacity = capacity
        self._entries: List[Tuple[int, List[Dict[str, Any]]]] = []
        #: total pushes over the ring's lifetime (not just retained)
        self.pushes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, window: int, states: List[Dict[str, Any]]) -> None:
        """Retain ``states`` as the newest known-good entry."""
        self._entries.append((window, states))
        if len(self._entries) > self.capacity:
            self._entries.pop(0)
        self.pushes += 1

    def latest(self) -> Optional[Tuple[int, List[Dict[str, Any]]]]:
        """The newest (window, states) entry, or None when empty."""
        return self._entries[-1] if self._entries else None

    def pop_latest(self) -> Optional[Tuple[int, List[Dict[str, Any]]]]:
        """Remove and return the newest entry (rollback consumes it).

        Rollback *consumes* the snapshot it restores: a state that was
        captured while a bad deploy was still coasting on cached
        content can look healthy and poison the ring, so if the
        restored state trips the guardrail again, the next rollback
        walks one entry further back — the ring is searched newest to
        oldest until a genuinely good state holds.
        """
        return self._entries.pop() if self._entries else None

    def windows(self) -> List[int]:
        """Window indices currently retained (oldest first)."""
        return [w for w, _ in self._entries]

    # --- persistence (warm starts across process boundaries) ----------------------

    def save_latest(self, directory: str | os.PathLike) -> int:
        """Write the newest entry as one JSON file per agent.

        Returns the number of agent files written; raises when the ring
        is empty (nothing known-good to persist).  Atomic per file
        (tmp + rename), same as :func:`repro.core.persistence.save_agent`.
        """
        latest = self.latest()
        if latest is None:
            raise ValueError("snapshot ring is empty; nothing to save")
        _, states = latest
        save_fleet_states(states, directory)
        return len(states)


def save_fleet_states(
    states: List[Dict[str, Any]], directory: str | os.PathLike
) -> None:
    """Persist one agent-state dict per file under ``directory``."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    for idx, state in enumerate(states):
        path = target / _SHARD_FILE.format(idx=idx)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(state))
        os.replace(tmp, path)


def load_fleet_states(directory: str | os.PathLike) -> List[Dict[str, Any]]:
    """Read back a :func:`save_fleet_states` directory (index order)."""
    target = Path(directory)
    paths = sorted(target.glob("agent-*.json"))
    if not paths:
        raise FileNotFoundError(
            f"no agent snapshots (agent-*.json) under {target}"
        )
    return [json.loads(p.read_text()) for p in paths]
