"""The ``serve_ops`` experiment: the live-operations loop, exercised.

One registered experiment comparing four ops-managed CHROME services
on the drifting ``phases`` workload (the scenario live operations
exist for — popularity moves, deploys go bad):

* ``baseline``   — inert ops config: pinned-identical to a plain serve
  run (the zero-impact control);
* ``shadow-lru`` — an LRU challenger shadowing the champion's traffic:
  the per-window deltas quantify how much CHROME's learned admission
  is worth on this stream, at zero risk to served results;
* ``bad-deploy`` — a mid-run Q-table sabotage (bypass-everything) with
  **no** guardrail: what an unwatched fleet does after a bad model
  push;
* ``guarded``    — the same sabotage with the guardrail armed: trips
  on the byte-hit EWMA, rolls back to the last-known-good snapshot,
  recovers.

The note at the bottom prints the comparison the ops bench gate
formalizes: guarded must beat unguarded on byte hit *and* p99 under
the identical injected degradation.
"""

from __future__ import annotations

from typing import List, Mapping

from ..experiments.engine import ExperimentPlan
from ..experiments.registry import register_experiment
from ..experiments.report import ExperimentResult
from ..experiments.runner import ExperimentScale

# NOTE: serve run-size helpers are imported lazily inside the builders —
# this module loads mid-import of the experiments package's eager
# registration, before ``repro.serve`` has finished importing.

#: evaluation windows per run (window size derives from the run length)
NUM_WINDOWS = 16

#: the bad deploy lands at the end of this window (0-based)
DEGRADE_WINDOW = 5

#: guardrail thresholds for the phases workload (tuned so healthy runs
#: never trip and the frozen-cache sabotage always does)
MIN_BYTE_HIT_EWMA = 0.05
TRIP_AFTER = 2
WARMUP_WINDOWS = 2
SNAPSHOT_EVERY = 2


def ops_window(scale: ExperimentScale) -> int:
    """Window size: the measured run split into ``NUM_WINDOWS`` epochs."""
    total = scale.accesses_per_core + scale.warmup_per_core
    return max(50, total // NUM_WINDOWS)


def guard_params(scale: ExperimentScale, degrade: bool):
    from .config import OpsConfig

    return OpsConfig(
        window=ops_window(scale),
        min_byte_hit_ewma=MIN_BYTE_HIT_EWMA,
        trip_after=TRIP_AFTER,
        warmup_windows=WARMUP_WINDOWS,
        snapshot_every=SNAPSHOT_EVERY,
        degrade_at_window=DEGRADE_WINDOW if degrade else -1,
    ).params()


def ops_job(
    scale: ExperimentScale,
    *,
    ops_params=(),
    seed: int = 0,
):
    from ..serve.experiments import NUM_SEGMENTS, serve_capacity
    from .jobs import OpsJob

    return OpsJob(
        workload="phases",
        policy="chrome",
        num_requests=scale.accesses_per_core,
        warmup_requests=scale.warmup_per_core,
        capacity_bytes=serve_capacity(scale),
        num_segments=NUM_SEGMENTS,
        num_clients=8,
        seed=seed,
        workload_params=(("num_phases", 8),),
        ops_params=tuple(ops_params),
    )


def serve_ops_plan(scale: ExperimentScale) -> ExperimentPlan:
    from .config import OpsConfig

    window = ops_window(scale)
    jobs = {
        "baseline": ops_job(scale),
        "shadow-lru": ops_job(
            scale,
            ops_params=OpsConfig(
                window=window, challenger_policy="lru"
            ).params(),
        ),
        "bad-deploy": ops_job(
            scale,
            ops_params=OpsConfig(
                window=window, degrade_at_window=DEGRADE_WINDOW
            ).params(),
        ),
        "guarded": ops_job(scale, ops_params=guard_params(scale, degrade=True)),
    }

    def assemble(results: Mapping) -> ExperimentResult:
        rows: List[List[object]] = []
        for name, job in jobs.items():
            r = results[job]
            m = r.champion
            rows.append(
                [
                    name,
                    round(100.0 * m.object_hit_ratio, 2),
                    round(100.0 * m.byte_hit_ratio, 2),
                    round(m.p99_latency_ms, 2),
                    r.snapshots,
                    r.trips,
                    r.rollbacks,
                    r.degradations,
                ]
            )
        shadow = results[jobs["shadow-lru"]]
        unguarded = results[jobs["bad-deploy"]].champion
        guarded = results[jobs["guarded"]].champion
        notes = [
            "shadow challenger (lru) byte hit "
            f"{100.0 * shadow.challenger.byte_hit_ratio:.2f}% vs champion "
            f"{100.0 * shadow.champion.byte_hit_ratio:.2f}% "
            "(champion pinned identical to the no-shadow baseline)",
            "bad deploy: guarded byte hit "
            f"{100.0 * guarded.byte_hit_ratio:.2f}% / p99 "
            f"{guarded.p99_latency_ms:.2f}ms vs unguarded "
            f"{100.0 * unguarded.byte_hit_ratio:.2f}% / "
            f"{unguarded.p99_latency_ms:.2f}ms",
        ]
        return ExperimentResult(
            experiment_id="serve_ops",
            title="live ops: shadow eval, bad deploy, guarded rollback",
            columns=[
                "scenario",
                "object_hit%",
                "byte_hit%",
                "p99_ms",
                "snapshots",
                "trips",
                "rollbacks",
                "degradations",
            ],
            rows=rows,
            notes=notes,
        )

    return ExperimentPlan(
        experiment_id="serve_ops",
        jobs=tuple(jobs.values()),
        assemble=assemble,
    )


def _register() -> None:
    def runner_fn(runner):
        return runner.run_plan(serve_ops_plan(runner.scale))

    register_experiment("serve_ops", runner_fn, plan=serve_ops_plan)


_register()
