"""Shadow evaluation: a challenger service fed the champion's traffic.

The classic safe-deployment question — "would policy B beat policy A on
*our* traffic?" — is answered here without risking a single served
request: a :class:`ShadowHarness` owns a fully isolated challenger
:class:`~repro.serve.service.CacheService` (own policy/agent, own
store, own backend latency model, own recorder) built from
:meth:`~repro.serve.config.ServiceConfig.for_challenger`, and the ops
controller replays every champion request into it *after* the champion
has processed it, inside the sequenced section.

Isolation is structural, not disciplinary: the challenger holds no
reference to any champion object, so it cannot affect served results —
the zero-impact test pins that champion metrics with a shadow attached
are byte-identical to the committed serve goldens.  Because the
duplicate stream is sequenced by the same global sequence numbers, the
challenger's metrics are themselves deterministic at any client count,
which is what makes per-window champion-vs-challenger deltas (and the
promotion decision built on them) reproducible.
"""

from __future__ import annotations

from ..serve.config import ServiceConfig
from ..serve.metrics import MetricsRecorder, ServeMetrics
from ..serve.service import CacheService
from ..serve.workloads import Request
from .config import OpsConfig


class ShadowHarness:
    """One challenger service mirroring the champion's request stream."""

    def __init__(self, champion_config: ServiceConfig, ops: OpsConfig) -> None:
        if not ops.shadow_enabled:
            raise ValueError("OpsConfig has no challenger_policy; shadow disabled")
        self.config = champion_config.for_challenger(
            policy=ops.challenger_policy,
            policy_params=ops.challenger_params,
        )
        self.policy = self.config.build_policy()
        self.recorder = MetricsRecorder(
            policy=self.policy.name,
            workload=self.config.workload_name,
        )
        store = self.config.build_store(self.policy)
        # Same warmup boundary as the champion: both recorders start
        # measuring at the same global seq, so per-window deltas always
        # compare the same traffic slice.
        self.service = CacheService(
            store,
            recorder=self.recorder,
            warmup_requests=self.config.warmup_requests,
            config=self.config,
        )

    def process(self, seq: int, req: Request) -> bool:
        """Replay one champion request into the challenger."""
        return self.service.process(seq, req)

    def agent_states(self):
        """The challenger's learned state (what promotion deploys)."""
        return self.service.agent_states()

    def finalize(self) -> ServeMetrics:
        metrics = self.recorder.finalize()
        metrics.telemetry = dict(self.policy.telemetry())
        return metrics
