"""Serving-layer metrics: what a cache operator actually reports.

The LLC experiments report IPC and miss ratios; a software object
cache reports

* **object hit ratio** — fraction of requests served from cache;
* **byte hit ratio**   — fraction of requested *bytes* served from
  cache (the number a CDN bills by: large-object misses dominate
  origin egress);
* **backend load**     — origin fetches and bytes (misses the origin
  must absorb), plus the peak concurrent fetch depth;
* **latency**          — mean/p50/p99 request latency in virtual
  milliseconds from the deterministic latency model;
* **degradation**      — what happened when the origin misbehaved:
  errors, retries, timeouts, shed requests, stale serves, breaker
  trips/denials, and a separate p99 over *degraded-mode* requests
  (those served during a fault window, a breaker denial, or after
  retries) so graceful degradation is quantifiable, not anecdotal.

Request accounting is conservative by construction: every request ends
in exactly one of {fresh hit, origin-served miss, stale serve, error,
shed}, so ``hits + origin_served + stale_served + errors + shed ==
requests`` always (the property suite sweeps this across policies,
fault configs and client counts).

:class:`ServeMetrics` is a plain picklable dataclass with value
equality, so serve results flow through the engine's memo/disk caches
and the ``--jobs 1`` vs ``--jobs N`` bit-identity checks exactly like
:class:`~repro.sim.multicore.SystemResult` does for simulations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


def percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile over an already-sorted sample.

    Nearest-rank: the value at 1-indexed rank ``ceil(fraction * n)``,
    i.e. the smallest sample >= ``fraction`` of the distribution.  The
    rank is clamped to the sample, so ``fraction <= 0`` returns the
    minimum and ``fraction >= 1`` the maximum.
    """
    n = len(sorted_values)
    if not n:
        return 0.0
    rank = math.ceil(fraction * n) - 1
    if rank < 0:
        rank = 0
    elif rank >= n:
        rank = n - 1
    return sorted_values[rank]


@dataclass
class TenantMetrics:
    """Per-tenant slice of the request accounting."""

    requests: int = 0
    hits: int = 0
    bytes_requested: int = 0
    bytes_hit: int = 0

    @property
    def object_hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def byte_hit_ratio(self) -> float:
        return self.bytes_hit / self.bytes_requested if self.bytes_requested else 0.0


@dataclass
class ServeMetrics:
    """Complete, picklable result of one serve run."""

    policy: str
    workload: str
    requests: int = 0
    hits: int = 0
    bytes_requested: int = 0
    bytes_hit: int = 0
    backend_fetches: int = 0
    backend_bytes: int = 0
    admitted: int = 0
    admitted_bytes: int = 0
    bypassed: int = 0
    bypassed_bytes: int = 0
    evictions: int = 0
    evicted_bytes: int = 0
    peak_outstanding: int = 0
    mean_latency_ms: float = 0.0
    p50_latency_ms: float = 0.0
    p99_latency_ms: float = 0.0
    #: misses served fresh from the origin (hit/origin/stale/error/shed
    #: partition the request count — the conservation invariant)
    origin_served: int = 0
    #: degradation accounting (all zero on the healthy default path)
    shed: int = 0
    stale_served: int = 0
    errors: int = 0
    retries: int = 0
    timeouts: int = 0
    breaker_opens: int = 0
    breaker_denied: int = 0
    degraded_requests: int = 0
    degraded_p99_latency_ms: float = 0.0
    per_tenant: Dict[int, TenantMetrics] = field(default_factory=dict)
    #: cumulative (requests, object_hit_ratio, byte_hit_ratio) checkpoints
    curve: List[Tuple[int, float, float]] = field(default_factory=list)
    #: agent counters (Q-table health, exploration, ...) when CHROME serves
    telemetry: Dict[str, object] = field(default_factory=dict)

    @property
    def object_hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def byte_hit_ratio(self) -> float:
        return self.bytes_hit / self.bytes_requested if self.bytes_requested else 0.0

    @property
    def backend_load(self) -> float:
        """Fraction of requested bytes the origin had to serve."""
        if not self.bytes_requested:
            return 0.0
        return self.backend_bytes / self.bytes_requested

    @property
    def error_rate(self) -> float:
        """Fraction of requests that ended in an error response."""
        return self.errors / self.requests if self.requests else 0.0

    @property
    def degraded_fraction(self) -> float:
        """Fraction of requests served in degraded mode."""
        return self.degraded_requests / self.requests if self.requests else 0.0


class MetricsRecorder:
    """Streaming accumulator the service feeds once per request."""

    def __init__(
        self, policy: str, workload: str, checkpoint_every: int = 0
    ) -> None:
        self.metrics = ServeMetrics(policy=policy, workload=workload)
        self._latencies: List[float] = []
        self._degraded_latencies: List[float] = []
        self._checkpoint_every = checkpoint_every
        self._measuring = True

    def set_measuring(self, measuring: bool) -> None:
        """Warmup gate: traffic flows but is not accounted."""
        self._measuring = measuring

    def on_request(
        self,
        tenant: int,
        size: int,
        hit: bool,
        latency_ms: float,
        outstanding: int,
    ) -> None:
        if not self._measuring:
            return
        m = self.metrics
        m.requests += 1
        m.bytes_requested += size
        t = m.per_tenant.get(tenant)
        if t is None:
            t = m.per_tenant[tenant] = TenantMetrics()
        t.requests += 1
        t.bytes_requested += size
        if hit:
            m.hits += 1
            m.bytes_hit += size
            t.hits += 1
            t.bytes_hit += size
        else:
            m.backend_fetches += 1
            m.backend_bytes += size
            m.origin_served += 1
            if outstanding > m.peak_outstanding:
                m.peak_outstanding = outstanding
        self._latencies.append(latency_ms)
        if self._checkpoint_every and m.requests % self._checkpoint_every == 0:
            m.curve.append(
                (m.requests, m.object_hit_ratio, m.byte_hit_ratio)
            )

    # --- degraded outcomes (fault/resilience path only) ---------------------------

    def _account_degraded(self, tenant: int, size: int, latency_ms: float) -> None:
        """Shared request accounting for shed/stale/error responses."""
        m = self.metrics
        m.requests += 1
        m.bytes_requested += size
        t = m.per_tenant.get(tenant)
        if t is None:
            t = m.per_tenant[tenant] = TenantMetrics()
        t.requests += 1
        t.bytes_requested += size
        self._latencies.append(latency_ms)
        self._degraded_latencies.append(latency_ms)
        if self._checkpoint_every and m.requests % self._checkpoint_every == 0:
            m.curve.append(
                (m.requests, m.object_hit_ratio, m.byte_hit_ratio)
            )

    def on_shed(self, tenant: int, size: int, latency_ms: float) -> None:
        """The request was refused by admission control (fast 503)."""
        if not self._measuring:
            return
        self.metrics.shed += 1
        self._account_degraded(tenant, size, latency_ms)

    def on_stale(self, tenant: int, size: int, latency_ms: float) -> None:
        """A retained (stale) copy was served in place of the origin."""
        if not self._measuring:
            return
        self.metrics.stale_served += 1
        self._account_degraded(tenant, size, latency_ms)

    def on_error(
        self, tenant: int, size: int, latency_ms: float, breaker_denied: bool = False
    ) -> None:
        """The request failed: retries exhausted or breaker fast-fail."""
        if not self._measuring:
            return
        self.metrics.errors += 1
        if breaker_denied:
            self.metrics.breaker_denied += 1
        self._account_degraded(tenant, size, latency_ms)

    def on_retry(self) -> None:
        if self._measuring:
            self.metrics.retries += 1

    def on_timeout(self) -> None:
        if self._measuring:
            self.metrics.timeouts += 1

    def on_breaker_open(self) -> None:
        if self._measuring:
            self.metrics.breaker_opens += 1

    def note_degraded(self, latency_ms: float) -> None:
        """A successfully served request that ran in degraded mode
        (active fault window or half-open probe)."""
        if self._measuring:
            self._degraded_latencies.append(latency_ms)

    def on_admit(self, size: int) -> None:
        if self._measuring:
            self.metrics.admitted += 1
            self.metrics.admitted_bytes += size

    def on_bypass(self, size: int) -> None:
        if self._measuring:
            self.metrics.bypassed += 1
            self.metrics.bypassed_bytes += size

    def on_evict(self, size: int) -> None:
        if self._measuring:
            self.metrics.evictions += 1
            self.metrics.evicted_bytes += size

    def latency_samples(self, start: int = 0) -> List[float]:
        """Raw per-request latencies (arrival order) — fleet aggregation
        re-sorts the union so cluster percentiles are exact, not
        approximations stitched from per-shard percentiles.  ``start``
        skips already-consumed samples, so windowed readers
        (:class:`repro.obs.signals.SignalReader`) slice instead of
        copying the full history every window."""
        if start:
            return self._latencies[start:]
        return list(self._latencies)

    def latency_count(self) -> int:
        """Number of latency samples recorded so far (windowing cursor)."""
        return len(self._latencies)

    def degraded_latency_samples(self) -> List[float]:
        """Raw degraded-mode latencies (arrival order)."""
        return list(self._degraded_latencies)

    def finalize(self) -> ServeMetrics:
        m = self.metrics
        if self._latencies:
            ordered = sorted(self._latencies)
            m.mean_latency_ms = sum(ordered) / len(ordered)
            m.p50_latency_ms = percentile(ordered, 0.50)
            m.p99_latency_ms = percentile(ordered, 0.99)
        if self._degraded_latencies:
            degraded = sorted(self._degraded_latencies)
            m.degraded_requests = len(degraded)
            m.degraded_p99_latency_ms = percentile(degraded, 0.99)
        return m
