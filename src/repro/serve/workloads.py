"""Request-stream generators for the object-cache serving layer.

The serving layer replays *request traces* the way the simulator
replays memory traces: a workload is a deterministic, seeded list of
:class:`Request` records, so every policy sees byte-identical traffic
and results are reproducible across processes (the engine's ``--jobs``
determinism guarantee extends to serve experiments).

Key-space conventions
---------------------
Object sizes are a *pure function of the key* (``object_size``): a key
always has the same size no matter which generator, phase or tenant
touches it — exactly like a real origin where ``GET /obj/123`` returns
the same body.  Generators carve disjoint key ranges per role (core
zipf set, scan sweeps, per-phase working sets, per-tenant namespaces)
so streams never alias by accident.

Generators (registered in :data:`WORKLOAD_SPECS` / :data:`WORKLOADS`):

* ``zipf``         — stationary Zipf(alpha) popularity over a fixed key set;
* ``zipf_scan``    — Zipf foreground polluted by periodic one-shot scan
  bursts of large objects (the classic LRU-killer);
* ``bursty``       — hot-spot bursts: a small hot set that is replaced
  every burst, over a Zipf background;
* ``phases``       — diurnal phase changes: the popularity ranking is
  re-drawn each phase, shifting the working set;
* ``multitenant``  — interleaved per-tenant streams with different
  behaviours (Zipf tenant, scanning tenant, bursty tenant, ...);
* ``proxy_burst``  — NGINX-style proxy traffic (Cold-RL): heavy-tailed
  foreground plus periodic *size-blind* storms of one-shot keys whose
  sizes match the foreground exactly, so no size heuristic can filter
  them;
* ``retrieval``    — semantic-retrieval / embedding-buffer access (Sun
  et al.): clustered near-duplicate keys around hot centroids, with the
  hot cluster set shifting as the query distribution drifts;
* ``storage_tier`` — reuse-aware storage streams (Phoebe): bimodal
  reuse distances (hot metadata vs. cold data extents) with periodic
  sequential flood phases.

A small fraction of requests can be marked ``is_refresh``: proactive
re-fetches of recently popular objects issued by the cache itself (the
software analogue of prefetches — same provenance split CHROME's
rewards use for demand vs. prefetch).

Every generator is described by a :class:`WorkloadSpec` carrying its
knobs (introspected from the signature), its related-work source, and
its *declared distribution invariants* — machine-checkable facts like
"storms recur periodically in namespace 5" or "the hot set drifts" —
which ``tests/test_workload_properties.py`` verifies generically for
every registry entry, so a new generator gets its correctness checks
for free by declaring itself here.
"""

from __future__ import annotations

import difflib
import inspect
import random
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from ..sim.address import mix_hash

_MASK64 = (1 << 64) - 1

# Disjoint key-space bases (48-bit namespaces; tenant id sits above).
_ZIPF_BASE = 0
_SCAN_BASE = 1 << 40
_BURST_BASE = 2 << 40
_PHASE_BASE = 3 << 40
_PROXY_BASE = 4 << 40
_STORM_BASE = 5 << 40
_RETRIEVAL_BASE = 6 << 40
_STORAGE_BASE = 7 << 40
_FLOOD_BASE = 8 << 40
_TENANT_SHIFT = 48


def key_namespace(key: int) -> int:
    """The namespace id (bits 40..47) of a key, tenant bits excluded."""
    return (key >> 40) & 0xFF


@dataclass(frozen=True, slots=True)
class Request:
    """One cache request: a key, its object size, and provenance."""

    key: int
    size: int
    tenant: int = 0
    is_refresh: bool = False


# --- object sizes -------------------------------------------------------------

#: size classes (bytes) and their mixture weights: mostly small-to-medium
#: web-object sizes with a heavy tail, binned so the distribution is
#: reproducible without floating-point transcendentals.
_SIZE_CLASSES: Tuple[Tuple[int, int], ...] = (
    (128, 20),
    (512, 25),
    (2 << 10, 22),
    (8 << 10, 15),
    (16 << 10, 10),
    (32 << 10, 8),
    (48 << 10, 6),
)
_SIZE_TOTAL = sum(w for _, w in _SIZE_CLASSES)

#: scan objects occupy their own size band *above* every regular class
#: (disjoint log2 buckets): byte-capacity pollution is concentrated in
#: sizes that regular traffic never uses, like real batch/backup sweeps
_SCAN_SIZES: Tuple[int, ...] = (64 << 10, 80 << 10, 96 << 10)

#: embedding-buffer entries are near-uniform (a 4096-dim fp32 vector
#: plus header); the jitter below keeps byte accounting unquantized
#: without breaking the "all embeddings are the same order of size"
#: property
_EMBED_SIZE = 16 << 10

#: storage-tier extents are bimodal by *key range*, not by hash: bit 39
#: inside the storage namespace separates small metadata extents from
#: large data extents, so reuse behaviour and size correlate the way
#: they do on a real tier (hot inodes tiny, cold segments big).
_STORAGE_META_SIZE = 4 << 10
_STORAGE_DATA_SIZE = 64 << 10
_STORAGE_DATA_BIT = 1 << 39

#: sequential flood (backup/scrub) extents: full-size data segments
_FLOOD_SIZE = 64 << 10

#: upper bound on any object_size() result: the largest base class plus
#: its maximal jitter (base // 4 - 1).  The property harness checks
#: every generated size against this, and stores can rely on it when
#: sizing segments.
MAX_OBJECT_BYTES = max(_SCAN_SIZES) + max(_SCAN_SIZES) // 4


def object_size(key: int) -> int:
    """Deterministic per-key size draw (stable across runs/processes).

    The key's namespace picks the size band — scan keys draw from the
    large-object classes, retrieval keys are uniform embedding-sized,
    storage keys are bimodal metadata/data extents, flood keys are
    full data segments — and everything else (including proxy storm
    keys, deliberately: the storms are *size-blind*) draws from the
    mixed web-object distribution.  The size is jittered within its
    class so byte accounting is not quantized.
    """
    h = mix_hash(key * 0x9E3779B97F4A7C15 & _MASK64)
    ns = key_namespace(key)
    if ns == _SCAN_BASE >> 40:
        base = _SCAN_SIZES[h % len(_SCAN_SIZES)]
    elif ns == _RETRIEVAL_BASE >> 40:
        base = _EMBED_SIZE
    elif ns == _STORAGE_BASE >> 40:
        base = _STORAGE_DATA_SIZE if key & _STORAGE_DATA_BIT else _STORAGE_META_SIZE
    elif ns == _FLOOD_BASE >> 40:
        base = _FLOOD_SIZE
    else:
        pick = h % _SIZE_TOTAL
        base = _SIZE_CLASSES[-1][0]
        for size, weight in _SIZE_CLASSES:
            if pick < weight:
                base = size
                break
            pick -= weight
    jitter = (h >> 32) % max(1, base // 4)
    return base + jitter


# --- popularity sampling ------------------------------------------------------


def _zipf_cdf(num_keys: int, alpha: float) -> List[float]:
    """Cumulative Zipf(alpha) weights over ranks 1..num_keys."""
    acc = 0.0
    cdf: List[float] = []
    for rank in range(1, num_keys + 1):
        acc += rank**-alpha
        cdf.append(acc)
    total = cdf[-1]
    return [c / total for c in cdf]


class _ZipfSampler:
    """Seeded Zipf sampler over a permuted key set (rank != key order)."""

    def __init__(
        self, rng: random.Random, num_keys: int, alpha: float, base: int
    ) -> None:
        self._cdf = _zipf_cdf(num_keys, alpha)
        self._keys = [base + i for i in range(num_keys)]
        rng.shuffle(self._keys)  # decorrelate popularity rank from key value

    def sample(self, rng: random.Random) -> int:
        return self._keys[bisect_left(self._cdf, rng.random())]

    def top(self, count: int) -> List[int]:
        return self._keys[:count]

    def rotate(self, rng: random.Random, fraction: float) -> None:
        """Drift the popularity ranking: swap a slice of hot ranks with
        keys drawn from the whole set (trending content displacing
        yesterday's hits, gradually rather than all at once)."""
        n = len(self._keys)
        count = max(1, int(n * fraction))
        hot_span = max(count, n // 10)
        for _ in range(count):
            i = rng.randrange(hot_span)
            j = rng.randrange(n)
            self._keys[i], self._keys[j] = self._keys[j], self._keys[i]


def _maybe_refresh(
    rng: random.Random,
    out: List[Request],
    recent_hot: Sequence[int],
    refresh_fraction: float,
    tenant: int,
) -> None:
    """Emit a proactive refresh of a recently popular object."""
    if refresh_fraction > 0.0 and recent_hot and rng.random() < refresh_fraction:
        key = recent_hot[rng.randrange(len(recent_hot))]
        out.append(Request(key, object_size(key), tenant=tenant, is_refresh=True))


# --- generators ---------------------------------------------------------------


def zipf_requests(
    num_requests: int,
    seed: int = 0,
    *,
    num_keys: int = 4096,
    alpha: float = 0.9,
    tenant: int = 0,
    refresh_fraction: float = 0.02,
) -> List[Request]:
    """Stationary Zipf popularity over a fixed key set."""
    rng = random.Random((seed << 8) ^ 0x5E21F)
    tenant_base = tenant << _TENANT_SHIFT
    sampler = _ZipfSampler(rng, num_keys, alpha, tenant_base + _ZIPF_BASE)
    hot = sampler.top(max(8, num_keys // 64))
    out: List[Request] = []
    while len(out) < num_requests:
        key = sampler.sample(rng)
        out.append(Request(key, object_size(key), tenant=tenant))
        _maybe_refresh(rng, out, hot, refresh_fraction, tenant)
    return out[:num_requests]


def zipf_scan_requests(
    num_requests: int,
    seed: int = 0,
    *,
    num_keys: int = 4096,
    alpha: float = 0.9,
    scan_every: int = 400,
    scan_length: int = 120,
    tenant: int = 0,
    refresh_fraction: float = 0.02,
) -> List[Request]:
    """Zipf foreground with periodic one-shot scans of large objects.

    Every ``scan_every`` foreground requests, a burst of ``scan_length``
    *never-repeated* large objects sweeps through (think batch jobs or
    crawlers) — admission-blind policies let it flush the byte budget.
    """
    rng = random.Random((seed << 8) ^ 0x5CA17)
    tenant_base = tenant << _TENANT_SHIFT
    sampler = _ZipfSampler(rng, num_keys, alpha, tenant_base + _ZIPF_BASE)
    hot = sampler.top(max(8, num_keys // 64))
    out: List[Request] = []
    scan_cursor = tenant_base + _SCAN_BASE
    since_scan = 0
    while len(out) < num_requests:
        if since_scan >= scan_every:
            for _ in range(scan_length):
                key = scan_cursor
                scan_cursor += 1
                out.append(Request(key, object_size(key), tenant=tenant))
            since_scan = 0
            continue
        key = sampler.sample(rng)
        out.append(Request(key, object_size(key), tenant=tenant))
        since_scan += 1
        _maybe_refresh(rng, out, hot, refresh_fraction, tenant)
    return out[:num_requests]


def bursty_requests(
    num_requests: int,
    seed: int = 0,
    *,
    num_keys: int = 4096,
    alpha: float = 0.8,
    burst_every: int = 600,
    burst_length: int = 200,
    hot_set_size: int = 24,
    tenant: int = 0,
) -> List[Request]:
    """Hot-spot bursts over a Zipf background.

    Each burst hammers a small, freshly drawn hot set (a trending
    object going viral) then abandons it for the next one.
    """
    rng = random.Random((seed << 8) ^ 0xB0057)
    tenant_base = tenant << _TENANT_SHIFT
    sampler = _ZipfSampler(rng, num_keys, alpha, tenant_base + _ZIPF_BASE)
    out: List[Request] = []
    burst_id = 0
    position = 0
    while len(out) < num_requests:
        if position and position % burst_every == 0:
            burst_id += 1
            hot = [
                tenant_base + _BURST_BASE + burst_id * 4096 + i
                for i in range(hot_set_size)
            ]
            for _ in range(burst_length):
                key = hot[rng.randrange(hot_set_size)]
                out.append(Request(key, object_size(key), tenant=tenant))
        key = sampler.sample(rng)
        out.append(Request(key, object_size(key), tenant=tenant))
        position += 1
    return out[:num_requests]


def phase_requests(
    num_requests: int,
    seed: int = 0,
    *,
    num_keys: int = 4096,
    alpha: float = 0.9,
    num_phases: int = 4,
    tenant: int = 0,
    refresh_fraction: float = 0.02,
) -> List[Request]:
    """Diurnal phases: each phase re-draws the popularity ranking.

    Within a phase the stream is stationary Zipf; at a phase boundary a
    fresh key set becomes popular (morning news vs. evening video), so
    policies must adapt instead of trusting stale frequency counts.
    """
    rng = random.Random((seed << 8) ^ 0xD1A17)
    tenant_base = tenant << _TENANT_SHIFT
    per_phase = max(1, num_requests // num_phases)
    out: List[Request] = []
    for phase in range(num_phases):
        base = tenant_base + _PHASE_BASE + phase * (num_keys * 4)
        sampler = _ZipfSampler(rng, num_keys, alpha, base)
        hot = sampler.top(max(8, num_keys // 64))
        target = num_requests if phase == num_phases - 1 else (phase + 1) * per_phase
        while len(out) < target:
            key = sampler.sample(rng)
            out.append(Request(key, object_size(key), tenant=tenant))
            _maybe_refresh(rng, out, hot, refresh_fraction, tenant)
    return out[:num_requests]


def multitenant_requests(
    num_requests: int,
    seed: int = 0,
    *,
    num_tenants: int = 4,
    num_keys: int = 2048,
) -> List[Request]:
    """Interleaved tenants with different behaviours sharing one cache.

    Tenant 0 is a well-behaved Zipf service, tenant 1 a scanner (batch
    analytics), tenant 2 bursty (social traffic), further tenants are
    Zipf with decreasing traffic share.  The interleave is a seeded
    weighted shuffle, so cross-tenant contention is reproducible.
    """
    rng = random.Random((seed << 8) ^ 0x7E4A47)
    shares = [max(1, 8 >> t) for t in range(num_tenants)]  # 8,4,2,1,1,...
    total_share = sum(shares)
    per_tenant = [
        max(1, num_requests * share // total_share) for share in shares
    ]
    # Integer shares round down; tenant 0 absorbs the shortfall so the
    # merged stream always has exactly num_requests entries.
    shortfall = num_requests - sum(per_tenant)
    if shortfall > 0:
        per_tenant[0] += shortfall
    streams: List[List[Request]] = []
    for tenant in range(num_tenants):
        n = per_tenant[tenant]
        if tenant == 1:
            streams.append(
                zipf_scan_requests(
                    n, seed=seed + 101 * tenant, num_keys=num_keys,
                    scan_every=150, scan_length=100, tenant=tenant,
                )
            )
        elif tenant == 2:
            streams.append(
                bursty_requests(
                    n, seed=seed + 101 * tenant, num_keys=num_keys, tenant=tenant
                )
            )
        else:
            streams.append(
                zipf_requests(
                    n, seed=seed + 101 * tenant, num_keys=num_keys, tenant=tenant
                )
            )
    # Weighted merge: pop from a random non-empty stream, weighted by
    # how many requests it still owes — preserves per-stream order.
    cursors = [0] * num_tenants
    out: List[Request] = []
    while len(out) < num_requests:
        remaining = [len(s) - c for s, c in zip(streams, cursors)]
        total = sum(remaining)
        if total == 0:
            break
        pick = rng.randrange(total)
        for tenant, rem in enumerate(remaining):
            if pick < rem:
                out.append(streams[tenant][cursors[tenant]])
                cursors[tenant] += 1
                break
            pick -= rem
    return out[:num_requests]


def proxy_burst_requests(
    num_requests: int,
    seed: int = 0,
    *,
    num_keys: int = 4096,
    alpha: float = 1.1,
    storm_every: int = 400,
    storm_length: int = 160,
    storm_echo: float = 0.55,
    drift_every: int = 0,
    drift_fraction: float = 0.04,
    tenant: int = 0,
    refresh_fraction: float = 0.02,
) -> List[Request]:
    """NGINX-style proxy traffic with size-blind one-shot burst storms.

    The foreground is a hot Zipf(alpha) mix of web objects; setting
    ``drift_every > 0`` makes its popularity ranking drift (every that
    many requests a slice of the hot ranks is displaced by keys from
    the long tail).  Every ``storm_every`` foreground requests a storm
    of ``storm_length`` cold keys sweeps through — a crawler hitting
    cold URLs, a cache-busting query-string flood.  Unlike ``zipf_scan``
    the storm objects draw from the *same* size distribution as the
    foreground (Cold-RL's size-blind bursts), so size-aware admission
    heuristics get no signal.  A ``storm_echo`` fraction of each storm
    revisits keys from the *previous* storm exactly once (a crawler's
    retry pass) and then abandons them: fixed two-touches-means-hot
    admission rules promote those dead keys into their long-lived
    queue, while a learning policy can discover that a second touch in
    this traffic still predicts nothing.
    """
    rng = random.Random((seed << 8) ^ 0xC01D2)
    tenant_base = tenant << _TENANT_SHIFT
    sampler = _ZipfSampler(rng, num_keys, alpha, tenant_base + _PROXY_BASE)
    hot = sampler.top(max(8, num_keys // 64))
    out: List[Request] = []
    storm_cursor = tenant_base + _STORM_BASE
    prev_fresh: List[int] = []
    since_storm = 0
    since_drift = 0
    while len(out) < num_requests:
        if since_storm >= storm_every:
            fresh: List[int] = []
            echoes = iter(prev_fresh)
            for _ in range(storm_length):
                key = next(echoes, None) if rng.random() < storm_echo else None
                if key is None:
                    key = storm_cursor
                    storm_cursor += 1
                    fresh.append(key)
                out.append(Request(key, object_size(key), tenant=tenant))
            prev_fresh = fresh
            since_storm = 0
            continue
        if drift_every > 0 and since_drift >= drift_every:
            sampler.rotate(rng, drift_fraction)
            hot = sampler.top(max(8, num_keys // 64))
            since_drift = 0
        key = sampler.sample(rng)
        out.append(Request(key, object_size(key), tenant=tenant))
        since_storm += 1
        since_drift += 1
        _maybe_refresh(rng, out, hot, refresh_fraction, tenant)
    return out[:num_requests]


def retrieval_requests(
    num_requests: int,
    seed: int = 0,
    *,
    num_clusters: int = 1024,
    cluster_size: int = 8,
    hot_clusters: int = 112,
    alpha: float = 1.1,
    shift_every: int = 4000,
    shift_fraction: float = 0.15,
    neighbor_fraction: float = 0.55,
    neighbor_span: int = 1 << 16,
    revisit_fraction: float = 0.35,
    revisit_window: int = 6144,
    session_fraction: float = 0.2,
    session_length: int = 300,
    tail_fraction: float = 0.1,
    tenant: int = 0,
    refresh_fraction: float = 0.0,
) -> List[Request]:
    """Semantic-retrieval / embedding-buffer access with query drift.

    Keys are embedding-buffer entries grouped into clusters of
    near-duplicates.  A query lands on a cluster — Zipf(alpha) over the
    current *hot* cluster subset, with a ``tail_fraction`` of uniform
    misses over all clusters — and touches either one of the cluster's
    few curated members (skewed toward the centroid) or, with
    probability ``neighbor_fraction``, a near-duplicate drawn from the
    cluster's huge ANN-neighbor span.  A neighbor is *revisited* at
    most once — with probability ``revisit_fraction`` a neighbor query
    re-touches an entry from a few hundred queries back (the paraphrase
    of a recent question landing on the same ANN result) — and is then
    dead forever.  Two-touches-means-hot admission rules promote those
    dead neighbors into their long-lived queue; learned admission can
    keep treating them as pollution.  Every ``shift_every`` requests a
    ``shift_fraction`` slice of the hot cluster subset is replaced by
    cold clusters: the query distribution drifts gradually, so stale
    frequency counts also mislead.

    A ``session_fraction`` of queries belongs to the active
    *conversation session*: a fresh cluster hammered for
    ``session_length`` session queries (follow-up questions in one
    chat) and then abandoned forever.  Sessions punish pure frequency
    ranking twice — a new session's entries lose the count race while
    they ramp, and a finished session's entries keep their high counts
    as dead weight — while recency-aware eviction recycles them.
    """
    rng = random.Random((seed << 8) ^ 0x2E721)
    tenant_base = tenant << _TENANT_SHIFT
    cluster_stride = max(cluster_size + neighbor_span, 1 << 17)
    cdf = _zipf_cdf(hot_clusters, alpha)
    all_clusters = list(range(num_clusters))

    def cluster_base(cluster: int) -> int:
        return tenant_base + _RETRIEVAL_BASE + cluster * cluster_stride

    out: List[Request] = []
    hot: List[int] = []
    # ring buffer of not-yet-revisited neighbor keys; a revisit consumes
    # its slot so every neighbor is touched at most twice in total
    pending: List[int | None] = [None] * max(1, revisit_window)
    pending_at = 0
    session_id = 0
    session_left = max(1, session_length)
    queries = 0
    while len(out) < num_requests:
        if not hot:
            hot = rng.sample(all_clusters, hot_clusters)
        elif queries % shift_every == 0:
            cold = [c for c in all_clusters if c not in set(hot)]
            for _ in range(max(1, int(hot_clusters * shift_fraction))):
                hot[rng.randrange(hot_clusters)] = cold[rng.randrange(len(cold))]
        queries += 1
        roll = rng.random()
        if session_fraction > 0.0 and roll < session_fraction:
            # conversation-session traffic: a fresh, short-lived cluster
            session_left -= 1
            if session_left <= 0:
                session_id += 1
                session_left = session_length
            # sessions allocate from one contiguous arena (the shared
            # `session:` keyspace prefix), not one cluster stride each
            member = min(int(rng.random() ** 2 * cluster_size), cluster_size - 1)
            key = (
                cluster_base(num_clusters)
                + session_id * cluster_size
                + member
            )
            out.append(Request(key, object_size(key), tenant=tenant))
            continue
        if roll < session_fraction + tail_fraction:
            cluster = all_clusters[rng.randrange(num_clusters)]
        else:
            cluster = hot[bisect_left(cdf, rng.random())]
        base = cluster_base(cluster)
        if rng.random() < neighbor_fraction:
            key = None
            if rng.random() < revisit_fraction:
                slot = rng.randrange(len(pending))
                key = pending[slot]
                pending[slot] = None
            if key is None:
                key = base + cluster_size + rng.randrange(neighbor_span)
                pending[pending_at] = key
                pending_at = (pending_at + 1) % len(pending)
        else:
            # quadratic skew toward member 0, the centroid
            member = int(rng.random() ** 2 * cluster_size)
            key = base + min(member, cluster_size - 1)
        out.append(Request(key, object_size(key), tenant=tenant))
        centroids = [cluster_base(c) for c in hot[: max(4, hot_clusters // 8)]]
        _maybe_refresh(rng, out, centroids, refresh_fraction, tenant)
    return out[:num_requests]


def storage_tier_requests(
    num_requests: int,
    seed: int = 0,
    *,
    num_hot_extents: int = 512,
    num_cold_extents: int = 16384,
    hot_fraction: float = 0.55,
    flood_every: int = 1500,
    flood_length: int = 300,
    tenant: int = 0,
) -> List[Request]:
    """Reuse-aware storage-tier streams with bimodal reuse distances.

    Two populations share the tier: small hot metadata extents with
    short reuse distances (``hot_fraction`` of steady-state traffic)
    and large cold data extents touched near-uniformly, whose reuse
    distance is of the order of the whole cold set.  Every
    ``flood_every`` requests a sequential flood of ``flood_length``
    one-shot extents sweeps through (backup / scrub / migration) —
    Phoebe's setting, where a policy must keep the metadata resident,
    admit cold data selectively, and let floods pass untouched.
    """
    rng = random.Random((seed << 8) ^ 0x5707A)
    tenant_base = tenant << _TENANT_SHIFT
    hot_sampler = _ZipfSampler(
        rng, num_hot_extents, 0.7, tenant_base + _STORAGE_BASE
    )
    cold_base = tenant_base + _STORAGE_BASE + _STORAGE_DATA_BIT
    out: List[Request] = []
    flood_cursor = tenant_base + _FLOOD_BASE
    since_flood = 0
    while len(out) < num_requests:
        if since_flood >= flood_every:
            for _ in range(flood_length):
                key = flood_cursor
                flood_cursor += 1
                out.append(Request(key, object_size(key), tenant=tenant))
            since_flood = 0
            continue
        if rng.random() < hot_fraction:
            key = hot_sampler.sample(rng)
        else:
            key = cold_base + rng.randrange(num_cold_extents)
        out.append(Request(key, object_size(key), tenant=tenant))
        since_flood += 1
    return out[:num_requests]


# --- registry -----------------------------------------------------------------

WorkloadFn = Callable[..., List[Request]]


@dataclass(frozen=True)
class WorkloadSpec:
    """One registered generator: its function, provenance and contract.

    ``invariants`` declares machine-checkable distribution facts the
    property harness (``tests/test_workload_properties.py``) verifies
    for every registry entry without per-generator test code:

    * ``hot_skew_min``      — the top 10% of distinct keys (by
      frequency) carry at least this fraction of all requests;
    * ``one_shot_min``      — at least this fraction of distinct keys
      is requested exactly once;
    * ``periodic_namespace`` — requests whose :func:`key_namespace`
      equals this id arrive in >= 3 contiguous bursts with regular
      spacing (periodic storms / scans / floods);
    * ``tenants_min``       — the stream spans at least this many
      distinct tenants;
    * ``drift_max_overlap`` — the top-50 hot keys of the first and
      last stream quarter overlap (Jaccard) at most this much.
    """

    name: str
    fn: WorkloadFn
    description: str
    source: str  # related-work provenance (paper / system)
    invariants: Mapping[str, object] = field(default_factory=dict)

    @property
    def knobs(self) -> Dict[str, object]:
        """Keyword knobs and their defaults, introspected from ``fn``."""
        sig = inspect.signature(self.fn)
        return {
            p.name: p.default
            for p in sig.parameters.values()
            if p.kind == inspect.Parameter.KEYWORD_ONLY
        }


WORKLOAD_SPECS: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        WorkloadSpec(
            "zipf",
            zipf_requests,
            "stationary Zipf popularity over a fixed key set",
            "classic web-cache baseline",
            invariants={"hot_skew_min": 0.45},
        ),
        WorkloadSpec(
            "zipf_scan",
            zipf_scan_requests,
            "Zipf foreground polluted by periodic one-shot large-object scans",
            "CHROME Sec. III-A (bypass motivation)",
            invariants={
                "hot_skew_min": 0.4,
                "one_shot_min": 0.2,
                "periodic_namespace": _SCAN_BASE >> 40,
            },
        ),
        WorkloadSpec(
            "bursty",
            bursty_requests,
            "hot-spot bursts: a fresh trending hot set every burst",
            "CDN flash-crowd behaviour",
            invariants={
                "hot_skew_min": 0.4,
                "periodic_namespace": _BURST_BASE >> 40,
            },
        ),
        WorkloadSpec(
            "phases",
            phase_requests,
            "diurnal phases: popularity ranking re-drawn each phase",
            "CHROME Sec. III-B (adaptability)",
            invariants={"hot_skew_min": 0.4, "drift_max_overlap": 0.2},
        ),
        WorkloadSpec(
            "multitenant",
            multitenant_requests,
            "interleaved tenants with clashing behaviours on one cache",
            "shared-cache serving tiers",
            invariants={"tenants_min": 4},
        ),
        WorkloadSpec(
            "proxy_burst",
            proxy_burst_requests,
            "heavy-tailed proxy traffic with size-blind one-shot storms",
            "Cold-RL (NGINX eviction)",
            invariants={
                "hot_skew_min": 0.5,
                "one_shot_min": 0.25,
                "periodic_namespace": _STORM_BASE >> 40,
            },
        ),
        WorkloadSpec(
            "retrieval",
            retrieval_requests,
            "clustered near-duplicate embedding lookups with query drift",
            "Sun et al. (semantic retrieval caching)",
            invariants={
                "hot_skew_min": 0.35,
                "one_shot_min": 0.3,
                "drift_max_overlap": 0.3,
            },
        ),
        WorkloadSpec(
            "storage_tier",
            storage_tier_requests,
            "bimodal reuse distances plus sequential flood phases",
            "Phoebe (storage-tier caching)",
            invariants={
                "one_shot_min": 0.3,
                "periodic_namespace": _FLOOD_BASE >> 40,
            },
        ),
    )
}

#: name -> generator function (the stable, minimal registry surface)
WORKLOADS: Dict[str, WorkloadFn] = {
    name: spec.fn for name, spec in WORKLOAD_SPECS.items()
}


def build_workload(
    name: str, num_requests: int, seed: int = 0, **params
) -> List[Request]:
    """Build a named request stream (the :class:`ServeJob` entry point).

    Unknown names raise a :class:`KeyError` that lists the registry and
    suggests the nearest spelling; unknown knobs raise a
    :class:`TypeError` that names the workload's valid knobs — both so
    a typo in a CLI flag or a config file fails with a message that
    says what to fix.
    """
    try:
        spec = WORKLOAD_SPECS[name]
    except KeyError:
        message = f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        close = difflib.get_close_matches(name, WORKLOADS, n=1)
        if close:
            message += f" (did you mean {close[0]!r}?)"
        raise KeyError(message) from None
    knobs = spec.knobs
    unknown = sorted(set(params) - set(knobs))
    if unknown:
        raise TypeError(
            f"unknown parameter(s) {unknown} for workload {name!r}; "
            f"valid knobs: {sorted(knobs)}"
        )
    return spec.fn(num_requests, seed, **params)
