"""Request-stream generators for the object-cache serving layer.

The serving layer replays *request traces* the way the simulator
replays memory traces: a workload is a deterministic, seeded list of
:class:`Request` records, so every policy sees byte-identical traffic
and results are reproducible across processes (the engine's ``--jobs``
determinism guarantee extends to serve experiments).

Key-space conventions
---------------------
Object sizes are a *pure function of the key* (``object_size``): a key
always has the same size no matter which generator, phase or tenant
touches it — exactly like a real origin where ``GET /obj/123`` returns
the same body.  Generators carve disjoint key ranges per role (core
zipf set, scan sweeps, per-phase working sets, per-tenant namespaces)
so streams never alias by accident.

Generators (registered in :data:`WORKLOADS`):

* ``zipf``        — stationary Zipf(alpha) popularity over a fixed key set;
* ``zipf_scan``   — Zipf foreground polluted by periodic one-shot scan
  bursts of large objects (the classic LRU-killer);
* ``bursty``      — hot-spot bursts: a small hot set that is replaced
  every burst, over a Zipf background;
* ``phases``      — diurnal phase changes: the popularity ranking is
  re-drawn each phase, shifting the working set;
* ``multitenant`` — interleaved per-tenant streams with different
  behaviours (Zipf tenant, scanning tenant, bursty tenant, ...).

A small fraction of requests can be marked ``is_refresh``: proactive
re-fetches of recently popular objects issued by the cache itself (the
software analogue of prefetches — same provenance split CHROME's
rewards use for demand vs. prefetch).
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..sim.address import mix_hash

_MASK64 = (1 << 64) - 1

# Disjoint key-space bases (48-bit namespaces; tenant id sits above).
_ZIPF_BASE = 0
_SCAN_BASE = 1 << 40
_BURST_BASE = 2 << 40
_PHASE_BASE = 3 << 40
_TENANT_SHIFT = 48


@dataclass(frozen=True, slots=True)
class Request:
    """One cache request: a key, its object size, and provenance."""

    key: int
    size: int
    tenant: int = 0
    is_refresh: bool = False


# --- object sizes -------------------------------------------------------------

#: size classes (bytes) and their mixture weights: mostly small-to-medium
#: web-object sizes with a heavy tail, binned so the distribution is
#: reproducible without floating-point transcendentals.
_SIZE_CLASSES: Tuple[Tuple[int, int], ...] = (
    (128, 20),
    (512, 25),
    (2 << 10, 22),
    (8 << 10, 15),
    (16 << 10, 10),
    (32 << 10, 8),
)
_SIZE_TOTAL = sum(w for _, w in _SIZE_CLASSES)

#: scan objects occupy their own size band *above* every regular class
#: (disjoint log2 buckets): byte-capacity pollution is concentrated in
#: sizes that regular traffic never uses, like real batch/backup sweeps
_SCAN_SIZES: Tuple[int, ...] = (64 << 10, 80 << 10, 96 << 10)


def object_size(key: int) -> int:
    """Deterministic per-key size draw (stable across runs/processes).

    Keys in scan namespaces draw from the large-object classes; all
    other keys draw from the mixed web-object distribution.  The size
    is jittered within its class so byte accounting is not quantized.
    """
    h = mix_hash(key * 0x9E3779B97F4A7C15 & _MASK64)
    if (key >> 40) & 0xFF == _SCAN_BASE >> 40:
        base = _SCAN_SIZES[h % len(_SCAN_SIZES)]
    else:
        pick = h % _SIZE_TOTAL
        base = _SIZE_CLASSES[-1][0]
        for size, weight in _SIZE_CLASSES:
            if pick < weight:
                base = size
                break
            pick -= weight
    jitter = (h >> 32) % max(1, base // 4)
    return base + jitter


# --- popularity sampling ------------------------------------------------------


def _zipf_cdf(num_keys: int, alpha: float) -> List[float]:
    """Cumulative Zipf(alpha) weights over ranks 1..num_keys."""
    acc = 0.0
    cdf: List[float] = []
    for rank in range(1, num_keys + 1):
        acc += rank**-alpha
        cdf.append(acc)
    total = cdf[-1]
    return [c / total for c in cdf]


class _ZipfSampler:
    """Seeded Zipf sampler over a permuted key set (rank != key order)."""

    def __init__(
        self, rng: random.Random, num_keys: int, alpha: float, base: int
    ) -> None:
        self._cdf = _zipf_cdf(num_keys, alpha)
        self._keys = [base + i for i in range(num_keys)]
        rng.shuffle(self._keys)  # decorrelate popularity rank from key value

    def sample(self, rng: random.Random) -> int:
        return self._keys[bisect_left(self._cdf, rng.random())]

    def top(self, count: int) -> List[int]:
        return self._keys[:count]


def _maybe_refresh(
    rng: random.Random,
    out: List[Request],
    recent_hot: Sequence[int],
    refresh_fraction: float,
    tenant: int,
) -> None:
    """Emit a proactive refresh of a recently popular object."""
    if refresh_fraction > 0.0 and recent_hot and rng.random() < refresh_fraction:
        key = recent_hot[rng.randrange(len(recent_hot))]
        out.append(Request(key, object_size(key), tenant=tenant, is_refresh=True))


# --- generators ---------------------------------------------------------------


def zipf_requests(
    num_requests: int,
    seed: int = 0,
    *,
    num_keys: int = 4096,
    alpha: float = 0.9,
    tenant: int = 0,
    refresh_fraction: float = 0.02,
) -> List[Request]:
    """Stationary Zipf popularity over a fixed key set."""
    rng = random.Random((seed << 8) ^ 0x5E21F)
    tenant_base = tenant << _TENANT_SHIFT
    sampler = _ZipfSampler(rng, num_keys, alpha, tenant_base + _ZIPF_BASE)
    hot = sampler.top(max(8, num_keys // 64))
    out: List[Request] = []
    while len(out) < num_requests:
        key = sampler.sample(rng)
        out.append(Request(key, object_size(key), tenant=tenant))
        _maybe_refresh(rng, out, hot, refresh_fraction, tenant)
    return out[:num_requests]


def zipf_scan_requests(
    num_requests: int,
    seed: int = 0,
    *,
    num_keys: int = 4096,
    alpha: float = 0.9,
    scan_every: int = 400,
    scan_length: int = 120,
    tenant: int = 0,
    refresh_fraction: float = 0.02,
) -> List[Request]:
    """Zipf foreground with periodic one-shot scans of large objects.

    Every ``scan_every`` foreground requests, a burst of ``scan_length``
    *never-repeated* large objects sweeps through (think batch jobs or
    crawlers) — admission-blind policies let it flush the byte budget.
    """
    rng = random.Random((seed << 8) ^ 0x5CA17)
    tenant_base = tenant << _TENANT_SHIFT
    sampler = _ZipfSampler(rng, num_keys, alpha, tenant_base + _ZIPF_BASE)
    hot = sampler.top(max(8, num_keys // 64))
    out: List[Request] = []
    scan_cursor = tenant_base + _SCAN_BASE
    since_scan = 0
    while len(out) < num_requests:
        if since_scan >= scan_every:
            for _ in range(scan_length):
                key = scan_cursor
                scan_cursor += 1
                out.append(Request(key, object_size(key), tenant=tenant))
            since_scan = 0
            continue
        key = sampler.sample(rng)
        out.append(Request(key, object_size(key), tenant=tenant))
        since_scan += 1
        _maybe_refresh(rng, out, hot, refresh_fraction, tenant)
    return out[:num_requests]


def bursty_requests(
    num_requests: int,
    seed: int = 0,
    *,
    num_keys: int = 4096,
    alpha: float = 0.8,
    burst_every: int = 600,
    burst_length: int = 200,
    hot_set_size: int = 24,
    tenant: int = 0,
) -> List[Request]:
    """Hot-spot bursts over a Zipf background.

    Each burst hammers a small, freshly drawn hot set (a trending
    object going viral) then abandons it for the next one.
    """
    rng = random.Random((seed << 8) ^ 0xB0057)
    tenant_base = tenant << _TENANT_SHIFT
    sampler = _ZipfSampler(rng, num_keys, alpha, tenant_base + _ZIPF_BASE)
    out: List[Request] = []
    burst_id = 0
    position = 0
    while len(out) < num_requests:
        if position and position % burst_every == 0:
            burst_id += 1
            hot = [
                tenant_base + _BURST_BASE + burst_id * 4096 + i
                for i in range(hot_set_size)
            ]
            for _ in range(burst_length):
                key = hot[rng.randrange(hot_set_size)]
                out.append(Request(key, object_size(key), tenant=tenant))
        key = sampler.sample(rng)
        out.append(Request(key, object_size(key), tenant=tenant))
        position += 1
    return out[:num_requests]


def phase_requests(
    num_requests: int,
    seed: int = 0,
    *,
    num_keys: int = 4096,
    alpha: float = 0.9,
    num_phases: int = 4,
    tenant: int = 0,
    refresh_fraction: float = 0.02,
) -> List[Request]:
    """Diurnal phases: each phase re-draws the popularity ranking.

    Within a phase the stream is stationary Zipf; at a phase boundary a
    fresh key set becomes popular (morning news vs. evening video), so
    policies must adapt instead of trusting stale frequency counts.
    """
    rng = random.Random((seed << 8) ^ 0xD1A17)
    tenant_base = tenant << _TENANT_SHIFT
    per_phase = max(1, num_requests // num_phases)
    out: List[Request] = []
    for phase in range(num_phases):
        base = tenant_base + _PHASE_BASE + phase * (num_keys * 4)
        sampler = _ZipfSampler(rng, num_keys, alpha, base)
        hot = sampler.top(max(8, num_keys // 64))
        target = num_requests if phase == num_phases - 1 else (phase + 1) * per_phase
        while len(out) < target:
            key = sampler.sample(rng)
            out.append(Request(key, object_size(key), tenant=tenant))
            _maybe_refresh(rng, out, hot, refresh_fraction, tenant)
    return out[:num_requests]


def multitenant_requests(
    num_requests: int,
    seed: int = 0,
    *,
    num_tenants: int = 4,
    num_keys: int = 2048,
) -> List[Request]:
    """Interleaved tenants with different behaviours sharing one cache.

    Tenant 0 is a well-behaved Zipf service, tenant 1 a scanner (batch
    analytics), tenant 2 bursty (social traffic), further tenants are
    Zipf with decreasing traffic share.  The interleave is a seeded
    weighted shuffle, so cross-tenant contention is reproducible.
    """
    rng = random.Random((seed << 8) ^ 0x7E4A47)
    shares = [max(1, 8 >> t) for t in range(num_tenants)]  # 8,4,2,1,1,...
    total_share = sum(shares)
    per_tenant = [
        max(1, num_requests * share // total_share) for share in shares
    ]
    # Integer shares round down; tenant 0 absorbs the shortfall so the
    # merged stream always has exactly num_requests entries.
    shortfall = num_requests - sum(per_tenant)
    if shortfall > 0:
        per_tenant[0] += shortfall
    streams: List[List[Request]] = []
    for tenant in range(num_tenants):
        n = per_tenant[tenant]
        if tenant == 1:
            streams.append(
                zipf_scan_requests(
                    n, seed=seed + 101 * tenant, num_keys=num_keys,
                    scan_every=150, scan_length=100, tenant=tenant,
                )
            )
        elif tenant == 2:
            streams.append(
                bursty_requests(
                    n, seed=seed + 101 * tenant, num_keys=num_keys, tenant=tenant
                )
            )
        else:
            streams.append(
                zipf_requests(
                    n, seed=seed + 101 * tenant, num_keys=num_keys, tenant=tenant
                )
            )
    # Weighted merge: pop from a random non-empty stream, weighted by
    # how many requests it still owes — preserves per-stream order.
    cursors = [0] * num_tenants
    out: List[Request] = []
    while len(out) < num_requests:
        remaining = [len(s) - c for s, c in zip(streams, cursors)]
        total = sum(remaining)
        if total == 0:
            break
        pick = rng.randrange(total)
        for tenant, rem in enumerate(remaining):
            if pick < rem:
                out.append(streams[tenant][cursors[tenant]])
                cursors[tenant] += 1
                break
            pick -= rem
    return out[:num_requests]


# --- registry -----------------------------------------------------------------

WorkloadFn = Callable[..., List[Request]]

WORKLOADS: Dict[str, WorkloadFn] = {
    "zipf": zipf_requests,
    "zipf_scan": zipf_scan_requests,
    "bursty": bursty_requests,
    "phases": phase_requests,
    "multitenant": multitenant_requests,
}


def build_workload(
    name: str, num_requests: int, seed: int = 0, **params
) -> List[Request]:
    """Build a named request stream (the :class:`ServeJob` entry point)."""
    try:
        fn = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None
    return fn(num_requests, seed, **params)
