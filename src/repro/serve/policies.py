"""Classic object-cache policies behind one ``ServePolicy`` interface.

The :class:`~repro.serve.store.ObjectStore` is policy-agnostic: it owns
capacity accounting and the segment dictionaries, and delegates every
judgement call — admit or bypass, which object to evict, what to do on
a hit — to a :class:`ServePolicy`.  The CHROME serve agent
(:mod:`repro.serve.agent`) implements this same interface, so learned
and classic policies are interchangeable everywhere (experiments,
benchmarks, the asyncio service).

Baselines:

* ``lru``    — evict the least-recently-used object (admission-blind);
* ``lfu``    — evict the least-frequently-used (ties oldest-first);
* ``gdsf``   — Greedy-Dual-Size-Frequency: priority ``L + freq *
  cost(size)/size`` with an aging clock ``L`` per segment, the classic
  size-aware web-cache policy;
* ``s3fifo`` — a small/main FIFO split with a ghost list: one-hit
  wonders die in the small queue, re-referenced objects are promoted,
  recently evicted keys re-admit straight to main (S3-FIFO-style).

Every policy is deterministic given the request order — no wall-clock,
no unseeded RNG — which is what lets serve results flow through the
parallel engine bit-identically.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Set

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .store import CachedObject
    from .workloads import Request


class ServePolicy:
    """Admission/eviction/hit hooks the object store consults."""

    name = "base"

    def __init__(self) -> None:
        self.num_segments = 0
        self.segment_capacity = 0

    def attach(self, num_segments: int, segment_capacity: int) -> None:
        """Called once by the store before any traffic."""
        self.num_segments = num_segments
        self.segment_capacity = segment_capacity

    # --- judgement calls ------------------------------------------------------

    def admit(self, req: "Request", seg_idx: int) -> bool:
        """Miss path: admit the fetched object, or serve-and-drop?"""
        return True

    def on_admit(self, req: "Request", obj: "CachedObject", seg_idx: int) -> None:
        """The object was inserted (set policy metadata, e.g. EPV)."""

    def on_hit(self, req: "Request", obj: "CachedObject", seg_idx: int) -> None:
        """The object was served from cache."""

    def select_victim(
        self, segment: Dict[int, "CachedObject"], seg_idx: int
    ) -> int:
        """Key of the object to evict (segment is never empty)."""
        raise NotImplementedError

    def on_evict(self, obj: "CachedObject", seg_idx: int) -> None:
        """The object was removed to make room."""

    def telemetry(self) -> dict:
        return {}


class LRUServePolicy(ServePolicy):
    """Evict the coldest object; admit everything."""

    name = "lru"

    def select_victim(self, segment: Dict[int, "CachedObject"], seg_idx: int) -> int:
        best_key = -1
        best_touch = None
        for key, obj in segment.items():
            if best_touch is None or obj.last_touch < best_touch:
                best_key = key
                best_touch = obj.last_touch
        return best_key


class LFUServePolicy(ServePolicy):
    """Evict the least-frequently-used object (ties oldest-first)."""

    name = "lfu"

    def select_victim(self, segment: Dict[int, "CachedObject"], seg_idx: int) -> int:
        best_key = -1
        best = None
        for key, obj in segment.items():
            rank = (obj.freq, obj.last_touch)
            if best is None or rank < best:
                best_key = key
                best = rank
        return best_key


class GDSFServePolicy(ServePolicy):
    """Greedy-Dual-Size-Frequency with a per-segment aging clock.

    Priority ``H = L + freq * cost(size) / size``; eviction takes the
    minimum-H object and advances ``L`` to that H, so long-untouched
    objects age out no matter their frequency.  The default cost model
    is byte-proportional (origin egress), which reduces H to
    ``L + freq`` — frequency with aging — while ``cost="unit"`` gives
    the small-object-favouring variant that maximizes object hit ratio.
    """

    name = "gdsf"

    def __init__(self, cost: str = "bytes") -> None:
        super().__init__()
        if cost not in ("bytes", "unit"):
            raise ValueError(f"unknown GDSF cost model {cost!r}")
        self._unit_cost = cost == "unit"
        self._clock: List[float] = []

    def attach(self, num_segments: int, segment_capacity: int) -> None:
        super().attach(num_segments, segment_capacity)
        self._clock = [0.0] * num_segments

    def _priority(self, obj: "CachedObject", seg_idx: int) -> float:
        cost = 1.0 if self._unit_cost else float(obj.size)
        return self._clock[seg_idx] + obj.freq * cost / obj.size

    def on_admit(self, req: "Request", obj: "CachedObject", seg_idx: int) -> None:
        obj.priority = self._priority(obj, seg_idx)

    def on_hit(self, req: "Request", obj: "CachedObject", seg_idx: int) -> None:
        obj.priority = self._priority(obj, seg_idx)

    def select_victim(self, segment: Dict[int, "CachedObject"], seg_idx: int) -> int:
        best_key = -1
        best = None
        for key, obj in segment.items():
            rank = (obj.priority, obj.last_touch)
            if best is None or rank < best:
                best_key = key
                best = rank
        clock = segment[best_key].priority
        if clock > self._clock[seg_idx]:
            self._clock[seg_idx] = clock
        return best_key


class S3FIFOServePolicy(ServePolicy):
    """Small/main FIFO split with a ghost list (S3-FIFO-style).

    New objects enter the *small* queue (a byte-budgeted probation,
    default 10% of the segment).  A small-queue object evicted without
    a hit goes to the *ghost* set; if its key misses again soon, it is
    admitted directly to *main*.  Queue heads with hits are recycled
    (moved to main / rotated) instead of evicted, so one-hit wonders
    are filtered without sacrificing reuse.
    """

    name = "s3fifo"

    def __init__(self, small_fraction: float = 0.10, ghost_entries: int = 4096) -> None:
        super().__init__()
        self._small_fraction = small_fraction
        self._ghost_entries = ghost_entries
        self._small: List[Deque[int]] = []
        self._main: List[Deque[int]] = []
        self._ghost: List[OrderedDict] = []
        self._small_bytes: List[int] = []
        self._in_small: List[Set[int]] = []

    def attach(self, num_segments: int, segment_capacity: int) -> None:
        super().attach(num_segments, segment_capacity)
        self._small = [deque() for _ in range(num_segments)]
        self._main = [deque() for _ in range(num_segments)]
        self._ghost = [OrderedDict() for _ in range(num_segments)]
        self._small_bytes = [0] * num_segments
        self._in_small = [set() for _ in range(num_segments)]

    def on_admit(self, req: "Request", obj: "CachedObject", seg_idx: int) -> None:
        ghost = self._ghost[seg_idx]
        if obj.key in ghost:
            del ghost[obj.key]
            self._main[seg_idx].append(obj.key)
        else:
            self._small[seg_idx].append(obj.key)
            self._small_bytes[seg_idx] += obj.size
            self._in_small[seg_idx].add(obj.key)

    def _remember_ghost(self, key: int, seg_idx: int) -> None:
        ghost = self._ghost[seg_idx]
        ghost[key] = True
        while len(ghost) > self._ghost_entries:
            ghost.popitem(last=False)

    def select_victim(self, segment: Dict[int, "CachedObject"], seg_idx: int) -> int:
        small = self._small[seg_idx]
        main = self._main[seg_idx]
        in_small = self._in_small[seg_idx]
        small_budget = int(self.segment_capacity * self._small_fraction)
        # Prefer evicting from small once it exceeds its probation
        # budget (or main is empty); recycle re-referenced heads.
        for _ in range(len(small) + len(main) + 1):
            use_small = small and (
                self._small_bytes[seg_idx] > small_budget or not main
            )
            queue = small if use_small else main
            if not queue:
                queue = small if small else main
                use_small = queue is small
            key = queue.popleft()
            obj = segment.get(key)
            if obj is None:  # stale id (already evicted via resize etc.)
                if use_small and key in in_small:
                    in_small.discard(key)
                continue
            if use_small:
                self._small_bytes[seg_idx] -= obj.size
                in_small.discard(key)
                if obj.freq > 1:
                    main.append(key)  # survived probation
                    continue
                self._remember_ghost(key, seg_idx)
                return key
            if obj.freq > 1:
                obj.freq = 1  # demote and give one more round
                main.append(key)
                continue
            return key
        # Pathological fallback: everything was recycled — evict the
        # oldest main entry outright.
        queue = main if main else small
        key = queue.popleft()
        if key in in_small:
            in_small.discard(key)
            obj = segment.get(key)
            if obj is not None:
                self._small_bytes[seg_idx] -= obj.size
        return key


# --- registry -----------------------------------------------------------------

PolicyBuilder = Callable[..., ServePolicy]

SERVE_POLICIES: Dict[str, PolicyBuilder] = {
    "lru": LRUServePolicy,
    "lfu": LFUServePolicy,
    "gdsf": GDSFServePolicy,
    "s3fifo": S3FIFOServePolicy,
}


def register_serve_policy(name: str, builder: PolicyBuilder) -> None:
    """Register a named serve-policy builder (used by the agent module)."""
    SERVE_POLICIES[name] = builder


def make_serve_policy(name: str, **params) -> ServePolicy:
    try:
        builder = SERVE_POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown serve policy {name!r}; available: {sorted(SERVE_POLICIES)}"
        ) from None
    return builder(**params)
