"""Serve experiments: CHROME vs. classic policies on the PR-1 engine.

Seven experiments register at import time (importing
:mod:`repro.experiments` — or :mod:`repro.serve` — is enough), each a
declarative :class:`~repro.experiments.engine.ExperimentPlan` over
:class:`~repro.serve.jobs.ServeJob` specs:

* ``serve_zipf``        — Zipf traffic polluted by periodic one-shot
  scans: the admission benchmark (can a policy refuse bytes that will
  never be re-read?);
* ``serve_multitenant`` — four tenants with clashing behaviours (Zipf,
  scanner, bursty, light Zipf) sharing one cache; per-tenant byte hit
  ratios show who wins and who starves;
* ``serve_phases``      — diurnal popularity shifts: stale-frequency
  traps for LFU-like policies, adaptation speed for the agent;
* ``serve_proxy_burst`` — NGINX-style proxy traffic with size-blind
  one-shot storms and crawler-retry echoes (Cold-RL's setting): no
  size heuristic filters the storms, fixed two-touch promotion admits
  dead echo keys;
* ``serve_retrieval``   — semantic-retrieval / embedding-buffer access
  with clustered near-duplicates, drifting hot clusters and short
  conversation sessions (Sun et al.'s setting);
* ``serve_storage``     — bimodal storage-tier reuse plus sequential
  backup floods (Phoebe's setting);
* ``serve_faults``      — chaos run: deterministic outages, error
  bursts and latency spikes against a resilient (timeout/retry/
  breaker/stale/shed) vs. a naive configuration of the same policy —
  graceful degradation, quantified.

Run sizes map from the shared :class:`ExperimentScale`: CLI/env knobs
(``--accesses``, ``--warmup``, ``REPRO_SCALE``...) scale serve
experiments exactly like figure experiments, and the engine gives them
``--jobs N`` parallelism, cross-experiment dedup and ``--cache-dir``
memoization for free.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Mapping, Tuple

from ..experiments.engine import ExperimentPlan
from ..experiments.registry import register_experiment
from ..experiments.report import ExperimentResult
from ..experiments.runner import ExperimentScale
from .jobs import ServeJob
from .metrics import ServeMetrics

#: every serve experiment compares these policies (CHROME last so the
#: table reads baseline -> learned)
SERVE_POLICIES_COMPARED: Tuple[str, ...] = ("lru", "lfu", "gdsf", "s3fifo", "chrome")

#: full-scale store geometry; capacity scales with machine_scale the
#: way the LLC does, segments stay fixed (the sampled-segment scheme
#: needs at least the 64 training segments)
FULL_SCALE_CAPACITY_BYTES = 256 << 20  # 256 MiB at machine_scale=1.0
NUM_SEGMENTS = 128
MIN_CAPACITY_BYTES = NUM_SEGMENTS * (96 << 10)  # >= one large object per segment


def serve_capacity(scale: ExperimentScale) -> int:
    return max(
        MIN_CAPACITY_BYTES, int(FULL_SCALE_CAPACITY_BYTES * scale.machine_scale)
    )


def _serve_job(
    scale: ExperimentScale,
    workload: str,
    policy: str,
    workload_params: Tuple[Tuple[str, object], ...] = (),
    seed: int = 0,
) -> ServeJob:
    return ServeJob(
        workload=workload,
        policy=policy,
        num_requests=scale.accesses_per_core,
        warmup_requests=scale.warmup_per_core,
        capacity_bytes=serve_capacity(scale),
        num_segments=NUM_SEGMENTS,
        num_clients=8,
        seed=seed,
        workload_params=workload_params,
    )


def _policy_rows(
    jobs: Mapping[str, ServeJob], results: Mapping[ServeJob, ServeMetrics]
) -> List[List[object]]:
    rows: List[List[object]] = []
    for policy, job in jobs.items():
        m = results[job]
        rows.append(
            [
                policy,
                round(100.0 * m.object_hit_ratio, 2),
                round(100.0 * m.byte_hit_ratio, 2),
                round(100.0 * m.backend_load, 2),
                round(m.p99_latency_ms, 2),
                m.evictions,
                m.bypassed,
            ]
        )
    return rows


_COLUMNS = [
    "policy",
    "object_hit%",
    "byte_hit%",
    "backend_load%",
    "p99_ms",
    "evictions",
    "bypasses",
]


def _chrome_vs_lru_note(
    jobs: Mapping[str, ServeJob], results: Mapping[ServeJob, ServeMetrics]
) -> str:
    chrome = results[jobs["chrome"]]
    lru = results[jobs["lru"]]
    delta = 100.0 * (chrome.byte_hit_ratio - lru.byte_hit_ratio)
    return (
        f"CHROME byte hit ratio {100.0 * chrome.byte_hit_ratio:.2f}% vs "
        f"LRU {100.0 * lru.byte_hit_ratio:.2f}% ({delta:+.2f} pts)"
    )


def _comparison_plan(
    experiment_id: str,
    title: str,
    workload: str,
    scale: ExperimentScale,
    workload_params: Tuple[Tuple[str, object], ...] = (),
    extra_notes=None,
) -> ExperimentPlan:
    jobs = {
        policy: _serve_job(scale, workload, policy, workload_params)
        for policy in SERVE_POLICIES_COMPARED
    }

    def assemble(results: Mapping[ServeJob, ServeMetrics]) -> ExperimentResult:
        notes = [_chrome_vs_lru_note(jobs, results)]
        if extra_notes is not None:
            notes.extend(extra_notes(jobs, results))
        return ExperimentResult(
            experiment_id=experiment_id,
            title=title,
            columns=list(_COLUMNS),
            rows=_policy_rows(jobs, results),
            notes=notes,
        )

    return ExperimentPlan(
        experiment_id=experiment_id,
        jobs=tuple(jobs.values()),
        assemble=assemble,
    )


def serve_zipf_plan(scale: ExperimentScale) -> ExperimentPlan:
    return _comparison_plan(
        "serve_zipf",
        "object cache under Zipf + scan pollution (CHROME vs. baselines)",
        "zipf_scan",
        scale,
    )


def serve_phases_plan(scale: ExperimentScale) -> ExperimentPlan:
    return _comparison_plan(
        "serve_phases",
        "object cache under diurnal phase shifts",
        "phases",
        scale,
    )


def serve_proxy_burst_plan(scale: ExperimentScale) -> ExperimentPlan:
    return _comparison_plan(
        "serve_proxy_burst",
        "proxy cache under size-blind burst storms with crawler echoes",
        "proxy_burst",
        scale,
    )


def serve_retrieval_plan(scale: ExperimentScale) -> ExperimentPlan:
    return _comparison_plan(
        "serve_retrieval",
        "embedding buffer under clustered retrieval with query drift",
        "retrieval",
        scale,
    )


def serve_storage_plan(scale: ExperimentScale) -> ExperimentPlan:
    return _comparison_plan(
        "serve_storage",
        "storage tier under bimodal reuse and sequential floods",
        "storage_tier",
        scale,
    )


"""Chaos scenario: all window widths scale with the run's virtual
horizon, so ~the same number of outages hit a CI-sized run and a
full-scale one.  ``INTER_ARRIVAL_MS`` mirrors LatencyConfig's default
(the virtual horizon of N requests is ``N * inter_arrival``)."""
INTER_ARRIVAL_MS = 0.5

#: policies the chaos experiment stresses (baseline + learned)
FAULT_POLICIES: Tuple[str, ...] = ("lru", "chrome")


def chaos_fault_params(scale: ExperimentScale) -> Tuple[Tuple[str, object], ...]:
    """The pinned ``serve_faults`` fault model at a given run scale."""
    horizon = (scale.accesses_per_core + scale.warmup_per_core) * INTER_ARRIVAL_MS
    return (
        ("seed", 1),
        ("error_rate", 0.01),
        ("spike_rate", 0.02),
        ("spike_multiplier", 8.0),
        ("burst_every_ms", round(horizon / 4.0, 3)),
        ("burst_duration_ms", round(horizon / 30.0, 3)),
        ("outage_every_ms", round(horizon / 3.0, 3)),
        ("outage_duration_ms", round(horizon / 12.0, 3)),
        ("recovery_ramp_ms", round(horizon / 24.0, 3)),
        ("recovery_multiplier", 4.0),
    )


def resilient_params(scale: ExperimentScale) -> Tuple[Tuple[str, object], ...]:
    """The graceful-degradation configuration under test.

    Two knobs must be sized against the fault model, not picked in the
    abstract:

    * the breaker's open window sits well below the outage duration
      (``horizon/12`` in :func:`chaos_fault_params`): the breaker's job
      is to fast-fail *during* an outage, then rediscover recovery via
      half-open probes within a few virtual ms of the origin coming
      back — an open window wider than the outage keeps denying healthy
      requests after recovery and *raises* the error rate above naive;
    * the request latency budget (``timeout_ms``) sits below the naive
      p99, so every degraded miss — retries, backoff and all — resolves
      faster than the naive tail it replaces.
    """
    horizon = (scale.accesses_per_core + scale.warmup_per_core) * INTER_ARRIVAL_MS
    return (
        ("timeout_ms", 30.0),
        ("shed_outstanding", 128),
        ("breaker_open_ms", round(horizon / 120.0, 3)),
    )

#: the control group: one attempt, no breaker, no stale copies, no shed
NAIVE_PARAMS: Tuple[Tuple[str, object], ...] = (("preset", "none"),)


def serve_faults_plan(scale: ExperimentScale) -> ExperimentPlan:
    fault_params = chaos_fault_params(scale)
    jobs = {}
    for policy in FAULT_POLICIES:
        for mode, resilience_params in (
            ("naive", NAIVE_PARAMS),
            ("resilient", resilient_params(scale)),
        ):
            jobs[(policy, mode)] = replace(
                _serve_job(scale, "zipf_scan", policy),
                fault_params=fault_params,
                resilience_params=resilience_params,
            )

    def assemble(results: Mapping[ServeJob, ServeMetrics]) -> ExperimentResult:
        rows: List[List[object]] = []
        notes: List[str] = []
        for policy in FAULT_POLICIES:
            for mode in ("naive", "resilient"):
                m = results[jobs[(policy, mode)]]
                rows.append(
                    [
                        policy,
                        mode,
                        round(100.0 * m.byte_hit_ratio, 2),
                        round(100.0 * m.error_rate, 2),
                        m.shed,
                        m.stale_served,
                        m.retries,
                        m.breaker_opens,
                        round(m.p99_latency_ms, 2),
                        round(m.degraded_p99_latency_ms, 2),
                    ]
                )
            naive = results[jobs[(policy, "naive")]]
            resilient = results[jobs[(policy, "resilient")]]
            notes.append(
                f"{policy}: resilient error {100.0 * resilient.error_rate:.2f}% "
                f"vs naive {100.0 * naive.error_rate:.2f}%, p99 "
                f"{resilient.p99_latency_ms:.2f}ms vs "
                f"{naive.p99_latency_ms:.2f}ms"
            )
        return ExperimentResult(
            experiment_id="serve_faults",
            title="object cache under injected outages: resilient vs. naive",
            columns=[
                "policy",
                "mode",
                "byte_hit%",
                "error%",
                "shed",
                "stale",
                "retries",
                "breaker_opens",
                "p99_ms",
                "degraded_p99_ms",
            ],
            rows=rows,
            notes=notes,
        )

    return ExperimentPlan(
        experiment_id="serve_faults",
        jobs=tuple(jobs.values()),
        assemble=assemble,
    )


def serve_multitenant_plan(scale: ExperimentScale) -> ExperimentPlan:
    def tenant_notes(jobs, results):
        notes = []
        for policy in ("lru", "chrome"):
            m = results[jobs[policy]]
            per = ", ".join(
                f"t{t}={100.0 * tm.byte_hit_ratio:.1f}%"
                for t, tm in sorted(m.per_tenant.items())
            )
            notes.append(f"{policy} per-tenant byte hit: {per}")
        return notes

    return _comparison_plan(
        "serve_multitenant",
        "shared object cache, four tenants with clashing behaviours",
        "multitenant",
        scale,
        extra_notes=tenant_notes,
    )


SERVE_PLANS = {
    "serve_zipf": serve_zipf_plan,
    "serve_multitenant": serve_multitenant_plan,
    "serve_phases": serve_phases_plan,
    "serve_proxy_burst": serve_proxy_burst_plan,
    "serve_retrieval": serve_retrieval_plan,
    "serve_storage": serve_storage_plan,
    "serve_faults": serve_faults_plan,
}


def _register() -> None:
    for experiment_id, plan_builder in SERVE_PLANS.items():

        def runner_fn(runner, _builder=plan_builder):
            return runner.run_plan(_builder(runner.scale))

        register_experiment(experiment_id, runner_fn, plan=plan_builder)


_register()
