"""Serve experiments: CHROME vs. classic policies on the PR-1 engine.

Three experiments register at import time (importing
:mod:`repro.experiments` — or :mod:`repro.serve` — is enough), each a
declarative :class:`~repro.experiments.engine.ExperimentPlan` over
:class:`~repro.serve.jobs.ServeJob` specs:

* ``serve_zipf``        — Zipf traffic polluted by periodic one-shot
  scans: the admission benchmark (can a policy refuse bytes that will
  never be re-read?);
* ``serve_multitenant`` — four tenants with clashing behaviours (Zipf,
  scanner, bursty, light Zipf) sharing one cache; per-tenant byte hit
  ratios show who wins and who starves;
* ``serve_phases``      — diurnal popularity shifts: stale-frequency
  traps for LFU-like policies, adaptation speed for the agent.

Run sizes map from the shared :class:`ExperimentScale`: CLI/env knobs
(``--accesses``, ``--warmup``, ``REPRO_SCALE``...) scale serve
experiments exactly like figure experiments, and the engine gives them
``--jobs N`` parallelism, cross-experiment dedup and ``--cache-dir``
memoization for free.
"""

from __future__ import annotations

from typing import List, Mapping, Tuple

from ..experiments.engine import ExperimentPlan
from ..experiments.registry import register_experiment
from ..experiments.report import ExperimentResult
from ..experiments.runner import ExperimentScale
from .jobs import ServeJob
from .metrics import ServeMetrics

#: every serve experiment compares these policies (CHROME last so the
#: table reads baseline -> learned)
SERVE_POLICIES_COMPARED: Tuple[str, ...] = ("lru", "lfu", "gdsf", "s3fifo", "chrome")

#: full-scale store geometry; capacity scales with machine_scale the
#: way the LLC does, segments stay fixed (the sampled-segment scheme
#: needs at least the 64 training segments)
FULL_SCALE_CAPACITY_BYTES = 256 << 20  # 256 MiB at machine_scale=1.0
NUM_SEGMENTS = 128
MIN_CAPACITY_BYTES = NUM_SEGMENTS * (96 << 10)  # >= one large object per segment


def serve_capacity(scale: ExperimentScale) -> int:
    return max(
        MIN_CAPACITY_BYTES, int(FULL_SCALE_CAPACITY_BYTES * scale.machine_scale)
    )


def _serve_job(
    scale: ExperimentScale,
    workload: str,
    policy: str,
    workload_params: Tuple[Tuple[str, object], ...] = (),
    seed: int = 0,
) -> ServeJob:
    return ServeJob(
        workload=workload,
        policy=policy,
        num_requests=scale.accesses_per_core,
        warmup_requests=scale.warmup_per_core,
        capacity_bytes=serve_capacity(scale),
        num_segments=NUM_SEGMENTS,
        num_clients=8,
        seed=seed,
        workload_params=workload_params,
    )


def _policy_rows(
    jobs: Mapping[str, ServeJob], results: Mapping[ServeJob, ServeMetrics]
) -> List[List[object]]:
    rows: List[List[object]] = []
    for policy, job in jobs.items():
        m = results[job]
        rows.append(
            [
                policy,
                round(100.0 * m.object_hit_ratio, 2),
                round(100.0 * m.byte_hit_ratio, 2),
                round(100.0 * m.backend_load, 2),
                round(m.p99_latency_ms, 2),
                m.evictions,
                m.bypassed,
            ]
        )
    return rows


_COLUMNS = [
    "policy",
    "object_hit%",
    "byte_hit%",
    "backend_load%",
    "p99_ms",
    "evictions",
    "bypasses",
]


def _chrome_vs_lru_note(
    jobs: Mapping[str, ServeJob], results: Mapping[ServeJob, ServeMetrics]
) -> str:
    chrome = results[jobs["chrome"]]
    lru = results[jobs["lru"]]
    delta = 100.0 * (chrome.byte_hit_ratio - lru.byte_hit_ratio)
    return (
        f"CHROME byte hit ratio {100.0 * chrome.byte_hit_ratio:.2f}% vs "
        f"LRU {100.0 * lru.byte_hit_ratio:.2f}% ({delta:+.2f} pts)"
    )


def _comparison_plan(
    experiment_id: str,
    title: str,
    workload: str,
    scale: ExperimentScale,
    workload_params: Tuple[Tuple[str, object], ...] = (),
    extra_notes=None,
) -> ExperimentPlan:
    jobs = {
        policy: _serve_job(scale, workload, policy, workload_params)
        for policy in SERVE_POLICIES_COMPARED
    }

    def assemble(results: Mapping[ServeJob, ServeMetrics]) -> ExperimentResult:
        notes = [_chrome_vs_lru_note(jobs, results)]
        if extra_notes is not None:
            notes.extend(extra_notes(jobs, results))
        return ExperimentResult(
            experiment_id=experiment_id,
            title=title,
            columns=list(_COLUMNS),
            rows=_policy_rows(jobs, results),
            notes=notes,
        )

    return ExperimentPlan(
        experiment_id=experiment_id,
        jobs=tuple(jobs.values()),
        assemble=assemble,
    )


def serve_zipf_plan(scale: ExperimentScale) -> ExperimentPlan:
    return _comparison_plan(
        "serve_zipf",
        "object cache under Zipf + scan pollution (CHROME vs. baselines)",
        "zipf_scan",
        scale,
    )


def serve_phases_plan(scale: ExperimentScale) -> ExperimentPlan:
    return _comparison_plan(
        "serve_phases",
        "object cache under diurnal phase shifts",
        "phases",
        scale,
    )


def serve_multitenant_plan(scale: ExperimentScale) -> ExperimentPlan:
    def tenant_notes(jobs, results):
        notes = []
        for policy in ("lru", "chrome"):
            m = results[jobs[policy]]
            per = ", ".join(
                f"t{t}={100.0 * tm.byte_hit_ratio:.1f}%"
                for t, tm in sorted(m.per_tenant.items())
            )
            notes.append(f"{policy} per-tenant byte hit: {per}")
        return notes

    return _comparison_plan(
        "serve_multitenant",
        "shared object cache, four tenants with clashing behaviours",
        "multitenant",
        scale,
        extra_notes=tenant_notes,
    )


SERVE_PLANS = {
    "serve_zipf": serve_zipf_plan,
    "serve_multitenant": serve_multitenant_plan,
    "serve_phases": serve_phases_plan,
}


def _register() -> None:
    for experiment_id, plan_builder in SERVE_PLANS.items():

        def runner_fn(runner, _builder=plan_builder):
            return runner.run_plan(_builder(runner.scale))

        register_experiment(experiment_id, runner_fn, plan=plan_builder)


_register()
