"""Asyncio cache front-end with a concurrent, *reproducible* driver.

Real serving concurrency and reproducible science are usually at odds:
if N client coroutines race on the cache, admission order — and
therefore every hit-ratio number — depends on scheduler whims.  This
module gets both:

* **state mutation is sequenced** — each request carries its global
  sequence number, and a ticket discipline (:class:`_Sequencer`) lets
  clients interleave freely but forces lookup/admit/evict to happen in
  sequence order.  ``num_clients=1`` and ``num_clients=64`` produce
  bit-identical :class:`~repro.serve.metrics.ServeMetrics`;
* **time is virtual** — request latency comes from a deterministic
  model (:class:`Backend`): arrival times are ``seq x inter_arrival``,
  a backend fetch costs base + bytes/bandwidth + a queueing penalty
  per outstanding fetch, and outstanding fetches are tracked with a
  heap of virtual completion times.  p99 latency is a property of the
  *workload and policy*, not of the host machine's load.

The miss-latency stream feeds the
:class:`~repro.serve.agent.BackendObstructionMonitor`, closing the
loop that makes the CHROME serve agent concurrency-aware: more misses
-> deeper backend queues -> higher fetch latency -> obstructed tenants
-> amplified no-re-request rewards.

Fault injection and graceful degradation (this PR) ride on the same
discipline: a :class:`~repro.serve.faults.FaultInjector` decides each
attempt's fate as a *pure function* of (seed, seq, attempt, virtual
time), and the :class:`~repro.serve.resilience.ResilienceState`
machinery (timeout, retries, breaker, stale serving, shedding) runs
entirely inside the sequenced :meth:`CacheService.process` call — so
chaos runs stay bit-identical at any client count.  When neither is
configured, requests take the original code path untouched (the
committed goldens pin that the default path did not move).
"""

from __future__ import annotations

import asyncio
import heapq
from typing import List, Optional, Sequence, Tuple

from .agent import BackendObstructionMonitor
from .config import LatencyConfig, ServiceConfig
from .faults import FaultConfig, FaultInjector
from .metrics import MetricsRecorder, ServeMetrics
from .policies import ServePolicy
from .resilience import ResilienceConfig, ResilienceState
from .store import ObjectStore
from .workloads import Request


class Backend:
    """Deterministic origin model: latency grows with fetch concurrency."""

    def __init__(self, config: LatencyConfig) -> None:
        self.config = config
        self._completions: List[float] = []  # min-heap of virtual finish times
        self.fetches = 0
        self.bytes_fetched = 0

    def fetch(self, size: int, now_ms: float) -> Tuple[float, int]:
        """Issue a fetch at virtual time ``now_ms``.

        Returns ``(latency_ms, outstanding)`` where ``outstanding`` is
        the number of fetches still in flight at issue time — the
        concurrency signal the latency penalty and the obstruction
        monitor key off.
        """
        completions = self._completions
        while completions and completions[0] <= now_ms:
            heapq.heappop(completions)
        outstanding = len(completions)
        cfg = self.config
        latency = (
            cfg.backend_base_ms
            + size / cfg.backend_bytes_per_ms
            + cfg.queue_penalty_ms * outstanding
        )
        heapq.heappush(completions, now_ms + latency)
        self.fetches += 1
        self.bytes_fetched += size
        return latency, outstanding

    def outstanding(self, now_ms: float) -> int:
        """Fetches still in flight at ``now_ms`` (no fetch issued)."""
        completions = self._completions
        while completions and completions[0] <= now_ms:
            heapq.heappop(completions)
        return len(completions)


class _Sequencer:
    """Ticket lock over request sequence numbers (asyncio Condition)."""

    def __init__(self) -> None:
        self._next = 0
        self._cond = asyncio.Condition()

    async def turn(self, seq: int) -> None:
        async with self._cond:
            await self._cond.wait_for(lambda: self._next == seq)

    async def advance(self) -> None:
        async with self._cond:
            self._next += 1
            self._cond.notify_all()


class CacheService:
    """The serving front-end: lookup, origin fetch, admission, metrics.

    :meth:`process` is the synchronous per-request core — everything
    that touches shared state.  The async driver wraps it in the ticket
    discipline; :func:`replay_requests` calls it in a plain loop.  Both
    produce identical results by construction (and by test).
    """

    def __init__(
        self,
        store: ObjectStore,
        latency: Optional[LatencyConfig] = None,
        monitor: Optional[BackendObstructionMonitor] = None,
        recorder: Optional[MetricsRecorder] = None,
        warmup_requests: int = 0,
        faults: Optional[FaultConfig] = None,
        resilience: Optional[ResilienceConfig] = None,
        obs=None,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        # ``config`` is the consolidated spec (see serve/config.py); the
        # individual kwargs remain as the legacy surface and, when given
        # explicitly, win over the config's fields.
        if config is not None:
            latency = latency or config.latency
            faults = faults if faults is not None else config.faults
            resilience = (
                resilience if resilience is not None else config.resilience
            )
            if warmup_requests == 0:
                warmup_requests = config.warmup_requests
        self.config = config
        self.store = store
        self.latency = latency or LatencyConfig()
        self.backend = Backend(self.latency)
        self.monitor = monitor or BackendObstructionMonitor(
            self.latency.backend_base_ms
        )
        self.recorder = recorder
        self.warmup_requests = warmup_requests
        self.injector = FaultInjector(faults) if faults is not None else None
        # The degraded pipeline engages when faults are injected OR a
        # resilience policy is explicitly requested; a plain service
        # keeps the original (goldens-pinned) request path.
        if faults is not None or resilience is not None:
            self.resilience = ResilienceState(resilience or ResilienceConfig())
            if self.resilience.config.stale_entries > 0:
                store.add_evict_listener(self.resilience.retain_stale)
        else:
            self.resilience = None
        if recorder is not None:
            store.recorder = recorder
            recorder.set_measuring(warmup_requests == 0)
        # Let learned policies see the obstruction signal.
        bind = getattr(store.policy, "bind_obstruction", None)
        if callable(bind):
            bind(self.monitor)
        # Live-operations tap (repro.ops): called once per request,
        # inside the sequenced section, after this service has fully
        # processed it.  None by default — same zero-overhead-when-off
        # contract as obs (one attribute test per request).
        self._ops_tap = None
        # Observability: one attribute test per request when disabled
        # (the zero-overhead-when-off contract of repro.obs).
        self._obs = obs
        if obs is not None:
            self._obs_window = max(1, obs.config.serve_window)
            self._obs_next = self._obs_window - 1
            obs.tracer.name_thread(0, "serve")
        else:
            self._obs_window = 0
            self._obs_next = -1

    def process(self, seq: int, req: Request) -> bool:
        """Serve one request at its virtual arrival time; returns hit."""
        if self._obs is not None and seq == self._obs_next:
            self._obs_sample(seq)
        if self.resilience is not None:
            hit = self._process_resilient(seq, req)
            if self._ops_tap is not None:
                self._ops_tap(seq, req)
            return hit
        recorder = self.recorder
        if recorder is not None and seq == self.warmup_requests:
            recorder.set_measuring(True)
        now_ms = seq * self.latency.inter_arrival_ms
        hit = self.store.lookup(req)
        outstanding = 0
        if hit:
            latency = self.latency.hit_latency(req.size)
        else:
            latency, outstanding = self.backend.fetch(req.size, now_ms)
            self.monitor.observe(req.tenant, latency)
            self.store.admit(req)
        if recorder is not None:
            recorder.on_request(req.tenant, req.size, hit, latency, outstanding)
        if self._ops_tap is not None:
            self._ops_tap(seq, req)
        return hit

    def _process_resilient(self, seq: int, req: Request) -> bool:
        """The degraded-capable request pipeline (faults + resilience).

        Shed -> breaker -> timeout/retry attempt loop -> stale fallback,
        all in virtual time derived from ``seq``.  With no injector and
        default resilience, every branch below reduces to the plain
        path: same fetch call, same floats, bit-identical metrics (the
        differential suite pins this).
        """
        recorder = self.recorder
        if recorder is not None and seq == self.warmup_requests:
            recorder.set_measuring(True)
        now_ms = seq * self.latency.inter_arrival_ms
        hit = self.store.lookup(req)
        if hit:
            # Cache hits are served locally: origin faults cannot touch
            # them (that asymmetry is what stale-serving exploits).
            latency = self.latency.hit_latency(req.size)
            if recorder is not None:
                recorder.on_request(req.tenant, req.size, True, latency, 0)
            return True

        res = self.resilience
        cfg = res.config
        injector = self.injector
        degraded_window = (
            injector.degraded(req.tenant, now_ms) if injector is not None else False
        )

        # 1. Load shedding: refuse new misses when the origin is drowning.
        if res.should_shed(self.backend.outstanding(now_ms)):
            if recorder is not None:
                recorder.on_shed(req.tenant, req.size, cfg.error_latency_ms)
            return False

        # 2. Circuit breaker: an open breaker never touches the backend.
        breaker = res.breaker(req.tenant)
        allowed, probing = breaker.allow(now_ms)
        if not allowed:
            if res.stale_hit(req.key):
                latency = self.latency.hit_latency(req.size) + cfg.stale_latency_ms
                if recorder is not None:
                    recorder.on_stale(req.tenant, req.size, latency)
            else:
                self.monitor.observe_failure(req.tenant, cfg.error_latency_ms)
                if recorder is not None:
                    recorder.on_error(
                        req.tenant, req.size, cfg.error_latency_ms,
                        breaker_denied=True,
                    )
            return False

        # 3. Timed, retried origin fetch.  ``timeout_ms`` is a whole-
        # request latency budget (deadline), not a per-attempt clock: an
        # attempt still in flight at the deadline is abandoned there,
        # and no retry starts without budget to run in.  This is what
        # caps the resilient latency tail — a budget below the naive
        # p99 guarantees degraded misses cannot out-wait naive ones.
        budget = cfg.timeout_ms
        total = 0.0
        attempt = 0
        success = False
        peak_outstanding = 0
        t = now_ms
        while True:
            attempt += 1
            raw, outstanding = self.backend.fetch(req.size, t)
            if outstanding > peak_outstanding:
                peak_outstanding = outstanding
            if injector is not None:
                failed, multiplier = injector.decide(seq, attempt, req.tenant, t)
            else:
                failed, multiplier = False, 1.0
            effective = raw * multiplier if multiplier != 1.0 else raw
            timed_out = budget > 0.0 and total + effective > budget
            if timed_out:
                effective = budget - total
                if recorder is not None:
                    recorder.on_timeout()
            total += effective
            if not failed and not timed_out:
                success = True
                break
            if timed_out or attempt >= cfg.max_attempts:
                break
            # backoff_ms's ladder starts at attempt 1 (one completed
            # attempt); attempt 0 would silently wait less than base.
            assert attempt >= 1, f"backoff before any attempt (attempt={attempt})"
            backoff = res.backoff_ms(seq, attempt)
            if budget > 0.0 and total + backoff >= budget:
                break
            total += backoff
            t = now_ms + total
            if recorder is not None:
                recorder.on_retry()

        if success:
            breaker.on_success()
            # Fault-inflated latency (spikes, brownouts, retries,
            # backoff) is a *real* obstruction signal: the tenant's
            # misses are expensive right now, so the agent's NR rewards
            # should amplify exactly as they do for queue-depth-driven
            # slowness.
            self.monitor.observe(req.tenant, total)
            self.store.admit(req)
            res.forget_stale(req.key)
            if recorder is not None:
                recorder.on_request(
                    req.tenant, req.size, False, total, peak_outstanding
                )
                if degraded_window or probing or attempt > 1:
                    recorder.note_degraded(total)
            return False

        # 4. Every attempt failed: trip the breaker, fall back to stale.
        if breaker.on_failure(now_ms) and recorder is not None:
            recorder.on_breaker_open()
        self.monitor.observe_failure(req.tenant, total)
        if res.stale_hit(req.key):
            latency = total + self.latency.hit_latency(req.size) + cfg.stale_latency_ms
            if recorder is not None:
                recorder.on_stale(req.tenant, req.size, latency)
        else:
            if recorder is not None:
                recorder.on_error(req.tenant, req.size, total)
        return False

    # --- live-operations seams (repro.ops) ----------------------------------------

    def attach_ops_tap(self, tap) -> None:
        """Install the per-request ops callback (``tap(seq, req)``).

        The tap fires inside the sequenced section after this service
        has fully processed the request (both the plain and the
        resilient path), so everything the ops controller does — shadow
        duplication, window evaluation, agent swaps — is ordered by the
        global sequence number and bit-identical at any client count.
        """
        self._ops_tap = tap

    def signal_recorders(self) -> List[MetricsRecorder]:
        """The recorders a :class:`~repro.obs.signals.SignalReader` watches."""
        if self.recorder is None:
            raise ValueError("service has no MetricsRecorder to read signals from")
        return [self.recorder]

    def _agent(self):
        agent = getattr(self.store.policy, "agent", None)
        if agent is None:
            raise ValueError(
                f"policy {self.store.policy.name!r} has no learning agent; "
                "ops hot-swap/rollback require a learned (chrome) policy"
            )
        return agent

    def agent_states(self) -> List[dict]:
        """Snapshot the learned state (one entry: this service's agent)."""
        from ..core.persistence import agent_state

        return [agent_state(self._agent(), kind="serve-agent")]

    def load_agent_states(self, states: List[dict], *, keep_rng: bool = False) -> None:
        """Swap learned state into the live agent at an epoch boundary.

        ``keep_rng=False`` (rollback) restores the snapshot completely —
        Q-table, counters and exploration RNG — so the agent resumes
        exactly as it was at the last known good boundary.
        ``keep_rng=True`` (promotion / injection) swaps only the
        Q-table values: the live agent keeps its own RNG stream and
        lookup/update counters, the same discipline cluster federation
        uses, so a mid-run swap never replays another agent's
        exploration randomness.
        """
        if len(states) != 1:
            raise ValueError(
                f"expected exactly 1 agent state for a single service, "
                f"got {len(states)}"
            )
        from ..env.driver import restore_agent_state

        restore_agent_state(
            self._agent(), states[0], "serve-agent", keep_rng=keep_rng
        )

    # --- observability (opt-in; reads shared state, never mutates it) -------------

    def _obs_sample(self, seq: int) -> None:
        """One timeline/trace sample per ``serve_window`` requests.

        Called inside the sequenced section, so samples land at the
        same request boundaries for any client count.  Everything read
        here is cumulative service state — the request path itself is
        untouched.
        """
        obs = self._obs
        self._obs_next += self._obs_window
        now_ms = seq * self.latency.inter_arrival_ms
        m = self.recorder.metrics if self.recorder is not None else None
        row = {
            "seq": seq,
            "now_ms": now_ms,
            "outstanding": self.backend.outstanding(now_ms),
            "backend_fetches": self.backend.fetches,
            "obstruction_ewma": self.monitor.summary(),
        }
        if m is not None:
            row.update(
                requests=m.requests,
                hits=m.hits,
                object_hit_ratio=m.object_hit_ratio,
                byte_hit_ratio=m.byte_hit_ratio,
                errors=m.errors,
                shed=m.shed,
                stale_served=m.stale_served,
                retries=m.retries,
                breaker_opens=m.breaker_opens,
                degraded_requests=m.degraded_requests
                + len(self.recorder._degraded_latencies),
            )
        if self.resilience is not None:
            row["breaker_states"] = self.resilience.breaker_states()
            row["stale_retained"] = self.resilience.stale_retained
        policy = self.store.policy
        mix = getattr(policy, "reward_mix", None)
        if callable(mix):
            row["reward_mix"] = mix()
        obs.timeline.record("serve_window", **row)
        ts_us = now_ms * 1000.0
        if m is not None:
            obs.tracer.counter(
                "serve.hit_ratio", ts_us, {"object": m.object_hit_ratio}
            )
        obs.tracer.counter(
            "serve.outstanding", ts_us, {"fetches": row["outstanding"]}
        )
        if self.resilience is not None:
            for tenant, state in row["breaker_states"].items():
                if state != "closed":
                    obs.tracer.instant(
                        f"breaker.{state}", ts_us, args={"tenant": tenant}
                    )

    def obs_summary(self, metrics: ServeMetrics) -> None:
        """Record the end-of-run summary row (called after finalize)."""
        obs = self._obs
        if obs is None:
            return
        row = {
            "policy": metrics.policy,
            "workload": metrics.workload,
            "requests": metrics.requests,
            "object_hit_ratio": metrics.object_hit_ratio,
            "byte_hit_ratio": metrics.byte_hit_ratio,
            "p99_latency_ms": metrics.p99_latency_ms,
            "errors": metrics.errors,
            "degraded_fraction": metrics.degraded_fraction,
            "breaker_opens": metrics.breaker_opens,
            "obstruction_ewma": self.monitor.summary(),
        }
        if self.resilience is not None:
            row["breaker_states"] = self.resilience.breaker_states()
            row["stale_retained"] = self.resilience.stale_retained
        if metrics.telemetry:
            row["policy_telemetry"] = dict(metrics.telemetry)
        obs.timeline.record("serve_summary", **row)
        reg = obs.registry
        reg.counter("serve.requests").inc(metrics.requests)
        reg.counter("serve.hits").inc(metrics.hits)
        reg.counter("serve.errors").inc(metrics.errors)
        reg.counter("serve.shed").inc(metrics.shed)
        reg.counter("serve.stale_served").inc(metrics.stale_served)
        reg.counter("serve.breaker_opens").inc(metrics.breaker_opens)
        reg.gauge("serve.object_hit_ratio").set(metrics.object_hit_ratio)
        reg.gauge("serve.byte_hit_ratio").set(metrics.byte_hit_ratio)
        reg.gauge("serve.p99_latency_ms").set(metrics.p99_latency_ms)
        reg.gauge("serve.degraded_fraction").set(metrics.degraded_fraction)
        if metrics.telemetry:
            reg.set_gauges("serve.policy", metrics.telemetry)


async def _client(
    service: CacheService,
    sequencer: _Sequencer,
    assigned: Sequence[Tuple[int, Request]],
) -> None:
    for seq, req in assigned:
        await sequencer.turn(seq)
        hit = service.process(seq, req)
        await sequencer.advance()
        if not hit:
            # A miss awaits its origin fetch: yield so other clients
            # run ahead — real interleaving, deterministic results.
            await asyncio.sleep(0)


async def _drive(
    service: CacheService, requests: Sequence[Request], num_clients: int
) -> None:
    # Round-robin assignment: client i serves requests i, i+N, i+2N, ...
    assignments: List[List[Tuple[int, Request]]] = [
        [] for _ in range(num_clients)
    ]
    for seq, req in enumerate(requests):
        assignments[seq % num_clients].append((seq, req))
    sequencer = _Sequencer()
    await asyncio.gather(
        *(_client(service, sequencer, a) for a in assignments if a)
    )


def replay_requests(
    service: CacheService, requests: Sequence[Request]
) -> None:
    """Synchronous reference loop (same results as the async driver)."""
    process = service.process
    for seq, req in enumerate(requests):
        process(seq, req)


def run_configured(
    requests: Sequence[Request],
    config: ServiceConfig,
    *,
    policy: Optional[ServePolicy] = None,
    obs=None,
) -> ServeMetrics:
    """Run a request stream through a service described by one config.

    This is the canonical entry point: a :class:`ServiceConfig` holds
    every knob (geometry, policy, latency model, faults, resilience,
    driver concurrency, warmup, checkpointing), and the run is a pure
    function of (requests, config).  ``policy`` optionally supplies a
    pre-built policy instance (warm starts, legacy callers); when
    omitted the config builds its own, RNG-seeded from the config seed.

    ``config.num_clients`` controls only the *concurrency shape* of
    the driver; metrics are bit-identical for any client count (the
    serve layer's ``--jobs 1`` vs ``--jobs N`` determinism guarantee,
    and it holds with fault injection enabled too).  The first
    ``warmup_requests`` requests flow through the cache but are
    excluded from the reported metrics, mirroring the simulator's
    warmup convention.  ``obs`` (a :class:`repro.obs.ObsSession`) opts
    the run into telemetry sampling; exporting the artifacts is the
    caller's job (see :meth:`ServeJob.execute
    <repro.serve.jobs.ServeJob>`).
    """
    if policy is None:
        policy = config.build_policy()
    recorder = MetricsRecorder(
        policy=policy.name,
        workload=config.workload_name,
        checkpoint_every=config.checkpoint_every,
    )
    store = ObjectStore(config.capacity_bytes, config.num_segments, policy)
    service = CacheService(
        store,
        recorder=recorder,
        warmup_requests=config.warmup_requests,
        obs=obs,
        config=config,
    )
    from ..core.backend import resolve_backend

    if resolve_backend(config.backend) == "numpy":
        # Chunked pre-classification (numpy backend): hash each chunk
        # of request keys into the store's segment memo in one
        # vectorized sweep, so both drivers' per-request segment_of
        # calls become dict hits.  Purely a throughput knob — the memo
        # holds exactly what the scalar hash returns.
        keys = [req.key for req in requests]
        for start in range(0, len(keys), 4096):
            store.preclassify(keys[start : start + 4096])
    if config.num_clients <= 1:
        replay_requests(service, requests)
    else:
        asyncio.run(_drive(service, requests, config.num_clients))
    metrics = recorder.finalize()
    metrics.telemetry = dict(policy.telemetry())
    service.obs_summary(metrics)
    return metrics


def run_service(
    requests: Sequence[Request],
    policy: ServePolicy,
    capacity_bytes: int,
    num_segments: int,
    *,
    num_clients: int = 8,
    warmup_requests: int = 0,
    latency: Optional[LatencyConfig] = None,
    checkpoint_every: int = 0,
    workload_name: str = "",
    faults: Optional[FaultConfig] = None,
    resilience: Optional[ResilienceConfig] = None,
    obs=None,
) -> ServeMetrics:
    """Legacy kwargs surface — a thin shim over :func:`run_configured`.

    Deprecated in favor of building a :class:`ServiceConfig` and
    calling :func:`run_configured`; kept so existing callers (and the
    committed goldens they pin) keep working unchanged.
    """
    config = ServiceConfig(
        capacity_bytes=capacity_bytes,
        num_segments=num_segments,
        policy=policy.name,
        num_clients=num_clients,
        warmup_requests=warmup_requests,
        checkpoint_every=checkpoint_every,
        workload_name=workload_name,
        latency=latency,
        faults=faults,
        resilience=resilience,
    )
    return run_configured(requests, config, policy=policy, obs=obs)
