"""The CHROME agent, retargeted from the LLC to the object cache.

The paper's RL formulation carries over to a software cache almost
feature-for-feature (RLCache and Cold-RL make the same observation for
key-value and NGINX caches); the mapping is:

==========================  =================================================
LLC (paper)                 serving layer (this module)
==========================  =================================================
PC signature                **key-hash signature** (key + hit/refresh bits)
page number                 **size class** (log2 bucket of the object size)
core id                     **tenant / shard id**
demand vs. prefetch         **origin fetch vs. proactive refresh**
C-AMAT LLC-obstruction      **backend-latency obstruction** (EWMA per tenant)
64 sampled sets             64 sampled *segments* of the object store
bypass / insert-EPV         serve-and-drop / admit with an EPV
==========================  =================================================

Everything else — the feature-sliced Q-table, the per-sampled-segment
EQ FIFOs, R_AC/R_IN on re-request, OB/NOB-split NR rewards on EQ
eviction, the SARSA update pairing an evicted entry with the queue's
new head — is :class:`~repro.env.driver.AgentCore`, the same shared
driver the LLC policy binds; this module contains no learning code of
its own, only the serve binding (features, obstruction source, RNG
seed discipline, EPV plumbing into the object store).

The concurrency-aware part survives intact: when a tenant's backend
fetches are slow (its origin is "obstructed", the C-AMAT analogue),
the NR rewards grow in magnitude, so the agent works hardest at
evicting useless bytes exactly where misses hurt most.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Tuple

from ..core.config import (
    ACTION_BYPASS,
    ACTION_TO_EPV,
    EPV_MAX,
    ChromeConfig,
)
from ..core.persistence import restore_agent, save_agent
from ..env.driver import AgentCore
from ..sim.address import fold_hash, mix_hash
from .policies import ServePolicy, register_serve_policy
from .store import CachedObject
from .workloads import Request

KEY_SIG_BITS = 17
SIZE_CLASS_BITS = 16
FREQ_CLASS_BITS = 8
REGION_BITS = 14

_CACHE_LIMIT = 1 << 20


class ServeFeatureExtractor:
    """Four-feature state vector for serve requests (Sec. IV-A analogue).

    Feature 1 — **key signature**: the key hashed with the hit/miss
    outcome, an ``is_refresh`` bit and the tenant id folded in, exactly
    like the LLC's PC signature folds hit/prefetch/core.  Feature
    hashing aggregates the long tail: buckets dominated by one-shot
    keys learn "bypass", buckets owned by a popular key learn "keep".

    Feature 2 — **size class**: the log2 bucket of the object size (x
    tenant), the data-access feature.  It generalizes across keys, so
    the agent can learn size-aware admission (e.g. large scan objects
    are rarely worth their bytes) even for never-seen keys.

    Feature 3 — **frequency class**: how many times this key has been
    requested so far (x tenant), exact up to 8 and log2-bucketed above.
    This is the standard learned-cache feature (LRB, Cold-RL) that
    survives *size-blind* pollution: a burst-storm key or an ANN
    near-duplicate is indistinguishable from foreground traffic by
    size or by a cold signature bucket, but it is always on its first
    or second request — low-count slices learn "bypass" while
    repeat-miss slices learn "admit", and the lesson transfers to
    never-seen keys immediately.  Low counts stay exact because the
    interesting admission boundaries sit there: traffic where crawler
    retries die after exactly two touches needs count-2 and count-3 in
    different states, which a pure log2 bucket would merge.

    Feature 4 — **key region**: the key's 1024-key page (x tenant),
    the spatial-locality feature.  Real key spaces are structured —
    URL path prefixes, content buckets, embedding clusters — and heat
    is correlated within a region: when a new conversation session or
    a freshly trending bucket starts, its first key is unknowable, but
    by the time its second key arrives the region slice already says
    "this neighborhood is hot".  It is the serve analogue of the
    address-region features hardware predictors use, and the only
    feature that can admit the *first* touch of a key whose neighbors
    are popular.
    """

    @staticmethod
    def freq_class(count: int) -> int:
        """Exact below 8, log2 bucket above (9, 10, ... per octave)."""
        return count if count < 8 else count.bit_length() + 5

    __slots__ = (
        "_sig_cache", "_size_cache", "_freq_cache", "_region_cache", "_counts"
    )

    num_features = 4

    def __init__(self) -> None:
        self._sig_cache: Dict[int, int] = {}
        self._size_cache: Dict[int, int] = {}
        self._freq_cache: Dict[int, int] = {}
        self._region_cache: Dict[int, int] = {}
        self._counts: Dict[int, int] = {}

    def extract(
        self, key: int, size: int, tenant: int, hit: bool, is_refresh: bool
    ) -> Tuple[int, int, int, int]:
        sig_key = (((key << 8) | (tenant & 0x3F)) << 2) | ((1 if hit else 0) << 1) | (
            1 if is_refresh else 0
        )
        sig = self._sig_cache.get(sig_key)
        if sig is None:
            raw = (key << 3) | (tenant & 0x1) << 2
            raw |= (1 if is_refresh else 0) << 1
            raw |= 1 if hit else 0
            raw ^= tenant << 40
            sig = fold_hash(raw, KEY_SIG_BITS)
            if len(self._sig_cache) < _CACHE_LIMIT:
                self._sig_cache[sig_key] = sig
        size_key = (size.bit_length() << 8) | (tenant & 0xFF)
        size_feat = self._size_cache.get(size_key)
        if size_feat is None:
            size_feat = fold_hash(size_key, SIZE_CLASS_BITS)
            if len(self._size_cache) < _CACHE_LIMIT:
                self._size_cache[size_key] = size_feat
        count = self._counts.get(key, 0) + 1
        if count > 1 or len(self._counts) < _CACHE_LIMIT:
            self._counts[key] = count
        freq_key = (self.freq_class(count) << 8) | (tenant & 0xFF)
        freq_feat = self._freq_cache.get(freq_key)
        if freq_feat is None:
            freq_feat = fold_hash(freq_key, FREQ_CLASS_BITS)
            if len(self._freq_cache) < _CACHE_LIMIT:
                self._freq_cache[freq_key] = freq_feat
        region_key = (key >> 10) ^ (tenant << 48)
        region_feat = self._region_cache.get(region_key)
        if region_feat is None:
            region_feat = fold_hash(region_key, REGION_BITS)
            if len(self._region_cache) < _CACHE_LIMIT:
                self._region_cache[region_key] = region_feat
        return (sig, size_feat, freq_feat, region_feat)


class BackendObstructionMonitor:
    """Per-tenant EWMA of backend fetch latency — the C-AMAT stand-in.

    A tenant whose *recent* origin fetches (fast EWMA) are slower than
    ``threshold x`` its own typical latency (slow EWMA, floored at the
    unloaded baseline) is *obstructed*: its misses are expensive right
    now, so the agent's concurrency-aware NR rewards amplify (exactly
    the role the LLC-obstruction flags play in the paper's reward
    scheme).  Obstruction is a *relative* signal, as in the paper —
    each core is compared against its own typical memory performance.
    A service running steadily at high concurrency is not obstructed,
    it is just busy; only transient deterioration (origin brownouts,
    fault bursts, queue blowups) should skew the reward magnitudes.
    """

    __slots__ = ("baseline_ms", "threshold", "beta", "slow_beta", "_ewma", "_slow")

    def __init__(
        self,
        baseline_ms: float,
        threshold: float = 1.35,
        beta: float = 0.08,
        slow_beta: float = 0.005,
    ) -> None:
        self.baseline_ms = baseline_ms
        self.threshold = threshold
        self.beta = beta
        self.slow_beta = slow_beta
        self._ewma: Dict[int, float] = {}
        self._slow: Dict[int, float] = {}

    def observe(self, tenant: int, latency_ms: float) -> None:
        prev = self._ewma.get(tenant, self.baseline_ms)
        self._ewma[tenant] = prev + self.beta * (latency_ms - prev)
        slow = self._slow.get(tenant, self.baseline_ms)
        self._slow[tenant] = slow + self.slow_beta * (latency_ms - slow)

    def observe_failure(self, tenant: int, latency_ms: float) -> None:
        """A failed/denied origin fetch — the strongest obstruction signal.

        Fault-inflated and failed fetches are *real* concurrency
        information, not noise: a tenant whose origin shard is erroring
        or browned out is exactly where a wasted cache slot hurts most.
        The observation is floored above the obstruction threshold so a
        fast-fail (whose response latency is tiny) still drives the
        EWMA toward the obstructed region instead of *washing it out*.
        """
        typical = max(self._slow.get(tenant, self.baseline_ms), self.baseline_ms)
        floor = typical * self.threshold * 2.0
        prev = self._ewma.get(tenant, self.baseline_ms)
        self._ewma[tenant] = prev + self.beta * (max(latency_ms, floor) - prev)

    def is_obstructed(self, tenant: int) -> bool:
        ewma = self._ewma.get(tenant)
        if ewma is None:
            return False
        typical = max(self._slow.get(tenant, self.baseline_ms), self.baseline_ms)
        return ewma > typical * self.threshold

    def summary(self) -> dict:
        return {f"tenant{t}": round(v, 3) for t, v in sorted(self._ewma.items())}


class ServeAgent(AgentCore):
    """Algorithm 1 over cache *requests* instead of LLC accesses.

    The serve binding of :class:`~repro.env.driver.AgentCore` — the
    same driver :class:`~repro.core.chrome.ChromePolicy` binds for the
    LLC: epsilon-greedy over the same four actions, EQ recording on
    sampled segments, R_AC/R_IN on re-request, OB/NOB NR rewards at EQ
    eviction, one SARSA update per eviction.  Only the state features,
    the obstruction source and the RNG seed discipline live here (see
    the module docstring's mapping table).
    """

    def __init__(
        self, config: Optional[ChromeConfig] = None, seed: int = 0
    ) -> None:
        config = config or ChromeConfig()
        self.features = ServeFeatureExtractor()
        # Job-spec seeding, mirroring SimJob: the exploration RNG is a
        # pure function of (config seed, job seed) — nothing ambient.
        AgentCore.__init__(
            self,
            config,
            self.features.num_features,
            mix_hash((config.seed << 17) ^ seed),
        )

    # --- wiring -----------------------------------------------------------------

    def attach(self, num_segments: int) -> None:
        """Choose the sampled training segments (64-sampled-set scheme)."""
        self.attach_sampled(num_segments)

    # --- decision + training (Algorithm 1) ---------------------------------------

    @property
    def sampled_requests(self) -> int:
        """Serve spelling of the shared sampled-step counter."""
        return self.sampled_steps

    def decide(self, req: Request, seg_idx: int, hit: bool) -> int:
        """One RL decision for one request; trains on sampled segments."""
        state = self.features.extract(
            req.key, req.size, req.tenant, hit, req.is_refresh
        )
        action = self.rl_decide(
            state, seg_idx, req.key, hit, req.is_refresh, req.tenant
        )
        if action == ACTION_BYPASS:
            self.bypass_decisions += 1
        return action

    # --- persistence (warm starts) ------------------------------------------------

    def save(self, path) -> None:
        """Write a version-tagged JSON snapshot (Q-table + RNG state)."""
        save_agent(self, path, kind="serve-agent")

    def restore(self, path) -> None:
        """Load a snapshot saved by :meth:`save` (bit-identical Q)."""
        restore_agent(self, path, kind="serve-agent")

    # --- reporting ---------------------------------------------------------------

    def telemetry(self) -> dict:
        return {
            "decisions": self.decisions,
            "explorations": self.explorations,
            "bypass_decisions": self.bypass_decisions,
            "sampled_requests": self.sampled_steps,
            "q_updates": self.qtable.updates,
            "eq_reward_matches": self.eq.reward_matches,
            **{f"reward_{k}": v for k, v in self.reward_mix().items()},
            **self.qtable.snapshot_stats(),
        }


class ChromeServePolicy(ServePolicy):
    """The ServePolicy facade over :class:`ServeAgent`.

    Admission mirrors the LLC miss path (bypass or insert with an
    EPV), hits update the object's EPV, and eviction picks the highest
    EPV (oldest-first among ties) — :meth:`ChromePolicy.find_victim`
    transplanted to variable-sized objects.
    """

    name = "chrome"

    def __init__(
        self,
        config: Optional[ChromeConfig] = None,
        seed: int = 0,
        agent: Optional[ServeAgent] = None,
        backend: Optional[str] = None,
    ) -> None:
        super().__init__()
        if backend is not None and agent is None:
            config = replace(config or ChromeConfig(), backend=backend)
        self.agent = agent or ServeAgent(config, seed=seed)
        self._pending_epv: Optional[Tuple[int, int]] = None  # (key, epv)

    def attach(self, num_segments: int, segment_capacity: int) -> None:
        super().attach(num_segments, segment_capacity)
        self.agent.attach(num_segments)

    def bind_obstruction(self, monitor: BackendObstructionMonitor) -> None:
        self.agent.bind_obstruction(monitor)

    def admit(self, req: Request, seg_idx: int) -> bool:
        action = self.agent.decide(req, seg_idx, hit=False)
        if action == ACTION_BYPASS:
            self._pending_epv = None
            return False
        self._pending_epv = (req.key, ACTION_TO_EPV[action])
        return True

    def on_admit(self, req: Request, obj: CachedObject, seg_idx: int) -> None:
        pending = self._pending_epv
        self._pending_epv = None
        if pending is not None and pending[0] == req.key:
            obj.epv = pending[1]
        else:
            obj.epv = EPV_MAX

    def on_hit(self, req: Request, obj: CachedObject, seg_idx: int) -> None:
        action = self.agent.decide(req, seg_idx, hit=True)
        obj.epv = ACTION_TO_EPV[action]

    def select_victim(self, segment: Dict[int, CachedObject], seg_idx: int) -> int:
        best_key = -1
        best_epv = -1
        best_touch = 0
        for key, obj in segment.items():
            epv = obj.epv
            if epv > best_epv:
                best_key = key
                best_epv = epv
                best_touch = obj.last_touch
            elif epv == best_epv and obj.last_touch < best_touch:
                best_key = key
                best_touch = obj.last_touch
        return best_key

    def reward_mix(self) -> dict:
        return self.agent.reward_mix()

    def telemetry(self) -> dict:
        return self.agent.telemetry()


register_serve_policy("chrome", ChromeServePolicy)
