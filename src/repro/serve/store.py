"""Size-aware segmented object store — the serving layer's "cache".

The store mirrors the LLC simulator's structure one level up:

* the key space is hashed into ``num_segments`` power-of-two
  **segments** (the set-index analogue), each with an equal byte
  budget, so eviction scans stay small and the CHROME agent's
  sampled-*segment* training scheme maps 1:1 onto the paper's 64
  sampled LLC sets;
* objects are **variable-sized**: admission reserves bytes, eviction
  loops until the incoming object fits, and objects larger than a
  whole segment are served-and-dropped (forced bypass) — no policy can
  cache them;
* every judgement call is delegated to a
  :class:`~repro.serve.policies.ServePolicy` (classic baselines or the
  CHROME serve agent), which sees hits, admissions and evictions
  through the same hooks.

The store is deliberately synchronous and deterministic: the asyncio
front-end (:mod:`repro.serve.service`) serializes state mutation in
request-sequence order, which is what keeps hit ratios bit-identical
no matter how many concurrent clients drive it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..sim.address import is_power_of_two, mix_hash
from .metrics import MetricsRecorder
from .policies import ServePolicy
from .workloads import Request


@dataclass(slots=True)
class CachedObject:
    """One cached object plus the metadata policies key off."""

    key: int
    size: int
    tenant: int
    epv: int = 0  # eviction priority (CHROME agent)
    freq: int = 1  # access count since admission (LFU/GDSF/S3-FIFO)
    priority: float = 0.0  # GDSF priority
    last_touch: int = 0  # store tick of the last access
    inserted_at: int = 0


class ObjectStore:
    """Segmented byte-budgeted object cache driven by a ServePolicy."""

    def __init__(
        self,
        capacity_bytes: int,
        num_segments: int,
        policy: ServePolicy,
        recorder: Optional[MetricsRecorder] = None,
    ) -> None:
        if not is_power_of_two(num_segments):
            raise ValueError("num_segments must be a power of two")
        if capacity_bytes < num_segments:
            raise ValueError("capacity must be at least one byte per segment")
        self.capacity_bytes = capacity_bytes
        self.num_segments = num_segments
        self.segment_capacity = capacity_bytes // num_segments
        self.policy = policy
        self.recorder = recorder
        # Eviction taps (stale retention, hot-key tracking, ...) — a
        # list so multiple subscribers coexist; see add_evict_listener.
        self._evict_listeners: List[Callable[[CachedObject], None]] = []
        self._segments: List[Dict[int, CachedObject]] = [
            {} for _ in range(num_segments)
        ]
        self._segment_bytes: List[int] = [0] * num_segments
        # key -> segment memo, filled per-key on the scalar path and in
        # whole-chunk sweeps by preclassify() (hashing is pure, so the
        # memo is exact; bounded like the Q-table's index cache).
        self._seg_memo: Dict[int, int] = {}
        self._tick = 0
        # counters (cheap enough to keep unconditionally)
        self.lookups = 0
        self.hits = 0
        self.admissions = 0
        self.forced_bypasses = 0
        self.evictions = 0
        policy.attach(num_segments, self.segment_capacity)

    # --- eviction subscribers ----------------------------------------------------

    def add_evict_listener(
        self, listener: Callable[[CachedObject], None]
    ) -> None:
        """Subscribe to evictions; listeners fire in registration order."""
        self._evict_listeners.append(listener)

    @property
    def evict_listener(self) -> Optional[Callable[[CachedObject], None]]:
        """Legacy single-listener view (first subscriber, if any)."""
        return self._evict_listeners[0] if self._evict_listeners else None

    @evict_listener.setter
    def evict_listener(
        self, listener: Optional[Callable[[CachedObject], None]]
    ) -> None:
        # Deprecated assignment form: replaces the whole subscriber
        # list, matching the old clobbering semantics exactly.
        self._evict_listeners = [] if listener is None else [listener]

    # --- indexing ----------------------------------------------------------------

    def segment_of(self, key: int) -> int:
        seg = self._seg_memo.get(key)
        if seg is None:
            seg = mix_hash(key) & (self.num_segments - 1)
            if len(self._seg_memo) < (1 << 20):
                self._seg_memo[key] = seg
        return seg

    def preclassify(self, keys) -> None:
        """Pre-hash a whole chunk of request keys into the segment memo.

        The replayer's numpy-backend path calls this once per request
        chunk so the per-request :meth:`segment_of` becomes a dict hit.
        One vectorized splitmix64 sweep replaces ~3 scalar hash calls
        per request (lookup + admit + the agent's sampled-segment
        check); dedup keeps the memo writes to one per distinct key.
        Purely a throughput knob — the memo returns exactly what
        :func:`~repro.sim.address.mix_hash` returns.
        """
        import numpy as np

        from ..sim.batch import batch_mix_hash

        memo = self._seg_memo
        fresh = [k for k in keys if k not in memo]
        if not fresh or len(memo) + len(fresh) > (1 << 20):
            return
        try:
            arr = np.unique(np.asarray(fresh, dtype=np.uint64))
        except (OverflowError, ValueError):  # out-of-range key: scalar path
            return
        mask = np.uint64(self.num_segments - 1)
        segs = (batch_mix_hash(arr) & mask).tolist()
        for key, seg in zip(arr.tolist(), segs):
            memo[key] = seg

    def contains(self, key: int) -> bool:
        return key in self._segments[self.segment_of(key)]

    @property
    def used_bytes(self) -> int:
        return sum(self._segment_bytes)

    @property
    def object_count(self) -> int:
        return sum(len(s) for s in self._segments)

    # --- request path ------------------------------------------------------------

    def lookup(self, req: Request) -> bool:
        """Serve a request from cache if present (the hit path)."""
        self._tick += 1
        self.lookups += 1
        seg_idx = self.segment_of(req.key)
        obj = self._segments[seg_idx].get(req.key)
        if obj is None:
            return False
        self.hits += 1
        obj.freq += 1
        obj.last_touch = self._tick
        self.policy.on_hit(req, obj, seg_idx)
        return True

    def admit(self, req: Request) -> bool:
        """Miss path: consult the policy, make room, insert.

        Returns True when the object was cached.  Objects that cannot
        fit in a segment are forced bypasses — the policy is not asked
        (and not trained) on decisions the store cannot honour.
        """
        seg_idx = self.segment_of(req.key)
        if req.size > self.segment_capacity:
            self.forced_bypasses += 1
            if self.recorder is not None:
                self.recorder.on_bypass(req.size)
            return False
        if not self.policy.admit(req, seg_idx):
            if self.recorder is not None:
                self.recorder.on_bypass(req.size)
            return False
        segment = self._segments[seg_idx]
        while self._segment_bytes[seg_idx] + req.size > self.segment_capacity:
            victim_key = self.policy.select_victim(segment, seg_idx)
            self._evict(victim_key, seg_idx)
        obj = CachedObject(
            key=req.key,
            size=req.size,
            tenant=req.tenant,
            last_touch=self._tick,
            inserted_at=self._tick,
        )
        segment[req.key] = obj
        self._segment_bytes[seg_idx] += req.size
        self.admissions += 1
        self.policy.on_admit(req, obj, seg_idx)
        if self.recorder is not None:
            self.recorder.on_admit(req.size)
        return True

    def _evict(self, key: int, seg_idx: int) -> None:
        obj = self._segments[seg_idx].pop(key)
        self._segment_bytes[seg_idx] -= obj.size
        self.evictions += 1
        self.policy.on_evict(obj, seg_idx)
        for listener in self._evict_listeners:
            listener(obj)
        if self.recorder is not None:
            self.recorder.on_evict(obj.size)

    # --- introspection -----------------------------------------------------------

    def segment_stats(self) -> dict:
        """Occupancy summary (debugging/telemetry)."""
        occupancies = [
            bytes_used / self.segment_capacity if self.segment_capacity else 0.0
            for bytes_used in self._segment_bytes
        ]
        return {
            "used_bytes": self.used_bytes,
            "object_count": self.object_count,
            "mean_occupancy": sum(occupancies) / len(occupancies),
            "max_occupancy": max(occupancies),
        }
