"""Deterministic fault injection for the serving layer.

A real origin is not the always-up, constant-speed box PR 3's
:class:`~repro.serve.service.Backend` modelled: it has latency spikes,
transient error bursts, full outages, per-tenant brownouts (one
tenant's shard degrades while the rest stay healthy), and a slow-start
ramp after it recovers.  This module injects all five — *without
touching wall-clock time or ambient randomness*, so the serving
layer's bit-identical determinism guarantee survives chaos testing:

* every fault decision is a **pure function** of
  ``(config, seed, request sequence number, attempt, virtual time)``.
  There is no shared RNG stream to race on — ``num_clients=1`` and
  ``num_clients=64`` draw exactly the same faults, and so do two
  processes on two machines (``mix_hash`` is arithmetic, not
  ``hash()``);
* fault *windows* (outages, brownouts, error bursts) live in **virtual
  time**: request ``seq`` arrives at ``seq x inter_arrival_ms``, so a
  "250 ms outage" hits the same requests in every run at every client
  count and on every host.

The injector only *decides*; the service
(:meth:`~repro.serve.service.CacheService._process_resilient`)
applies the decisions, and :mod:`repro.serve.resilience` supplies the
graceful-degradation machinery (timeouts, retries, breakers, stale
serving, shedding) that turns injected faults into bounded damage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..sim.address import mix_hash

_MASK64 = (1 << 64) - 1
_GOLDEN64 = 0x9E3779B97F4A7C15
_INV_2_64 = 1.0 / float(1 << 64)

# Salt constants so independent decision streams never correlate.
_SALT_ERROR = 0x51
_SALT_SPIKE = 0x52
_SALT_OUTAGE = 0x53
_SALT_BURST = 0x54
_SALT_BROWNOUT = 0x55


@dataclass(frozen=True)
class FaultConfig:
    """Declarative fault model (all windows/latencies in virtual ms).

    Every field has an "off" default, so ``FaultConfig()`` injects
    nothing; experiments enable exactly the failure modes they study.
    A rate/window of ``0`` disables that fault class.
    """

    seed: int = 0
    #: background per-attempt transient failure probability
    error_rate: float = 0.0
    #: per-attempt probability of a latency spike, and its multiplier
    spike_rate: float = 0.0
    spike_multiplier: float = 8.0
    #: error bursts: windows where the transient error rate jumps
    burst_every_ms: float = 0.0
    burst_duration_ms: float = 0.0
    burst_error_rate: float = 0.8
    #: full outages: windows where *every* origin fetch fails
    outage_every_ms: float = 0.0
    outage_duration_ms: float = 0.0
    #: slow start after an outage: latency multiplier decaying back to 1
    recovery_ramp_ms: float = 0.0
    recovery_multiplier: float = 4.0
    #: per-tenant brownout: one tenant's shard degrades periodically
    brownout_tenant: int = -1
    brownout_every_ms: float = 0.0
    brownout_duration_ms: float = 0.0
    brownout_error_rate: float = 0.5
    brownout_multiplier: float = 3.0

    def params(self) -> Tuple[Tuple[str, object], ...]:
        """Spec-tuple form for embedding in a frozen ServeJob."""
        from dataclasses import fields

        return tuple((f.name, getattr(self, f.name)) for f in fields(self))


class FaultInjector:
    """Pure-function fault oracle over a :class:`FaultConfig`.

    All randomness is derived by hashing ``(seed, salt, ...)`` through
    the splitmix64 finalizer — stateless, order-independent and
    process-independent, which is what lets the concurrent driver
    consult it without any sequencing constraints beyond the ones the
    service already enforces.
    """

    __slots__ = ("config", "_seed")

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self._seed = mix_hash((config.seed << 1) ^ 0xFA017)

    # --- deterministic randomness ---------------------------------------------

    def _unit(self, salt: int, a: int, b: int = 0) -> float:
        """Uniform [0, 1) from (seed, salt, a, b) — pure, no state."""
        h = mix_hash((self._seed ^ (salt * _GOLDEN64) ^ (a << 20) ^ b) & _MASK64)
        return h * _INV_2_64

    # --- windows in virtual time ----------------------------------------------

    def _window(
        self, now_ms: float, every_ms: float, duration_ms: float, salt: int
    ) -> Tuple[bool, float]:
        """Is ``now_ms`` inside the periodic fault window, and how long
        since the most recent window *ended* (``inf`` if none ended yet)?

        Window ``k`` starts at ``k*every + jitter_k`` where the jitter
        is a pure hash of ``(seed, salt, k)`` — windows land at
        irregular but fully reproducible times.
        """
        if every_ms <= 0.0 or duration_ms <= 0.0:
            return False, float("inf")
        span = max(0.0, every_ms - duration_ms)
        since_end = float("inf")
        k = int(now_ms // every_ms)
        for kk in (k, k - 1):
            if kk < 0:
                continue
            start = kk * every_ms + self._unit(salt, kk) * span
            end = start + duration_ms
            if start <= now_ms < end:
                return True, 0.0
            if now_ms >= end:
                since_end = min(since_end, now_ms - end)
        return False, since_end

    def outage_state(self, now_ms: float) -> Tuple[bool, float]:
        """(in-outage, ms-since-last-outage-ended) at ``now_ms``."""
        return self._window(
            now_ms,
            self.config.outage_every_ms,
            self.config.outage_duration_ms,
            _SALT_OUTAGE,
        )

    def _burst_active(self, now_ms: float) -> bool:
        active, _ = self._window(
            now_ms,
            self.config.burst_every_ms,
            self.config.burst_duration_ms,
            _SALT_BURST,
        )
        return active

    def _brownout_active(self, tenant: int, now_ms: float) -> bool:
        if tenant != self.config.brownout_tenant:
            return False
        active, _ = self._window(
            now_ms,
            self.config.brownout_every_ms,
            self.config.brownout_duration_ms,
            _SALT_BROWNOUT,
        )
        return active

    # --- the decision the service consumes -------------------------------------

    def degraded(self, tenant: int, now_ms: float) -> bool:
        """Is any fault window (outage/recovery/burst/brownout) active?

        Used to label requests for degraded-mode metrics; pure, so the
        label is identical across client counts and processes.
        """
        cfg = self.config
        in_outage, since_end = self.outage_state(now_ms)
        if in_outage or since_end < cfg.recovery_ramp_ms:
            return True
        if self._burst_active(now_ms):
            return True
        return self._brownout_active(tenant, now_ms)

    def decide(
        self, seq: int, attempt: int, tenant: int, now_ms: float
    ) -> Tuple[bool, float]:
        """Fate of one origin-fetch attempt: ``(failed, latency_multiplier)``.

        A full outage fails every attempt outright; otherwise the
        attempt draws against the (burst/brownout-elevated) transient
        error rate, and its latency is scaled by any active spike,
        brownout or post-outage slow-start multiplier.
        """
        cfg = self.config
        in_outage, since_end = self.outage_state(now_ms)
        if in_outage:
            return True, 1.0
        multiplier = 1.0
        if since_end < cfg.recovery_ramp_ms:
            # Linear slow-start: full penalty right after recovery,
            # back to 1x by the end of the ramp.
            frac = 1.0 - since_end / cfg.recovery_ramp_ms
            multiplier *= 1.0 + (cfg.recovery_multiplier - 1.0) * frac
        error_rate = cfg.error_rate
        if self._burst_active(now_ms):
            error_rate = max(error_rate, cfg.burst_error_rate)
        if self._brownout_active(tenant, now_ms):
            error_rate = max(error_rate, cfg.brownout_error_rate)
            multiplier *= cfg.brownout_multiplier
        if cfg.spike_rate > 0.0 and self._unit(_SALT_SPIKE, seq, attempt) < cfg.spike_rate:
            multiplier *= cfg.spike_multiplier
        failed = error_rate > 0.0 and self._unit(_SALT_ERROR, seq, attempt) < error_rate
        return failed, multiplier
