"""Declarative serve jobs for the parallel experiment engine.

A :class:`ServeJob` is to the serving layer what
:class:`~repro.experiments.jobspec.SimJob` is to the simulator: a
frozen, hashable, entirely self-describing spec.  Workload, policy,
store geometry, client concurrency and every RNG seed live *in the
spec*, so a job executes identically inline, in a ``--jobs N`` worker
process, or on a disk-cache replay — the engine schedules, dedups and
memoizes serve jobs exactly like simulation jobs (it dispatches on
``job.execute()``; see :func:`repro.experiments.jobspec.execute_job`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..sim.address import mix_hash
from .faults import FaultConfig
from .metrics import ServeMetrics
from .policies import make_serve_policy
from .resilience import ResilienceConfig
from .service import run_service
from .workloads import build_workload

#: Bump when serve semantics change in a way that must invalidate
#: previously cached serve results (the serve analogue of
#: :data:`repro.experiments.jobspec.CODE_VERSION`).
SERVE_CODE_VERSION = "serve-1"

#: policies whose exploration RNG is seeded from the job spec
_SEEDED_POLICIES = frozenset({"chrome"})


@dataclass(frozen=True)
class ServeJob:
    """One schedulable serve run: (workload, policy, store geometry)."""

    workload: str
    policy: str
    num_requests: int
    warmup_requests: int
    capacity_bytes: int
    num_segments: int
    num_clients: int = 8
    seed: int = 0
    workload_params: Tuple[Tuple[str, object], ...] = ()
    policy_params: Tuple[Tuple[str, object], ...] = ()
    checkpoint_every: int = 0
    #: fault model (FaultConfig.params()); empty = no injection
    fault_params: Tuple[Tuple[str, object], ...] = ()
    #: degradation policy (ResilienceConfig.params()); empty = default
    #: resilience when faults are injected, plain path otherwise
    resilience_params: Tuple[Tuple[str, object], ...] = ()

    @property
    def label(self) -> str:
        suffix = " +faults" if self.fault_params else ""
        return f"serve:{self.workload} {self.policy}{suffix}"

    def canonical(self) -> Tuple:
        """Stable literal-only identity (cache key + dedup key)."""
        return (
            "serve",
            SERVE_CODE_VERSION,
            self.workload,
            self.workload_params,
            self.policy,
            self.policy_params,
            self.num_requests,
            self.warmup_requests,
            self.capacity_bytes,
            self.num_segments,
            self.num_clients,
            self.seed,
            self.checkpoint_every,
            self.fault_params,
            self.resilience_params,
        )

    def build_policy(self):
        """Fresh policy instance, RNG-seeded from this spec.

        Mirrors :class:`SimJob`'s discipline: learned policies derive
        their exploration RNG purely from (spec seed, policy name), so
        two jobs differing only in seed train differently, and the
        same job always trains identically.
        """
        params = dict(self.policy_params)
        if self.policy in _SEEDED_POLICIES:
            params.setdefault(
                "seed", mix_hash((self.seed << 8) ^ len(self.policy))
            )
        return make_serve_policy(self.policy, **params)

    def build_faults(self):
        """FaultConfig from the spec (None when no faults requested)."""
        if not self.fault_params:
            return None
        return FaultConfig(**dict(self.fault_params))

    def build_resilience(self):
        """ResilienceConfig from the spec.

        ``("preset", "none")`` selects :meth:`ResilienceConfig.none`
        (the no-resilience control group) with any remaining params
        overriding it; an empty tuple returns None, which means
        *default* resilience when faults are injected and the plain
        request path otherwise.
        """
        if not self.resilience_params:
            return None
        params = dict(self.resilience_params)
        preset = params.pop("preset", "default")
        if preset == "none":
            base = ResilienceConfig.none()
            from dataclasses import replace

            return replace(base, **params) if params else base
        if preset != "default":
            raise ValueError(f"unknown resilience preset {preset!r}")
        return ResilienceConfig(**params)

    def execute(self, obs=None) -> ServeMetrics:
        """Run this job from its spec alone (pure given the spec).

        ``obs`` is an optional :class:`repro.obs.ObsConfig`; when given,
        the run records a telemetry session and exports its artifacts
        under a label derived from this spec's fingerprint.  The
        returned metrics are identical either way.
        """
        total = self.num_requests + self.warmup_requests
        requests = build_workload(
            self.workload, total, seed=self.seed, **dict(self.workload_params)
        )
        session = None
        if obs is not None:
            import hashlib

            digest = hashlib.sha256(
                repr(self.canonical()).encode()
            ).hexdigest()[:10]
            session = obs.session(f"serve-{self.workload}-{self.policy}-{digest}")
        metrics = run_service(
            requests,
            self.build_policy(),
            self.capacity_bytes,
            self.num_segments,
            num_clients=self.num_clients,
            warmup_requests=self.warmup_requests,
            checkpoint_every=self.checkpoint_every,
            workload_name=self.workload,
            faults=self.build_faults(),
            resilience=self.build_resilience(),
            obs=session,
        )
        if session is not None:
            session.export()
        return metrics
