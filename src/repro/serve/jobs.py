"""Declarative serve jobs for the parallel experiment engine.

A :class:`ServeJob` is to the serving layer what
:class:`~repro.experiments.jobspec.SimJob` is to the simulator: a
frozen, hashable, entirely self-describing spec.  Workload, policy,
store geometry, client concurrency and every RNG seed live *in the
spec*, so a job executes identically inline, in a ``--jobs N`` worker
process, or on a disk-cache replay — the engine schedules, dedups and
memoizes serve jobs exactly like simulation jobs (it dispatches on
``job.execute()``; see :func:`repro.experiments.jobspec.execute_job`).

Runtime assembly is delegated to :mod:`repro.serve.config`: a job is
the *schedulable identity*, its :meth:`ServeJob.service_config` is the
*runtime spec*, and :func:`repro.serve.service.run_configured` does the
rest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .config import ServiceConfig, build_fault_config, build_resilience_config
from .metrics import ServeMetrics
from .service import run_configured
from .workloads import build_workload

#: Bump when serve semantics change in a way that must invalidate
#: previously cached serve results (the serve analogue of
#: :data:`repro.experiments.jobspec.CODE_VERSION`).
SERVE_CODE_VERSION = "serve-2"


@dataclass(frozen=True)
class ServeJob:
    """One schedulable serve run: (workload, policy, store geometry)."""

    workload: str
    policy: str
    num_requests: int
    warmup_requests: int
    capacity_bytes: int
    num_segments: int
    num_clients: int = 8
    seed: int = 0
    workload_params: Tuple[Tuple[str, object], ...] = ()
    policy_params: Tuple[Tuple[str, object], ...] = ()
    checkpoint_every: int = 0
    #: fault model (FaultConfig.params()); empty = no injection
    fault_params: Tuple[Tuple[str, object], ...] = ()
    #: degradation policy (ResilienceConfig.params()); empty = default
    #: resilience when faults are injected, plain path otherwise
    resilience_params: Tuple[Tuple[str, object], ...] = ()

    @property
    def label(self) -> str:
        suffix = " +faults" if self.fault_params else ""
        return f"serve:{self.workload} {self.policy}{suffix}"

    def canonical(self) -> Tuple:
        """Stable literal-only identity (cache key + dedup key)."""
        return (
            "serve",
            SERVE_CODE_VERSION,
            self.workload,
            self.workload_params,
            self.policy,
            self.policy_params,
            self.num_requests,
            self.warmup_requests,
            self.capacity_bytes,
            self.num_segments,
            self.num_clients,
            self.seed,
            self.checkpoint_every,
            self.fault_params,
            self.resilience_params,
        )

    def service_config(self) -> ServiceConfig:
        """The runtime spec this job describes (see serve/config.py)."""
        return ServiceConfig.from_params(
            capacity_bytes=self.capacity_bytes,
            num_segments=self.num_segments,
            policy=self.policy,
            policy_params=self.policy_params,
            num_clients=self.num_clients,
            warmup_requests=self.warmup_requests,
            checkpoint_every=self.checkpoint_every,
            seed=self.seed,
            workload_name=self.workload,
            fault_params=self.fault_params,
            resilience_params=self.resilience_params,
        )

    def build_policy(self):
        """Fresh policy instance, RNG-seeded from this spec.

        Mirrors :class:`SimJob`'s discipline: learned policies derive
        their exploration RNG purely from (spec seed, policy name), so
        two jobs differing only in seed train differently, and the
        same job always trains identically.
        """
        return self.service_config().build_policy()

    def build_faults(self):
        """FaultConfig from the spec (None when no faults requested)."""
        return build_fault_config(self.fault_params)

    def build_resilience(self):
        """ResilienceConfig from the spec (see
        :func:`repro.serve.config.build_resilience_config`)."""
        return build_resilience_config(self.resilience_params)

    def execute(self, obs=None) -> ServeMetrics:
        """Run this job from its spec alone (pure given the spec).

        ``obs`` is an optional :class:`repro.obs.ObsConfig`; when given,
        the run records a telemetry session and exports its artifacts
        under a label derived from this spec's fingerprint.  The
        returned metrics are identical either way.
        """
        total = self.num_requests + self.warmup_requests
        requests = build_workload(
            self.workload, total, seed=self.seed, **dict(self.workload_params)
        )
        session = None
        if obs is not None:
            import hashlib

            digest = hashlib.sha256(
                repr(self.canonical()).encode()
            ).hexdigest()[:10]
            session = obs.session(f"serve-{self.workload}-{self.policy}-{digest}")
        metrics = run_configured(
            requests, self.service_config(), obs=session
        )
        if session is not None:
            session.export()
        return metrics
