"""The unified serve runtime configuration: one frozen spec per service.

Before this module the serving layer's knobs were scattered across the
:class:`~repro.serve.service.CacheService` / ``run_service`` signatures
(latency model, fault model, resilience policy, capacity, warmup,
client count, ...) and re-flattened into ``ServeJob``'s parallel
``*_params`` tuples.  :class:`ServiceConfig` collapses that surface
into a single frozen dataclass:

* **one object describes one service end to end** — store geometry,
  policy (by name + literal params, so the config stays picklable and
  hashable), driver concurrency, warmup, checkpointing, the virtual-
  time :class:`LatencyConfig`, and the optional
  :class:`~repro.serve.faults.FaultConfig` /
  :class:`~repro.serve.resilience.ResilienceConfig`;
* **builders live with the config** — :meth:`ServiceConfig.build_policy`
  reproduces the job-spec RNG-seeding discipline,
  :meth:`ServiceConfig.from_params` accepts the spec-tuple forms frozen
  job dataclasses carry, and :meth:`ServiceConfig.for_shard` derives a
  per-shard variant (fresh policy/fault seeds, same shape) so a
  cluster builds N shards from one config;
* **the old kwargs keep working** — ``run_service`` and
  ``CacheService(...)`` accept their historical parameters unchanged
  (thin shims over this module), so the committed serve goldens stay
  byte-identical.

:class:`LatencyConfig` moved here from :mod:`repro.serve.service`
(which re-exports it) so the config module has no import cycle with
the service it describes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..sim.address import mix_hash
from .faults import FaultConfig
from .policies import ServePolicy, make_serve_policy
from .resilience import ResilienceConfig

#: the spec-tuple form frozen job dataclasses embed: ((name, value), ...)
Params = Tuple[Tuple[str, object], ...]

#: policies whose exploration RNG is seeded from the config seed
SEEDED_POLICIES = frozenset({"chrome"})


@dataclass(frozen=True)
class LatencyConfig:
    """Virtual-time latency model (milliseconds / bytes-per-ms)."""

    hit_base_ms: float = 0.1
    hit_bytes_per_ms: float = 4 * 1024 * 1024  # ~4 GB/s from local cache
    backend_base_ms: float = 6.0
    backend_bytes_per_ms: float = 256 * 1024  # ~256 MB/s origin path
    queue_penalty_ms: float = 0.25  # per outstanding backend fetch
    inter_arrival_ms: float = 0.5

    def hit_latency(self, size: int) -> float:
        return self.hit_base_ms + size / self.hit_bytes_per_ms


def build_fault_config(fault_params: Params) -> Optional[FaultConfig]:
    """FaultConfig from spec tuples (None when no faults requested)."""
    if not fault_params:
        return None
    return FaultConfig(**dict(fault_params))


def build_resilience_config(
    resilience_params: Params,
) -> Optional[ResilienceConfig]:
    """ResilienceConfig from spec tuples.

    ``("preset", "none")`` selects :meth:`ResilienceConfig.none` (the
    no-resilience control group) with any remaining params overriding
    it; an empty tuple returns None, which means *default* resilience
    when faults are injected and the plain request path otherwise.
    """
    if not resilience_params:
        return None
    params = dict(resilience_params)
    preset = params.pop("preset", "default")
    if preset == "none":
        base = ResilienceConfig.none()
        return replace(base, **params) if params else base
    if preset != "default":
        raise ValueError(f"unknown resilience preset {preset!r}")
    return ResilienceConfig(**params)


@dataclass(frozen=True)
class ServiceConfig:
    """Everything one :class:`~repro.serve.service.CacheService` run needs.

    Frozen and literal-only (policies by name, sub-configs as frozen
    dataclasses), so a config can sit inside job specs, cross process
    boundaries, and key caches exactly like the job dataclasses do.
    """

    capacity_bytes: int
    num_segments: int
    policy: str = "lru"
    policy_params: Params = ()
    num_clients: int = 8
    warmup_requests: int = 0
    checkpoint_every: int = 0
    seed: int = 0
    workload_name: str = ""
    latency: Optional[LatencyConfig] = None
    faults: Optional[FaultConfig] = None
    resilience: Optional[ResilienceConfig] = None
    #: Q-table execution backend for learned policies ("scalar" /
    #: "numpy" / None = defer to ``REPRO_BACKEND``).  Bit-identical by
    #: construction, so it never changes results — only throughput.
    backend: Optional[str] = None

    @classmethod
    def from_params(
        cls,
        *,
        fault_params: Params = (),
        resilience_params: Params = (),
        **kwargs,
    ) -> "ServiceConfig":
        """Build from the spec-tuple forms frozen jobs carry.

        ``fault_params`` / ``resilience_params`` follow the ServeJob
        conventions (empty = none / default); every other keyword maps
        straight onto a :class:`ServiceConfig` field.
        """
        return cls(
            faults=build_fault_config(fault_params),
            resilience=build_resilience_config(resilience_params),
            **kwargs,
        )

    # --- builders -----------------------------------------------------------------

    def build_policy(self) -> ServePolicy:
        """Fresh policy instance, RNG-seeded from this config.

        Mirrors the job-spec discipline: learned policies derive their
        exploration RNG purely from (config seed, policy name), so two
        configs differing only in seed train differently, and the same
        config always trains identically.
        """
        params = dict(self.policy_params)
        if self.policy in SEEDED_POLICIES:
            params.setdefault(
                "seed", mix_hash((self.seed << 8) ^ len(self.policy))
            )
            if self.backend is not None:
                params.setdefault("backend", self.backend)
        return make_serve_policy(self.policy, **params)

    def build_store(self, policy: Optional[ServePolicy] = None):
        """Fresh :class:`~repro.serve.store.ObjectStore` for this config."""
        from .store import ObjectStore

        return ObjectStore(
            self.capacity_bytes, self.num_segments, policy or self.build_policy()
        )

    # --- derivation ---------------------------------------------------------------

    def for_shard(self, shard_idx: int) -> "ServiceConfig":
        """A per-shard variant of this config (cluster shard construction).

        The shard keeps the shape (geometry, policy, latency model,
        resilience) but derives fresh seeds — its own exploration RNG
        stream and its own fault-decision stream — as pure functions of
        (config seed, shard index), so a fleet of shards never shares
        randomness yet rebuilds identically in any process.
        """
        derived_seed = mix_hash((self.seed << 20) ^ (shard_idx * 0x9E3779B9) ^ 0xC1)
        faults = self.faults
        if faults is not None:
            faults = replace(
                faults, seed=mix_hash((faults.seed << 20) ^ (shard_idx * 0x85EB) ^ 0xC2)
            )
        return replace(self, seed=derived_seed, faults=faults)

    def for_challenger(
        self,
        policy: Optional[str] = None,
        policy_params: Optional[Params] = None,
    ) -> "ServiceConfig":
        """The shadow-challenger variant of this config (ops layer).

        A challenger mirrors the champion's geometry and latency model
        but runs its own policy (or the same policy under a fresh seed
        when ``policy`` is omitted) against its own isolated store.  It
        never sees injected faults or resilience machinery — shadow
        evaluation compares *cache policies*, and the champion's fault
        stream must not leak into the challenger's reward signal.  The
        derived seed is a pure function of the champion seed, so shadow
        runs rebuild identically in any process.
        """
        return replace(
            self,
            policy=policy if policy is not None else self.policy,
            policy_params=(
                policy_params if policy_params is not None else self.policy_params
            ),
            seed=mix_hash((self.seed << 24) ^ 0xC7A11E),
            faults=None,
            resilience=None,
        )
