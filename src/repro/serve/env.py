"""The serving layer as an :class:`~repro.env.protocol.Environment`.

The serve domain binding: a :class:`~repro.serve.service.CacheService`
request loop (including the resilient pipeline when fault/resilience
params are supplied) driving :class:`~repro.serve.agent.ServeAgent`,
the serve binding of the shared :class:`~repro.env.driver.AgentCore`.
``run()`` is exactly :func:`~repro.serve.service.run_configured` — the
adapter only holds onto the policy instance so the snapshot seam stays
reachable after the run.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, List, Optional

from ..core.persistence import agent_state
from ..env.driver import restore_agent_state
from ..env.protocol import Environment
from ..env.registry import register_environment
from .config import ServiceConfig
from .service import run_configured
from .workloads import build_workload


class ServeEnvironment(Environment):
    """One CHROME-fronted cache service, run over a workload stream."""

    name = "serve"
    snapshot_kind = "serve-agent"

    def __init__(
        self,
        *,
        workload: str = "zipf_scan",
        num_requests: int = 1000,
        warmup_requests: int = 200,
        capacity_bytes: int = 1 << 20,
        num_segments: int = 64,
        num_clients: int = 1,
        seed: int = 17,
        backend: Optional[str] = None,
        fault_params=(),
        resilience_params=(),
    ) -> None:
        self._num_requests = num_requests
        self.config = ServiceConfig.from_params(
            capacity_bytes=capacity_bytes,
            num_segments=num_segments,
            policy="chrome",
            num_clients=num_clients,
            warmup_requests=warmup_requests,
            seed=seed,
            workload_name=workload,
            backend=backend,
            fault_params=tuple(fault_params),
            resilience_params=tuple(resilience_params),
        )
        self.policy = self.config.build_policy()

    def run(self) -> Dict[str, object]:
        requests = build_workload(
            self.config.workload_name,
            self._num_requests + self.config.warmup_requests,
            seed=self.config.seed,
        )
        metrics = run_configured(requests, self.config, policy=self.policy)
        return asdict(metrics)

    def agent_states(self) -> List[dict]:
        return [agent_state(self.policy.agent, self.snapshot_kind)]

    def load_agent_states(
        self, states: List[dict], *, keep_rng: bool = False
    ) -> None:
        restore_agent_state(
            self.policy.agent, states[0], self.snapshot_kind, keep_rng=keep_rng
        )


register_environment("serve", ServeEnvironment)
