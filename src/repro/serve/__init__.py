"""``repro.serve`` — a software object-cache serving layer driven by
the CHROME agent.

The first subsystem where the reproduction's contribution runs
*outside* the LLC simulator: a size-aware segmented object store
(:mod:`.store`), the paper's RL agent retargeted to cache requests
(:mod:`.agent` — key signatures for PCs, tenants for cores, backend
latency for C-AMAT), classic software-cache baselines behind one
interface (:mod:`.policies`), seeded request generators
(:mod:`.workloads`), an asyncio front-end whose results are
bit-identical under any client concurrency (:mod:`.service`), and
operator metrics (:mod:`.metrics`).

Chaos engineering rides on top: :mod:`.faults` injects deterministic,
virtual-time backend misbehavior (latency spikes, error bursts, full
outages, per-tenant brownouts, post-recovery slow start) and
:mod:`.resilience` supplies graceful degradation (per-request timeout,
retries with seeded-jitter backoff, a per-tenant circuit breaker,
stale serving, load shedding) — all bit-identical at any client count.

Importing this package registers the ``serve_zipf``,
``serve_multitenant``, ``serve_phases``, ``serve_proxy_burst``,
``serve_retrieval``, ``serve_storage`` and ``serve_faults``
experiments with the shared registry; their
:class:`~repro.serve.jobs.ServeJob` specs run on the parallel
experiment engine like every paper figure.
"""

from .agent import BackendObstructionMonitor, ChromeServePolicy, ServeAgent
from .config import ServiceConfig
from .faults import FaultConfig, FaultInjector
from .jobs import SERVE_CODE_VERSION, ServeJob
from .metrics import MetricsRecorder, ServeMetrics, TenantMetrics
from .resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    ResilienceConfig,
    ResilienceState,
)
from .policies import (
    SERVE_POLICIES,
    GDSFServePolicy,
    LFUServePolicy,
    LRUServePolicy,
    S3FIFOServePolicy,
    ServePolicy,
    make_serve_policy,
    register_serve_policy,
)
from .service import (
    Backend,
    CacheService,
    LatencyConfig,
    replay_requests,
    run_configured,
    run_service,
)
from .store import CachedObject, ObjectStore
from .workloads import (
    MAX_OBJECT_BYTES,
    WORKLOAD_SPECS,
    WORKLOADS,
    Request,
    WorkloadSpec,
    build_workload,
    key_namespace,
    object_size,
)

from . import experiments as _experiments  # noqa: F401  (eager registration)

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "Backend",
    "BackendObstructionMonitor",
    "CacheService",
    "CachedObject",
    "ChromeServePolicy",
    "CircuitBreaker",
    "FaultConfig",
    "FaultInjector",
    "GDSFServePolicy",
    "LFUServePolicy",
    "LRUServePolicy",
    "LatencyConfig",
    "MetricsRecorder",
    "ObjectStore",
    "Request",
    "ResilienceConfig",
    "ResilienceState",
    "S3FIFOServePolicy",
    "SERVE_CODE_VERSION",
    "SERVE_POLICIES",
    "ServeAgent",
    "ServeJob",
    "ServeMetrics",
    "ServePolicy",
    "ServiceConfig",
    "MAX_OBJECT_BYTES",
    "TenantMetrics",
    "WORKLOADS",
    "WORKLOAD_SPECS",
    "WorkloadSpec",
    "build_workload",
    "key_namespace",
    "make_serve_policy",
    "object_size",
    "register_serve_policy",
    "replay_requests",
    "run_configured",
    "run_service",
]
