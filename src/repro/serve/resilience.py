"""Graceful degradation for the serving layer: what a production proxy
does when its origin misbehaves.

:class:`ResilienceConfig` declares the policy, :class:`ResilienceState`
runs it.  Five mechanisms, all in virtual time, all deterministic:

* **per-request latency budget** — ``timeout_ms`` is a whole-request
  deadline: an attempt still in flight when the budget runs out is
  abandoned there, and no retry starts without budget left to run in,
  so a degraded miss can never take longer than the budget;
* **capped exponential backoff retries** — up to ``max_attempts``
  attempts per request, separated by ``base * multiplier^(attempt-1)``
  (capped) plus a *seeded* jitter that is a pure hash of
  ``(seed, seq, attempt)`` — no RNG stream, so retries draw the same
  jitter at any client count and in any process;
* **per-tenant circuit breaker** — ``closed -> open`` after
  ``failure_threshold`` consecutive failures, ``open -> half-open``
  after ``open_ms`` of virtual time, half-open admits a bounded number
  of probe requests and closes on success / re-opens on failure.
  While open, the backend is never touched for that tenant: requests
  fast-fail (or serve stale) instead of piling onto a dead origin;
* **stale serving** — evicted objects are *retained* (key + size, a
  bounded LRU of ``stale_entries``); when the breaker is open or every
  retry is exhausted, a retained copy is served as degraded-but-200
  instead of an error, the classic CDN ``stale-if-error`` behavior;
* **load shedding** — when the origin's outstanding-fetch depth
  reaches ``shed_outstanding``, new misses are refused outright
  (fast 503) rather than queued, bounding the latency of everything
  already in flight.

``ResilienceConfig()`` defaults are production-shaped but *inert on a
healthy backend*: no timeout trips, no retry fires, the breaker never
opens and nothing sheds, so runs with faults disabled remain
bit-identical to the pre-resilience serving layer (the differential
suite pins this against the committed goldens).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, fields
from typing import Dict, Tuple

from ..sim.address import mix_hash

_MASK64 = (1 << 64) - 1
_GOLDEN64 = 0x9E3779B97F4A7C15
_INV_2_64 = 1.0 / float(1 << 64)

#: circuit-breaker states (exported for tests/telemetry)
BREAKER_CLOSED = 0
BREAKER_OPEN = 1
BREAKER_HALF_OPEN = 2

#: human-readable names for the obs timeline / reports
BREAKER_STATE_NAMES = {
    BREAKER_CLOSED: "closed",
    BREAKER_OPEN: "open",
    BREAKER_HALF_OPEN: "half-open",
}


@dataclass(frozen=True)
class ResilienceConfig:
    """Degradation policy knobs (virtual ms).  ``0`` disables a knob."""

    #: total fetch attempts per request (1 = no retries)
    max_attempts: int = 3
    #: whole-request latency budget, attempts + backoff (0 = no deadline)
    timeout_ms: float = 0.0
    backoff_base_ms: float = 2.0
    backoff_multiplier: float = 2.0
    backoff_cap_ms: float = 50.0
    #: jitter drawn uniformly from [0, jitter_fraction * backoff)
    jitter_fraction: float = 0.5
    #: consecutive failures that open the breaker (0 = breaker off)
    breaker_failure_threshold: int = 8
    breaker_open_ms: float = 250.0
    breaker_half_open_probes: int = 2
    #: evicted keys retained for stale serving (0 = stale serving off)
    stale_entries: int = 4096
    #: extra latency charged to a stale response (staleness check)
    stale_latency_ms: float = 0.5
    #: shed new misses once this many fetches are outstanding (0 = off)
    shed_outstanding: int = 0
    #: virtual latency of a fast-fail response (shed / breaker denial)
    error_latency_ms: float = 1.0
    #: salt for the deterministic backoff jitter
    seed: int = 0

    @classmethod
    def none(cls) -> "ResilienceConfig":
        """The do-nothing configuration: one attempt, no timeout, no
        breaker, no stale copies, no shedding — what a naive proxy does
        when its origin burns.  The experiment control group."""
        return cls(
            max_attempts=1,
            timeout_ms=0.0,
            breaker_failure_threshold=0,
            stale_entries=0,
            shed_outstanding=0,
        )

    def params(self) -> Tuple[Tuple[str, object], ...]:
        """Spec-tuple form for embedding in a frozen ServeJob."""
        return tuple((f.name, getattr(self, f.name)) for f in fields(self))


class CircuitBreaker:
    """One tenant's closed/open/half-open state machine (virtual time).

    Kept deliberately slot-free so tests can instrument ``allow`` to
    verify the no-backend-while-open invariant from the outside.
    """

    def __init__(self, config: ResilienceConfig) -> None:
        self.config = config
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.open_until = 0.0
        self.probes_left = 0
        self.opens = 0  # telemetry: total closed/half-open -> open trips

    @property
    def enabled(self) -> bool:
        return self.config.breaker_failure_threshold > 0

    def allow(self, now_ms: float) -> Tuple[bool, bool]:
        """May this request touch the backend?  ``(allowed, probing)``."""
        if not self.enabled:
            return True, False
        if self.state == BREAKER_OPEN:
            if now_ms < self.open_until:
                return False, False
            self.state = BREAKER_HALF_OPEN
            self.probes_left = max(1, self.config.breaker_half_open_probes)
        if self.state == BREAKER_HALF_OPEN:
            if self.probes_left <= 0:
                return False, False
            self.probes_left -= 1
            return True, True
        return True, False

    def on_success(self) -> None:
        if self.state == BREAKER_HALF_OPEN:
            self.state = BREAKER_CLOSED
        self.consecutive_failures = 0

    def on_failure(self, now_ms: float) -> bool:
        """Record a failed request; returns True when the breaker trips."""
        if not self.enabled:
            return False
        if self.state == BREAKER_HALF_OPEN:
            # A failed probe re-opens immediately.
            self.state = BREAKER_OPEN
            self.open_until = now_ms + self.config.breaker_open_ms
            self.consecutive_failures = 0
            self.opens += 1
            return True
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.config.breaker_failure_threshold:
            self.state = BREAKER_OPEN
            self.open_until = now_ms + self.config.breaker_open_ms
            self.consecutive_failures = 0
            self.opens += 1
            return True
        return False


class ResilienceState:
    """Runtime for one service: breakers, stale retention, backoff."""

    __slots__ = ("config", "_seed", "_breakers", "_stale")

    def __init__(self, config: ResilienceConfig) -> None:
        self.config = config
        self._seed = mix_hash((config.seed << 1) ^ 0x5E11E)
        self._breakers: Dict[int, CircuitBreaker] = {}
        self._stale: "OrderedDict[int, int]" = OrderedDict()  # key -> size

    # --- breakers --------------------------------------------------------------

    def breaker(self, tenant: int) -> CircuitBreaker:
        b = self._breakers.get(tenant)
        if b is None:
            b = self._breakers[tenant] = CircuitBreaker(self.config)
        return b

    def breaker_opens(self) -> int:
        return sum(b.opens for b in self._breakers.values())

    def breaker_states(self) -> Dict[int, str]:
        """Current per-tenant breaker states, by tenant id (telemetry)."""
        return {
            tenant: BREAKER_STATE_NAMES[b.state]
            for tenant, b in sorted(self._breakers.items())
        }

    # --- load shedding ----------------------------------------------------------

    def should_shed(self, outstanding: int) -> bool:
        limit = self.config.shed_outstanding
        return limit > 0 and outstanding >= limit

    # --- retries ----------------------------------------------------------------

    def backoff_ms(self, seq: int, attempt: int) -> float:
        """Backoff before attempt ``attempt + 1`` (deterministic jitter).

        ``attempt`` counts *completed* attempts, so callers pass values
        from 1 upward (the retry loop asserts this).  The exponent is
        clamped at zero anyway: a defensive ``attempt=0`` waits exactly
        ``backoff_base_ms`` (pre-jitter) instead of underflowing to a
        sub-base ``base / multiplier`` wait.
        """
        cfg = self.config
        exponent = attempt - 1
        if exponent < 0:
            exponent = 0
        backoff = cfg.backoff_base_ms * cfg.backoff_multiplier ** exponent
        if backoff > cfg.backoff_cap_ms:
            backoff = cfg.backoff_cap_ms
        if cfg.jitter_fraction > 0.0:
            h = mix_hash((self._seed ^ (seq << 8) ^ attempt) & _MASK64)
            backoff += (h * _INV_2_64) * cfg.jitter_fraction * backoff
        return backoff

    # --- stale retention ---------------------------------------------------------

    def retain_stale(self, obj) -> None:
        """Remember an evicted object (called by the store's evict hook)."""
        limit = self.config.stale_entries
        if limit <= 0:
            return
        stale = self._stale
        stale[obj.key] = obj.size
        stale.move_to_end(obj.key)
        while len(stale) > limit:
            stale.popitem(last=False)

    def stale_hit(self, key: int) -> bool:
        """Is a retained (stale) copy available?  Refreshes its LRU slot."""
        if key in self._stale:
            self._stale.move_to_end(key)
            return True
        return False

    def forget_stale(self, key: int) -> None:
        """Drop the retained copy (the key was re-fetched fresh)."""
        self._stale.pop(key, None)

    @property
    def stale_retained(self) -> int:
        return len(self._stale)
