"""DDR4-like main-memory timing model.

Reproduces the paper's memory configuration (Table V): 2 channels,
2 ranks/channel, 8 banks/rank, 64-bit channels at DDR4-3200, with
tRP = tRCD = tCAS = 12.5 ns.  At the 4 GHz core clock each of those
latencies is 50 core cycles; a burst of one 64-byte line over a 64-bit
DDR-3200 channel occupies the data bus for 4 memory-bus-clock cycles
(= 10 core cycles at 4 GHz with the 1600 MHz bus clock).

The model keeps per-bank open-row state and per-bank/per-channel
busy-until timestamps, so it produces row-buffer hits/misses/conflicts
and genuine queueing under concurrent multi-core access — the load
behaviour C-AMAT (and hence CHROME's reward shaping) observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List



@dataclass
class DRAMConfig:
    """Timing/geometry parameters, in core cycles at 4 GHz."""

    channels: int = 2
    ranks_per_channel: int = 2
    banks_per_rank: int = 8
    trp: float = 50.0  # precharge
    trcd: float = 50.0  # activate
    tcas: float = 50.0  # column access
    burst: float = 10.0  # data-bus occupancy per 64B line
    row_bits: int = 16  # bits of block address per row (8 KB row / 64 B blocks = 7; we fold column bits too)
    column_blocks_bits: int = 7  # blocks per row (8 KB row)

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks_per_channel * self.banks_per_rank

    @property
    def row_miss_latency(self) -> float:
        return self.trp + self.trcd + self.tcas

    @property
    def row_hit_latency(self) -> float:
        return self.tcas

    @property
    def average_latency(self) -> float:
        """Nominal average service latency, used as ``T_mem`` for the
        LLC-obstruction test (Sec. IV-C): a mid-point between row hit
        and row miss plus the burst transfer."""
        return (self.row_hit_latency + self.row_miss_latency) / 2.0 + self.burst


@dataclass(slots=True)
class _Bank:
    busy_until: float = 0.0
    row_hits: int = 0
    row_misses: int = 0
    # FR-FCFS approximation: the controller batches queued requests
    # by row, so any of the last few distinct rows served behaves
    # like an open row for a newly arriving request.
    recent_rows: list = field(default_factory=list)

    def row_is_open(self, row: int) -> bool:
        return row in self.recent_rows

    def open_row_for(self, row: int, window: int = 4) -> None:
        if row in self.recent_rows:
            self.recent_rows.remove(row)
        self.recent_rows.append(row)
        if len(self.recent_rows) > window:
            self.recent_rows.pop(0)


class DRAMModel:
    """Bank-level main-memory timing with open-page policy."""

    __slots__ = (
        "config",
        "_banks",
        "_channel_busy",
        "_chan_mask",
        "_row_shift",
        "_bank_count",
        "_bank_mask",
        "_bank_shift",
        "_row_hit",
        "_row_miss",
        "_burst",
        "reads",
        "writes",
    )

    def __init__(self, config: DRAMConfig | None = None) -> None:
        self.config = config or DRAMConfig()
        self._banks: List[_Bank] = [_Bank() for _ in range(self.config.total_banks)]
        self._channel_busy: List[float] = [0.0] * self.config.channels
        # Precomputed geometry/timing for the access hot path.
        cfg = self.config
        self._chan_mask = cfg.channels - 1
        self._row_shift = (cfg.channels.bit_length() - 1) + cfg.column_blocks_bits
        self._bank_count = cfg.ranks_per_channel * cfg.banks_per_rank
        # Bank interleave via shift/mask when the count is a power of two.
        if self._bank_count & (self._bank_count - 1) == 0:
            self._bank_mask = self._bank_count - 1
            self._bank_shift = self._bank_count.bit_length() - 1
        else:
            self._bank_mask = None
            self._bank_shift = 0
        self._row_hit = cfg.row_hit_latency
        self._row_miss = cfg.row_miss_latency
        self._burst = cfg.burst
        self.reads = 0
        self.writes = 0

    def _locate(self, block_addr: int) -> tuple[int, int, int]:
        """Map a block address to (channel, bank index, row).

        Channels interleave at block granularity (for stream bandwidth);
        within a channel, ``column_blocks_bits`` consecutive blocks share
        a row, then banks interleave, then rows — so sequential streams
        see row-buffer hits and scattered accesses see bank conflicts.
        """
        channel = block_addr & self._chan_mask
        beyond_row = block_addr >> self._row_shift
        bank_count = self._bank_count
        bank_local = beyond_row % bank_count
        row = beyond_row // bank_count
        bank = channel * bank_count + bank_local
        return channel, bank, row

    def access(self, block_addr: int, cycle: float, is_write: bool = False) -> float:
        """Service one line request issued at ``cycle``.

        Returns the total latency (queueing + bank + burst) seen by the
        requester.  Writes occupy the bank and bus but the returned
        latency is still meaningful for writeback drain modelling.
        """
        # Inlined _locate + _Bank.row_is_open/open_row_for (hot path).
        channel = block_addr & self._chan_mask
        beyond_row = block_addr >> self._row_shift
        if self._bank_mask is not None:
            row = beyond_row >> self._bank_shift
            bank_local = beyond_row & self._bank_mask
        else:
            row = beyond_row // self._bank_count
            bank_local = beyond_row % self._bank_count
        bank = self._banks[channel * self._bank_count + bank_local]

        busy = bank.busy_until
        start = cycle if cycle > busy else busy
        if is_write:
            # Writebacks drain through the controller's write buffer,
            # which batches them by row between read bursts: charge
            # bank/bus occupancy at row-hit cost and leave the read
            # stream's open-row state undisturbed.
            service = self._row_hit
        else:
            recent = bank.recent_rows
            if row in recent:
                service = self._row_hit
                bank.row_hits += 1
                recent.remove(row)
                recent.append(row)
            else:
                service = self._row_miss
                bank.row_misses += 1
                recent.append(row)
                if len(recent) > 4:
                    recent.pop(0)
        # The data bus is shared per channel but only for the burst:
        # different banks overlap their activate/CAS phases.
        data_ready = start + service
        chan_busy = self._channel_busy[channel]
        if chan_busy > data_ready:
            data_ready = chan_busy
        done = data_ready + self._burst
        bank.busy_until = done
        self._channel_busy[channel] = done

        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        return done - cycle

    def backlog(self, block_addr: int, cycle: float) -> float:
        """Queueing delay a request to this block would see if issued
        now — used by the hierarchy to drop prefetches under pressure
        (real prefetchers are lowest-priority and shed load when the
        memory system is saturated)."""
        channel = block_addr & self._chan_mask
        beyond_row = block_addr >> self._row_shift
        if self._bank_mask is not None:
            bank_local = beyond_row & self._bank_mask
        else:
            bank_local = beyond_row % self._bank_count
        wait = self._banks[channel * self._bank_count + bank_local].busy_until
        chan_busy = self._channel_busy[channel]
        if chan_busy > wait:
            wait = chan_busy
        wait -= cycle
        return wait if wait > 0.0 else 0.0

    @property
    def row_hit_rate(self) -> float:
        hits = sum(b.row_hits for b in self._banks)
        misses = sum(b.row_misses for b in self._banks)
        total = hits + misses
        return hits / total if total else 0.0

    def reset(self) -> None:
        for bank in self._banks:
            bank.recent_rows.clear()
            bank.busy_until = 0.0
            bank.row_hits = 0
            bank.row_misses = 0
        self._channel_busy = [0.0] * self.config.channels
        self.reads = 0
        self.writes = 0
