"""Cache block (line) record used by every cache level."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class CacheBlock:
    """State of one cache way.

    Beyond the architectural bits (tag/valid/dirty) the block carries
    the provenance metadata every studied policy consumes: the PC that
    filled it, the requesting core, and whether the block was brought
    in by a prefetch and has not yet been demanded ("prefetched" status
    is cleared on the first demand hit, exactly as in ChampSim).

    ``epv`` is the 2-bit Eviction Priority Value used by CHROME and, in
    RRPV form, by several baselines; ``last_touch`` is a per-cache
    logical timestamp for LRU ordering.
    """

    tag: int = 0
    valid: bool = False
    dirty: bool = False
    pc: int = 0
    core: int = 0
    is_prefetch: bool = False
    epv: int = 0
    last_touch: int = 0
    fill_touch: int = 0
    reused: bool = False  # saw any hit since fill (for unused-block stats)

    def reset_for_fill(
        self,
        tag: int,
        pc: int,
        core: int,
        is_prefetch: bool,
        dirty: bool,
        touch: int,
    ) -> None:
        """Reinitialize this way for a newly inserted block."""
        self.tag = tag
        self.valid = True
        self.dirty = dirty
        self.pc = pc
        self.core = core
        self.is_prefetch = is_prefetch
        self.epv = 0
        self.last_touch = touch
        self.fill_touch = touch
        self.reused = False
