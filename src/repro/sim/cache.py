"""Set-associative cache with pluggable management policy.

One class serves every level: L1D and L2 instantiate it with plain LRU,
the shared LLC with whichever scheme is under study.  The cache only
resolves hits/misses, maintains block metadata, and invokes the policy
hooks; all timing (latencies, MSHR delays, DRAM queueing) is composed
by :mod:`repro.sim.hierarchy`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .access import DEMAND, PREFETCH, WRITEBACK, AccessInfo
from .address import BLOCK_SIZE, is_power_of_two, set_index, tag_of
from .block import CacheBlock
from .mshr import MSHRFile
from .replacement.base import ReplacementPolicy, oldest_way
from .stats import CacheStats, LLCManagementStats


class _TrueLRU(ReplacementPolicy):
    """Internal true-LRU used by the private levels."""

    name = "lru"

    def find_victim(self, info: AccessInfo, blocks) -> int:
        return oldest_way(blocks)


class Cache:
    """A single cache level.

    Args:
        name: label used in statistics.
        size_bytes: total capacity; must give a power-of-two set count.
        ways: associativity.
        latency: hit latency in cycles (used by the hierarchy).
        mshr_entries: miss-buffer capacity.
        policy: replacement/bypass policy; defaults to true LRU.
        track_mgmt_stats: enable LLC-style bypass/prefetch accounting.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        latency: float,
        mshr_entries: int = 16,
        policy: Optional[ReplacementPolicy] = None,
        track_mgmt_stats: bool = False,
    ) -> None:
        num_sets = size_bytes // (BLOCK_SIZE * ways)
        if num_sets <= 0 or not is_power_of_two(num_sets):
            raise ValueError(
                f"{name}: size {size_bytes}B / {ways} ways gives {num_sets} sets; "
                "set count must be a positive power of two"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.num_sets = num_sets
        self.num_ways = ways
        self.latency = latency
        self.policy = policy or _TrueLRU()
        self.policy.attach(num_sets, ways)
        self.mshr = MSHRFile(mshr_entries)
        self.stats = CacheStats(name=name)
        self.mgmt = LLCManagementStats() if track_mgmt_stats else None
        self._blocks: List[List[CacheBlock]] = [
            [CacheBlock() for _ in range(ways)] for _ in range(num_sets)
        ]
        self._tag_maps: List[Dict[int, int]] = [dict() for _ in range(num_sets)]
        self._touch = 0

    # --- lookup / access ---------------------------------------------------

    def probe(self, block_addr: int) -> bool:
        """Side-effect-free presence check."""
        s = set_index(block_addr, self.num_sets)
        return tag_of(block_addr, self.num_sets) in self._tag_maps[s]

    def access(self, info: AccessInfo) -> Tuple[bool, bool]:
        """Look up ``info.block_addr``; update state on a hit.

        Returns ``(hit, first_demand_hit_on_prefetched_block)``.  The
        second flag lets the hierarchy credit the issuing prefetcher.
        """
        s = set_index(info.block_addr, self.num_sets)
        info.set_index = s
        tag = tag_of(info.block_addr, self.num_sets)
        if self.mgmt is not None and info.type == DEMAND:
            self.mgmt.on_demand_request(info.block_addr)
        way = self._tag_maps[s].get(tag)
        hit = way is not None
        info.hit = hit
        self.stats.record(info.type, hit)
        prefetch_first_hit = False
        if hit:
            block = self._blocks[s][way]
            self._touch += 1
            block.last_touch = self._touch
            if info.is_write:
                block.dirty = True
            if not block.reused and info.type != WRITEBACK:
                block.reused = True
            if block.is_prefetch and info.type == DEMAND:
                block.is_prefetch = False
                prefetch_first_hit = True
                if self.mgmt is not None:
                    self.mgmt.on_prefetched_block_hit()
            self.policy.on_hit(info, self._blocks[s], way)
        return hit, prefetch_first_hit

    # --- fill / bypass ------------------------------------------------------

    def decide_bypass(self, info: AccessInfo) -> bool:
        """Ask the policy whether this missing block should bypass.

        Writebacks are always allocated (they carry dirty data that
        must land somewhere on its way to memory).
        """
        if info.type == WRITEBACK:
            return False
        info.set_index = set_index(info.block_addr, self.num_sets)
        bypass = self.policy.should_bypass(info)
        if bypass and self.mgmt is not None:
            self.mgmt.on_bypass(info.block_addr)
        return bypass

    def fill(self, info: AccessInfo, dirty: bool = False) -> Optional[Tuple[int, bool]]:
        """Install the block; return ``(evicted_block_addr, was_dirty)``
        if a valid block was displaced, else None."""
        s = set_index(info.block_addr, self.num_sets)
        info.set_index = s
        tag = tag_of(info.block_addr, self.num_sets)
        tag_map = self._tag_maps[s]
        if tag in tag_map:
            # Duplicate fill (e.g. prefetch raced a demand): refresh dirtiness.
            way = tag_map[tag]
            if dirty:
                self._blocks[s][way].dirty = True
            return None
        blocks = self._blocks[s]
        victim_info: Optional[Tuple[int, bool]] = None
        if len(tag_map) < self.num_ways:
            way = next(w for w, b in enumerate(blocks) if not b.valid)
        else:
            way = None
        if way is None:
            way = self.policy.find_victim(info, blocks)
            if not 0 <= way < self.num_ways:
                raise RuntimeError(
                    f"{self.policy.name}: victim way {way} out of range"
                )
            victim = blocks[way]
            self.policy.on_eviction(info, blocks, way)
            evicted_addr = victim.tag * self.num_sets + s
            victim_info = (evicted_addr, victim.dirty)
            self.stats.evictions += 1
            if self.mgmt is not None:
                self.mgmt.on_eviction(
                    evicted_addr, victim.reused, victim.is_prefetch
                )
            del tag_map[victim.tag]
        self._touch += 1
        blocks[way].reset_for_fill(
            tag=tag,
            pc=info.pc,
            core=info.core,
            is_prefetch=(info.type == PREFETCH),
            dirty=dirty or info.is_write,
            touch=self._touch,
        )
        tag_map[tag] = way
        if self.mgmt is not None:
            self.mgmt.on_fill(info.type == PREFETCH)
        self.policy.on_fill(info, blocks, way)
        return victim_info

    def invalidate(self, block_addr: int) -> bool:
        """Drop a block if present (used by tests and coherence stubs)."""
        s = set_index(block_addr, self.num_sets)
        tag = tag_of(block_addr, self.num_sets)
        way = self._tag_maps[s].pop(tag, None)
        if way is None:
            return False
        self._blocks[s][way].valid = False
        return True

    # --- introspection --------------------------------------------------------

    def blocks_in_set(self, set_idx: int) -> List[CacheBlock]:
        return self._blocks[set_idx]

    def occupancy(self) -> int:
        return sum(len(m) for m in self._tag_maps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cache({self.name}, {self.size_bytes >> 10}KB, "
            f"{self.num_sets}x{self.num_ways}, policy={self.policy.name})"
        )
