"""Set-associative cache with pluggable management policy.

One class serves every level: L1D and L2 instantiate it with plain LRU,
the shared LLC with whichever scheme is under study.  The cache only
resolves hits/misses, maintains block metadata, and invokes the policy
hooks; all timing (latencies, MSHR delays, DRAM queueing) is composed
by :mod:`repro.sim.hierarchy`.

Hot-path note: set index and tag are derived with a precomputed mask
and shift (``num_sets`` is validated to be a power of two), and the
hit/miss counters are bumped inline from the access-type booleans —
``CacheStats.record`` string dispatch is kept only for external
callers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .access import AccessInfo
from .address import BLOCK_SIZE, is_power_of_two
from .block import CacheBlock
from .mshr import MSHRFile
from .replacement.base import ReplacementPolicy, oldest_way
from .replacement.lru import LRUPolicy
from .stats import CacheStats, LLCManagementStats


class _TrueLRU(LRUPolicy):
    """Internal true-LRU used by the private levels (O(1) recency)."""

    name = "lru"


class Cache:
    """A single cache level.

    Args:
        name: label used in statistics.
        size_bytes: total capacity; must give a power-of-two set count.
        ways: associativity.
        latency: hit latency in cycles (used by the hierarchy).
        mshr_entries: miss-buffer capacity.
        policy: replacement/bypass policy; defaults to true LRU.
        track_mgmt_stats: enable LLC-style bypass/prefetch accounting.
    """

    __slots__ = (
        "name",
        "size_bytes",
        "num_sets",
        "num_ways",
        "latency",
        "_set_mask",
        "_set_shift",
        "policy",
        "_lru_recency",
        "mshr",
        "stats",
        "mgmt",
        "_blocks",
        "_tag_maps",
        "_touch",
    )

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        latency: float,
        mshr_entries: int = 16,
        policy: Optional[ReplacementPolicy] = None,
        track_mgmt_stats: bool = False,
    ) -> None:
        num_sets = size_bytes // (BLOCK_SIZE * ways)
        if num_sets <= 0 or not is_power_of_two(num_sets):
            raise ValueError(
                f"{name}: size {size_bytes}B / {ways} ways gives {num_sets} sets; "
                "set count must be a positive power of two"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.num_sets = num_sets
        self.num_ways = ways
        self.latency = latency
        #: precomputed index arithmetic (num_sets is a power of two)
        self._set_mask = num_sets - 1
        self._set_shift = num_sets.bit_length() - 1
        self.policy = policy or _TrueLRU()
        self.policy.attach(num_sets, ways)
        # Fast path: when the policy is *exactly* true LRU (no subclass
        # hooks to honour), the cache updates the recency dicts inline
        # instead of dispatching on_hit/on_fill/find_victim — LRU's
        # on_eviction/should_bypass are the base no-ops, so skipping the
        # calls is behaviour-identical.  Exact-type check so policy
        # subclasses with real hooks keep the dispatch path.
        self._lru_recency = (
            self.policy._recency if type(self.policy) in (_TrueLRU, LRUPolicy) else None
        )
        self.mshr = MSHRFile(mshr_entries)
        self.stats = CacheStats(name=name)
        self.mgmt = LLCManagementStats() if track_mgmt_stats else None
        self._blocks: List[List[CacheBlock]] = [
            [CacheBlock() for _ in range(ways)] for _ in range(num_sets)
        ]
        self._tag_maps: List[Dict[int, int]] = [dict() for _ in range(num_sets)]
        self._touch = 0

    # --- lookup / access ---------------------------------------------------

    def probe(self, block_addr: int) -> bool:
        """Side-effect-free presence check."""
        return (block_addr >> self._set_shift) in self._tag_maps[
            block_addr & self._set_mask
        ]

    def access(self, info: AccessInfo) -> Tuple[bool, bool]:
        """Look up ``info.block_addr``; update state on a hit.

        Returns ``(hit, first_demand_hit_on_prefetched_block)``.  The
        second flag lets the hierarchy credit the issuing prefetcher.
        """
        block_addr = info.block_addr
        s = block_addr & self._set_mask
        info.set_index = s
        tag = block_addr >> self._set_shift
        mgmt = self.mgmt
        is_demand = info.is_demand
        if mgmt is not None and is_demand:
            mgmt.on_demand_request(block_addr)
        way = self._tag_maps[s].get(tag)
        hit = way is not None
        info.hit = hit
        stats = self.stats
        if is_demand:
            if hit:
                stats.demand_hits += 1
            else:
                stats.demand_misses += 1
        elif info.is_prefetch:
            if hit:
                stats.prefetch_hits += 1
            else:
                stats.prefetch_misses += 1
        else:
            if hit:
                stats.writeback_hits += 1
            else:
                stats.writeback_misses += 1
        prefetch_first_hit = False
        if hit:
            blocks = self._blocks[s]
            block = blocks[way]
            self._touch += 1
            block.last_touch = self._touch
            if info.is_write:
                block.dirty = True
            if not block.reused and not info.is_writeback:
                block.reused = True
            if block.is_prefetch and is_demand:
                block.is_prefetch = False
                prefetch_first_hit = True
                if mgmt is not None:
                    mgmt.on_prefetched_block_hit()
            lru = self._lru_recency
            if lru is not None:  # inlined LRUPolicy.on_hit
                order = lru[s]
                order.pop(way, None)
                order[way] = None
            else:
                self.policy.on_hit(info, blocks, way)
        return hit, prefetch_first_hit

    # --- fill / bypass ------------------------------------------------------

    def decide_bypass(self, info: AccessInfo) -> bool:
        """Ask the policy whether this missing block should bypass.

        Writebacks are always allocated (they carry dirty data that
        must land somewhere on its way to memory).
        """
        if info.is_writeback:
            return False
        info.set_index = info.block_addr & self._set_mask
        bypass = self.policy.should_bypass(info)
        if bypass and self.mgmt is not None:
            self.mgmt.on_bypass(info.block_addr)
        return bypass

    def fill(self, info: AccessInfo, dirty: bool = False) -> Optional[Tuple[int, bool]]:
        """Install the block; return ``(evicted_block_addr, was_dirty)``
        if a valid block was displaced, else None."""
        block_addr = info.block_addr
        s = block_addr & self._set_mask
        info.set_index = s
        tag = block_addr >> self._set_shift
        tag_map = self._tag_maps[s]
        way = tag_map.get(tag)
        if way is not None:
            # Duplicate fill (e.g. prefetch raced a demand): refresh dirtiness.
            if dirty:
                self._blocks[s][way].dirty = True
            return None
        blocks = self._blocks[s]
        victim_info: Optional[Tuple[int, bool]] = None
        mgmt = self.mgmt
        lru = self._lru_recency
        if len(tag_map) < self.num_ways:
            way = -1
            for w, b in enumerate(blocks):
                if not b.valid:
                    way = w
                    break
            if way < 0:  # pragma: no cover - tag map out of sync with blocks
                raise RuntimeError(f"{self.name}: no invalid way in underfull set {s}")
        else:
            if lru is not None:
                # Inlined LRUPolicy.find_victim; LRU's on_eviction is the
                # base no-op so the dispatch is skipped entirely.
                order = lru[s]
                way = (
                    next(iter(order))
                    if len(order) == self.num_ways
                    else oldest_way(blocks)
                )
                victim = blocks[way]
            else:
                way = self.policy.find_victim(info, blocks)
                if not 0 <= way < self.num_ways:
                    raise RuntimeError(
                        f"{self.policy.name}: victim way {way} out of range"
                    )
                victim = blocks[way]
                self.policy.on_eviction(info, blocks, way)
            evicted_addr = (victim.tag << self._set_shift) | s
            victim_info = (evicted_addr, victim.dirty)
            self.stats.evictions += 1
            if mgmt is not None:
                # Inlined LLCManagementStats.on_eviction (hot path;
                # keep in sync with stats.py).
                if victim.reused:
                    mgmt.evicted_used += 1
                else:
                    mgmt.evicted_unused += 1
                    if victim.is_prefetch:
                        mgmt.evicted_unused_prefetch += 1
                    pending = mgmt._pending_unused
                    pending[evicted_addr] = pending.get(evicted_addr, 0) + 1
            del tag_map[victim.tag]
        touch = self._touch + 1
        self._touch = touch
        # Inlined CacheBlock.reset_for_fill (hot path: one call frame saved
        # per fill; keep the two in sync).
        block = blocks[way]
        block.tag = tag
        block.valid = True
        block.dirty = dirty or info.is_write
        block.pc = info.pc
        block.core = info.core
        block.is_prefetch = info.is_prefetch
        block.epv = 0
        block.last_touch = touch
        block.fill_touch = touch
        block.reused = False
        tag_map[tag] = way
        if mgmt is not None:
            # Inlined LLCManagementStats.on_fill.
            mgmt.fills += 1
            mgmt.incoming_blocks += 1
            if info.is_prefetch:
                mgmt.prefetch_fills += 1
        if lru is not None:  # inlined LRUPolicy.on_fill
            order = lru[s]
            order.pop(way, None)
            order[way] = None
        else:
            self.policy.on_fill(info, blocks, way)
        return victim_info

    def fill_lru(self, info: AccessInfo, dirty: bool = False) -> Optional[int]:
        """Specialized :meth:`fill` for the private-level configuration
        (exact true LRU, no mgmt tracking): behaviour-identical, but
        returns only what the hierarchy acts on — the evicted block
        address when the displaced block was dirty, else ``None``.

        Callers must guarantee ``_lru_recency is not None`` and
        ``mgmt is None`` (checked once at hierarchy construction).
        Unlike :meth:`fill` this skips the ``info.set_index`` scratch
        write — with no policy hooks dispatched, nothing reads it.
        Keep in sync with :meth:`fill`.
        """
        block_addr = info.block_addr
        s = block_addr & self._set_mask
        tag = block_addr >> self._set_shift
        tag_map = self._tag_maps[s]
        way = tag_map.get(tag)
        blocks = self._blocks[s]
        if way is not None:
            if dirty:
                blocks[way].dirty = True
            return None
        dirty_victim: Optional[int] = None
        if len(tag_map) < self.num_ways:
            way = -1
            for w, b in enumerate(blocks):
                if not b.valid:
                    way = w
                    break
            if way < 0:  # pragma: no cover - tag map out of sync with blocks
                raise RuntimeError(f"{self.name}: no invalid way in underfull set {s}")
        else:
            order = self._lru_recency[s]
            way = (
                next(iter(order))
                if len(order) == self.num_ways
                else oldest_way(blocks)
            )
            victim = blocks[way]
            if victim.dirty:
                dirty_victim = (victim.tag << self._set_shift) | s
            self.stats.evictions += 1
            del tag_map[victim.tag]
        touch = self._touch + 1
        self._touch = touch
        block = blocks[way]
        block.tag = tag
        block.valid = True
        block.dirty = dirty or info.is_write
        block.pc = info.pc
        block.core = info.core
        block.is_prefetch = info.is_prefetch
        block.epv = 0
        block.last_touch = touch
        block.fill_touch = touch
        block.reused = False
        tag_map[tag] = way
        order = self._lru_recency[s]
        order.pop(way, None)
        order[way] = None
        return dirty_victim

    def invalidate(self, block_addr: int) -> bool:
        """Drop a block if present (used by tests and coherence stubs)."""
        s = block_addr & self._set_mask
        tag = block_addr >> self._set_shift
        way = self._tag_maps[s].pop(tag, None)
        if way is None:
            return False
        self._blocks[s][way].valid = False
        return True

    # --- introspection --------------------------------------------------------

    def blocks_in_set(self, set_idx: int) -> List[CacheBlock]:
        return self._blocks[set_idx]

    def occupancy(self) -> int:
        return sum(len(m) for m in self._tag_maps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cache({self.name}, {self.size_bytes >> 10}KB, "
            f"{self.num_sets}x{self.num_ways}, policy={self.policy.name})"
        )
