"""Vectorized sweep helpers for the numpy backend.

Everything here is a *pure* re-expression of an existing scalar
computation over a whole batch at once:

* :func:`batch_mix_hash` — :func:`repro.sim.address.mix_hash`
  (splitmix64 finalizer) over a ``uint64`` array; u64 multiplication
  wraps exactly like the scalar ``& _MASK64`` discipline, so every
  lane equals the scalar hash of the same value;
* :func:`decode_chunk` — the per-record derivations of the run loop's
  inner decode (``gap + 1``, the per-record issue increment
  ``gap1 / width``, the 64-byte block address) computed for a whole
  trace chunk in columnar sweeps.  The float division is the same
  single IEEE operation per record the scalar loop performs, so the
  derived columns are bit-identical to the scalar walk.

Callers must only use these on the numpy backend; the scalar path
never imports this module (numpy stays an opt-in dependency of the
hot loop).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .address import BLOCK_BITS

_U64 = np.uint64

#: columnar chunk: (pcs, addresses, blocks, gap1s, issue_incs, writes)
ChunkColumns = Tuple[List[int], List[int], List[int], List[int], List[float], List[bool]]


def batch_mix_hash(values: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer over a uint64 array (matches ``mix_hash``).

    Valid for inputs already reduced to 64 bits — exactly the domain
    the scalar helper sees from block addresses, keys, and feature
    values XOR'd with the sub-table constants.
    """
    v = values.astype(_U64, copy=True)
    v ^= v >> _U64(30)
    v *= _U64(0xBF58476D1CE4E5B9)
    v ^= v >> _U64(27)
    v *= _U64(0x94D049BB133111EB)
    v ^= v >> _U64(31)
    return v


def decode_chunk(
    chunk: Sequence, width: float
) -> Optional[ChunkColumns]:
    """Columnar decode of one trace chunk for the batched run loop.

    Returns plain Python lists (the inner loop indexes them like the
    record objects it replaces).  Falls back to ``None`` when a column
    does not fit in int64 (pathological address offsets) — the caller
    then walks the records scalar-style.
    """
    try:
        gaps = np.array([r.gap for r in chunk], dtype=np.int64)
        addresses = np.array([r.address for r in chunk], dtype=np.int64)
    except OverflowError:
        return None
    gap1 = gaps + 1
    pcs = [r.pc for r in chunk]
    writes = [r.is_write for r in chunk]
    return (
        pcs,
        addresses.tolist(),
        (addresses >> BLOCK_BITS).tolist(),
        gap1.tolist(),
        (gap1.astype(np.float64) / width).tolist(),
        writes,
    )
