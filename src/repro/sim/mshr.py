"""Miss Status Holding Registers (MSHR).

A non-blocking cache tracks its in-flight misses in an MSHR file.  The
trace-driven timing model does not replay events, so the MSHR's job
here is twofold:

* **merging** — a second miss to a block that is already in flight does
  not issue a second fill; it completes when the first one does; and
* **occupancy back-pressure** — when all entries are busy, a new miss
  must wait until the oldest in-flight miss retires, which serializes
  latency exactly the way a full MSHR file stalls a real cache.

Entries are keyed by block address and retire at their fill-completion
cycle.  Because accesses arrive in non-decreasing cycle order per
cache, expiry can be handled with a simple min-heap.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple


class MSHRFile:
    """Fixed-capacity in-flight miss tracker for one cache."""

    __slots__ = ("num_entries", "_inflight", "_heap", "merges", "stalls")

    def __init__(self, num_entries: int) -> None:
        if num_entries <= 0:
            raise ValueError("MSHR needs at least one entry")
        self.num_entries = num_entries
        self._inflight: Dict[int, float] = {}  # block addr -> completion cycle
        self._heap: List[Tuple[float, int]] = []  # (completion, block addr)
        self.merges = 0
        self.stalls = 0

    def _expire(self, now: float) -> None:
        while self._heap and self._heap[0][0] <= now:
            done, blk = heapq.heappop(self._heap)
            # Lazy deletion: only drop if the map agrees (no re-insert raced).
            if self._inflight.get(blk) == done:
                del self._inflight[blk]

    def lookup(self, block_addr: int, now: float) -> float | None:
        """Return the completion cycle of an in-flight miss, if any."""
        # Inlined expiry (hot path): most calls find an empty or
        # not-yet-due heap and fall straight through to the dict probe.
        heap = self._heap
        if heap and heap[0][0] <= now:
            inflight = self._inflight
            heappop = heapq.heappop
            while heap and heap[0][0] <= now:
                done, blk = heappop(heap)
                if inflight.get(blk) == done:
                    del inflight[blk]
        return self._inflight.get(block_addr)

    def allocate(self, block_addr: int, now: float, completion: float) -> float:
        """Allocate an entry for a new miss issued at ``now``.

        Returns the (possibly delayed) completion cycle.  If the file
        is full the miss is delayed until the oldest entry retires, and
        the returned completion reflects that extra queueing delay.
        """
        heap = self._heap
        inflight = self._inflight
        if heap and heap[0][0] <= now:  # inlined expiry, as in lookup()
            heappop = heapq.heappop
            while heap and heap[0][0] <= now:
                done, blk = heappop(heap)
                if inflight.get(blk) == done:
                    del inflight[blk]
        existing = inflight.get(block_addr)
        if existing is not None:
            self.merges += 1
            return existing
        delay = 0.0
        if len(inflight) >= self.num_entries:
            # Stall until the soonest-retiring entry frees a slot.
            self.stalls += 1
            soonest = heap[0][0]
            delay = max(0.0, soonest - now)
            while heap and heap[0][0] <= soonest:  # inlined _expire(soonest)
                done, blk = heapq.heappop(heap)
                if inflight.get(blk) == done:
                    del inflight[blk]
            # If lazy-deleted entries masked real occupancy, retire greedily.
            while len(inflight) >= self.num_entries and heap:
                done, blk = heapq.heappop(heap)
                if inflight.get(blk) == done:
                    del inflight[blk]
                    delay = max(delay, done - now)
        completion += delay
        inflight[block_addr] = completion
        heapq.heappush(heap, (completion, block_addr))
        return completion

    def remove(self, block_addr: int) -> bool:
        """Deallocate an entry early (its data became resident below via
        another path); the heap copy is lazily discarded."""
        return self._inflight.pop(block_addr, None) is not None

    @property
    def occupancy(self) -> int:
        return len(self._inflight)

    def reset(self) -> None:
        self._inflight.clear()
        self._heap.clear()
        self.merges = 0
        self.stalls = 0
