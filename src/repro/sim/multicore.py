"""Multi-core system assembly and the trace-driven run loop.

Builds the simulated machine of Table V — private L1D/L2 per core, a
shared LLC sized at 3 MB/core, banked DDR4 memory — and executes one
trace per core, interleaving cores in timestamp order so that shared
LLC and DRAM contention happen in (approximate) global time order.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..traces.trace import Trace
from .cache import Cache
from .camat import CAMATMonitor
from .core_model import CoreConfig
from .dram import DRAMConfig, DRAMModel
from .hierarchy import CoreHierarchy
from .prefetch.base import NullPrefetcher, Prefetcher
from .prefetch.ipcp import IPCPPrefetcher
from .prefetch.next_line import NextLinePrefetcher
from .prefetch.streamer import StreamerPrefetcher
from .prefetch.stride import StridePrefetcher
from .replacement.base import ReplacementPolicy
from .replacement.lru import LRUPolicy
from .stats import CacheStats, LLCManagementStats


@dataclass
class SystemConfig:
    """Machine parameters; defaults follow Table V.

    The cache sizes are scaled by ``scale`` so unit tests and quick
    examples can run a geometrically similar but smaller machine
    (every level shrinks together, preserving the capacity ratios the
    policies react to).
    """

    num_cores: int = 4
    scale: float = 1.0
    l1_size: int = 48 * 1024
    l1_ways: int = 12
    l1_latency: float = 5.0
    l1_mshr: int = 16
    l2_size: int = 1280 * 1024
    l2_ways: int = 20
    l2_latency: float = 10.0
    l2_mshr: int = 48
    llc_size_per_core: int = 3 * 1024 * 1024
    llc_ways: int = 12
    llc_latency: float = 40.0
    llc_mshr_per_core: int = 64
    epoch_cycles: float = 100_000.0
    core: CoreConfig = field(default_factory=CoreConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    #: Q-table / run-loop execution backend ("scalar", "numpy", or None
    #: to defer to the ``REPRO_BACKEND`` env var).  The numpy backend
    #: pre-decodes each trace chunk in columnar sweeps and vectorizes
    #: the policy's Q-table; results are bit-identical either way
    #: (DESIGN.md §9), so this is purely a throughput knob.
    backend: Optional[str] = None

    def _pow2_size(self, nominal: int, ways: int) -> int:
        """Largest size <= nominal*scale whose set count is a power of two."""
        from .address import BLOCK_SIZE

        target_sets = max(1, int(nominal * self.scale) // (BLOCK_SIZE * ways))
        sets = 1 << (target_sets.bit_length() - 1)
        return sets * BLOCK_SIZE * ways

    @property
    def l1_effective_size(self) -> int:
        return self._pow2_size(self.l1_size, self.l1_ways)

    @property
    def l2_effective_size(self) -> int:
        return self._pow2_size(self.l2_size, self.l2_ways)

    @property
    def llc_effective_size(self) -> int:
        return self._pow2_size(self.llc_size_per_core * self.num_cores, self.llc_ways)


# --- prefetcher configurations (Secs. VI, VII-E) -----------------------------

PrefetcherFactory = Callable[[], Prefetcher]


PREFETCH_CONFIGS: Dict[str, tuple[PrefetcherFactory, PrefetcherFactory]] = {
    # default: next-line at L1, stride at L2 (CRC-2 methodology)
    "nl_stride": (lambda: NextLinePrefetcher(degree=1), lambda: StridePrefetcher(degree=2)),
    # Fig. 3b / Fig. 14: stride at L1, streamer at L2 (Intel-like)
    "stride_streamer": (
        lambda: StridePrefetcher(degree=1),
        lambda: StreamerPrefetcher(degree=4),
    ),
    # Fig. 14: IPCP (DPC-3 winner), multi-level
    "ipcp": (lambda: IPCPPrefetcher(), lambda: IPCPPrefetcher()),
    # no prefetching
    "none": (lambda: NullPrefetcher(), lambda: NullPrefetcher()),
}


@dataclass
class CoreResult:
    """Post-warmup performance of one core."""

    instructions: int = 0
    cycles: float = 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


@dataclass
class SystemResult:
    """Everything an experiment needs from one simulation run."""

    policy_name: str
    cores: List[CoreResult]
    llc_stats: CacheStats
    llc_mgmt: LLCManagementStats
    camat_summary: dict
    prefetcher_accuracy: float
    extra: dict = field(default_factory=dict)

    @property
    def ipcs(self) -> List[float]:
        return [c.ipc for c in self.cores]


class MultiCoreSystem:
    """A complete simulated machine running one policy."""

    def __init__(
        self,
        config: SystemConfig,
        llc_policy: Optional[ReplacementPolicy] = None,
        prefetch_config: str = "nl_stride",
        obs=None,
    ) -> None:
        self.config = config
        self.policy = llc_policy or LRUPolicy()
        #: optional repro.obs.ObsSession; None (the default) leaves the
        #: run loop and epoch machinery exactly as instrumented-free code
        self.obs = obs
        if prefetch_config not in PREFETCH_CONFIGS:
            raise KeyError(
                f"unknown prefetch config {prefetch_config!r}; "
                f"choose from {sorted(PREFETCH_CONFIGS)}"
            )
        self.prefetch_config = prefetch_config
        l1_factory, l2_factory = PREFETCH_CONFIGS[prefetch_config]

        self.dram = DRAMModel(config.dram)
        self.camat = CAMATMonitor(
            num_cores=config.num_cores,
            t_mem=config.dram.average_latency,
            epoch_cycles=config.epoch_cycles,
        )
        self.llc = Cache(
            name="LLC",
            size_bytes=config.llc_effective_size,
            ways=config.llc_ways,
            latency=config.llc_latency,
            mshr_entries=config.llc_mshr_per_core * config.num_cores,
            policy=self.policy,
            track_mgmt_stats=True,
        )
        self.camat.add_epoch_listener(self.policy.observe_epoch)
        # CHROME's agent needs the live obstruction flags at reward time.
        if hasattr(self.policy, "bind_camat"):
            self.policy.bind_camat(self.camat)
        if obs is not None:
            self._wire_obs(obs)

        self.cores: List[CoreHierarchy] = []
        for core_id in range(config.num_cores):
            l1 = Cache(
                name=f"L1D{core_id}",
                size_bytes=config.l1_effective_size,
                ways=config.l1_ways,
                latency=config.l1_latency,
                mshr_entries=config.l1_mshr,
            )
            l2 = Cache(
                name=f"L2_{core_id}",
                size_bytes=config.l2_effective_size,
                ways=config.l2_ways,
                latency=config.l2_latency,
                mshr_entries=config.l2_mshr,
            )
            self.cores.append(
                CoreHierarchy(
                    core_id=core_id,
                    l1=l1,
                    l2=l2,
                    llc=self.llc,
                    dram=self.dram,
                    camat=self.camat,
                    l1_prefetcher=l1_factory(),
                    l2_prefetcher=l2_factory(),
                    core_config=config.core,
                )
            )

    # --- observability -----------------------------------------------------------

    def _wire_obs(self, obs) -> None:
        """Register the telemetry taps (only ever called with obs on).

        Everything rides on the C-AMAT epoch-observer callback — the
        hot loop itself is untouched, so a disabled-obs run executes
        byte-identical code (the zero-overhead-when-off contract).
        Timestamps on the trace axis are virtual: 1 trace microsecond
        per 1000 simulated cycles.
        """
        timeline = obs.timeline
        tracer = obs.tracer
        camat = self.camat
        dram = self.dram
        llc = self.llc
        policy = self.policy
        reward_mix = getattr(policy, "reward_mix", None)
        qtable = getattr(policy, "qtable", None)
        epoch_cycles = camat.epoch_cycles
        tracer.name_thread(0, "epochs")
        for i in range(self.config.num_cores):
            tracer.name_thread(i + 1, f"core{i}")

        def observe(index, end_cycle, camats, flags):
            row = {
                "epoch": index,
                "end_cycle": end_cycle,
                "camat": camats,
                "obstructed": flags,
                "t_mem": camat.t_mem,
                "dram_row_hit_rate": dram.row_hit_rate,
                "llc_demand_hits": llc.stats.demand_hits,
                "llc_demand_misses": llc.stats.demand_misses,
            }
            if reward_mix is not None:
                row["reward_mix"] = reward_mix()
            if qtable is not None:
                row["q_lookups"] = qtable.lookups
                row["q_updates"] = qtable.updates
            timeline.record("sim_epoch", **row)
            ts = end_cycle / 1000.0
            dur = epoch_cycles / 1000.0
            obstructed_cores = sum(flags)
            tracer.complete(
                f"epoch {index}",
                ts - dur,
                dur,
                tid=0,
                args={"obstructed_cores": obstructed_cores},
            )
            tracer.counter(
                "camat", ts, {f"core{i}": c for i, c in enumerate(camats)}
            )
            for i, flag in enumerate(flags):
                if flag:
                    tracer.instant("llc_obstructed", ts, tid=i + 1)

        camat.add_epoch_observer(observe)

    def _record_obs_summary(self, obs, result: "SystemResult") -> None:
        """End-of-run summary row + registry gauges (obs-enabled only)."""
        camat = self.camat
        summary = {
            "policy": result.policy_name,
            "epochs_closed": camat.epochs_closed,
            "ipcs": result.ipcs,
            "camat_summary": result.camat_summary,
            "dram_row_hit_rate": self.dram.row_hit_rate,
            "prefetcher_accuracy": result.prefetcher_accuracy,
            "levels": [h.obs_level_stats() for h in self.cores],
        }
        telemetry = result.extra.get("policy_telemetry")
        if telemetry is not None:
            summary["policy_telemetry"] = telemetry
        qtable = getattr(self.policy, "qtable", None)
        if qtable is not None:
            summary["q_health"] = qtable.health_stats()
        obs.timeline.record("sim_summary", **summary)
        registry = obs.registry
        registry.counter("sim.epochs").inc(camat.epochs_closed)
        registry.counter("sim.llc_demand_hits").inc(self.llc.stats.demand_hits)
        registry.counter("sim.llc_demand_misses").inc(self.llc.stats.demand_misses)
        registry.gauge("sim.dram_row_hit_rate").set(self.dram.row_hit_rate)
        for i, fraction in enumerate(
            result.camat_summary.get("per_core_obstructed_epoch_fraction", [])
        ):
            registry.gauge(f"sim.core{i}.obstructed_epoch_fraction").set(fraction)
        if telemetry is not None:
            registry.set_gauges("sim.policy", telemetry)
        if qtable is not None:
            registry.set_gauges("sim.qtable", summary["q_health"])

    # --- running -----------------------------------------------------------------

    def run(
        self,
        traces: Sequence[Trace],
        max_accesses_per_core: Optional[int] = None,
        warmup_accesses: int = 0,
    ) -> SystemResult:
        """Execute one trace per core to completion (or the access cap).

        ``warmup_accesses`` accesses per core run before statistics are
        reset (learning state persists, mirroring the paper's 50M-warmup
        + 200M-measured methodology at reduced scale).

        With ``backend="numpy"`` (or ``REPRO_BACKEND=numpy``) the
        per-record trace decode runs as columnar chunk sweeps instead —
        see :meth:`_run_batched`; the walk itself and every statistic
        stay bit-identical.
        """
        from ..core.backend import resolve_backend

        if resolve_backend(self.config.backend) == "numpy":
            return self._run_batched(traces, max_accesses_per_core, warmup_accesses)
        num_cores = self.config.num_cores
        if len(traces) != num_cores:
            raise ValueError(f"need {num_cores} traces, got {len(traces)}")
        # Chunked delivery: each core draws records from pre-materialized
        # lists (Trace.iter_chunks), so the per-record cost is a list
        # index, not a generator resumption.
        chunk_iters = [t.iter_chunks() for t in traces]
        buffers: List[Sequence] = [()] * num_cores
        positions = [0] * num_cores
        executed = [0] * num_cores
        warm_snapshots: List[Optional[tuple]] = [None] * num_cores
        warmed = warmup_accesses == 0
        if warmed:
            warm_snapshots = [c.core.snapshot() for c in self.cores]

        # Heap-based scheduler: the run loop repeatedly advances the core
        # with the smallest progress clock.  Only the just-executed core's
        # clock changes, so a (cycle, core_index) heap keeps selection at
        # O(log N) per access instead of an O(N) min() scan; the index
        # tie-break reproduces min()'s lowest-index-first choice exactly.
        cores = self.cores
        camat = self.camat
        maybe_close_epoch = camat.maybe_close_epoch
        # Epoch boundary cached locally: maybe_close_epoch's early exit
        # is exactly `now < epoch_end`, so the call is skipped inline.
        epoch_end = camat.epoch_end
        heappush = heapq.heappush
        heappop = heapq.heappop
        heap: List[Tuple[float, int]] = [
            (cores[i].core.current_cycle, i) for i in range(num_cores)
        ]
        heapq.heapify(heap)
        # Access cap as a plain comparison (inf = uncapped).
        cap = float("inf") if max_accesses_per_core is None else max_accesses_per_core

        while heap:
            _, idx = heappop(heap)
            hierarchy = cores[idx]
            buffer = buffers[idx]
            buffer_len = len(buffer)
            position = positions[idx]
            count = executed[idx]
            # Run-ahead inner loop: after executing, if this core's clock
            # is still strictly the earliest ((cycle, idx) < heap[0] —
            # exactly the tuple the old push-then-pop would return), keep
            # executing it without touching the heap.  With one core the
            # heap is empty and the whole run is heap-free.
            #
            # CoreHierarchy.execute is inlined here (advance +
            # complete_load around the demand walk; keep in sync with
            # hierarchy.py/core_model.py) with the core's instruction and
            # issue clocks hoisted into locals — they are written back
            # before every snapshot() and when the segment ends.
            core = hierarchy.core
            core_cfg = core.config
            width = core_cfg.width
            rob_size = core_cfg.rob_size
            hit_hidden = core_cfg.l1_hit_hidden
            out = core._outstanding
            instructions = core.instructions
            issue = core.issue_cycle
            demand_access = hierarchy._demand_access
            while True:
                if position >= buffer_len:
                    buffer = next(chunk_iters[idx], None)
                    while buffer is not None and not buffer:
                        buffer = next(chunk_iters[idx], None)
                    if buffer is not None:
                        buffers[idx] = buffer
                        buffer_len = len(buffer)
                        position = 0
                if buffer is None or count >= cap:
                    # Core retires: drop it from the heap (no re-push).
                    core.instructions = instructions
                    core.issue_cycle = issue
                    if not warmed and warm_snapshots[idx] is None:
                        # Trace ended before its warmup budget: snapshot
                        # here so the remaining cores can still close the
                        # warmup phase.
                        warm_snapshots[idx] = core.snapshot()
                        if all(s is not None for s in warm_snapshots):
                            self._reset_measured_stats()
                            warmed = True
                    break
                record = buffer[position]
                position += 1
                gap1 = record.gap + 1
                instructions += gap1
                issue += gap1 / width
                if out:
                    # ROB back-pressure (see CoreTimingModel.advance).
                    horizon = instructions - rob_size
                    while out and out[0][0] <= horizon:
                        _, ready = out.popleft()
                        if ready > issue:
                            core.stall_cycles += ready - issue
                            issue = ready
                is_write = record.is_write
                latency = demand_access(record.pc, record.address, is_write, issue)
                if not is_write and latency > hit_hidden:
                    ready = issue + latency
                    out.append((instructions, ready))
                    if ready > core.last_data_ready:
                        core.last_data_ready = ready
                count += 1
                if issue >= epoch_end:
                    maybe_close_epoch(issue)
                    epoch_end = camat.epoch_end
                if not warmed and count == warmup_accesses:
                    core.instructions = instructions
                    core.issue_cycle = issue
                    warm_snapshots[idx] = core.snapshot()
                    if all(s is not None for s in warm_snapshots):
                        self._reset_measured_stats()
                        warmed = True
                if heap and (issue, idx) > heap[0]:
                    core.instructions = instructions
                    core.issue_cycle = issue
                    heappush(heap, (issue, idx))
                    break
            positions[idx] = position
            executed[idx] = count

        return self._finish_run(warm_snapshots)

    def _run_batched(
        self,
        traces: Sequence[Trace],
        max_accesses_per_core: Optional[int] = None,
        warmup_accesses: int = 0,
    ) -> SystemResult:
        """The run loop with columnar chunk decode (numpy backend).

        Identical scheduling, timing, and policy semantics to
        :meth:`run` — the only change is *where* the per-record
        derivations happen: each trace chunk's gap/issue-increment/block
        columns are computed in one vectorized sweep up front
        (:func:`~repro.sim.batch.decode_chunk`), because they depend
        only on the immutable trace record.  Everything stateful —
        cache lookups, RL decisions, prefetcher training, epoch
        machinery — still walks records in exactly the scalar order (a
        record's outcome depends on every earlier record's mutations,
        so those never vectorize).  Chunks whose columns overflow int64
        fall back to a per-record scalar decode of the same columns.
        """
        from .batch import decode_chunk

        num_cores = self.config.num_cores
        if len(traces) != num_cores:
            raise ValueError(f"need {num_cores} traces, got {len(traces)}")
        chunk_iters = [t.iter_chunks() for t in traces]
        # Per-core decoded columns: (pcs, addresses, blocks, gap1s,
        # issue_incs, writes); empty until the first chunk loads.
        columns: List[Optional[tuple]] = [None] * num_cores
        buffer_lens = [0] * num_cores
        positions = [0] * num_cores
        executed = [0] * num_cores
        warm_snapshots: List[Optional[tuple]] = [None] * num_cores
        warmed = warmup_accesses == 0
        if warmed:
            warm_snapshots = [c.core.snapshot() for c in self.cores]

        cores = self.cores
        camat = self.camat
        maybe_close_epoch = camat.maybe_close_epoch
        epoch_end = camat.epoch_end
        heappush = heapq.heappush
        heappop = heapq.heappop
        heap: List[Tuple[float, int]] = [
            (cores[i].core.current_cycle, i) for i in range(num_cores)
        ]
        heapq.heapify(heap)
        cap = float("inf") if max_accesses_per_core is None else max_accesses_per_core

        while heap:
            _, idx = heappop(heap)
            hierarchy = cores[idx]
            cols = columns[idx]
            buffer_len = buffer_lens[idx]
            position = positions[idx]
            count = executed[idx]
            core = hierarchy.core
            core_cfg = core.config
            width = core_cfg.width
            rob_size = core_cfg.rob_size
            hit_hidden = core_cfg.l1_hit_hidden
            out = core._outstanding
            instructions = core.instructions
            issue = core.issue_cycle
            demand_access = hierarchy._demand_access
            while True:
                if position >= buffer_len:
                    chunk = next(chunk_iters[idx], None)
                    while chunk is not None and not chunk:
                        chunk = next(chunk_iters[idx], None)
                    if chunk is not None:
                        cols = decode_chunk(chunk, width)
                        if cols is None:
                            # Scalar fallback decode: same columns, one
                            # record at a time (values exceeded int64).
                            cols = (
                                [r.pc for r in chunk],
                                [r.address for r in chunk],
                                [r.address >> 6 for r in chunk],
                                [r.gap + 1 for r in chunk],
                                [(r.gap + 1) / width for r in chunk],
                                [r.is_write for r in chunk],
                            )
                        columns[idx] = cols
                        buffer_len = buffer_lens[idx] = len(cols[0])
                        position = 0
                    else:
                        cols = None
                if cols is None or count >= cap:
                    core.instructions = instructions
                    core.issue_cycle = issue
                    if not warmed and warm_snapshots[idx] is None:
                        warm_snapshots[idx] = core.snapshot()
                        if all(s is not None for s in warm_snapshots):
                            self._reset_measured_stats()
                            warmed = True
                    break
                pcs, addresses, blocks, gap1s, issue_incs, writes = cols
                gap1 = gap1s[position]
                instructions += gap1
                issue += issue_incs[position]
                if out:
                    horizon = instructions - rob_size
                    while out and out[0][0] <= horizon:
                        _, ready = out.popleft()
                        if ready > issue:
                            core.stall_cycles += ready - issue
                            issue = ready
                is_write = writes[position]
                latency = demand_access(
                    pcs[position],
                    addresses[position],
                    is_write,
                    issue,
                    blocks[position],
                )
                if not is_write and latency > hit_hidden:
                    ready = issue + latency
                    out.append((instructions, ready))
                    if ready > core.last_data_ready:
                        core.last_data_ready = ready
                position += 1
                count += 1
                if issue >= epoch_end:
                    maybe_close_epoch(issue)
                    epoch_end = camat.epoch_end
                if not warmed and count == warmup_accesses:
                    core.instructions = instructions
                    core.issue_cycle = issue
                    warm_snapshots[idx] = core.snapshot()
                    if all(s is not None for s in warm_snapshots):
                        self._reset_measured_stats()
                        warmed = True
                if heap and (issue, idx) > heap[0]:
                    core.instructions = instructions
                    core.issue_cycle = issue
                    heappush(heap, (issue, idx))
                    break
            positions[idx] = position
            executed[idx] = count

        return self._finish_run(warm_snapshots)

    def _finish_run(
        self, warm_snapshots: List[Optional[tuple]]
    ) -> SystemResult:
        """Assemble the :class:`SystemResult` (shared by both run loops)."""
        core_results = []
        for i, hierarchy in enumerate(self.cores):
            instr, cycles = hierarchy.core.snapshot()
            base = warm_snapshots[i] or (0, 0.0)
            core_results.append(
                CoreResult(
                    instructions=instr - base[0],
                    cycles=max(cycles - base[1], 1e-9),
                )
            )

        issued = sum(
            c.l1_prefetcher.stats.issued + c.l2_prefetcher.stats.issued
            for c in self.cores
        )
        useful = sum(
            c.l1_prefetcher.stats.useful + c.l2_prefetcher.stats.useful
            for c in self.cores
        )
        extra = {}
        if hasattr(self.policy, "telemetry"):
            extra["policy_telemetry"] = self.policy.telemetry()
        result = SystemResult(
            policy_name=self.policy.name,
            cores=core_results,
            llc_stats=self.llc.stats,
            llc_mgmt=self.llc.mgmt,
            camat_summary=self.camat.summary(),
            prefetcher_accuracy=(useful / issued if issued else 0.0),
            extra=extra,
        )
        if self.obs is not None:
            self._record_obs_summary(self.obs, result)
        return result

    def _reset_measured_stats(self) -> None:
        """Zero the measured-region statistics; learning state persists."""
        self.llc.stats = CacheStats(name="LLC")
        self.llc.mgmt = LLCManagementStats()
        # Prefetched lines resident at the measurement boundary can still
        # produce measured hits; count them as (already paid) fills so
        # EPHR stays a ratio of hits to inserted prefetches.
        resident_prefetches = sum(
            1
            for s in range(self.llc.num_sets)
            for block in self.llc.blocks_in_set(s)
            if block.valid and block.is_prefetch
        )
        self.llc.mgmt.prefetch_fills = resident_prefetches
        for hierarchy in self.cores:
            hierarchy.l1.stats = CacheStats(name=hierarchy.l1.name)
            hierarchy.l2.stats = CacheStats(name=hierarchy.l2.name)
