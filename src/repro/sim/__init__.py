"""Trace-driven multi-core memory-system simulator (the ChampSim
substitute — see DESIGN.md for the substitution argument)."""

from .access import DEMAND, PREFETCH, WRITEBACK, AccessInfo
from .address import (
    BLOCK_SIZE,
    PAGE_SIZE,
    block_address,
    fold_hash,
    mix_hash,
    page_number,
)
from .block import CacheBlock
from .cache import Cache
from .camat import CAMATMonitor, CoreCAMATState
from .core_model import CoreConfig, CoreTimingModel
from .dram import DRAMConfig, DRAMModel
from .hierarchy import CoreHierarchy
from .mshr import MSHRFile
from .multicore import (
    PREFETCH_CONFIGS,
    CoreResult,
    MultiCoreSystem,
    SystemConfig,
    SystemResult,
)
from .stats import CacheStats, LLCManagementStats, PrefetcherStats

__all__ = [
    "AccessInfo",
    "BLOCK_SIZE",
    "Cache",
    "CacheBlock",
    "CacheStats",
    "CAMATMonitor",
    "CoreCAMATState",
    "CoreConfig",
    "CoreHierarchy",
    "CoreResult",
    "CoreTimingModel",
    "DEMAND",
    "DRAMConfig",
    "DRAMModel",
    "LLCManagementStats",
    "MSHRFile",
    "MultiCoreSystem",
    "PAGE_SIZE",
    "PREFETCH",
    "PREFETCH_CONFIGS",
    "PrefetcherStats",
    "SystemConfig",
    "SystemResult",
    "WRITEBACK",
    "block_address",
    "fold_hash",
    "mix_hash",
    "page_number",
]
