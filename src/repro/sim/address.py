"""Address arithmetic helpers shared across the memory hierarchy.

All caches use 64-byte blocks and the paging substrate uses 4 KiB
pages, matching the paper's simulated configuration (Table V).
"""

from __future__ import annotations

BLOCK_SIZE = 64
BLOCK_BITS = 6  # log2(BLOCK_SIZE)
PAGE_SIZE = 4096
PAGE_BITS = 12  # log2(PAGE_SIZE)

_GOLDEN64 = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def block_address(address: int) -> int:
    """Return the block-aligned address containing ``address``."""
    return address >> BLOCK_BITS


def block_offset(address: int) -> int:
    """Return the byte offset of ``address`` within its cache block."""
    return address & (BLOCK_SIZE - 1)


def page_number(address: int) -> int:
    """Return the 4 KiB page number of ``address``."""
    return address >> PAGE_BITS


def page_offset(address: int) -> int:
    """Return the byte offset of ``address`` within its page."""
    return address & (PAGE_SIZE - 1)


def set_index(block_addr: int, num_sets: int) -> int:
    """Map a block address to a cache set (power-of-two set counts)."""
    return block_addr & (num_sets - 1)


def tag_of(block_addr: int, num_sets: int) -> int:
    """Return the tag of a block address for a cache with ``num_sets`` sets."""
    return block_addr // num_sets


def mix_hash(value: int) -> int:
    """Cheap deterministic 64-bit integer mixer (splitmix64 finalizer).

    Used everywhere a hardware structure would employ a folded-XOR
    index hash: Q-table sub-table indexing, PC signatures, predictor
    tables.  Deterministic across runs and Python processes.
    """
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & _MASK64
    return (value ^ (value >> 31)) & _MASK64


def fold_hash(value: int, bits: int) -> int:
    """Fold a mixed 64-bit hash of ``value`` down to ``bits`` bits."""
    return mix_hash(value * _GOLDEN64 & _MASK64) & ((1 << bits) - 1)


def is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0
