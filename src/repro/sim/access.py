"""Access descriptor passed to replacement policies and prefetchers."""

from __future__ import annotations

from dataclasses import dataclass

DEMAND = "demand"
PREFETCH = "prefetch"
WRITEBACK = "writeback"


@dataclass(slots=True)
class AccessInfo:
    """Everything a cache-management policy may observe about an access.

    This is the information CHROME's state vector is built from
    (Table I): the PC of the triggering instruction, the full byte
    address (hence page number / offset / deltas), the issuing core,
    and whether the access is a demand, a prefetch, or a writeback.
    ``hit`` is filled in by the cache before policy hooks run.
    """

    pc: int
    address: int
    block_addr: int
    core: int
    type: str = DEMAND  # DEMAND / PREFETCH / WRITEBACK
    is_write: bool = False
    cycle: float = 0.0
    hit: bool = False
    set_index: int = 0

    @property
    def is_prefetch(self) -> bool:
        return self.type == PREFETCH

    @property
    def is_demand(self) -> bool:
        return self.type == DEMAND

    @property
    def is_writeback(self) -> bool:
        return self.type == WRITEBACK
