"""Access descriptor passed to replacement policies and prefetchers."""

from __future__ import annotations

from dataclasses import dataclass

DEMAND = "demand"
PREFETCH = "prefetch"
WRITEBACK = "writeback"


@dataclass(slots=True)
class AccessInfo:
    """Everything a cache-management policy may observe about an access.

    This is the information CHROME's state vector is built from
    (Table I): the PC of the triggering instruction, the full byte
    address (hence page number / offset / deltas), the issuing core,
    and whether the access is a demand, a prefetch, or a writeback.
    ``hit`` is filled in by the cache before policy hooks run.

    ``is_demand`` / ``is_prefetch`` / ``is_writeback`` are plain
    attributes kept in sync with ``type`` (derived at construction and
    by the ``reset_*`` methods) so the hot path never re-compares the
    type string.  Policies may read either form.

    Lifecycle contract: the hierarchy *reuses* per-level scratch
    instances, so an ``AccessInfo`` is only valid for the duration of
    the policy hook it is passed to.  Policies must copy out any field
    they need later (they all do — states, signatures and block
    addresses are extracted immediately).
    """

    pc: int
    address: int
    block_addr: int
    core: int
    type: str = DEMAND  # DEMAND / PREFETCH / WRITEBACK
    is_write: bool = False
    cycle: float = 0.0
    hit: bool = False
    set_index: int = 0
    # derived from ``type``; overwritten in __post_init__ so they cannot
    # disagree with it no matter what a caller passes.
    is_demand: bool = True
    is_prefetch: bool = False
    is_writeback: bool = False

    def __post_init__(self) -> None:
        t = self.type
        self.is_demand = t == DEMAND
        self.is_prefetch = t == PREFETCH
        self.is_writeback = t == WRITEBACK

    # --- scratch-reuse API (hot path) ----------------------------------------
    #
    # One specialized reset per access type keeps the derived booleans
    # constant-folded instead of re-deriving them from the string.

    def reset_demand(
        self, pc: int, address: int, block_addr: int, is_write: bool, cycle: float
    ) -> "AccessInfo":
        self.pc = pc
        self.address = address
        self.block_addr = block_addr
        self.type = DEMAND
        self.is_write = is_write
        self.cycle = cycle
        self.hit = False
        self.set_index = 0
        self.is_demand = True
        self.is_prefetch = False
        self.is_writeback = False
        return self

    def reset_prefetch(
        self, pc: int, address: int, block_addr: int, cycle: float
    ) -> "AccessInfo":
        self.pc = pc
        self.address = address
        self.block_addr = block_addr
        self.type = PREFETCH
        self.is_write = False
        self.cycle = cycle
        self.hit = False
        self.set_index = 0
        self.is_demand = False
        self.is_prefetch = True
        self.is_writeback = False
        return self

    def reset_writeback(self, block_addr: int, cycle: float) -> "AccessInfo":
        self.pc = 0
        self.address = block_addr << 6
        self.block_addr = block_addr
        self.type = WRITEBACK
        self.is_write = True
        self.cycle = cycle
        self.hit = False
        self.set_index = 0
        self.is_demand = False
        self.is_prefetch = False
        self.is_writeback = True
        return self

    def reset_copy(self, other: "AccessInfo") -> "AccessInfo":
        """Become a same-typed copy of ``other`` (fills reuse the
        triggering access's identity)."""
        self.pc = other.pc
        self.address = other.address
        self.block_addr = other.block_addr
        self.type = other.type
        self.is_write = other.is_write
        self.cycle = other.cycle
        self.hit = False
        self.set_index = 0
        self.is_demand = other.is_demand
        self.is_prefetch = other.is_prefetch
        self.is_writeback = other.is_writeback
        return self
