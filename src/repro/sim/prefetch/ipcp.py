"""IPCP — Instruction Pointer Classifier-based Prefetching (simplified).

Pakalapati & Panda, ISCA 2020 (paper ref [38]): the DPC-3 winning
prefetcher, used in Fig. 14.  IPCP classifies each load IP into one of
several classes and dispatches a class-specific prefetcher:

* **CS (constant stride)** — the IP shows a stable stride; prefetch a
  deep stream along it;
* **GS (global stream)** — the IP participates in a dense region
  sweep; prefetch next lines aggressively with a region bitmap;
* **CPLX (complex)** — fall back to a short next-line burst when
  recent deltas look irregular but forward-leaning.

This is a reduced-state reimplementation that keeps the classifier
structure (per-IP table with stride confidence + global region
tracking) while dropping the paper's fine-grained throttling.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from ..address import PAGE_BITS
from .base import Prefetcher


class IPCPPrefetcher(Prefetcher):
    """Per-IP classification dispatching CS/GS/CPLX prefetch actions."""

    name = "ipcp"

    def __init__(self, table_size: int = 128) -> None:
        super().__init__(degree=4)
        self.table_size = table_size
        # ip -> [last_block, stride, stride_conf, class]
        self._ip_table: OrderedDict[int, List[int]] = OrderedDict()
        # page -> [bitmap of accessed blocks, last_block]
        self._regions: OrderedDict[int, List[int]] = OrderedDict()

    CS, GS, CPLX, NONE = "cs", "gs", "cplx", "none"

    def _classify_region(self, address: int) -> bool:
        """Track region density; True when the page looks like a stream."""
        page = address >> PAGE_BITS
        block_in_page = (address >> 6) & 63
        region = self._regions.get(page)
        if region is None:
            if len(self._regions) >= 64:
                self._regions.popitem(last=False)
            self._regions[page] = [1 << block_in_page, block_in_page]
            return False
        self._regions.move_to_end(page)
        region[0] |= 1 << block_in_page
        region[1] = block_in_page
        return bin(region[0]).count("1") >= 8  # dense page => global stream

    def on_access(self, pc: int, address: int, hit: bool, cycle: float) -> List[int]:
        block = address >> 6
        entry = self._ip_table.get(pc)
        if entry is None:
            if len(self._ip_table) >= self.table_size:
                self._ip_table.popitem(last=False)
            self._ip_table[pc] = [block, 0, 0, self.NONE]
            return []
        self._ip_table.move_to_end(pc)
        last_block, stride, conf, _cls = entry
        delta = block - last_block
        entry[0] = block
        dense = self._classify_region(address)
        out: List[int] = []
        if delta != 0:
            if delta == stride:
                conf = min(3, conf + 1)
            else:
                conf = max(0, conf - 1)
                if conf == 0:
                    stride = delta
            entry[1], entry[2] = stride, conf
        if conf >= 2 and stride != 0:
            entry[3] = self.CS
            for i in range(1, self.degree + 1):
                out.append((block + stride * i) << 6)
        elif dense:
            entry[3] = self.GS
            direction = 1 if delta >= 0 else -1
            for i in range(1, self.degree + 2):
                target = (block + direction * i) << 6
                if target >> PAGE_BITS == address >> PAGE_BITS:
                    out.append(target)
        elif delta > 0:
            entry[3] = self.CPLX
            out.append((block + 1) << 6)
        else:
            entry[3] = self.NONE
        if out:
            self.stats.issued += len(out)
        return out
