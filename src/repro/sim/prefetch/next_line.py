"""Next-line prefetcher (the paper's default L1 prefetcher, Sec. VI)."""

from __future__ import annotations

from typing import List

from ..address import BLOCK_SIZE
from .base import Prefetcher


class NextLinePrefetcher(Prefetcher):
    """On every access, prefetch the next ``degree`` sequential lines."""

    name = "next_line"

    __slots__ = ()

    def on_access(self, pc: int, address: int, hit: bool, cycle: float) -> List[int]:
        base = (address >> 6) << 6
        if self.degree == 1:  # common case, unrolled
            self.stats.issued += 1
            return [base + BLOCK_SIZE]
        out = [base + BLOCK_SIZE * (i + 1) for i in range(self.degree)]
        self.stats.issued += len(out)
        return out
