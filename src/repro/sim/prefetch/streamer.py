"""Page-based streamer prefetcher (Chen & Baer — paper ref [7]).

Used by the paper's alternative configuration (Fig. 3b / Fig. 14):
stride at L1 + streamer at L2, "a combination commonly employed in
commercial Intel processors".  Tracks per-4KB-page access direction;
once a stream is confirmed it runs ``degree`` lines ahead of demand.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from ..address import BLOCK_SIZE, PAGE_BITS
from .base import Prefetcher


class StreamerPrefetcher(Prefetcher):
    """Per-page unit-stride stream detector."""

    name = "streamer"

    def __init__(self, degree: int = 4, table_size: int = 64) -> None:
        super().__init__(degree)
        self.table_size = table_size
        # page -> [last_block_in_page, direction (-1/0/+1), confidence]
        self._table: OrderedDict[int, List[int]] = OrderedDict()

    def on_access(self, pc: int, address: int, hit: bool, cycle: float) -> List[int]:
        page = address >> PAGE_BITS
        block = address >> 6
        entry = self._table.get(page)
        out: List[int] = []
        if entry is None:
            if len(self._table) >= self.table_size:
                self._table.popitem(last=False)
            self._table[page] = [block, 0, 0]
            return out
        self._table.move_to_end(page)
        last_block, direction, confidence = entry
        delta = block - last_block
        if delta != 0:
            new_dir = 1 if delta > 0 else -1
            if new_dir == direction:
                confidence = min(3, confidence + 1)
            else:
                direction = new_dir
                confidence = 1
            entry[0] = block
            entry[1] = direction
            entry[2] = confidence
            if confidence >= 2:
                for i in range(1, self.degree + 1):
                    target = (block + direction * i) << 6
                    # Streamers do not cross page boundaries.
                    if target >> PAGE_BITS == page:
                        out.append(target)
                self.stats.issued += len(out)
        return out
