"""Hardware prefetchers (Secs. VI, VII-E)."""

from .base import NullPrefetcher, Prefetcher
from .ipcp import IPCPPrefetcher
from .next_line import NextLinePrefetcher
from .streamer import StreamerPrefetcher
from .stride import StridePrefetcher

__all__ = [
    "IPCPPrefetcher",
    "NextLinePrefetcher",
    "NullPrefetcher",
    "Prefetcher",
    "StreamerPrefetcher",
    "StridePrefetcher",
]
