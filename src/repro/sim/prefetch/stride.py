"""PC-indexed stride prefetcher (Fu & Patel — paper refs [14], [15]).

The paper's default L2 prefetcher.  A reference-prediction-style table
tracks, per load PC, the last address and last stride with a 2-bit
confidence counter; confident strides prefetch ``degree`` lines ahead.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from ..address import BLOCK_SIZE
from .base import Prefetcher


class StridePrefetcher(Prefetcher):
    """Classic per-PC stride detection with confidence."""

    name = "stride"

    def __init__(self, degree: int = 2, table_size: int = 256) -> None:
        super().__init__(degree)
        self.table_size = table_size
        # pc -> [last_addr, stride, confidence]
        self._table: OrderedDict[int, List[int]] = OrderedDict()

    def on_access(self, pc: int, address: int, hit: bool, cycle: float) -> List[int]:
        entry = self._table.get(pc)
        out: List[int] = []
        if entry is None:
            if len(self._table) >= self.table_size:
                self._table.popitem(last=False)
            self._table[pc] = [address, 0, 0]
            return out
        self._table.move_to_end(pc)
        last_addr, last_stride, confidence = entry
        stride = address - last_addr
        if stride != 0:
            if stride == last_stride:
                confidence = min(3, confidence + 1)
            else:
                confidence = max(0, confidence - 1)
                if confidence == 0:
                    last_stride = stride
            entry[0] = address
            entry[1] = last_stride if confidence else stride
            entry[2] = confidence
            if confidence >= 2 and entry[1] != 0:
                for i in range(1, self.degree + 1):
                    out.append(address + entry[1] * i)
                self.stats.issued += len(out)
        else:
            entry[0] = address
        return out
