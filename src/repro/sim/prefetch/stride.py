"""PC-indexed stride prefetcher (Fu & Patel — paper refs [14], [15]).

The paper's default L2 prefetcher.  A reference-prediction-style table
tracks, per load PC, the last address and last stride with a 2-bit
confidence counter; confident strides prefetch ``degree`` lines ahead.
"""

from __future__ import annotations

from typing import Dict, List

from .base import Prefetcher


class StridePrefetcher(Prefetcher):
    """Classic per-PC stride detection with confidence."""

    name = "stride"

    __slots__ = ("table_size", "_table")

    def __init__(self, degree: int = 2, table_size: int = 256) -> None:
        super().__init__(degree)
        self.table_size = table_size
        # pc -> [last_addr, stride, confidence]; plain dict in insertion
        # order (move-to-end is delete + re-insert, evict the first key).
        self._table: Dict[int, List[int]] = {}

    def on_access(self, pc: int, address: int, hit: bool, cycle: float) -> List[int]:
        table = self._table
        entry = table.get(pc)
        out: List[int] = []
        if entry is None:
            if len(table) >= self.table_size:
                del table[next(iter(table))]
            table[pc] = [address, 0, 0]
            return out
        del table[pc]
        table[pc] = entry
        last_addr, last_stride, confidence = entry
        stride = address - last_addr
        if stride != 0:
            if stride == last_stride:
                confidence = min(3, confidence + 1)
            else:
                confidence = max(0, confidence - 1)
                if confidence == 0:
                    last_stride = stride
            entry[0] = address
            winner = last_stride if confidence else stride
            entry[1] = winner
            entry[2] = confidence
            if confidence >= 2 and winner != 0:
                if self.degree == 2:  # common case, unrolled
                    out = [address + winner, address + winner + winner]
                    self.stats.issued += 2
                else:
                    for i in range(1, self.degree + 1):
                        out.append(address + winner * i)
                    self.stats.issued += len(out)
        else:
            entry[0] = address
        return out
