"""Hardware prefetcher interface.

Prefetchers sit at a cache level and observe that level's demand
accesses; each observation may return candidate prefetch addresses,
which the hierarchy then injects below (tagged as prefetch so the LLC
policies can tell them apart — central to the paper's holistic view).
"""

from __future__ import annotations

from typing import List

from ..stats import PrefetcherStats


class Prefetcher:
    """Base class: observes accesses, proposes prefetch addresses."""

    name = "none"

    __slots__ = ("degree", "stats")

    def __init__(self, degree: int = 1) -> None:
        self.degree = degree
        self.stats = PrefetcherStats()

    def on_access(self, pc: int, address: int, hit: bool, cycle: float) -> List[int]:
        """Observe a demand access; return byte addresses to prefetch."""
        return []

    def credit_useful(self) -> None:
        """A block this prefetcher fetched served a demand hit."""
        self.stats.useful += 1


class NullPrefetcher(Prefetcher):
    """No prefetching (the paper's 'without prefetching' configuration)."""

    name = "none"

    __slots__ = ()
