"""Per-core cache hierarchy walk: L1D → L2 → shared LLC → DRAM.

Composes the pieces of :mod:`repro.sim` into the memory system of
Table V: private L1D and L2 with fixed LRU, a shared LLC running the
policy under study, hardware prefetchers at L1 and L2, MSHR-modelled
miss overlap, dirty-writeback propagation, and C-AMAT accounting for
every access that reaches the LLC.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from ..traces.trace import MemoryAccess
from .access import DEMAND, PREFETCH, WRITEBACK, AccessInfo
from .cache import Cache
from .camat import CAMATMonitor
from .core_model import CoreConfig, CoreTimingModel
from .dram import DRAMModel
from .prefetch.base import NullPrefetcher, Prefetcher


class CoreHierarchy:
    """One core's private levels plus references to the shared system."""

    def __init__(
        self,
        core_id: int,
        l1: Cache,
        l2: Cache,
        llc: Cache,
        dram: DRAMModel,
        camat: CAMATMonitor,
        l1_prefetcher: Optional[Prefetcher] = None,
        l2_prefetcher: Optional[Prefetcher] = None,
        core_config: Optional[CoreConfig] = None,
    ) -> None:
        self.core_id = core_id
        self.l1 = l1
        self.l2 = l2
        self.llc = llc
        self.dram = dram
        self.camat = camat
        self.l1_prefetcher = l1_prefetcher or NullPrefetcher()
        self.l2_prefetcher = l2_prefetcher or NullPrefetcher()
        self.core = CoreTimingModel(core_config)
        # block address -> prefetcher that brought it in (usefulness credit)
        self._pf_owner: OrderedDict[int, Prefetcher] = OrderedDict()
        self._pf_owner_cap = 1 << 14
        # Prefetch filter: recently demanded or prefetched blocks are not
        # re-proposed (suppresses late and duplicate prefetches, which a
        # real prefetch filter drops before they waste bandwidth).
        self._pf_filter: OrderedDict[int, None] = OrderedDict()
        self._pf_filter_cap = 2048
        self.prefetch_drops = 0
        self.prefetch_filtered = 0

    #: a prefetch that would queue behind this much DRAM backlog is shed
    PREFETCH_BACKLOG_LIMIT = 1200.0

    # --- main entry point ---------------------------------------------------

    def execute(self, access: MemoryAccess) -> float:
        """Run one trace record through the core + memory system.

        Returns the total load-to-use latency charged (0 for stores and
        fully hidden L1 hits — informational only; timing effects are
        applied to the core model internally).
        """
        issue = self.core.advance(access.gap)
        latency = self._demand_access(access.pc, access.address, access.is_write, issue)
        if not access.is_write:
            self.core.complete_load(latency)
        return latency

    # --- demand path ------------------------------------------------------------

    def _demand_access(
        self, pc: int, address: int, is_write: bool, issue: float
    ) -> float:
        block = address >> 6
        self._filter_remember(block)
        info = AccessInfo(
            pc=pc,
            address=address,
            block_addr=block,
            core=self.core_id,
            type=DEMAND,
            is_write=is_write,
            cycle=issue,
        )
        l1_hit, pf_hit = self.l1.access(info)
        self._credit_prefetch(block, pf_hit)
        prefetches = self.l1_prefetcher.on_access(pc, address, l1_hit, issue)
        if l1_hit:
            latency = self.l1.latency
        else:
            # Merge into an in-flight miss only if the line is genuinely
            # still absent below (instant-fill means an "in-flight" line
            # may already sit in L2 after an L1 eviction).
            inflight = self.l1.mshr.lookup(block, issue)
            if inflight is not None and not self.l2.probe(block):
                self.l1.mshr.merges += 1
                latency = max(self.l1.latency, inflight - issue)
            else:
                if inflight is not None:
                    self.l1.mshr.remove(block)  # stale: line resident below
                below = self._l2_access(info, issue)
                completion = self.l1.mshr.allocate(
                    block, issue, issue + self.l1.latency + below
                )
                self._fill_l1(info)
                latency = completion - issue
        for target in prefetches:
            self._issue_prefetch("l1", self.l1_prefetcher, pc, target, issue)
        return latency

    def _l2_access(self, demand_info: AccessInfo, issue: float) -> float:
        """L2 leg of a demand miss; returns latency below L1 (L2 onward)."""
        info = AccessInfo(
            pc=demand_info.pc,
            address=demand_info.address,
            block_addr=demand_info.block_addr,
            core=self.core_id,
            type=DEMAND,
            is_write=False,  # the L1 absorbs the store; fills are clean
            cycle=issue,
        )
        l2_hit, pf_hit = self.l2.access(info)
        self._credit_prefetch(info.block_addr, pf_hit)
        prefetches = self.l2_prefetcher.on_access(info.pc, info.address, l2_hit, issue)
        if l2_hit:
            below = self.l2.latency
        else:
            inflight = self.l2.mshr.lookup(info.block_addr, issue)
            if inflight is not None and not self.llc.probe(info.block_addr):
                below = max(self.l2.latency, inflight - issue)
            else:
                if inflight is not None:
                    self.l2.mshr.remove(info.block_addr)
                llc_issue = issue + self.l2.latency
                llc_latency = self._llc_access(info, llc_issue, access_type=DEMAND)
                completion = self.l2.mshr.allocate(
                    info.block_addr, issue, llc_issue + llc_latency
                )
                self._fill_l2(info)
                below = completion - issue
        for target in prefetches:
            self._issue_prefetch("l2", self.l2_prefetcher, info.pc, target, issue)
        return below

    def _llc_access(self, upper_info: AccessInfo, issue: float, access_type: str) -> float:
        """Shared-LLC leg; returns latency from LLC onward and records
        the access interval for C-AMAT."""
        info = AccessInfo(
            pc=upper_info.pc,
            address=upper_info.address,
            block_addr=upper_info.block_addr,
            core=self.core_id,
            type=access_type,
            is_write=False,
            cycle=issue,
        )
        llc_hit, pf_hit = self.llc.access(info)
        self._credit_prefetch(info.block_addr, pf_hit)
        if llc_hit:
            service = self.llc.latency
        else:
            inflight = self.llc.mshr.lookup(info.block_addr, issue)
            if inflight is not None:
                service = max(self.llc.latency, inflight - issue)
            else:
                dram_latency = self.dram.access(
                    info.block_addr, issue + self.llc.latency
                )
                completion = self.llc.mshr.allocate(
                    info.block_addr, issue, issue + self.llc.latency + dram_latency
                )
                service = completion - issue
                if not self.llc.decide_bypass(info):
                    victim = self.llc.fill(info)
                    self._drain_llc_victim(victim, issue)
        self.camat.record_llc_access(self.core_id, issue, service)
        return service

    # --- fills and writebacks ------------------------------------------------

    def _fill_l1(self, info: AccessInfo) -> None:
        fill = AccessInfo(
            pc=info.pc,
            address=info.address,
            block_addr=info.block_addr,
            core=self.core_id,
            type=info.type,
            is_write=info.is_write,
            cycle=info.cycle,
        )
        victim = self.l1.fill(fill, dirty=info.is_write)
        if victim is not None and victim[1]:
            self._writeback(self.l2, victim[0], info.cycle)

    def _fill_l2(self, info: AccessInfo) -> None:
        fill = AccessInfo(
            pc=info.pc,
            address=info.address,
            block_addr=info.block_addr,
            core=self.core_id,
            type=info.type,
            is_write=False,
            cycle=info.cycle,
        )
        victim = self.l2.fill(fill)
        if victim is not None and victim[1]:
            self._writeback_llc(victim[0], info.cycle)

    def _writeback(self, cache: Cache, block_addr: int, cycle: float) -> None:
        """Dirty eviction from L1 lands in L2 (allocate on writeback)."""
        info = AccessInfo(
            pc=0,
            address=block_addr << 6,
            block_addr=block_addr,
            core=self.core_id,
            type=WRITEBACK,
            is_write=True,
            cycle=cycle,
        )
        hit, _ = cache.access(info)
        cache.stats.writebacks_out += 0  # credit tracked by source cache
        if not hit:
            victim = cache.fill(info, dirty=True)
            if victim is not None and victim[1]:
                self._writeback_llc(victim[0], cycle)

    def _writeback_llc(self, block_addr: int, cycle: float) -> None:
        """Dirty eviction from L2 lands in the shared LLC."""
        info = AccessInfo(
            pc=0,
            address=block_addr << 6,
            block_addr=block_addr,
            core=self.core_id,
            type=WRITEBACK,
            is_write=True,
            cycle=cycle,
        )
        hit, _ = self.llc.access(info)
        if not hit:
            victim = self.llc.fill(info, dirty=True)
            self._drain_llc_victim(victim, cycle)

    def _drain_llc_victim(
        self, victim: Optional[Tuple[int, bool]], cycle: float
    ) -> None:
        if victim is not None and victim[1]:
            self.llc.stats.writebacks_out += 1
            self.dram.access(victim[0], cycle, is_write=True)

    # --- prefetch path -----------------------------------------------------------

    def _issue_prefetch(
        self, level: str, owner: Prefetcher, pc: int, address: int, issue: float
    ) -> None:
        """Inject a prefetch at ``level``; fills propagate upward to the
        issuing level.  LLC insertion remains subject to the LLC
        policy's bypass decision (holistic management, Sec. IV-B)."""
        if address < 0:
            return
        block = address >> 6
        if block in self._pf_filter:
            self.prefetch_filtered += 1
            return
        self._filter_remember(block)
        if level == "l1" and self.l1.probe(block):
            return
        hit_below = self.l2.probe(block)
        if not hit_below and not self.llc.probe(block):
            # The line must come from DRAM: shed the prefetch when the
            # memory system is saturated (lowest-priority traffic).
            self.llc.mshr.lookup(block, issue)  # expire stale entries
            if (
                self.llc.mshr.occupancy >= self.llc.mshr.num_entries
                or self.dram.backlog(block, issue) > self.PREFETCH_BACKLOG_LIMIT
            ):
                self.prefetch_drops += 1
                return
        info = AccessInfo(
            pc=pc,
            address=address,
            block_addr=block,
            core=self.core_id,
            type=PREFETCH,
            is_write=False,
            cycle=issue,
        )
        if not hit_below:
            # L2 miss: consult the shared LLC (prefetch-typed access).
            llc_latency = self._llc_access(info, issue + self.l2.latency, PREFETCH)
            del llc_latency  # prefetch latency is off the critical path
            self._fill_l2(info)
        else:
            # Touch L2 so its stats/recency see the prefetch.
            l2_info = AccessInfo(
                pc=pc,
                address=address,
                block_addr=block,
                core=self.core_id,
                type=PREFETCH,
                is_write=False,
                cycle=issue,
            )
            self.l2.access(l2_info)
        if level == "l1":
            self._fill_l1(info)
        self._remember_prefetch(block, owner)

    def _filter_remember(self, block: int) -> None:
        pf_filter = self._pf_filter
        pf_filter[block] = None
        pf_filter.move_to_end(block)
        if len(pf_filter) > self._pf_filter_cap:
            pf_filter.popitem(last=False)

    def _remember_prefetch(self, block: int, owner: Prefetcher) -> None:
        owners = self._pf_owner
        owners[block] = owner
        owners.move_to_end(block)
        if len(owners) > self._pf_owner_cap:
            owners.popitem(last=False)

    def _credit_prefetch(self, block: int, first_demand_hit: bool) -> None:
        if not first_demand_hit:
            return
        owner = self._pf_owner.pop(block, None)
        if owner is not None:
            owner.credit_useful()
