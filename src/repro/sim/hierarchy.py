"""Per-core cache hierarchy walk: L1D → L2 → shared LLC → DRAM.

Composes the pieces of :mod:`repro.sim` into the memory system of
Table V: private L1D and L2 with fixed LRU, a shared LLC running the
policy under study, hardware prefetchers at L1 and L2, MSHR-modelled
miss overlap, dirty-writeback propagation, and C-AMAT accounting for
every access that reaches the LLC.

Hot-path note: every leg of the walk reuses a per-level scratch
:class:`AccessInfo` (see its lifecycle contract) instead of
constructing a fresh dataclass per level — a demand miss used to
allocate five or more.  Each scratch instance is private to exactly
one call frame of the walk, so no reset can clobber a live descriptor.
"""

from __future__ import annotations

from heapq import heappush
from typing import Dict, Optional, Tuple

from ..traces.trace import MemoryAccess
from .access import AccessInfo
from .cache import Cache
from .camat import CAMATMonitor
from .core_model import CoreConfig, CoreTimingModel
from .dram import DRAMModel
from .prefetch.base import NullPrefetcher, Prefetcher


class CoreHierarchy:
    """One core's private levels plus references to the shared system."""

    __slots__ = (
        "core_id",
        "l1",
        "l2",
        "llc",
        "dram",
        "camat",
        "l1_prefetcher",
        "l2_prefetcher",
        "core",
        "_camat_core",
        "_pf_owner",
        "_pf_owner_cap",
        "_pf_filter",
        "_pf_filter_cap",
        "prefetch_drops",
        "prefetch_filtered",
        "_demand_info",
        "_wb_l2_info",
        "_wb_llc_info",
        "_pf_info",
        "_pf_l2_info",
        "_l1_fast",
        "_l2_fast",
    )

    def __init__(
        self,
        core_id: int,
        l1: Cache,
        l2: Cache,
        llc: Cache,
        dram: DRAMModel,
        camat: CAMATMonitor,
        l1_prefetcher: Optional[Prefetcher] = None,
        l2_prefetcher: Optional[Prefetcher] = None,
        core_config: Optional[CoreConfig] = None,
    ) -> None:
        self.core_id = core_id
        self.l1 = l1
        self.l2 = l2
        self.llc = llc
        self.dram = dram
        self.camat = camat
        self.l1_prefetcher = l1_prefetcher or NullPrefetcher()
        self.l2_prefetcher = l2_prefetcher or NullPrefetcher()
        self.core = CoreTimingModel(core_config)
        # Direct reference to this core's C-AMAT accumulator (the state
        # objects are created once per monitor and never replaced).
        self._camat_core = camat.cores[core_id]
        # block address -> prefetcher that brought it in (usefulness credit).
        # Plain dicts preserve insertion order; "move to end" is pop +
        # re-insert and LRU eviction removes the first key — cheaper than
        # OrderedDict on this path.
        self._pf_owner: Dict[int, Prefetcher] = {}
        self._pf_owner_cap = 1 << 14
        # Prefetch filter: recently demanded or prefetched blocks are not
        # re-proposed (suppresses late and duplicate prefetches, which a
        # real prefetch filter drops before they waste bandwidth).
        self._pf_filter: Dict[int, None] = {}
        self._pf_filter_cap = 2048
        self.prefetch_drops = 0
        self.prefetch_filtered = 0
        # Scratch AccessInfo per walk leg (allocation-free access path).
        # Each is reset at the top of its owning method and never escapes
        # the policy hooks it is passed to.
        self._demand_info = AccessInfo(0, 0, 0, core_id)
        self._wb_l2_info = AccessInfo(0, 0, 0, core_id)
        self._wb_llc_info = AccessInfo(0, 0, 0, core_id)
        self._pf_info = AccessInfo(0, 0, 0, core_id)
        self._pf_l2_info = AccessInfo(0, 0, 0, core_id)
        # The default build runs the private levels as exact true-LRU
        # caches without mgmt tracking; these flags (checked once here)
        # gate the inlined access/fill fast paths below.  Custom L1/L2
        # policies or mgmt-tracked levels take the generic paths.
        self._l1_fast = l1._lru_recency is not None and l1.mgmt is None
        self._l2_fast = l2._lru_recency is not None and l2.mgmt is None

    #: a prefetch that would queue behind this much DRAM backlog is shed
    PREFETCH_BACKLOG_LIMIT = 1200.0

    # --- main entry point ---------------------------------------------------

    def execute(self, access: MemoryAccess) -> float:
        """Run one trace record through the core + memory system.

        Returns the total load-to-use latency charged (0 for stores and
        fully hidden L1 hits — informational only; timing effects are
        applied to the core model internally).
        """
        # Inlined CoreTimingModel.advance + complete_load (hot path: two
        # call frames per record; keep in sync with core_model.py).
        core = self.core
        cfg = core.config
        gap1 = access.gap + 1
        core.instructions = instructions = core.instructions + gap1
        core.issue_cycle = issue = core.issue_cycle + gap1 / cfg.width
        out = core._outstanding
        if out:
            horizon = instructions - cfg.rob_size
            while out and out[0][0] <= horizon:
                _, ready = out.popleft()
                if ready > issue:
                    core.stall_cycles += ready - issue
                    core.issue_cycle = issue = ready
        is_write = access.is_write
        latency = self._demand_access(access.pc, access.address, is_write, issue)
        if not is_write and latency > cfg.l1_hit_hidden:
            ready = issue + latency
            out.append((instructions, ready))
            if ready > core.last_data_ready:
                core.last_data_ready = ready
        return latency

    # --- demand path ------------------------------------------------------------

    def _demand_access(
        self, pc: int, address: int, is_write: bool, issue: float, block: int = -1
    ) -> float:
        """L1 + L2 legs of the demand walk, fused into one frame.

        The L2 leg reuses the demand descriptor with ``is_write``
        cleared (the L1 absorbs the store, so everything below sees a
        clean access); the saved ``is_write`` local still drives the L1
        fill's dirtiness.  MSHR lookup/allocate fast paths are inlined:
        the lookup at cycle ``issue`` already expired every entry due by
        then, so a subsequent allocate at the same cycle can insert
        directly whenever the file has room (see mshr.py).

        ``block`` lets the batched run loop pass the pre-computed block
        address from its columnar chunk decode; the default recomputes
        it (addresses are non-negative, so ``-1`` is a safe sentinel).
        """
        if block < 0:
            block = address >> 6
        # Inlined _filter_remember (hottest caller).
        pf_filter = self._pf_filter
        pf_filter.pop(block, None)
        pf_filter[block] = None
        if len(pf_filter) > self._pf_filter_cap:
            del pf_filter[next(iter(pf_filter))]
        l1 = self.l1
        info = None
        if self._l1_fast:
            # Inlined Cache.access, demand/true-LRU/no-mgmt case (keep
            # in sync with cache.py).  The hit path needs no AccessInfo
            # at all, so the scratch reset is deferred to the miss walk.
            s1 = block & l1._set_mask
            way1 = l1._tag_maps[s1].get(block >> l1._set_shift)
            if way1 is not None:
                l1.stats.demand_hits += 1
                b1 = l1._blocks[s1][way1]
                touch = l1._touch + 1
                l1._touch = touch
                b1.last_touch = touch
                if is_write:
                    b1.dirty = True
                if not b1.reused:
                    b1.reused = True
                if b1.is_prefetch:
                    b1.is_prefetch = False
                    self._credit_prefetch(block)
                order = l1._lru_recency[s1]
                order.pop(way1, None)
                order[way1] = None
                l1_hit = True
            else:
                l1.stats.demand_misses += 1
                l1_hit = False
        else:
            info = self._demand_info.reset_demand(pc, address, block, is_write, issue)
            l1_hit, pf_hit = l1.access(info)
            if pf_hit:
                self._credit_prefetch(block)
        l1_prefetches = self.l1_prefetcher.on_access(pc, address, l1_hit, issue)
        if l1_hit:
            latency = l1.latency
        else:
            # Merge into an in-flight miss only if the line is genuinely
            # still absent below (instant-fill means an "in-flight" line
            # may already sit in L2 after an L1 eviction).
            mshr = l1.mshr
            heap_ = mshr._heap
            if heap_ and heap_[0][0] <= issue:
                inflight = mshr.lookup(block, issue)
            else:
                inflight = mshr._inflight.get(block)
            l2 = self.l2
            s2 = block & l2._set_mask
            tag2 = block >> l2._set_shift
            map2 = l2._tag_maps[s2]
            if inflight is not None and tag2 not in map2:
                mshr.merges += 1
                miss_wait = inflight - issue
                latency = miss_wait if miss_wait > l1.latency else l1.latency
            else:
                if inflight is not None:
                    mshr.remove(block)  # stale: line resident below
                # --- L2 leg (fused; clean descriptor from here down) ---
                if info is None:
                    info = self._demand_info.reset_demand(
                        pc, address, block, False, issue
                    )
                else:
                    info.is_write = False
                if self._l2_fast:
                    # Inlined Cache.access again (clean demand).
                    way2 = map2.get(tag2)
                    if way2 is not None:
                        l2.stats.demand_hits += 1
                        b2 = l2._blocks[s2][way2]
                        touch = l2._touch + 1
                        l2._touch = touch
                        b2.last_touch = touch
                        if not b2.reused:
                            b2.reused = True
                        if b2.is_prefetch:
                            b2.is_prefetch = False
                            self._credit_prefetch(block)
                        order = l2._lru_recency[s2]
                        order.pop(way2, None)
                        order[way2] = None
                        l2_hit = True
                    else:
                        l2.stats.demand_misses += 1
                        l2_hit = False
                else:
                    l2_hit, pf_hit2 = l2.access(info)
                    if pf_hit2:
                        self._credit_prefetch(block)
                l2_prefetches = self.l2_prefetcher.on_access(pc, address, l2_hit, issue)
                if l2_hit:
                    below = l2.latency
                else:
                    mshr2 = l2.mshr
                    heap2 = mshr2._heap
                    if heap2 and heap2[0][0] <= issue:
                        inflight2 = mshr2.lookup(block, issue)
                    else:
                        inflight2 = mshr2._inflight.get(block)
                    llc = self.llc
                    if inflight2 is not None and (
                        block >> llc._set_shift
                    ) not in llc._tag_maps[block & llc._set_mask]:
                        miss_wait2 = inflight2 - issue
                        below = miss_wait2 if miss_wait2 > l2.latency else l2.latency
                    else:
                        if inflight2 is not None:
                            mshr2.remove(block)
                        llc_issue = issue + l2.latency
                        llc_latency = self._llc_access(info, llc_issue)
                        completion2 = llc_issue + llc_latency
                        inflight_map2 = mshr2._inflight
                        if len(inflight_map2) < mshr2.num_entries:
                            inflight_map2[block] = completion2
                            heappush(heap2, (completion2, block))
                        else:
                            completion2 = mshr2.allocate(block, issue, completion2)
                        if self._l2_fast:
                            # Inlined _fill_l2 (info.cycle == issue here).
                            wb2 = l2.fill_lru(info)
                            if wb2 is not None:
                                l2.stats.writebacks_out += 1
                                self._writeback_llc(wb2, issue)
                        else:
                            self._fill_l2(info)
                        below = completion2 - issue
                if l2_prefetches:
                    for target in l2_prefetches:
                        if target < 0:
                            continue
                        if (target >> 6) in pf_filter:
                            self.prefetch_filtered += 1
                            continue
                        self._issue_prefetch(
                            "l2", self.l2_prefetcher, pc, target, issue
                        )
                # --- back at L1: register the miss, install the line ---
                completion = issue + l1.latency + below
                inflight_map = mshr._inflight
                if len(inflight_map) < mshr.num_entries:
                    inflight_map[block] = completion
                    heappush(heap_, (completion, block))
                else:
                    completion = mshr.allocate(block, issue, completion)
                if self._l1_fast:
                    wb = l1.fill_lru(info, is_write)
                    if wb is not None:
                        l1.stats.writebacks_out += 1
                        self._writeback(l2, wb, issue)
                else:
                    victim = l1.fill(info, dirty=is_write)
                    if victim is not None and victim[1]:
                        l1.stats.writebacks_out += 1
                        self._writeback(l2, victim[0], issue)
                latency = completion - issue
        if l1_prefetches:
            for target in l1_prefetches:
                # Precheck owns _issue_prefetch's first two exits so
                # rejected targets never pay the call.
                if target < 0:
                    continue
                if (target >> 6) in pf_filter:
                    self.prefetch_filtered += 1
                    continue
                self._issue_prefetch("l1", self.l1_prefetcher, pc, target, issue)
        return latency

    def _llc_access(self, info: AccessInfo, issue: float) -> float:
        """Shared-LLC leg; returns latency from LLC onward and records
        the access interval for C-AMAT.

        ``info`` is the upper level's descriptor passed straight
        through: no LLC policy or mgmt hook reads ``info.cycle`` — the
        only field a fresh LLC-issued reset would change — and the
        callers' L2 fills rely on ``cycle`` staying at the upper
        level's issue point, so no scratch copy is needed.
        """
        block = info.block_addr
        llc = self.llc
        llc_hit, pf_hit = llc.access(info)
        if pf_hit:
            self._credit_prefetch(block)
        if llc_hit:
            service = llc.latency
        else:
            mshr = llc.mshr
            heap_ = mshr._heap
            if heap_ and heap_[0][0] <= issue:
                inflight = mshr.lookup(block, issue)
            else:
                inflight = mshr._inflight.get(block)
            if inflight is not None:
                miss_wait = inflight - issue
                service = miss_wait if miss_wait > llc.latency else llc.latency
            else:
                llc_latency = llc.latency
                dram_latency = self.dram.access(block, issue + llc_latency)
                completion = issue + llc_latency + dram_latency
                inflight_map = mshr._inflight
                if len(inflight_map) < mshr.num_entries:
                    # lookup() above already expired entries due at
                    # ``issue``; with room this is allocate()'s fast path.
                    inflight_map[block] = completion
                    heappush(heap_, (completion, block))
                else:
                    completion = mshr.allocate(block, issue, completion)
                service = completion - issue
                # Inlined Cache.decide_bypass: ``info`` is never a
                # writeback here (those route via _writeback_llc) and
                # llc.access() already set info.set_index for this block.
                if llc.policy.should_bypass(info):
                    mgmt = llc.mgmt
                    if mgmt is not None:
                        mgmt.on_bypass(block)
                else:
                    victim = llc.fill(info)
                    # Inlined _drain_llc_victim.
                    if victim is not None and victim[1]:
                        llc.stats.writebacks_out += 1
                        self.dram.access(victim[0], issue, is_write=True)
        # Inlined CoreCAMATState.record (keep in sync with camat.py).
        cam = self._camat_core
        end = issue + service
        active = cam.active_until
        if issue >= active:
            added = service
            cam.active_until = end
        elif end > active:
            added = end - active
            cam.active_until = end
        else:
            added = 0.0
        cam.epoch_active_cycles += added
        cam.total_active_cycles += added
        cam.epoch_accesses += 1
        cam.total_accesses += 1
        return service

    # --- fills and writebacks ------------------------------------------------

    def _fill_l1(self, info: AccessInfo) -> None:
        # ``info`` is passed straight through: Cache.fill only reads
        # identity fields (and rewrites set_index), so a scratch copy
        # would be field-identical anyway.
        l1 = self.l1
        if self._l1_fast:
            wb = l1.fill_lru(info, info.is_write)
            if wb is not None:
                l1.stats.writebacks_out += 1
                self._writeback(self.l2, wb, info.cycle)
            return
        victim = l1.fill(info, dirty=info.is_write)
        if victim is not None and victim[1]:
            l1.stats.writebacks_out += 1
            self._writeback(self.l2, victim[0], info.cycle)

    def _fill_l2(self, info: AccessInfo) -> None:
        # Both callers pass is_write=False descriptors (the L1 absorbs
        # stores), so the L2 fill is clean without copying/clearing.
        l2 = self.l2
        if self._l2_fast:
            wb = l2.fill_lru(info)
            if wb is not None:
                l2.stats.writebacks_out += 1
                self._writeback_llc(wb, info.cycle)
            return
        victim = l2.fill(info)
        if victim is not None and victim[1]:
            l2.stats.writebacks_out += 1
            self._writeback_llc(victim[0], info.cycle)

    def _writeback(self, cache: Cache, block_addr: int, cycle: float) -> None:
        """Dirty eviction from L1 lands in L2 (allocate on writeback)."""
        info = self._wb_l2_info.reset_writeback(block_addr, cycle)
        hit, _ = cache.access(info)
        if not hit:
            if self._l2_fast and cache is self.l2:
                wb = cache.fill_lru(info, True)
                if wb is not None:
                    cache.stats.writebacks_out += 1
                    self._writeback_llc(wb, cycle)
                return
            victim = cache.fill(info, dirty=True)
            if victim is not None and victim[1]:
                cache.stats.writebacks_out += 1
                self._writeback_llc(victim[0], cycle)

    def _writeback_llc(self, block_addr: int, cycle: float) -> None:
        """Dirty eviction from L2 lands in the shared LLC."""
        info = self._wb_llc_info.reset_writeback(block_addr, cycle)
        hit, _ = self.llc.access(info)
        if not hit:
            victim = self.llc.fill(info, dirty=True)
            self._drain_llc_victim(victim, cycle)

    def _drain_llc_victim(
        self, victim: Optional[Tuple[int, bool]], cycle: float
    ) -> None:
        if victim is not None and victim[1]:
            self.llc.stats.writebacks_out += 1
            self.dram.access(victim[0], cycle, is_write=True)

    # --- prefetch path -----------------------------------------------------------

    def _issue_prefetch(
        self, level: str, owner: Prefetcher, pc: int, address: int, issue: float
    ) -> None:
        """Inject a prefetch at ``level``; fills propagate upward to the
        issuing level.  LLC insertion remains subject to the LLC
        policy's bypass decision (holistic management, Sec. IV-B).

        Callers precheck negative targets and filter membership, so
        this starts at the filter-remember step.
        """
        block = address >> 6
        # Inlined _filter_remember.
        pf_filter = self._pf_filter
        pf_filter.pop(block, None)
        pf_filter[block] = None
        if len(pf_filter) > self._pf_filter_cap:
            del pf_filter[next(iter(pf_filter))]
        l1 = self.l1
        if level == "l1" and (block >> l1._set_shift) in l1._tag_maps[
            block & l1._set_mask
        ]:
            return
        l2 = self.l2
        hit_below = (block >> l2._set_shift) in l2._tag_maps[block & l2._set_mask]
        llc = self.llc
        if not hit_below and (block >> llc._set_shift) not in llc._tag_maps[
            block & llc._set_mask
        ]:
            # The line must come from DRAM: shed the prefetch when the
            # memory system is saturated (lowest-priority traffic).
            mshr = llc.mshr
            mshr.lookup(block, issue)  # expire stale entries
            if (
                len(mshr._inflight) >= mshr.num_entries
                or self.dram.backlog(block, issue) > self.PREFETCH_BACKLOG_LIMIT
            ):
                self.prefetch_drops += 1
                return
        info = self._pf_info.reset_prefetch(pc, address, block, issue)
        if not hit_below:
            # L2 miss: consult the shared LLC (prefetch-typed access).
            llc_latency = self._llc_access(info, issue + l2.latency)
            del llc_latency  # prefetch latency is off the critical path
            if self._l2_fast:
                # Inlined _fill_l2 (info.cycle == issue here).
                wb2 = l2.fill_lru(info)
                if wb2 is not None:
                    l2.stats.writebacks_out += 1
                    self._writeback_llc(wb2, issue)
            else:
                self._fill_l2(info)
        else:
            # Touch L2 so its stats/recency see the prefetch.
            l2_info = self._pf_l2_info.reset_prefetch(pc, address, block, issue)
            l2.access(l2_info)
        if level == "l1":
            self._fill_l1(info)
        self._remember_prefetch(block, owner)

    def _filter_remember(self, block: int) -> None:
        pf_filter = self._pf_filter
        pf_filter.pop(block, None)
        pf_filter[block] = None
        if len(pf_filter) > self._pf_filter_cap:
            del pf_filter[next(iter(pf_filter))]

    def _remember_prefetch(self, block: int, owner: Prefetcher) -> None:
        owners = self._pf_owner
        owners.pop(block, None)
        owners[block] = owner
        if len(owners) > self._pf_owner_cap:
            del owners[next(iter(owners))]

    def _credit_prefetch(self, block: int) -> None:
        """Credit the prefetcher that brought ``block`` in (called only on
        a block's first demand hit)."""
        owner = self._pf_owner.pop(block, None)
        if owner is not None:
            owner.credit_useful()

    # --- observability -----------------------------------------------------------

    def obs_level_stats(self) -> dict:
        """Cumulative private-level counters for telemetry snapshots.

        Read-only: the obs layer samples this at epoch/run boundaries,
        so the demand walk itself carries no instrumentation (the
        zero-overhead-when-off contract of :mod:`repro.obs`).
        """
        l1, l2 = self.l1.stats, self.l2.stats
        return {
            "core": self.core_id,
            "l1_demand_hits": l1.demand_hits,
            "l1_demand_misses": l1.demand_misses,
            "l2_demand_hits": l2.demand_hits,
            "l2_demand_misses": l2.demand_misses,
            "l1_mshr_merges": self.l1.mshr.merges,
            "l2_mshr_merges": self.l2.mshr.merges,
            "prefetch_drops": self.prefetch_drops,
            "prefetch_filtered": self.prefetch_filtered,
            "prefetch_issued": (
                self.l1_prefetcher.stats.issued + self.l2_prefetcher.stats.issued
            ),
            "prefetch_useful": (
                self.l1_prefetcher.stats.useful + self.l2_prefetcher.stats.useful
            ),
        }
