"""C-AMAT monitoring and LLC-obstruction detection (Secs. II-C, IV-C).

Concurrent Average Memory Access Time (C-AMAT, Sun & Wang [50]) is the
memory *active* cycles divided by the number of accesses, where a cycle
with several overlapping accesses counts once.  The paper measures
C-AMAT at the LLC per core over 100K-cycle epochs; a core whose
C-AMAT_i(LLC) exceeds the average main-memory latency T_mem gains
little from caching at the LLC during that epoch and is flagged
**LLC-obstructed**.  Those flags feed CHROME's reward shaping and
CARE's insertion/promotion decisions.

Active cycles are computed as the length of the union of per-access
service intervals, maintained incrementally per core (accesses arrive
in non-decreasing start order per core, so a single ``active_until``
watermark suffices).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional


@dataclass(slots=True)
class CoreCAMATState:
    """Per-core accumulators for the current epoch and for the whole run."""

    active_until: float = 0.0
    epoch_active_cycles: float = 0.0
    epoch_accesses: int = 0
    total_active_cycles: float = 0.0
    total_accesses: int = 0
    obstructed: bool = False
    obstructed_epochs: int = 0
    epochs: int = 0

    def record(self, start: float, service: float) -> None:
        end = start + service
        active = self.active_until
        if start >= active:
            added = service
            self.active_until = end
        elif end > active:
            added = end - active
            self.active_until = end
        else:
            added = 0.0
        self.epoch_active_cycles += added
        self.total_active_cycles += added
        self.epoch_accesses += 1
        self.total_accesses += 1

    @property
    def total_camat(self) -> float:
        return (
            self.total_active_cycles / self.total_accesses
            if self.total_accesses
            else 0.0
        )


class CAMATMonitor:
    """Epoch-based per-core C-AMAT tracking at the LLC.

    Args:
        num_cores: cores sharing the LLC.
        t_mem: average main-memory latency in cycles (the obstruction
            threshold; Sec. IV-C).
        epoch_cycles: observation-window length (100K cycles in the paper).
    """

    __slots__ = (
        "num_cores",
        "t_mem",
        "epoch_cycles",
        "cores",
        "epochs_closed",
        "_epoch_end",
        "_listeners",
        "_observers",
    )

    def __init__(
        self, num_cores: int, t_mem: float, epoch_cycles: float = 100_000.0
    ) -> None:
        self.num_cores = num_cores
        self.t_mem = t_mem
        self.epoch_cycles = epoch_cycles
        self.cores: List[CoreCAMATState] = [CoreCAMATState() for _ in range(num_cores)]
        self.epochs_closed = 0
        self._epoch_end = epoch_cycles
        self._listeners: List[Callable[[List[bool]], None]] = []
        self._observers: List[Callable[[int, float, List[float], List[bool]], None]] = []

    def add_epoch_listener(self, listener: Callable[[List[bool]], None]) -> None:
        """Register a callback receiving obstruction flags each epoch."""
        self._listeners.append(listener)

    def add_epoch_observer(
        self, observer: Callable[[int, float, List[float], List[bool]], None]
    ) -> None:
        """Register a telemetry tap receiving ``(epoch_index, end_cycle,
        per_core_camat, obstruction_flags)`` for every closed epoch.

        Observers are the observability hook: unlike the listeners
        (which policies depend on for behavior), observers never feed
        back into decisions, and the per-core C-AMAT list is only
        materialized when at least one observer is registered.
        """
        self._observers.append(observer)

    @property
    def epoch_end(self) -> float:
        """End cycle of the current epoch — callers may skip
        :meth:`maybe_close_epoch` entirely while ``now`` is below this."""
        return self._epoch_end

    def record_llc_access(self, core: int, start_cycle: float, service: float) -> None:
        """Record one LLC access interval for ``core``."""
        self.cores[core].record(start_cycle, service)

    def maybe_close_epoch(self, now: float) -> bool:
        """Close every epoch whose end ``now`` passed; True if any closed.

        When ``now`` jumps several boundaries at once (a core stalled or
        idle across whole epochs), each elapsed epoch closes separately:
        the first takes the accumulated window, the wholly-skipped ones
        close with an empty window (C-AMAT 0.0, unobstructed).  Epoch
        counts, obstructed-epoch fractions and listener cadence therefore
        track simulated time one-to-one instead of collapsing a gap of
        N quiet epochs into a single close.
        """
        if now < self._epoch_end:
            return False
        self._close_one(with_window=True)
        while self._epoch_end <= now:
            self._close_one(with_window=False)
        return True

    def _close_one(self, with_window: bool) -> None:
        """Close exactly one epoch; empty-window closes report C-AMAT 0.0."""
        flags: List[bool] = []
        camats: Optional[List[float]] = [] if self._observers else None
        for state in self.cores:
            if with_window and state.epoch_accesses:
                camat = state.epoch_active_cycles / state.epoch_accesses
                state.epoch_active_cycles = 0.0
                state.epoch_accesses = 0
            else:
                camat = 0.0
            state.obstructed = camat > self.t_mem
            state.epochs += 1
            if state.obstructed:
                state.obstructed_epochs += 1
            flags.append(state.obstructed)
            if camats is not None:
                camats.append(camat)
        end = self._epoch_end
        self._epoch_end = end + self.epoch_cycles
        index = self.epochs_closed
        self.epochs_closed = index + 1
        for listener in self._listeners:
            listener(flags)
        if camats is not None:
            for observer in self._observers:
                observer(index, end, camats, flags)

    def obstruction_flags(self) -> List[bool]:
        return [state.obstructed for state in self.cores]

    def is_obstructed(self, core: int) -> bool:
        return self.cores[core].obstructed

    def summary(self) -> dict:
        return {
            "t_mem": self.t_mem,
            "per_core_camat": [s.total_camat for s in self.cores],
            "per_core_obstructed_epoch_fraction": [
                s.obstructed_epochs / s.epochs if s.epochs else 0.0
                for s in self.cores
            ],
        }
