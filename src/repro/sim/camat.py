"""C-AMAT monitoring and LLC-obstruction detection (Secs. II-C, IV-C).

Concurrent Average Memory Access Time (C-AMAT, Sun & Wang [50]) is the
memory *active* cycles divided by the number of accesses, where a cycle
with several overlapping accesses counts once.  The paper measures
C-AMAT at the LLC per core over 100K-cycle epochs; a core whose
C-AMAT_i(LLC) exceeds the average main-memory latency T_mem gains
little from caching at the LLC during that epoch and is flagged
**LLC-obstructed**.  Those flags feed CHROME's reward shaping and
CARE's insertion/promotion decisions.

Active cycles are computed as the length of the union of per-access
service intervals, maintained incrementally per core (accesses arrive
in non-decreasing start order per core, so a single ``active_until``
watermark suffices).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List


@dataclass(slots=True)
class CoreCAMATState:
    """Per-core accumulators for the current epoch and for the whole run."""

    active_until: float = 0.0
    epoch_active_cycles: float = 0.0
    epoch_accesses: int = 0
    total_active_cycles: float = 0.0
    total_accesses: int = 0
    obstructed: bool = False
    obstructed_epochs: int = 0
    epochs: int = 0

    def record(self, start: float, service: float) -> None:
        end = start + service
        active = self.active_until
        if start >= active:
            added = service
            self.active_until = end
        elif end > active:
            added = end - active
            self.active_until = end
        else:
            added = 0.0
        self.epoch_active_cycles += added
        self.total_active_cycles += added
        self.epoch_accesses += 1
        self.total_accesses += 1

    @property
    def total_camat(self) -> float:
        return (
            self.total_active_cycles / self.total_accesses
            if self.total_accesses
            else 0.0
        )


class CAMATMonitor:
    """Epoch-based per-core C-AMAT tracking at the LLC.

    Args:
        num_cores: cores sharing the LLC.
        t_mem: average main-memory latency in cycles (the obstruction
            threshold; Sec. IV-C).
        epoch_cycles: observation-window length (100K cycles in the paper).
    """

    __slots__ = (
        "num_cores",
        "t_mem",
        "epoch_cycles",
        "cores",
        "_epoch_end",
        "_listeners",
    )

    def __init__(
        self, num_cores: int, t_mem: float, epoch_cycles: float = 100_000.0
    ) -> None:
        self.num_cores = num_cores
        self.t_mem = t_mem
        self.epoch_cycles = epoch_cycles
        self.cores: List[CoreCAMATState] = [CoreCAMATState() for _ in range(num_cores)]
        self._epoch_end = epoch_cycles
        self._listeners: List[Callable[[List[bool]], None]] = []

    def add_epoch_listener(self, listener: Callable[[List[bool]], None]) -> None:
        """Register a callback receiving obstruction flags each epoch."""
        self._listeners.append(listener)

    @property
    def epoch_end(self) -> float:
        """End cycle of the current epoch — callers may skip
        :meth:`maybe_close_epoch` entirely while ``now`` is below this."""
        return self._epoch_end

    def record_llc_access(self, core: int, start_cycle: float, service: float) -> None:
        """Record one LLC access interval for ``core``."""
        self.cores[core].record(start_cycle, service)

    def maybe_close_epoch(self, now: float) -> bool:
        """Close the epoch if ``now`` passed its end; returns True if closed."""
        if now < self._epoch_end:
            return False
        flags = []
        for state in self.cores:
            camat = (
                state.epoch_active_cycles / state.epoch_accesses
                if state.epoch_accesses
                else 0.0
            )
            state.obstructed = camat > self.t_mem
            state.epochs += 1
            if state.obstructed:
                state.obstructed_epochs += 1
            state.epoch_active_cycles = 0.0
            state.epoch_accesses = 0
            flags.append(state.obstructed)
        while self._epoch_end <= now:
            self._epoch_end += self.epoch_cycles
        for listener in self._listeners:
            listener(flags)
        return True

    def obstruction_flags(self) -> List[bool]:
        return [state.obstructed for state in self.cores]

    def is_obstructed(self, core: int) -> bool:
        return self.cores[core].obstructed

    def summary(self) -> dict:
        return {
            "t_mem": self.t_mem,
            "per_core_camat": [s.total_camat for s in self.cores],
            "per_core_obstructed_epoch_fraction": [
                s.obstructed_epochs / s.epochs if s.epochs else 0.0
                for s in self.cores
            ],
        }
