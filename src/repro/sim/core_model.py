"""Out-of-order core timing approximation.

The paper simulates 6-wide cores with 512-entry ROBs (Table V).  A
full cycle-accurate pipeline is unnecessary for studying LLC policies,
but the model must capture the one first-order effect concurrency-aware
management relies on: **overlapped misses** (memory-level parallelism).

We use an interval-style model:

* non-memory instructions retire at ``width`` per cycle (they advance
  the issue clock by ``1/width`` each);
* a load that hits in L1 is considered fully hidden;
* a longer-latency load occupies a ROB slot from issue until its data
  returns; the issue clock only stalls when a load *older than the ROB
  window* has not completed — so independent misses issued within one
  ROB window overlap, exactly the behaviour C-AMAT quantifies;
* stores retire through a write buffer and never stall the core (their
  fills still occupy caches, MSHRs and DRAM banks).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Tuple


@dataclass
class CoreConfig:
    """Core pipeline parameters (defaults per Table V)."""

    width: int = 6
    rob_size: int = 512
    l1_hit_hidden: float = 5.0  # loads at/below this latency never stall


class CoreTimingModel:
    """Tracks one core's instruction timeline."""

    __slots__ = (
        "config",
        "instructions",
        "issue_cycle",
        "last_data_ready",
        "_outstanding",
        "stall_cycles",
    )

    def __init__(self, config: CoreConfig | None = None) -> None:
        self.config = config or CoreConfig()
        self.instructions = 0
        self.issue_cycle = 0.0
        self.last_data_ready = 0.0
        self._outstanding: Deque[Tuple[int, float]] = deque()
        self.stall_cycles = 0.0

    def advance(self, gap: int) -> float:
        """Account ``gap`` non-memory instructions plus the memory
        instruction itself; return the memory op's issue cycle."""
        cfg = self.config
        self.instructions += gap + 1
        self.issue_cycle += (gap + 1) / cfg.width
        # ROB back-pressure: the window cannot slide past an incomplete load.
        horizon = self.instructions - cfg.rob_size
        out = self._outstanding
        while out and out[0][0] <= horizon:
            _, ready = out.popleft()
            if ready > self.issue_cycle:
                self.stall_cycles += ready - self.issue_cycle
                self.issue_cycle = ready
        return self.issue_cycle

    def complete_load(self, latency: float) -> None:
        """Register the just-issued load's total latency."""
        if latency <= self.config.l1_hit_hidden:
            return
        ready = self.issue_cycle + latency
        self._outstanding.append((self.instructions, ready))
        if ready > self.last_data_ready:
            self.last_data_ready = ready

    @property
    def outstanding_loads(self) -> int:
        return len(self._outstanding)

    @property
    def current_cycle(self) -> float:
        """The core's progress clock (used to interleave cores)."""
        return self.issue_cycle

    def finish(self) -> float:
        """Cycle at which all issued work has retired."""
        return max(self.issue_cycle, self.last_data_ready)

    def snapshot(self) -> Tuple[int, float]:
        """(instructions, finish-cycle) pair, e.g. at warmup boundaries."""
        return self.instructions, self.finish()
