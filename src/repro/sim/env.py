"""The LLC simulator as an :class:`~repro.env.protocol.Environment`.

The sim domain binding: a :class:`~repro.sim.multicore.MultiCoreSystem`
epoch loop driving :class:`~repro.core.chrome.ChromePolicy` (the LLC
binding of the shared :class:`~repro.env.driver.AgentCore`).  The
adapter owns nothing the simulator does not already provide — it maps
the protocol's run/snapshot contract onto the existing machinery:

* features/obstruction: bound by ``MultiCoreSystem.__init__`` itself
  (``bind_camat`` + the epoch listener);
* ``run()``: one homogeneous mix through ``MultiCoreSystem.run`` with
  the standard warmup convention, summarized into a picklable mapping;
* snapshots: the ``chrome-agent`` persistence kind.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from ..core.chrome import ChromePolicy
from ..core.config import ChromeConfig
from ..core.persistence import agent_state
from ..env.driver import restore_agent_state
from ..env.protocol import Environment
from ..env.registry import register_environment
from ..traces.mixes import homogeneous_mix
from .multicore import MultiCoreSystem, SystemConfig


class SimEnvironment(Environment):
    """One CHROME-managed simulated machine, run to completion."""

    name = "sim"
    snapshot_kind = "chrome-agent"

    def __init__(
        self,
        *,
        workload: str = "mcf06",
        num_cores: int = 2,
        accesses_per_core: int = 1200,
        warmup_accesses: int = 300,
        seed: int = 7,
        scale: float = 1 / 64,
        sampled_sets: int = 16,
        backend: Optional[str] = None,
    ) -> None:
        self._workload = workload
        self._accesses = accesses_per_core
        self._warmup = warmup_accesses
        self._seed = seed
        self._scale = scale
        self.policy = ChromePolicy(
            replace(ChromeConfig(), sampled_sets=sampled_sets, backend=backend)
        )
        self.system = MultiCoreSystem(
            SystemConfig(num_cores=num_cores, scale=scale, backend=backend),
            llc_policy=self.policy,
        )

    def run(self) -> Dict[str, object]:
        traces = homogeneous_mix(
            self._workload,
            self.system.config.num_cores,
            self._accesses + self._warmup,
            seed=self._seed,
            scale=self._scale,
        )
        result = self.system.run(
            traces,
            max_accesses_per_core=self._accesses,
            warmup_accesses=self._warmup,
        )
        llc = result.llc_stats
        return {
            "policy": result.policy_name,
            "ipcs": list(result.ipcs),
            "llc_accesses": llc.demand_accesses,
            "llc_hits": llc.demand_hits,
            "llc_misses": llc.demand_misses,
            "telemetry": dict(self.policy.telemetry()),
        }

    def agent_states(self) -> List[dict]:
        return [agent_state(self.policy, self.snapshot_kind)]

    def load_agent_states(
        self, states: List[dict], *, keep_rng: bool = False
    ) -> None:
        restore_agent_state(
            self.policy, states[0], self.snapshot_kind, keep_rng=keep_rng
        )


register_environment("sim", SimEnvironment)
