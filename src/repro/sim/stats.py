"""Statistics collection for caches and the whole system.

The counters here feed every evaluation metric in the paper:

* LLC demand miss ratio (Fig. 7) — ``demand_hits`` / ``demand_misses``;
* effective prefetch hit ratio, EPHR (Fig. 8) —
  ``prefetch_fill_hits`` / ``prefetch_fills``;
* bypass coverage and efficiency (Fig. 9) — ``bypasses`` plus the
  bypassed-block re-request tracker;
* unused-evicted-block analysis (Fig. 2) — eviction records with
  reuse flags, resolved against future requests at end of run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set


@dataclass(slots=True)
class CacheStats:
    """Hit/miss accounting for a single cache level.

    ``slots=True``: these counters are bumped several times per
    simulated access, and slot attributes are measurably cheaper than
    ``__dict__`` lookups on that path.
    """

    name: str = "cache"
    demand_hits: int = 0
    demand_misses: int = 0
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    writeback_hits: int = 0
    writeback_misses: int = 0
    evictions: int = 0
    writebacks_out: int = 0

    @property
    def demand_accesses(self) -> int:
        return self.demand_hits + self.demand_misses

    @property
    def demand_miss_ratio(self) -> float:
        total = self.demand_accesses
        return self.demand_misses / total if total else 0.0

    def record(self, access_type: str, hit: bool) -> None:
        if access_type == "demand":
            if hit:
                self.demand_hits += 1
            else:
                self.demand_misses += 1
        elif access_type == "prefetch":
            if hit:
                self.prefetch_hits += 1
            else:
                self.prefetch_misses += 1
        else:  # writeback
            if hit:
                self.writeback_hits += 1
            else:
                self.writeback_misses += 1


@dataclass(slots=True)
class LLCManagementStats:
    """Policy-facing LLC statistics (bypass / prefetch-use / reuse)."""

    fills: int = 0
    prefetch_fills: int = 0
    prefetch_fill_hits: int = 0  # prefetched blocks that saw a demand hit
    bypasses: int = 0
    incoming_blocks: int = 0  # fill candidates (fills + bypasses)
    evicted_unused: int = 0
    evicted_used: int = 0
    evicted_unused_prefetch: int = 0

    # Fig. 2 support: blocks evicted without reuse, keyed by block address,
    # resolved to "requested again later" if a subsequent access touches them.
    _pending_unused: Dict[int, int] = field(default_factory=dict)
    unused_requested_again: int = 0

    # Fig. 9 support: bypassed blocks that are demanded again within the
    # observation window count against bypass efficiency.
    _bypassed: Set[int] = field(default_factory=set)
    bypass_mistakes: int = 0

    def on_fill(self, is_prefetch: bool) -> None:
        self.fills += 1
        self.incoming_blocks += 1
        if is_prefetch:
            self.prefetch_fills += 1

    def on_prefetched_block_hit(self) -> None:
        self.prefetch_fill_hits += 1

    def on_bypass(self, block_addr: int) -> None:
        self.bypasses += 1
        self.incoming_blocks += 1
        self._bypassed.add(block_addr)

    def on_eviction(self, block_addr: int, reused: bool, was_prefetch: bool) -> None:
        if reused:
            self.evicted_used += 1
        else:
            self.evicted_unused += 1
            if was_prefetch:
                self.evicted_unused_prefetch += 1
            self._pending_unused[block_addr] = self._pending_unused.get(block_addr, 0) + 1

    def on_demand_request(self, block_addr: int) -> None:
        """Resolve pending Fig. 2 / Fig. 9 bookkeeping for a new request."""
        count = self._pending_unused.pop(block_addr, 0)
        if count:
            self.unused_requested_again += count
        if block_addr in self._bypassed:
            self._bypassed.discard(block_addr)
            self.bypass_mistakes += 1

    # --- derived metrics -------------------------------------------------

    @property
    def ephr(self) -> float:
        """Effective prefetch hit ratio (Fig. 8)."""
        return (
            self.prefetch_fill_hits / self.prefetch_fills
            if self.prefetch_fills
            else 0.0
        )

    @property
    def bypass_coverage(self) -> float:
        """Fraction of incoming blocks that were bypassed (Fig. 9)."""
        return self.bypasses / self.incoming_blocks if self.incoming_blocks else 0.0

    @property
    def bypass_efficiency(self) -> float:
        """Fraction of bypassed blocks never demanded afterwards (Fig. 9)."""
        if not self.bypasses:
            return 0.0
        return 1.0 - self.bypass_mistakes / self.bypasses

    @property
    def unused_eviction_fraction(self) -> float:
        """Fraction of evicted blocks not reused before eviction (Fig. 2a)."""
        total = self.evicted_used + self.evicted_unused
        return self.evicted_unused / total if total else 0.0

    @property
    def unused_eviction_prefetch_fraction(self) -> float:
        """Among unused evicted blocks, fraction from prefetching (Fig. 2b)."""
        return (
            self.evicted_unused_prefetch / self.evicted_unused
            if self.evicted_unused
            else 0.0
        )

    @property
    def unused_requested_again_fraction(self) -> float:
        """Among unused evicted blocks, fraction requested again later."""
        return (
            self.unused_requested_again / self.evicted_unused
            if self.evicted_unused
            else 0.0
        )


@dataclass(slots=True)
class PrefetcherStats:
    """Issue/usefulness accounting for one prefetcher."""

    issued: int = 0
    useful: int = 0  # prefetched blocks that later served a demand hit

    @property
    def accuracy(self) -> float:
        return self.useful / self.issued if self.issued else 0.0
