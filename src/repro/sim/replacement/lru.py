"""Least-Recently-Used baseline (the paper's normalization baseline)."""

from __future__ import annotations

from typing import Sequence

from ..access import AccessInfo
from ..block import CacheBlock
from .base import ReplacementPolicy, oldest_way


class LRUPolicy(ReplacementPolicy):
    """True LRU over each set's ``last_touch`` timestamps.

    Recency updates happen in the cache itself (every hit and fill
    refreshes ``last_touch``); the policy mirrors that order in a
    per-set recency dict (way -> None, least-recent first) so victim
    selection is O(1) instead of an O(ways) timestamp scan.  The dict
    is updated at exactly the points the cache bumps ``last_touch``
    (every hit and every fill), so its ordering *is* the timestamp
    ordering and the chosen victim is bit-identical to ``oldest_way``.
    When the recency dict has not seen every way of a full set (e.g. a
    test drives ``find_victim`` directly), it falls back to the scan.
    """

    name = "lru"

    def __init__(self) -> None:
        super().__init__()
        self._recency: list[dict[int, None]] = []

    def attach(self, num_sets: int, num_ways: int) -> None:
        super().attach(num_sets, num_ways)
        self._recency = [dict() for _ in range(num_sets)]

    def on_hit(self, info: AccessInfo, blocks: Sequence[CacheBlock], way: int) -> None:
        order = self._recency[info.set_index]
        order.pop(way, None)
        order[way] = None

    def on_fill(self, info: AccessInfo, blocks: Sequence[CacheBlock], way: int) -> None:
        order = self._recency[info.set_index]
        order.pop(way, None)
        order[way] = None

    def find_victim(self, info: AccessInfo, blocks: Sequence[CacheBlock]) -> int:
        order = self._recency[info.set_index] if self._recency else None
        if order is not None and len(order) == len(blocks):
            return next(iter(order))
        return oldest_way(blocks)

    def storage_overhead_bits(self) -> int:
        # log2(ways) recency bits per block.
        ways = max(self.num_ways, 1)
        bits_per_block = max((ways - 1).bit_length(), 1)
        return self.num_sets * self.num_ways * bits_per_block
