"""Least-Recently-Used baseline (the paper's normalization baseline)."""

from __future__ import annotations

from typing import Sequence

from ..access import AccessInfo
from ..block import CacheBlock
from .base import ReplacementPolicy, oldest_way


class LRUPolicy(ReplacementPolicy):
    """True LRU over each set's ``last_touch`` timestamps.

    Recency updates happen in the cache itself (every hit and fill
    refreshes ``last_touch``), so the policy only needs to pick the
    stalest way.
    """

    name = "lru"

    def find_victim(self, info: AccessInfo, blocks: Sequence[CacheBlock]) -> int:
        return oldest_way(blocks)

    def storage_overhead_bits(self) -> int:
        # log2(ways) recency bits per block.
        ways = max(self.num_ways, 1)
        bits_per_block = max((ways - 1).bit_length(), 1)
        return self.num_sets * self.num_ways * bits_per_block
