"""Mockingjay cache management (Shah, Jain & Lin, HPCA 2022 — ref [43]).

Mockingjay moves past Hawkeye's binary friendly/averse classification:
it *quantitatively* estimates each line's reuse distance and emulates
Belady-OPT by always evicting the line predicted to be reused furthest
in the future.  It is the paper's representative of a **holistic but
statically-designed** scheme (Table IV: holistic yes, concurrency no):

* a **sampled cache** observes 64 sets with extended tags and
  timestamps, measuring true reuse distances per PC signature;
* the **Reuse Distance Predictor (RDP)** maps a PC signature to a
  predicted reuse distance, nudged toward each observed sample
  (temporal-difference-style saturating update); sampled lines evicted
  without reuse train toward "infinite" distance;
* every cached line carries an **Estimated Time Remaining (ETR)**
  counter, aged as the set is accessed; the victim is the line with the
  largest absolute ETR;
* **bypassing**: an incoming line whose predicted reuse lies beyond the
  chosen victim's remaining time is not cached at all;
* demand and prefetch accesses use distinct signatures, making the
  scheme prefetch-aware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..access import PREFETCH, WRITEBACK, AccessInfo
from ..address import fold_hash
from ..block import CacheBlock
from .base import ReplacementPolicy
from .optgen import choose_sampled_sets

SIGNATURE_BITS = 13
INF_RD = 127  # saturating "never reused" distance (in set accesses)
ETR_GRANULARITY = 8  # RD units per ETR tick, keeps ETR in a small range
ETR_MAX = INF_RD // ETR_GRANULARITY + 1


@dataclass(slots=True)
class _SampledLine:
    block_addr: int
    signature: int
    timestamp: int


class MockingjayPolicy(ReplacementPolicy):
    """Reuse-distance-prediction replacement with integrated bypassing."""

    name = "mockingjay"

    def __init__(self, sampled_sets: int = 64, bypass: bool = True) -> None:
        super().__init__()
        self._sampled_target = sampled_sets
        self._bypass_enabled = bypass
        self._rdp: Dict[int, int] = {}
        self._sampler: Dict[int, List[_SampledLine]] = {}
        self._set_clock: Dict[int, int] = {}
        self._etr: List[List[int]] = []

    def attach(self, num_sets: int, num_ways: int) -> None:
        super().attach(num_sets, num_ways)
        self._etr = [[ETR_MAX] * num_ways for _ in range(num_sets)]
        sampled = choose_sampled_sets(num_sets, self._sampled_target)
        # The sampled cache mirrors associativity but holds ~2x tags so
        # reuse beyond the cache's own lifetime is still observed.
        self._sampler = {s: [] for s in sampled}
        self._set_clock = {s: 0 for s in sampled}

    # --- RDP ------------------------------------------------------------------

    def _signature(self, info: AccessInfo) -> int:
        return fold_hash(
            info.pc * 2 + (1 if info.type == PREFETCH else 0), SIGNATURE_BITS
        )

    def _predict_rd(self, signature: int) -> int:
        return self._rdp.get(signature, INF_RD // 2)

    def _train_rd(self, signature: int, observed: int) -> None:
        observed = min(observed, INF_RD)
        current = self._rdp.get(signature, observed)
        if observed > current:
            updated = min(INF_RD, current + max(1, (observed - current) // 2))
        elif observed < current:
            updated = max(0, current - max(1, (current - observed) // 2))
        else:
            updated = current
        self._rdp[signature] = updated

    # --- sampled cache ------------------------------------------------------------

    def _observe_sampled(self, info: AccessInfo) -> None:
        lines = self._sampler.get(info.set_index)
        if lines is None or info.type == WRITEBACK:
            return
        now = self._set_clock[info.set_index]
        self._set_clock[info.set_index] = now + 1
        for line in lines:
            if line.block_addr == info.block_addr:
                self._train_rd(line.signature, now - line.timestamp)
                line.signature = self._signature(info)
                line.timestamp = now
                return
        # Miss in the sampler: install, evicting the stalest entry and
        # training it toward "never reused".
        capacity = 2 * self.num_ways
        if len(lines) >= capacity:
            stalest = min(lines, key=lambda l: l.timestamp)
            self._train_rd(stalest.signature, INF_RD)
            lines.remove(stalest)
        lines.append(_SampledLine(info.block_addr, self._signature(info), now))

    # --- ETR machinery ------------------------------------------------------------

    def _age_set(self, set_index: int) -> None:
        etr = self._etr[set_index]
        for way in range(len(etr)):
            if etr[way] > -ETR_MAX:
                etr[way] -= 1

    def _etr_for(self, info: AccessInfo) -> int:
        rd = self._predict_rd(self._signature(info))
        return min(ETR_MAX, max(1, rd // ETR_GRANULARITY))

    def _victim_way(self, set_index: int, blocks: Sequence[CacheBlock]) -> int:
        etr = self._etr[set_index]
        best_way, best_score = 0, -1
        for way in range(len(etr)):
            score = abs(etr[way])
            if score > best_score:
                best_way, best_score = way, score
        return best_way

    # --- policy hooks ------------------------------------------------------------

    def should_bypass(self, info: AccessInfo) -> bool:
        if not self._bypass_enabled or info.type == WRITEBACK:
            return False
        self._observe_sampled(info)
        rd = self._predict_rd(self._signature(info))
        if rd >= INF_RD:
            return True
        incoming_etr = min(ETR_MAX, max(1, rd // ETR_GRANULARITY))
        etr = self._etr[info.set_index]
        victim_score = max(abs(v) for v in etr) if etr else 0
        return incoming_etr > victim_score

    def find_victim(self, info: AccessInfo, blocks: Sequence[CacheBlock]) -> int:
        return self._victim_way(info.set_index, blocks)

    def on_hit(self, info: AccessInfo, blocks: Sequence[CacheBlock], way: int) -> None:
        if info.type == WRITEBACK:
            return
        self._observe_sampled(info)
        self._age_set(info.set_index)
        self._etr[info.set_index][way] = self._etr_for(info)

    def on_fill(self, info: AccessInfo, blocks: Sequence[CacheBlock], way: int) -> None:
        s = info.set_index
        self._age_set(s)
        if info.type == WRITEBACK:
            self._etr[s][way] = ETR_MAX  # writebacks are low priority
            return
        # Note: should_bypass() already recorded this access in the
        # sampled cache when it ran; fills reached here chose to cache.
        self._etr[s][way] = self._etr_for(info)

    def storage_overhead_bits(self) -> int:
        rdp = (1 << SIGNATURE_BITS) * 8
        sampler = len(self._sampler) * 2 * self.num_ways * (16 + SIGNATURE_BITS + 8)
        per_block = 8  # signed ETR
        return rdp + sampler + self.num_sets * self.num_ways * per_block
