"""Random replacement — a sanity baseline used by tests and examples."""

from __future__ import annotations

import random
from typing import Sequence

from ..access import AccessInfo
from ..block import CacheBlock
from .base import ReplacementPolicy


class RandomPolicy(ReplacementPolicy):
    """Evict a uniformly random way (deterministic under a fixed seed)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._rng = random.Random(seed)

    def find_victim(self, info: AccessInfo, blocks: Sequence[CacheBlock]) -> int:
        return self._rng.randrange(len(blocks))
