"""Hawkeye cache replacement (Jain & Lin, ISCA 2016 — paper ref [21]).

Structure follows the published design:

* **OPTgen** on 64 sampled sets reconstructs Belady-OPT hit/miss
  verdicts for past insertions (see :mod:`.optgen`);
* a **PC-indexed predictor** of 3-bit saturating counters classifies
  each load as cache-friendly or cache-averse (binary classification,
  as Sec. II-A of the CHROME paper describes), with separate signatures
  for demand and prefetch accesses (the CRC-2 prefetch-aware variant);
* **replacement** uses 3-bit RRPV: friendly lines insert at 0, averse
  at 7; averse lines are evicted first; evicting a friendly line
  detrains the PC that inserted it.

Hawkeye neither bypasses nor uses concurrency feedback (Table IV).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..access import PREFETCH, WRITEBACK, AccessInfo
from ..address import fold_hash
from ..block import CacheBlock
from .base import ReplacementPolicy, oldest_way
from .optgen import OPTgen, choose_sampled_sets

RRPV_MAX = 7  # 3-bit
PREDICTOR_BITS = 13
COUNTER_MAX = 7
FRIENDLY_THRESHOLD = 4


class HawkeyePolicy(ReplacementPolicy):
    """Belady-OPT-mimicking replacement with a PC classifier."""

    name = "hawkeye"

    def __init__(self, sampled_sets: int = 64) -> None:
        super().__init__()
        self._sampled_target = sampled_sets
        self._predictor: Dict[int, int] = {}
        self._optgen: Dict[int, OPTgen] = {}
        self._rrpv: List[List[int]] = []
        self._friendly: List[List[bool]] = []
        self._fill_sig: List[List[int]] = []

    def attach(self, num_sets: int, num_ways: int) -> None:
        super().attach(num_sets, num_ways)
        self._rrpv = [[RRPV_MAX] * num_ways for _ in range(num_sets)]
        self._friendly = [[False] * num_ways for _ in range(num_sets)]
        self._fill_sig = [[0] * num_ways for _ in range(num_sets)]
        self._optgen = {
            s: OPTgen(num_ways) for s in choose_sampled_sets(num_sets, self._sampled_target)
        }

    # --- prediction -----------------------------------------------------

    def _signature(self, pc: int, is_prefetch: bool) -> int:
        return fold_hash(pc * 2 + (1 if is_prefetch else 0), PREDICTOR_BITS)

    def _predict_friendly(self, info: AccessInfo) -> bool:
        sig = self._signature(info.pc, info.type == PREFETCH)
        return self._predictor.get(sig, FRIENDLY_THRESHOLD) >= FRIENDLY_THRESHOLD

    def _train(self, pc: int, was_prefetch: bool, opt_hit: bool) -> None:
        sig = self._signature(pc, was_prefetch)
        counter = self._predictor.get(sig, FRIENDLY_THRESHOLD)
        if opt_hit:
            counter = min(COUNTER_MAX, counter + 1)
        else:
            counter = max(0, counter - 1)
        self._predictor[sig] = counter

    def _observe_sampled(self, info: AccessInfo) -> None:
        gen = self._optgen.get(info.set_index)
        if gen is None or info.type == WRITEBACK:
            return
        for opt_hit, train_pc, was_prefetch, _addr in gen.access(
            info.block_addr, info.pc, info.type == PREFETCH
        ):
            self._train(train_pc, was_prefetch, opt_hit)

    # --- policy hooks ------------------------------------------------------

    def find_victim(self, info: AccessInfo, blocks: Sequence[CacheBlock]) -> int:
        rrpv = self._rrpv[info.set_index]
        # Evict a cache-averse line first (RRPV saturated).
        best_way, best_rrpv = 0, -1
        for way, value in enumerate(rrpv):
            if value == RRPV_MAX:
                return way
            if value > best_rrpv:
                best_way, best_rrpv = way, value
        # All lines friendly: evict the stalest and detrain its PC.
        victim = oldest_way(blocks)
        sig = self._fill_sig[info.set_index][victim]
        counter = self._predictor.get(sig, FRIENDLY_THRESHOLD)
        self._predictor[sig] = max(0, counter - 1)
        return victim

    def on_hit(self, info: AccessInfo, blocks: Sequence[CacheBlock], way: int) -> None:
        self._observe_sampled(info)
        if info.type == WRITEBACK:
            return
        s = info.set_index
        friendly = self._predict_friendly(info)
        self._friendly[s][way] = friendly
        self._rrpv[s][way] = 0 if friendly else RRPV_MAX

    def on_fill(self, info: AccessInfo, blocks: Sequence[CacheBlock], way: int) -> None:
        self._observe_sampled(info)
        s = info.set_index
        if info.type == WRITEBACK:
            self._rrpv[s][way] = RRPV_MAX
            self._friendly[s][way] = False
            self._fill_sig[s][way] = 0
            return
        friendly = self._predict_friendly(info)
        self._friendly[s][way] = friendly
        self._fill_sig[s][way] = self._signature(info.pc, info.type == PREFETCH)
        if friendly:
            # Age other friendly lines so the victim scan can order them.
            rrpv = self._rrpv[s]
            for w in range(len(rrpv)):
                if w != way and rrpv[w] < RRPV_MAX - 1:
                    rrpv[w] += 1
            rrpv[way] = 0
        else:
            self._rrpv[s][way] = RRPV_MAX

    def storage_overhead_bits(self) -> int:
        predictor = (1 << PREDICTOR_BITS) * 3
        per_block = 3 + 1 + PREDICTOR_BITS  # rrpv + friendly + signature
        sampler = len(self._optgen) * self.num_ways * 8 * 16  # occupancy history
        return predictor + sampler + self.num_sets * self.num_ways * per_block
