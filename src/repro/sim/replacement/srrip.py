"""SRRIP / BRRIP / DRRIP re-reference interval prediction policies.

Jaleel et al., ISCA 2010 (paper reference [23]).  Not one of the five
headline schemes, but the EPV machinery CHROME builds on is an RRPV
counter, so these serve both as extra baselines and as the reference
semantics for EPV aging used elsewhere in the repo.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..access import AccessInfo
from ..block import CacheBlock
from .base import ReplacementPolicy

RRPV_BITS = 2
RRPV_MAX = (1 << RRPV_BITS) - 1  # 3
RRPV_LONG = RRPV_MAX - 1  # 2


class SRRIPPolicy(ReplacementPolicy):
    """Static RRIP: insert with long re-reference interval, promote on hit."""

    name = "srrip"

    def __init__(self) -> None:
        super().__init__()
        self._rrpv: List[List[int]] = []

    def attach(self, num_sets: int, num_ways: int) -> None:
        super().attach(num_sets, num_ways)
        self._rrpv = [[RRPV_MAX] * num_ways for _ in range(num_sets)]

    def _insertion_rrpv(self, info: AccessInfo) -> int:
        return RRPV_LONG

    def find_victim(self, info: AccessInfo, blocks: Sequence[CacheBlock]) -> int:
        rrpv = self._rrpv[info.set_index]
        while True:
            for way, value in enumerate(rrpv):
                if value >= RRPV_MAX:
                    return way
            for way in range(len(rrpv)):
                rrpv[way] += 1

    def on_hit(self, info: AccessInfo, blocks: Sequence[CacheBlock], way: int) -> None:
        self._rrpv[info.set_index][way] = 0

    def on_fill(self, info: AccessInfo, blocks: Sequence[CacheBlock], way: int) -> None:
        self._rrpv[info.set_index][way] = self._insertion_rrpv(info)

    def storage_overhead_bits(self) -> int:
        return self.num_sets * self.num_ways * RRPV_BITS


class BRRIPPolicy(SRRIPPolicy):
    """Bimodal RRIP: mostly-distant insertion to resist thrashing."""

    name = "brrip"

    def __init__(self, long_probability: float = 1.0 / 32.0, seed: int = 7) -> None:
        super().__init__()
        self._long_probability = long_probability
        self._rng = random.Random(seed)

    def _insertion_rrpv(self, info: AccessInfo) -> int:
        if self._rng.random() < self._long_probability:
            return RRPV_LONG
        return RRPV_MAX


class DRRIPPolicy(SRRIPPolicy):
    """Dynamic RRIP with set-dueling between SRRIP and BRRIP."""

    name = "drrip"

    def __init__(
        self,
        dueling_sets: int = 32,
        long_probability: float = 1.0 / 32.0,
        seed: int = 7,
    ) -> None:
        super().__init__()
        self._dueling_sets = dueling_sets
        self._long_probability = long_probability
        self._rng = random.Random(seed)
        self._psel = 0  # >0 favors BRRIP, <=0 favors SRRIP
        self._psel_max = 1023
        self._srrip_sets: set[int] = set()
        self._brrip_sets: set[int] = set()

    def attach(self, num_sets: int, num_ways: int) -> None:
        super().attach(num_sets, num_ways)
        rng = random.Random(12345)
        sets = rng.sample(range(num_sets), min(2 * self._dueling_sets, num_sets))
        half = len(sets) // 2
        self._srrip_sets = set(sets[:half])
        self._brrip_sets = set(sets[half:])

    def _insertion_rrpv(self, info: AccessInfo) -> int:
        s = info.set_index
        if s in self._srrip_sets:
            use_brrip = False
        elif s in self._brrip_sets:
            use_brrip = True
        else:
            use_brrip = self._psel > 0
        if not use_brrip:
            return RRPV_LONG
        if self._rng.random() < self._long_probability:
            return RRPV_LONG
        return RRPV_MAX

    def on_fill(self, info: AccessInfo, blocks: Sequence[CacheBlock], way: int) -> None:
        # A miss in a dueling set votes against that set's policy.
        s = info.set_index
        if s in self._srrip_sets and self._psel < self._psel_max:
            self._psel += 1
        elif s in self._brrip_sets and self._psel > -self._psel_max:
            self._psel -= 1
        super().on_fill(info, blocks, way)
