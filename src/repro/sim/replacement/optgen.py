"""OPTgen — Belady's-OPT emulation on sampled sets.

Shared infrastructure for Hawkeye [21] and Glider [44]: both train
their predictors from the decisions Belady's optimal policy *would*
have made, reconstructed online with the OPTgen occupancy-vector
algorithm (Jain & Lin, ISCA 2016).

For each sampled set we keep a sliding window of "time quanta" (one
per access to that set) and an occupancy count per quantum.  When
address X is accessed at time t and was previously accessed at t0
within the window, OPT would have hit iff every quantum in [t0, t) has
spare capacity; in that case the interval's occupancy is incremented
(the line would have been cached across it).

Tracked addresses that age out of the window without a re-access are
**timed out**: OPT would not have cached them, so their last-access PC
trains as an OPT miss.  This is the path that detrains streaming /
single-use PCs (they are never re-accessed, so re-access-driven
training alone would never see them), and it also bounds the tracker's
memory to one window of addresses.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Tuple

#: one OPTgen training verdict: (opt_would_hit, pc, was_prefetch, block_addr)
Verdict = Tuple[bool, int, bool, int]


@dataclass(slots=True)
class _LastAccess:
    time: int
    pc: int
    was_prefetch: bool


class OPTgen:
    """Occupancy-vector OPT oracle for one sampled cache set."""

    def __init__(self, cache_ways: int, history_quanta: int | None = None) -> None:
        self.ways = cache_ways
        self.window = history_quanta or 8 * cache_ways
        self._occupancy = [0] * self.window
        self._time = 0
        # ordered by last-access time (re-insertions move to the end)
        self._last: "OrderedDict[int, _LastAccess]" = OrderedDict()
        self.opt_hits = 0
        self.opt_misses = 0

    def access(self, block_addr: int, pc: int, is_prefetch: bool) -> List[Verdict]:
        """Record an access; return all training verdicts it produces.

        Verdicts cover (a) the previous access to this block, judged by
        the occupancy vector, and (b) any tracked blocks whose last
        access just aged out of the window (OPT misses by timeout).
        Each verdict names the PC whose insertion decision OPT judged.
        """
        verdicts: List[Verdict] = []
        t = self._time
        self._time += 1
        self._occupancy[t % self.window] = 0  # new quantum starts empty

        # Timeout sweep: entries whose window has fully passed.
        horizon = t - self.window
        while self._last:
            addr, entry = next(iter(self._last.items()))
            if entry.time > horizon:
                break
            del self._last[addr]
            self.opt_misses += 1
            verdicts.append((False, entry.pc, entry.was_prefetch, addr))

        prev = self._last.pop(block_addr, None)
        self._last[block_addr] = _LastAccess(t, pc, is_prefetch)

        if prev is not None:
            # Still inside the window (older entries were timed out above).
            fits = True
            for q in range(prev.time, t):
                if self._occupancy[q % self.window] >= self.ways:
                    fits = False
                    break
            if fits:
                for q in range(prev.time, t):
                    self._occupancy[q % self.window] += 1
                self.opt_hits += 1
            else:
                self.opt_misses += 1
            verdicts.append((fits, prev.pc, prev.was_prefetch, block_addr))
        return verdicts

    @property
    def opt_hit_rate(self) -> float:
        total = self.opt_hits + self.opt_misses
        return self.opt_hits / total if total else 0.0

    @property
    def tracked(self) -> int:
        return len(self._last)


def choose_sampled_sets(num_sets: int, target: int = 64) -> set[int]:
    """Evenly spread ``target`` sampled sets across the cache.

    The paper (and Hawkeye/Mockingjay/CARE before it) observes that
    access patterns are consistent across sets, so a static, evenly
    strided sample is standard practice.
    """
    if target <= 0:
        return set()
    if num_sets <= target:
        return set(range(num_sets))
    stride = num_sets // target
    return set((i * stride) % num_sets for i in range(target))
