"""Replacement/bypass policy interface for the shared LLC.

Every scheme the paper compares (LRU, Hawkeye, Glider, Mockingjay,
CARE, CHROME) is implemented against this interface.  The cache calls
the hooks in a fixed order:

* on every lookup the cache resolves hit/miss itself, then
* **hit** → :meth:`on_hit` (policy updates recency/EPV state);
* **miss** → :meth:`should_bypass`; if False → :meth:`find_victim`,
  then :meth:`on_eviction` for a valid victim, then :meth:`on_fill`.

Policies that integrate bypassing (Mockingjay, CHROME) override
:meth:`should_bypass`; the rest inherit the never-bypass default,
mirroring the "Holistic" column of Table IV.
"""

from __future__ import annotations

from typing import List, Sequence

from ..access import AccessInfo
from ..block import CacheBlock


class ReplacementPolicy:
    """Abstract LLC management policy."""

    #: human-readable scheme name used in reports
    name = "base"

    def __init__(self) -> None:
        self.num_sets = 0
        self.num_ways = 0

    def attach(self, num_sets: int, num_ways: int) -> None:
        """Called once by the cache to size per-set policy state."""
        self.num_sets = num_sets
        self.num_ways = num_ways

    # --- decision hooks ---------------------------------------------------

    def should_bypass(self, info: AccessInfo) -> bool:
        """Decide whether a missing block should skip the cache."""
        return False

    def find_victim(self, info: AccessInfo, blocks: Sequence[CacheBlock]) -> int:
        """Return the way to evict in ``info.set_index`` (invalid ways
        are chosen by the cache itself; this is only called when the
        set is full)."""
        raise NotImplementedError

    # --- training hooks ----------------------------------------------------

    def on_hit(self, info: AccessInfo, blocks: Sequence[CacheBlock], way: int) -> None:
        """A lookup hit way ``way``."""

    def on_fill(self, info: AccessInfo, blocks: Sequence[CacheBlock], way: int) -> None:
        """A new block was installed in way ``way``."""

    def on_eviction(
        self, info: AccessInfo, blocks: Sequence[CacheBlock], way: int
    ) -> None:
        """The valid block in way ``way`` is about to be replaced."""

    # --- system feedback ----------------------------------------------------

    def observe_epoch(self, obstructed_cores: List[bool]) -> None:
        """Concurrency feedback: per-core LLC-obstruction flags for the
        epoch that just ended (Sec. IV-C).  Only concurrency-aware
        policies (CARE, CHROME) use this."""

    # --- bookkeeping ----------------------------------------------------------

    def storage_overhead_bits(self) -> int:
        """Model the hardware storage cost of this policy (Table IV).

        Policies report the cost of their metadata structures; per-block
        state riding in the cache arrays (recency/EPV bits) is included
        here too so totals are directly comparable with the paper.
        """
        return 0


def oldest_way(blocks: Sequence[CacheBlock]) -> int:
    """Utility: way with the smallest ``last_touch`` (true-LRU victim)."""
    victim = 0
    oldest = blocks[0].last_touch
    for way in range(1, len(blocks)):
        if blocks[way].last_touch < oldest:
            oldest = blocks[way].last_touch
            victim = way
    return victim
