"""Glider cache replacement (Shi et al., MICRO 2019 — paper ref [44]).

Glider's insight: an attention-based LSTM trained offline on Belady-OPT
labels can be distilled into a simple online model — an **Integer
Support Vector Machine (ISVM)** over the history of recent PCs.  We
implement that practical online version:

* a per-core **PC History Register (PCHR)** holds the last 5 distinct
  load PCs;
* an **ISVM table** indexed by (hashed) current PC holds 16 small
  integer weights; each PC in the PCHR hashes to one weight, and the
  prediction is the sum of the selected weights;
* **training labels** come from OPTgen on sampled sets, exactly as in
  Hawkeye; weights are incremented on OPT-hit and decremented on
  OPT-miss, with updates suppressed once the margin exceeds a training
  threshold (the fixed-margin perceptron/SVM rule);
* **replacement** maps the prediction to RRPV: confident-friendly
  inserts at 0, confident-averse at 7, uncertain at an intermediate
  value.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Sequence, Tuple

from ..access import PREFETCH, WRITEBACK, AccessInfo
from ..address import fold_hash
from ..block import CacheBlock
from .base import ReplacementPolicy, oldest_way
from .optgen import OPTgen, choose_sampled_sets

RRPV_MAX = 7
ISVM_TABLE_BITS = 11  # 2048 ISVMs
ISVM_WEIGHTS = 17  # 16 history-hash weights + 1 always-on bias
BIAS_WEIGHT = 16
WEIGHT_CLAMP = 15
PREDICT_THRESHOLD_HIGH = 12  # >= : confidently cache-friendly
TRAIN_MARGIN = 30  # stop updating once |sum| exceeds this
PCHR_LENGTH = 5


class GliderPolicy(ReplacementPolicy):
    """Online ISVM over PC history, trained against Belady-OPT."""

    name = "glider"

    def __init__(self, sampled_sets: int = 64, num_cores: int = 16) -> None:
        super().__init__()
        self._sampled_target = sampled_sets
        self._isvm: Dict[int, List[int]] = {}
        self._optgen: Dict[int, OPTgen] = {}
        self._pchr: List[Deque[int]] = [deque(maxlen=PCHR_LENGTH) for _ in range(num_cores)]
        self._rrpv: List[List[int]] = []
        # Remember the (table index, weight indices) active when each
        # sampled-set access happened so OPTgen verdicts train the right
        # weights later.
        self._pending: Dict[Tuple[int, int], Tuple[int, Tuple[int, ...]]] = {}
        self._num_cores = num_cores

    def attach(self, num_sets: int, num_ways: int) -> None:
        super().attach(num_sets, num_ways)
        self._rrpv = [[RRPV_MAX] * num_ways for _ in range(num_sets)]
        self._optgen = {
            s: OPTgen(num_ways)
            for s in choose_sampled_sets(num_sets, self._sampled_target)
        }
        # Each sampler tracks at most one window of addresses; size the
        # pending-feature store to cover all of them.
        self._pending_cap = max(1, len(self._optgen)) * (8 * num_ways + 1)

    # --- ISVM ---------------------------------------------------------------

    def _features(self, info: AccessInfo) -> Tuple[int, Tuple[int, ...]]:
        """(ISVM table index for the current PC, weight indices from PCHR)."""
        table_idx = fold_hash(
            info.pc * 2 + (1 if info.type == PREFETCH else 0), ISVM_TABLE_BITS
        )
        core = info.core % self._num_cores
        history = self._pchr[core]
        # The always-on bias weight keeps a per-PC prior even when the
        # history register carries little information.
        weight_idxs = (BIAS_WEIGHT,) + tuple(fold_hash(pc, 4) for pc in history)
        return table_idx, weight_idxs

    def _predict(self, table_idx: int, weight_idxs: Tuple[int, ...]) -> int:
        weights = self._isvm.get(table_idx)
        if weights is None:
            return 0
        return sum(weights[w] for w in weight_idxs)

    def _train(
        self, table_idx: int, weight_idxs: Tuple[int, ...], opt_hit: bool
    ) -> None:
        weights = self._isvm.setdefault(table_idx, [0] * ISVM_WEIGHTS)
        current = sum(weights[w] for w in weight_idxs)
        # Fixed-margin rule: once confidently correct, stop growing.
        if opt_hit and current > TRAIN_MARGIN:
            return
        if not opt_hit and current < -TRAIN_MARGIN:
            return
        delta = 1 if opt_hit else -1
        for w in weight_idxs:
            updated = weights[w] + delta
            weights[w] = max(-WEIGHT_CLAMP, min(WEIGHT_CLAMP, updated))

    def _update_pchr(self, info: AccessInfo) -> None:
        core = info.core % self._num_cores
        history = self._pchr[core]
        if info.pc in history:
            history.remove(info.pc)
        history.append(info.pc)

    # --- OPTgen training --------------------------------------------------

    def _observe_sampled(
        self, info: AccessInfo, features: Tuple[int, Tuple[int, ...]]
    ) -> None:
        gen = self._optgen.get(info.set_index)
        if gen is None or info.type == WRITEBACK:
            return
        for opt_hit, _pc, _was_prefetch, addr in gen.access(
            info.block_addr, info.pc, info.type == PREFETCH
        ):
            # Train the ISVM features recorded when that access happened
            # (timeout verdicts train the aged-out block's features).
            pending = self._pending.pop((info.set_index, addr), None)
            if pending is not None:
                self._train(pending[0], pending[1], opt_hit)
        self._pending[(info.set_index, info.block_addr)] = features
        if len(self._pending) > self._pending_cap:
            self._pending.pop(next(iter(self._pending)))

    # --- policy hooks ------------------------------------------------------------

    def _insertion_rrpv(self, prediction: int) -> int:
        if prediction >= PREDICT_THRESHOLD_HIGH:
            return 0
        if prediction < 0:
            return RRPV_MAX
        return 2

    def find_victim(self, info: AccessInfo, blocks: Sequence[CacheBlock]) -> int:
        rrpv = self._rrpv[info.set_index]
        for way, value in enumerate(rrpv):
            if value == RRPV_MAX:
                return way
        best_way, best_value = 0, -1
        for way, value in enumerate(rrpv):
            if value > best_value:
                best_way, best_value = way, value
        if best_value < RRPV_MAX - 1:
            return oldest_way(blocks)
        return best_way

    def on_hit(self, info: AccessInfo, blocks: Sequence[CacheBlock], way: int) -> None:
        if info.type == WRITEBACK:
            return
        features = self._features(info)
        self._observe_sampled(info, features)
        prediction = self._predict(*features)
        self._rrpv[info.set_index][way] = self._insertion_rrpv(prediction)
        self._update_pchr(info)

    def on_fill(self, info: AccessInfo, blocks: Sequence[CacheBlock], way: int) -> None:
        s = info.set_index
        if info.type == WRITEBACK:
            self._rrpv[s][way] = RRPV_MAX
            return
        features = self._features(info)
        self._observe_sampled(info, features)
        prediction = self._predict(*features)
        insertion = self._insertion_rrpv(prediction)
        if insertion == 0:
            rrpv = self._rrpv[s]
            for w in range(len(rrpv)):
                if w != way and rrpv[w] < RRPV_MAX - 1:
                    rrpv[w] += 1
        self._rrpv[s][way] = insertion
        self._update_pchr(info)

    def storage_overhead_bits(self) -> int:
        isvm = (1 << ISVM_TABLE_BITS) * ISVM_WEIGHTS * 8
        per_block = 3
        sampler = len(self._optgen) * self.num_ways * 8 * 16
        pchr = self._num_cores * PCHR_LENGTH * 16
        return isvm + sampler + pchr + self.num_sets * self.num_ways * per_block
