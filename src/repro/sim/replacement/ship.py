"""SHiP++-style signature-based hit predictor (related work, Sec. VIII).

Wu et al., MICRO 2011 [55] with the SHiP++ refinements of Young et al.
[58]: PC-signature-indexed saturating counters (SHCT) trained on
sampled sets, prefetch-aware signatures, and SHCT updates only on the
first re-reference.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..access import PREFETCH, WRITEBACK, AccessInfo
from ..address import fold_hash
from ..block import CacheBlock
from .base import ReplacementPolicy
from .srrip import RRPV_LONG, RRPV_MAX


class SHiPPolicy(ReplacementPolicy):
    """Signature Hit Predictor over RRIP eviction machinery."""

    name = "ship++"

    SHCT_BITS = 14
    SHCT_MAX = 7  # 3-bit counters

    def __init__(self, sampled_sets: int = 64) -> None:
        super().__init__()
        self._sampled_sets_target = sampled_sets
        self._shct: Dict[int, int] = {}
        self._rrpv: List[List[int]] = []
        self._sig: List[List[int]] = []  # per-block fill signature
        self._outcome: List[List[bool]] = []  # reused since fill?
        self._sampled: set[int] = set()

    def attach(self, num_sets: int, num_ways: int) -> None:
        super().attach(num_sets, num_ways)
        self._rrpv = [[RRPV_MAX] * num_ways for _ in range(num_sets)]
        self._sig = [[0] * num_ways for _ in range(num_sets)]
        self._outcome = [[False] * num_ways for _ in range(num_sets)]
        stride = max(1, num_sets // max(1, self._sampled_sets_target))
        self._sampled = set(range(0, num_sets, stride))

    def _signature(self, info: AccessInfo) -> int:
        base = info.pc * 2 + (1 if info.type == PREFETCH else 0)
        return fold_hash(base, self.SHCT_BITS)

    def find_victim(self, info: AccessInfo, blocks: Sequence[CacheBlock]) -> int:
        rrpv = self._rrpv[info.set_index]
        while True:
            for way, value in enumerate(rrpv):
                if value >= RRPV_MAX:
                    return way
            for way in range(len(rrpv)):
                rrpv[way] += 1

    def on_hit(self, info: AccessInfo, blocks: Sequence[CacheBlock], way: int) -> None:
        s = info.set_index
        self._rrpv[s][way] = 0
        if s in self._sampled and not self._outcome[s][way]:
            # SHiP++: train only on the first re-reference.
            sig = self._sig[s][way]
            self._shct[sig] = min(self.SHCT_MAX, self._shct.get(sig, 1) + 1)
        self._outcome[s][way] = True

    def on_fill(self, info: AccessInfo, blocks: Sequence[CacheBlock], way: int) -> None:
        s = info.set_index
        sig = self._signature(info)
        self._sig[s][way] = sig
        self._outcome[s][way] = False
        if info.type == WRITEBACK:
            self._rrpv[s][way] = RRPV_MAX
            return
        counter = self._shct.get(sig, 1)
        if counter == 0:
            self._rrpv[s][way] = RRPV_MAX  # predicted dead on arrival
        elif counter >= self.SHCT_MAX:
            self._rrpv[s][way] = 0
        else:
            self._rrpv[s][way] = RRPV_LONG

    def on_eviction(
        self, info: AccessInfo, blocks: Sequence[CacheBlock], way: int
    ) -> None:
        s = info.set_index
        if s in self._sampled and not self._outcome[s][way]:
            sig = self._sig[s][way]
            self._shct[sig] = max(0, self._shct.get(sig, 1) - 1)

    def storage_overhead_bits(self) -> int:
        shct_bits = (1 << self.SHCT_BITS) * 3
        per_block = RRPV_MAX.bit_length() + self.SHCT_BITS + 1
        return shct_bits + self.num_sets * self.num_ways * per_block
