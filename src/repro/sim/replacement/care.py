"""CARE — Concurrency-Aware Enhanced lightweight cache management
(Lu, Wang & Sun, HPCA 2023 — paper ref [35]).

CARE is the paper's representative of a **concurrency-aware but
non-holistic** scheme (Table IV: holistic no, concurrency yes).  It
differs from reuse-distance schemes by weighing *miss cost*, not just
miss count: in systems with many overlapped accesses, some misses are
cheap (hidden by concurrency) and some are costly (pure misses).  CARE
biases its insertion and hit-promotion decisions with C-AMAT-derived
feedback so that blocks whose misses would be costly are retained
preferentially.

Our implementation keeps CARE's published decision structure:

* a sampled-set-trained **reuse predictor** (PC-signature saturating
  counters) supplies the locality component;
* the **concurrency component** is the per-core LLC-obstruction signal
  delivered each 100K-cycle epoch via :meth:`observe_epoch` — the same
  C-AMAT machinery CHROME consumes (Sec. II-C);
* **insertion**: predicted-reusable lines insert near-MRU, but if the
  requesting core is currently LLC-obstructed (caching buys it little),
  insertion is demoted one level; predicted-non-reusable lines insert
  at distant priority, demoted to immediate-eviction priority when the
  core is obstructed;
* **hit promotion**: full promotion for non-obstructed cores, partial
  promotion otherwise.

CARE does not bypass.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..access import PREFETCH, WRITEBACK, AccessInfo
from ..address import fold_hash
from ..block import CacheBlock
from .base import ReplacementPolicy
from .optgen import choose_sampled_sets
from .srrip import RRPV_MAX

SIGNATURE_BITS = 13
COUNTER_MAX = 7
REUSE_THRESHOLD = 4


class CAREPolicy(ReplacementPolicy):
    """Concurrency-aware insertion/promotion over RRIP machinery."""

    name = "care"

    def __init__(self, sampled_sets: int = 64, num_cores: int = 16) -> None:
        super().__init__()
        self._sampled_target = sampled_sets
        self._num_cores = num_cores
        self._predictor: Dict[int, int] = {}
        self._rrpv: List[List[int]] = []
        self._sig: List[List[int]] = []
        self._reused: List[List[bool]] = []
        self._sampled: set[int] = set()
        self._obstructed: List[bool] = [False] * num_cores

    def attach(self, num_sets: int, num_ways: int) -> None:
        super().attach(num_sets, num_ways)
        self._rrpv = [[RRPV_MAX] * num_ways for _ in range(num_sets)]
        self._sig = [[0] * num_ways for _ in range(num_sets)]
        self._reused = [[False] * num_ways for _ in range(num_sets)]
        self._sampled = choose_sampled_sets(num_sets, self._sampled_target)

    # --- concurrency feedback -------------------------------------------------

    def observe_epoch(self, obstructed_cores: List[bool]) -> None:
        for i, flag in enumerate(obstructed_cores[: self._num_cores]):
            self._obstructed[i] = flag

    def _core_obstructed(self, core: int) -> bool:
        return self._obstructed[core % self._num_cores]

    # --- reuse predictor ------------------------------------------------------

    def _signature(self, info: AccessInfo) -> int:
        return fold_hash(
            info.pc * 2 + (1 if info.type == PREFETCH else 0), SIGNATURE_BITS
        )

    def _predict_reusable(self, info: AccessInfo) -> bool:
        sig = self._signature(info)
        return self._predictor.get(sig, REUSE_THRESHOLD) >= REUSE_THRESHOLD

    # --- policy hooks ------------------------------------------------------------

    def find_victim(self, info: AccessInfo, blocks: Sequence[CacheBlock]) -> int:
        rrpv = self._rrpv[info.set_index]
        while True:
            for way, value in enumerate(rrpv):
                if value >= RRPV_MAX:
                    return way
            for way in range(len(rrpv)):
                rrpv[way] += 1

    def on_hit(self, info: AccessInfo, blocks: Sequence[CacheBlock], way: int) -> None:
        s = info.set_index
        if info.type == WRITEBACK:
            return
        if s in self._sampled and not self._reused[s][way]:
            sig = self._sig[s][way]
            counter = self._predictor.get(sig, REUSE_THRESHOLD)
            self._predictor[sig] = min(COUNTER_MAX, counter + 1)
        self._reused[s][way] = True
        if self._core_obstructed(info.core):
            # Partial promotion: the hit was likely overlapped/cheap.
            self._rrpv[s][way] = max(0, self._rrpv[s][way] - 1)
        else:
            self._rrpv[s][way] = 0

    def on_fill(self, info: AccessInfo, blocks: Sequence[CacheBlock], way: int) -> None:
        s = info.set_index
        self._sig[s][way] = self._signature(info)
        self._reused[s][way] = False
        if info.type == WRITEBACK:
            self._rrpv[s][way] = RRPV_MAX
            return
        reusable = self._predict_reusable(info)
        obstructed = self._core_obstructed(info.core)
        if reusable:
            self._rrpv[s][way] = 1 if obstructed else 0
        else:
            self._rrpv[s][way] = RRPV_MAX if obstructed else RRPV_MAX - 1

    def on_eviction(
        self, info: AccessInfo, blocks: Sequence[CacheBlock], way: int
    ) -> None:
        s = info.set_index
        if s in self._sampled and not self._reused[s][way]:
            sig = self._sig[s][way]
            counter = self._predictor.get(sig, REUSE_THRESHOLD)
            self._predictor[sig] = max(0, counter - 1)

    def storage_overhead_bits(self) -> int:
        predictor = (1 << SIGNATURE_BITS) * 3
        per_block = 3 + SIGNATURE_BITS + 1
        camat_counters = self._num_cores * 2 * 32
        return predictor + camat_counters + self.num_sets * self.num_ways * per_block
