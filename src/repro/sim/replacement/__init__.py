"""LLC management policies: the paper's baseline, its four
state-of-the-art comparators, and extra classical baselines.

Use :func:`make_policy` to build any scheme by name — this is the
registry the experiment harness and examples go through.
"""

from __future__ import annotations

from typing import Callable, Dict

from .base import ReplacementPolicy, oldest_way
from .care import CAREPolicy
from .glider import GliderPolicy
from .hawkeye import HawkeyePolicy
from .lru import LRUPolicy
from .mockingjay import MockingjayPolicy
from .optgen import OPTgen, choose_sampled_sets
from .random_policy import RandomPolicy
from .ship import SHiPPolicy
from .srrip import BRRIPPolicy, DRRIPPolicy, SRRIPPolicy


def _make_chrome() -> ReplacementPolicy:
    from ...core.chrome import ChromePolicy

    return ChromePolicy()


def _make_nchrome() -> ReplacementPolicy:
    from ...core.chrome import make_nchrome_policy

    return make_nchrome_policy()


POLICY_REGISTRY: Dict[str, Callable[[], ReplacementPolicy]] = {
    "lru": LRUPolicy,
    "random": RandomPolicy,
    "srrip": SRRIPPolicy,
    "brrip": BRRIPPolicy,
    "drrip": DRRIPPolicy,
    "ship++": SHiPPolicy,
    "hawkeye": HawkeyePolicy,
    "glider": GliderPolicy,
    "mockingjay": MockingjayPolicy,
    "care": CAREPolicy,
    "chrome": _make_chrome,
    "n-chrome": _make_nchrome,
}

#: the five schemes of the paper's headline comparisons, in plot order
PAPER_SCHEMES = ("hawkeye", "glider", "mockingjay", "care", "chrome")


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a fresh policy by registry name."""
    try:
        factory = POLICY_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: {sorted(POLICY_REGISTRY)}"
        ) from None
    return factory()


__all__ = [
    "CAREPolicy",
    "GliderPolicy",
    "HawkeyePolicy",
    "LRUPolicy",
    "MockingjayPolicy",
    "OPTgen",
    "PAPER_SCHEMES",
    "POLICY_REGISTRY",
    "RandomPolicy",
    "ReplacementPolicy",
    "SHiPPolicy",
    "SRRIPPolicy",
    "BRRIPPolicy",
    "DRRIPPolicy",
    "choose_sampled_sets",
    "make_policy",
    "oldest_way",
]
