"""Fixed-width table rendering for experiment output.

Every experiment yields an :class:`ExperimentResult`; the benchmark
harness and CLI print it with :func:`render`, giving the same
rows/series the paper's tables and figures report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass
class ExperimentResult:
    """A regenerated paper artifact (one table or figure)."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[List[object]]
    notes: List[str] = field(default_factory=list)

    def column(self, name: str) -> List[object]:
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def row_by_key(self, key: object) -> List[object]:
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(key)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render(result: ExperimentResult) -> str:
    """Render an experiment as an aligned text table."""
    header = [result.columns]
    body = [[_format_cell(v) for v in row] for row in result.rows]
    widths = [
        max(len(str(row[i])) for row in header + body)
        for i in range(len(result.columns))
    ]
    lines = [f"== {result.experiment_id}: {result.title} =="]
    lines.append("  ".join(str(c).ljust(w) for c, w in zip(result.columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def render_all(results: Sequence[ExperimentResult]) -> str:
    return "\n\n".join(render(r) for r in results)
