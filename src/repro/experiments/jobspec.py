"""Declarative simulation-job specs for the parallel experiment engine.

A figure no longer *runs* simulations — it declares the frozen
:class:`SimJob` specs it needs and a pure ``assemble`` step that turns
the completed results into an
:class:`~repro.experiments.report.ExperimentResult` (see
:mod:`repro.experiments.engine`).  A job is entirely self-describing:

* :class:`MixSpec` — which traces to build (homogeneous copies of one
  workload, or one workload per core) and the mix seed;
* :class:`PolicySpec` — how to construct the LLC policy, by *factory
  name* plus literal parameters so the spec stays picklable and
  hashable (policy instances never cross job boundaries, which is what
  makes ``--jobs 1`` and ``--jobs 8`` bit-identical);
* the run-size fields copied from
  :class:`~repro.experiments.runner.ExperimentScale`.

:func:`execute_job` is the single entry point workers call; it builds
traces, policy and machine from the spec alone, so a job executes
identically inline, in a worker process, or on a cache replay.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..sim.multicore import MultiCoreSystem, SystemConfig, SystemResult
from ..sim.replacement.base import ReplacementPolicy
from ..traces.mixes import heterogeneous_mix, homogeneous_mix
from ..traces.trace import Trace
from .runner import ExperimentScale, chrome_with, resolve_policy, scaled_sampled_sets

#: Bump when simulator/policy semantics change in a way that should
#: invalidate previously cached simulation results (see
#: :mod:`repro.experiments.result_cache`).
CODE_VERSION = "1"


@dataclass(frozen=True)
class MixSpec:
    """Which traces one job simulates (a frozen mix recipe)."""

    kind: str  # "homo" | "hetero"
    names: Tuple[str, ...]
    num_cores: int
    seed: int = 0

    @classmethod
    def homogeneous(cls, name: str, num_cores: int, seed: int = 0) -> "MixSpec":
        return cls(kind="homo", names=(name,), num_cores=num_cores, seed=seed)

    @classmethod
    def heterogeneous(cls, names: Tuple[str, ...], seed: int = 0) -> "MixSpec":
        return cls(kind="hetero", names=tuple(names), num_cores=len(names), seed=seed)

    def build(self, num_accesses: int, machine_scale: float) -> List[Trace]:
        if self.kind == "homo":
            return homogeneous_mix(
                self.names[0],
                self.num_cores,
                num_accesses,
                seed=self.seed,
                scale=machine_scale,
            )
        if self.kind == "hetero":
            return heterogeneous_mix(
                self.names, num_accesses, seed=self.seed, scale=machine_scale
            )
        raise ValueError(f"unknown mix kind {self.kind!r}")

    @property
    def label(self) -> str:
        if self.kind == "homo":
            return f"{self.names[0]}x{self.num_cores}"
        return "+".join(self.names)


# --- policy factories ---------------------------------------------------------

PolicyFactoryFn = Callable[..., ReplacementPolicy]

POLICY_FACTORIES: Dict[str, PolicyFactoryFn] = {}


def register_policy_factory(name: str, fn: PolicyFactoryFn) -> None:
    """Register a named policy factory usable from :class:`PolicySpec`.

    ``fn(machine_scale, **params)`` must build a *fresh* policy every
    call — jobs never share mutable policy state.
    """
    POLICY_FACTORIES[name] = fn


def _registry_factory(machine_scale: float, name: str) -> ReplacementPolicy:
    return resolve_policy(name, machine_scale)


def _chrome_with_factory(machine_scale: float, **overrides) -> ReplacementPolicy:
    # Scaled runs preserve training density unless a sweep pins the
    # sampled-set count explicitly (see resolve_policy's docstring).
    overrides.setdefault("sampled_sets", scaled_sampled_sets(machine_scale))
    return chrome_with(**overrides)


register_policy_factory("registry", _registry_factory)
register_policy_factory("chrome_with", _chrome_with_factory)


@dataclass(frozen=True)
class PolicySpec:
    """How a job constructs its LLC policy: factory name + literal params."""

    factory: str
    params: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def named(cls, name: str) -> "PolicySpec":
        """A scheme from the policy registry (``lru``, ``chrome``, ...)."""
        return cls(factory="registry", params=(("name", name),))

    @classmethod
    def chrome_variant(cls, **overrides) -> "PolicySpec":
        """A :func:`~repro.experiments.runner.chrome_with` variant."""
        return cls(factory="chrome_with", params=tuple(sorted(overrides.items())))

    def build(self, machine_scale: float) -> ReplacementPolicy:
        try:
            fn = POLICY_FACTORIES[self.factory]
        except KeyError:
            raise KeyError(
                f"unknown policy factory {self.factory!r}; "
                f"available: {sorted(POLICY_FACTORIES)}"
            ) from None
        return fn(machine_scale, **dict(self.params))

    @property
    def label(self) -> str:
        params = dict(self.params)
        if self.factory == "registry":
            return str(params["name"])
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.factory}({inner})"


@dataclass(frozen=True)
class SimJob:
    """One schedulable simulation: (mix, policy, prefetch, run size).

    Frozen and hashable so the engine can deduplicate identical jobs
    across figures and key the on-disk result cache.
    """

    mix: MixSpec
    policy: PolicySpec
    prefetch: str = "nl_stride"
    machine_scale: float = ExperimentScale.machine_scale
    accesses_per_core: int = ExperimentScale.accesses_per_core
    warmup_per_core: int = ExperimentScale.warmup_per_core

    @property
    def label(self) -> str:
        return f"{self.mix.label} {self.policy.label} {self.prefetch}"

    def canonical(self) -> Tuple:
        """A stable, literal-only tuple identifying this job."""
        return (
            self.mix.kind,
            self.mix.names,
            self.mix.num_cores,
            self.mix.seed,
            self.policy.factory,
            self.policy.params,
            self.prefetch,
            self.machine_scale,
            self.accesses_per_core,
            self.warmup_per_core,
        )


def job_for(
    scale: ExperimentScale,
    mix: MixSpec,
    policy: str | PolicySpec,
    prefetch: str = "nl_stride",
) -> SimJob:
    """Bind a mix/policy pair to a scale's run-size fields."""
    if isinstance(policy, str):
        policy = PolicySpec.named(policy)
    return SimJob(
        mix=mix,
        policy=policy,
        prefetch=prefetch,
        machine_scale=scale.machine_scale,
        accesses_per_core=scale.accesses_per_core,
        warmup_per_core=scale.warmup_per_core,
    )


def job_fingerprint(job, code_version: str = CODE_VERSION) -> str:
    """Content hash for the on-disk result cache (spec + code version).

    Works for any job kind exposing ``canonical()``; non-simulation
    jobs namespace their tuple (e.g. serve jobs lead with ``"serve"``
    and their own code version) so kinds can never collide.
    """
    payload = repr(("chrome-repro", code_version, job.canonical()))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def execute_job(job, obs=None):
    """Run one job from its spec alone (pure given the spec).

    Every job builds its own traces/requests and a fresh policy, each
    seeded by the spec, so results do not depend on which process
    executes the job or in which order — the engine's determinism
    guarantee.

    ``obs`` is an optional :class:`repro.obs.ObsConfig`; when given,
    the executing process builds its own session, runs instrumented,
    and exports artifacts labeled by the job's fingerprint — which is
    what lets ``--jobs N`` worker processes each leave an aggregatable
    record without sharing any live state.  Results are identical with
    and without it.

    :class:`SimJob` is executed here directly; any other job kind
    (e.g. :class:`repro.serve.jobs.ServeJob`) supplies its own
    ``execute()`` method and is dispatched to it, so the engine's
    scheduling, dedup and caching are shared by every subsystem.
    """
    if not isinstance(job, SimJob):
        execute = getattr(job, "execute", None)
        if callable(execute):
            return execute(obs=obs) if obs is not None else execute()
        raise TypeError(
            f"cannot execute job of type {type(job).__name__}: expected a "
            "SimJob or a spec with an execute() method"
        )
    total = job.accesses_per_core + job.warmup_per_core
    traces = job.mix.build(total, job.machine_scale)
    config = SystemConfig(num_cores=job.mix.num_cores, scale=job.machine_scale)
    session = None
    if obs is not None:
        label = f"sim-{job.mix.label}-{job.policy.label}-{job_fingerprint(job)[:10]}"
        session = obs.session(label)
    system = MultiCoreSystem(
        config,
        llc_policy=job.policy.build(job.machine_scale),
        prefetch_config=job.prefetch,
        obs=session,
    )
    result = system.run(
        traces,
        max_accesses_per_core=total,
        warmup_accesses=job.warmup_per_core,
    )
    if session is not None:
        session.export()
    return result
