"""Experiment harness: regenerate every table and figure of the paper."""

from .figures import EXPERIMENTS, run_experiment, spec_homogeneous_suite
from .metrics import (
    MixMetrics,
    geometric_mean,
    speedup_percent,
    summarize,
    weighted_speedup,
)
from .report import ExperimentResult, render, render_all
from .runner import ExperimentScale, Runner, chrome_with, resolve_policy

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "ExperimentScale",
    "MixMetrics",
    "Runner",
    "chrome_with",
    "geometric_mean",
    "render",
    "render_all",
    "resolve_policy",
    "run_experiment",
    "spec_homogeneous_suite",
    "speedup_percent",
    "summarize",
    "weighted_speedup",
]
