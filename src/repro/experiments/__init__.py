"""Experiment harness: regenerate every table and figure of the paper.

The public surface is the registry (:func:`register_experiment`,
:func:`available_experiments`, :func:`run_experiment`) plus the
declarative job model (:class:`SimJob`, :class:`ExperimentPlan`) and
the parallel :class:`Engine` that schedules it.  Importing this package
eagerly registers every paper artifact *and* the beyond-the-paper
ablations — no private bootstrap calls.
"""

from .engine import Engine, EngineStats, ExperimentPlan
from .figures import EXPERIMENTS, run_experiment, spec_homogeneous_suite
from .jobspec import (
    MixSpec,
    PolicySpec,
    SimJob,
    execute_job,
    job_fingerprint,
    job_for,
    register_policy_factory,
)
from .metrics import (
    MixMetrics,
    geometric_mean,
    speedup_percent,
    summarize,
    weighted_speedup,
)
from .progress import NullProgress, ProgressReporter
from .registry import (
    available_experiments,
    get_experiment,
    get_plan,
    register_experiment,
)
from .report import ExperimentResult, render, render_all
from .result_cache import ResultCache
from .runner import ExperimentScale, Runner, chrome_with, resolve_policy

from . import ablations as _ablations  # noqa: F401  (eager registration)
from ..serve import experiments as _serve_experiments  # noqa: F401  (serve_* ids)
from ..cluster import experiments as _cluster_experiments  # noqa: F401  (cluster id)
from ..ops import experiments as _ops_experiments  # noqa: F401  (serve_ops id)
from ..env import experiments as _env_experiments  # noqa: F401  (env_toy id)

__all__ = [
    "EXPERIMENTS",
    "Engine",
    "EngineStats",
    "ExperimentPlan",
    "ExperimentResult",
    "ExperimentScale",
    "MixMetrics",
    "MixSpec",
    "NullProgress",
    "PolicySpec",
    "ProgressReporter",
    "ResultCache",
    "Runner",
    "SimJob",
    "available_experiments",
    "chrome_with",
    "execute_job",
    "geometric_mean",
    "get_experiment",
    "get_plan",
    "job_fingerprint",
    "job_for",
    "register_experiment",
    "register_policy_factory",
    "render",
    "render_all",
    "resolve_policy",
    "run_experiment",
    "spec_homogeneous_suite",
    "speedup_percent",
    "summarize",
    "weighted_speedup",
]
