"""Experiment implementations — one per paper table/figure.

Each figure is written declaratively: a ``<id>_plan(scale)`` builder
returns an :class:`~repro.experiments.engine.ExperimentPlan` holding the
frozen :class:`~repro.experiments.jobspec.SimJob` specs the figure needs
plus a *pure* ``assemble(results)`` step producing the
:class:`~repro.experiments.report.ExperimentResult` with the same
rows/series the paper reports.  The engine schedules jobs across worker
processes, deduplicates shared jobs between figures (Figs. 6-9 are four
views of one suite; every figure shares the per-mix LRU baselines), and
memoizes completed jobs on disk.

The classic callable interface is preserved: ``fig6(runner)`` executes
the plan on the runner's engine, and the registry
(:mod:`repro.experiments.registry`) maps experiment ids
(``fig1`` .. ``fig16``, ``tab3``/``tab4``/``tab7``) to both forms.

Runs are scaled by :class:`ExperimentScale` (env-overridable); shapes,
not absolute numbers, are the reproduction target (see DESIGN.md §5).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from ..core.overhead import (
    chrome_overhead,
    eq_overhead_kb,
    overhead_comparison,
    overhead_fraction_of_llc,
)
from ..sim.multicore import SystemResult
from ..sim.replacement import PAPER_SCHEMES
from ..traces.gap import GAP_TRACES
from ..traces.mixes import random_mix_names
from ..traces.spec import ALL_SPEC_WORKLOADS, representative_workloads
from .engine import ExperimentPlan
from .jobspec import MixSpec, PolicySpec, SimJob, job_for
from .metrics import (
    MixMetrics,
    geometric_mean,
    speedup_percent,
    summarize,
    weighted_speedup,
)
from .registry import EXPERIMENTS, ExperimentFn, register_experiment
from .report import ExperimentResult
from .runner import ExperimentScale, Runner

SCHEMES: Tuple[str, ...] = tuple(PAPER_SCHEMES)

JobResults = Mapping[SimJob, SystemResult]


# --- shared suite runs (Figs. 6-9 reuse one set of simulations) --------------


#: Truncation priority for reduced suites: ordered so any prefix spans
#: the behaviour regimes (irregular chase, loop/stride partial fit,
#: pure stream, random+scan pollution, cache-friendly, phased, ...).
SUITE_PRIORITY: Tuple[str, ...] = (
    "xalancbmk06",
    "mcf17",
    "cam417",
    "libquantum06",
    "soplex06",
    "zeusmp06",
    "astar06",
    "gromacs06",
    "milc06",
    "leslie3d06",
    "omnetpp17",
    "gcc06",
    "hmmer06",
    "wrf06",
    "GemsFDTD06",
    "lbm17",
    "xz17",
    "bwaves06",
    "gcc17",
    "pop217",
    "fotonik3d17",
    "mcf06",
    "cactuBSSN17",
    "xalancbmk17",
    "wrf17",
    "roms17",
    "bwaves17",
)


def _suite_workloads(scale: ExperimentScale) -> List[str]:
    limit = scale.workload_limit
    if limit and limit < len(SUITE_PRIORITY):
        return list(SUITE_PRIORITY[:limit])
    return list(ALL_SPEC_WORKLOADS)


def _homo_job(
    scale: ExperimentScale,
    name: str,
    num_cores: int,
    policy: str | PolicySpec,
    prefetch: str = "nl_stride",
) -> SimJob:
    return job_for(scale, MixSpec.homogeneous(name, num_cores), policy, prefetch)


def _hetero_job(
    scale: ExperimentScale,
    names: Sequence[str],
    seed: int,
    policy: str | PolicySpec,
    prefetch: str = "nl_stride",
) -> SimJob:
    return job_for(
        scale, MixSpec.heterogeneous(tuple(names), seed=seed), policy, prefetch
    )


def _suite_jobs(
    scale: ExperimentScale,
    workloads: Sequence[str],
    num_cores: int,
    schemes: Sequence[str],
    prefetch: str = "nl_stride",
) -> Tuple[Dict[str, SimJob], Dict[Tuple[str, str], SimJob]]:
    """Per-workload LRU baselines plus one job per (workload, scheme)."""
    baselines = {
        name: _homo_job(scale, name, num_cores, "lru", prefetch)
        for name in workloads
    }
    runs = {
        (name, scheme): _homo_job(scale, name, num_cores, scheme, prefetch)
        for name in workloads
        for scheme in schemes
    }
    return baselines, runs


def _suite_metrics(
    baselines: Dict[str, SimJob],
    runs: Dict[Tuple[str, str], SimJob],
    results: JobResults,
) -> Dict[str, Dict[str, MixMetrics]]:
    """Assemble the suite view: workload -> scheme -> metrics vs LRU."""
    out: Dict[str, Dict[str, MixMetrics]] = {name: {} for name in baselines}
    for (name, scheme), job in runs.items():
        out[name][scheme] = summarize(results[job], results[baselines[name]])
    return out


def _flat(*job_groups) -> Tuple[SimJob, ...]:
    jobs: List[SimJob] = []
    for group in job_groups:
        values = group.values() if isinstance(group, dict) else group
        jobs.extend(values)
    return tuple(dict.fromkeys(jobs))


def spec_homogeneous_suite(
    runner: Runner,
    num_cores: int = 4,
    schemes: Sequence[str] = SCHEMES,
    prefetch: str = "nl_stride",
    workloads: Sequence[str] | None = None,
) -> Dict[str, Dict[str, MixMetrics]]:
    """Run every scheme on homogeneous mixes of each workload.

    Results are cached on the runner so Figs. 6, 7, 8 and 9 share one
    set of simulations (they are different views of the same runs); the
    underlying jobs go through the runner's engine, so they are also
    shared with plan-based figures and the on-disk result cache."""
    names = list(
        workloads if workloads is not None else _suite_workloads(runner.scale)
    )
    cache_key = (num_cores, tuple(schemes), prefetch, tuple(names))
    cache = getattr(runner, "_suite_cache", None)
    if cache is None:
        cache = {}
        runner._suite_cache = cache
    if cache_key in cache:
        return cache[cache_key]
    baselines, runs = _suite_jobs(runner.scale, names, num_cores, schemes, prefetch)
    results = runner.engine.run_jobs(_flat(baselines, runs), experiment_id="suite")
    out = _suite_metrics(baselines, runs, results)
    cache[cache_key] = out
    return out


def _geomean_speedup(
    suite: Dict[str, Dict[str, MixMetrics]], scheme: str
) -> float:
    return speedup_percent(
        geometric_mean([m[scheme].weighted_speedup for m in suite.values()])
    )


# --- Fig. 1: 16-core homogeneous headline comparison -------------------------


def fig1_plan(scale: ExperimentScale) -> ExperimentPlan:
    workloads = _suite_workloads(scale)
    workloads = workloads[: max(2, len(workloads) // 2)]  # 16-core runs are heavy
    baselines, runs = _suite_jobs(scale, workloads, 16, SCHEMES)

    def assemble(results: JobResults) -> ExperimentResult:
        suite = _suite_metrics(baselines, runs, results)
        rows = [[s, _geomean_speedup(suite, s)] for s in SCHEMES]
        return ExperimentResult(
            experiment_id="fig1",
            title="Speedup over LRU, 16-core homogeneous SPEC mixes (%)",
            columns=["scheme", "speedup_pct"],
            rows=rows,
            notes=[
                "paper: Hawkeye 6.8, Glider 6.2, Mockingjay 8.2, CARE 10.2, CHROME 12.9",
                f"workloads: {', '.join(workloads)}",
            ],
        )

    return ExperimentPlan("fig1", _flat(baselines, runs), assemble)


def fig1(runner: Runner) -> ExperimentResult:
    """Fig. 1: 16-core homogeneous headline comparison."""
    return runner.run_plan(fig1_plan(runner.scale))


# --- Fig. 2: unused evicted blocks under Glider ----------------------------------


def fig2_plan(scale: ExperimentScale) -> ExperimentPlan:
    workloads = _suite_workloads(scale)
    jobs = {name: _homo_job(scale, name, 4, "glider") for name in workloads}

    def assemble(results: JobResults) -> ExperimentResult:
        rows = []
        fractions, again_fractions, prefetch_fractions = [], [], []
        for name in workloads:
            mgmt = results[jobs[name]].llc_mgmt
            unused = mgmt.unused_eviction_fraction
            again = mgmt.unused_requested_again_fraction
            prefetch = mgmt.unused_eviction_prefetch_fraction
            rows.append(
                [
                    name,
                    100 * unused,
                    100 * unused * again,
                    100 * unused * (1 - again),
                    100 * prefetch,
                ]
            )
            fractions.append(unused)
            again_fractions.append(unused * again)
            prefetch_fractions.append(prefetch)
        n = len(workloads)
        rows.append(
            [
                "mean",
                100 * sum(fractions) / n,
                100 * sum(again_fractions) / n,
                100 * (sum(fractions) - sum(again_fractions)) / n,
                100 * sum(prefetch_fractions) / n,
            ]
        )
        return ExperimentResult(
            experiment_id="fig2",
            title="Blocks evicted unused under Glider, 4-core (%)",
            columns=[
                "workload",
                "unused_pct",
                "requested_again_pct",
                "never_again_pct",
                "from_prefetch_pct",
            ],
            rows=rows,
            notes=[
                "paper means: 83.7% unused (28.0 reused later / 55.7 never), 70.0% from prefetch"
            ],
        )

    return ExperimentPlan("fig2", _flat(jobs), assemble)


def fig2(runner: Runner) -> ExperimentResult:
    """Fig. 2: unused-evicted-block analysis under Glider."""
    return runner.run_plan(fig2_plan(runner.scale))


# --- Fig. 3: static schemes under two prefetch configurations ---------------------


def fig3_plan(scale: ExperimentScale) -> ExperimentPlan:
    schemes = ("hawkeye", "glider", "mockingjay")
    workloads = scale.limit_workloads(representative_workloads())
    prefetchers = ("nl_stride", "stride_streamer")
    baselines = {
        (prefetch, name): _homo_job(scale, name, 4, "lru", prefetch)
        for prefetch in prefetchers
        for name in workloads
    }
    runs = {
        (prefetch, name, s): _homo_job(scale, name, 4, s, prefetch)
        for prefetch in prefetchers
        for name in workloads
        for s in schemes
    }

    def assemble(results: JobResults) -> ExperimentResult:
        rows = []
        for prefetch in prefetchers:
            for name in workloads:
                base = results[baselines[(prefetch, name)]]
                metrics = {
                    s: summarize(results[runs[(prefetch, name, s)]], base)
                    for s in schemes
                }
                rows.append(
                    [prefetch, name] + [metrics[s].speedup_percent for s in schemes]
                )
        return ExperimentResult(
            experiment_id="fig3",
            title="Static schemes vs prefetch configuration, 4-core (%)",
            columns=["prefetch", "workload", *schemes],
            rows=rows,
            notes=["paper: Mockingjay underperforms Glider across (b) stride+streamer"],
        )

    return ExperimentPlan("fig3", _flat(baselines, runs), assemble)


def fig3(runner: Runner) -> ExperimentResult:
    """Fig. 3: static schemes under two prefetch configurations."""
    return runner.run_plan(fig3_plan(runner.scale))


# --- Figs. 6-9: the 4-core SPEC homogeneous suite --------------------------------
#
# The four figures declare the *same* jobs — the engine's memo/dedup
# runs each simulation once no matter how many of them execute.


def _suite4_jobs(scale: ExperimentScale):
    return _suite_jobs(scale, _suite_workloads(scale), 4, SCHEMES)


def fig6_plan(scale: ExperimentScale) -> ExperimentPlan:
    baselines, runs = _suite4_jobs(scale)

    def assemble(results: JobResults) -> ExperimentResult:
        suite = _suite_metrics(baselines, runs, results)
        rows = [
            [name] + [suite[name][s].speedup_percent for s in SCHEMES]
            for name in suite
        ]
        rows.append(["geomean"] + [_geomean_speedup(suite, s) for s in SCHEMES])
        return ExperimentResult(
            experiment_id="fig6",
            title="Speedup over LRU, 4-core SPEC homogeneous mixes (%)",
            columns=["workload", *SCHEMES],
            rows=rows,
            notes=[
                "paper geomeans: Hawkeye 5.7, Glider 5.6, Mockingjay 7.6, CARE 7.6, CHROME 9.2"
            ],
        )

    return ExperimentPlan("fig6", _flat(baselines, runs), assemble)


def fig6(runner: Runner) -> ExperimentResult:
    """Fig. 6: per-workload 4-core homogeneous speedups."""
    return runner.run_plan(fig6_plan(runner.scale))


def fig7_plan(scale: ExperimentScale) -> ExperimentPlan:
    baselines, runs = _suite4_jobs(scale)

    def assemble(results: JobResults) -> ExperimentResult:
        suite = _suite_metrics(baselines, runs, results)
        rows = [
            [name] + [100 * suite[name][s].demand_miss_ratio for s in SCHEMES]
            for name in suite
        ]
        rows.append(
            ["mean"]
            + [
                100
                * sum(suite[n][s].demand_miss_ratio for n in suite)
                / len(suite)
                for s in SCHEMES
            ]
        )
        return ExperimentResult(
            experiment_id="fig7",
            title="LLC demand miss ratio, 4-core SPEC homogeneous mixes (%)",
            columns=["workload", *SCHEMES],
            rows=rows,
            notes=[
                "paper means: Hawkeye 75.9, Glider 75.7, Mockingjay 73.6, CARE 72.4, CHROME 71.1"
            ],
        )

    return ExperimentPlan("fig7", _flat(baselines, runs), assemble)


def fig7(runner: Runner) -> ExperimentResult:
    """Fig. 7: LLC demand miss ratios (same runs as Fig. 6)."""
    return runner.run_plan(fig7_plan(runner.scale))


def fig8_plan(scale: ExperimentScale) -> ExperimentPlan:
    baselines, runs = _suite4_jobs(scale)

    def assemble(results: JobResults) -> ExperimentResult:
        suite = _suite_metrics(baselines, runs, results)
        rows = [
            [name] + [100 * suite[name][s].ephr for s in SCHEMES] for name in suite
        ]
        rows.append(
            ["mean"]
            + [
                100 * sum(suite[n][s].ephr for n in suite) / len(suite)
                for s in SCHEMES
            ]
        )
        return ExperimentResult(
            experiment_id="fig8",
            title="Effective prefetch hit ratio, 4-core SPEC homogeneous mixes (%)",
            columns=["workload", *SCHEMES],
            rows=rows,
            notes=[
                "paper means: Hawkeye 27.9, Glider 23.0, Mockingjay 33.2, CARE 22.9, CHROME 41.4"
            ],
        )

    return ExperimentPlan("fig8", _flat(baselines, runs), assemble)


def fig8(runner: Runner) -> ExperimentResult:
    """Fig. 8: effective prefetch hit ratios (same runs as Fig. 6)."""
    return runner.run_plan(fig8_plan(runner.scale))


def fig9_plan(scale: ExperimentScale) -> ExperimentPlan:
    baselines, runs = _suite4_jobs(scale)
    schemes = ("mockingjay", "chrome")

    def assemble(results: JobResults) -> ExperimentResult:
        suite = _suite_metrics(baselines, runs, results)
        rows = []
        for name in suite:
            row: List[object] = [name]
            for s in schemes:
                row += [
                    100 * suite[name][s].bypass_coverage,
                    100 * suite[name][s].bypass_efficiency,
                ]
            rows.append(row)
        mean_row: List[object] = ["mean"]
        for s in schemes:
            mean_row += [
                100 * sum(suite[n][s].bypass_coverage for n in suite) / len(suite),
                100 * sum(suite[n][s].bypass_efficiency for n in suite) / len(suite),
            ]
        rows.append(mean_row)
        return ExperimentResult(
            experiment_id="fig9",
            title="Bypass coverage and efficiency, 4-core SPEC homogeneous mixes (%)",
            columns=[
                "workload",
                "mockingjay_coverage",
                "mockingjay_efficiency",
                "chrome_coverage",
                "chrome_efficiency",
            ],
            rows=rows,
            notes=["paper means (CHROME): 41.5% coverage, 70.8% efficiency"],
        )

    return ExperimentPlan("fig9", _flat(baselines, runs), assemble)


def fig9(runner: Runner) -> ExperimentResult:
    """Fig. 9: bypass coverage/efficiency, Mockingjay vs CHROME."""
    return runner.run_plan(fig9_plan(runner.scale))


# --- Fig. 10: 4-core heterogeneous mixes ------------------------------------------


def fig10_plan(scale: ExperimentScale) -> ExperimentPlan:
    schemes = ("hawkeye", "glider", "mockingjay", "chrome")
    mixes = random_mix_names(scale.hetero_mixes, 4)
    baselines = {
        i: _hetero_job(scale, names, 100 + i, "lru")
        for i, names in enumerate(mixes)
    }
    runs = {
        (i, s): _hetero_job(scale, names, 100 + i, s)
        for i, names in enumerate(mixes)
        for s in schemes
    }

    def assemble(results: JobResults) -> ExperimentResult:
        per_mix: List[Tuple[str, Dict[str, MixMetrics]]] = []
        for i, names in enumerate(mixes):
            base = results[baselines[i]]
            metrics = {s: summarize(results[runs[(i, s)]], base) for s in schemes}
            per_mix.append(("+".join(names), metrics))
        per_mix.sort(key=lambda item: item[1]["chrome"].weighted_speedup)
        rows = [
            [label] + [m[s].speedup_percent for s in schemes]
            for label, m in per_mix
        ]
        rows.append(
            ["geomean"]
            + [
                speedup_percent(
                    geometric_mean([m[s].weighted_speedup for _, m in per_mix])
                )
                for s in schemes
            ]
        )
        best = sum(
            1
            for _, m in per_mix
            if m["chrome"].weighted_speedup
            >= max(m[s].weighted_speedup for s in schemes)
        )
        return ExperimentResult(
            experiment_id="fig10",
            title="Weighted speedup, 4-core heterogeneous mixes (%) — ascending in CHROME",
            columns=["mix", *schemes],
            rows=rows,
            notes=[
                "paper geomeans: Hawkeye 6.7, Glider 7.4, Mockingjay 8.6, CHROME 9.6",
                f"CHROME best in {best}/{len(per_mix)} mixes (paper: 119/150)",
            ],
        )

    return ExperimentPlan("fig10", _flat(baselines, runs), assemble)


def fig10(runner: Runner) -> ExperimentResult:
    """Fig. 10: random heterogeneous 4-core mixes, ascending s-curve."""
    return runner.run_plan(fig10_plan(runner.scale))


# --- Fig. 11: scalability ----------------------------------------------------------


def fig11_plan(scale: ExperimentScale) -> ExperimentPlan:
    workloads = _suite_workloads(scale)
    small = workloads[: max(2, len(workloads) // 2)]
    homo = {}
    for cores in (4, 8, 16):
        use = workloads if cores == 4 else small
        homo[cores] = _suite_jobs(scale, use, cores, SCHEMES)
    hetero_count = max(2, scale.hetero_mixes // 4)
    hetero: Dict[int, Tuple[Dict, Dict]] = {}
    for cores in (4, 8, 16):
        mixes = random_mix_names(hetero_count, cores, seed=7 + cores)
        baselines = {
            i: _hetero_job(scale, names, 200 + i, "lru")
            for i, names in enumerate(mixes)
        }
        runs = {
            (i, s): _hetero_job(scale, names, 200 + i, s)
            for i, names in enumerate(mixes)
            for s in SCHEMES
        }
        hetero[cores] = (baselines, runs)

    def assemble(results: JobResults) -> ExperimentResult:
        rows = []
        for cores in (4, 8, 16):
            baselines, runs = homo[cores]
            suite = _suite_metrics(baselines, runs, results)
            rows.append(
                [f"homo-{cores}c"] + [_geomean_speedup(suite, s) for s in SCHEMES]
            )
        for cores in (4, 8, 16):
            baselines, runs = hetero[cores]
            speedups: Dict[str, List[float]] = {s: [] for s in SCHEMES}
            for i in baselines:
                base = results[baselines[i]]
                for s in SCHEMES:
                    speedups[s].append(
                        summarize(results[runs[(i, s)]], base).weighted_speedup
                    )
            rows.append(
                [f"hetero-{cores}c"]
                + [speedup_percent(geometric_mean(speedups[s])) for s in SCHEMES]
            )
        return ExperimentResult(
            experiment_id="fig11",
            title="Scalability: speedup over LRU for 4/8/16 cores (%)",
            columns=["config", *SCHEMES],
            rows=rows,
            notes=[
                "paper homo: CHROME 9.2/10.6/12.9; CARE 7.6/8.6/10.2 for 4/8/16 cores",
                "paper hetero: CHROME 9.6/12.9/14.4; CHROME margin grows with cores",
            ],
        )

    groups = []
    for cores in (4, 8, 16):
        groups.extend(homo[cores])
    for cores in (4, 8, 16):
        groups.extend(hetero[cores])
    return ExperimentPlan("fig11", _flat(*groups), assemble)


def fig11(runner: Runner) -> ExperimentResult:
    """Fig. 11: scalability across 4/8/16 cores, homo + hetero."""
    return runner.run_plan(fig11_plan(runner.scale))


# --- Fig. 12: CHROME vs N-CHROME ---------------------------------------------------


def fig12_plan(scale: ExperimentScale) -> ExperimentPlan:
    workloads = _suite_workloads(scale)
    small = workloads[: max(2, len(workloads) // 2)]
    suites = {}
    for cores in (4, 8, 16):
        use = workloads if cores == 4 else small
        suites[cores] = _suite_jobs(scale, use, cores, ("chrome", "n-chrome"))

    def assemble(results: JobResults) -> ExperimentResult:
        rows = []
        for cores in (4, 8, 16):
            baselines, runs = suites[cores]
            suite = _suite_metrics(baselines, runs, results)
            rows.append(
                [
                    f"{cores}c",
                    _geomean_speedup(suite, "chrome"),
                    _geomean_speedup(suite, "n-chrome"),
                ]
            )
        return ExperimentResult(
            experiment_id="fig12",
            title="CHROME vs N-CHROME (no concurrency feedback), speedup (%)",
            columns=["cores", "chrome", "n-chrome"],
            rows=rows,
            notes=[
                "paper: CHROME 9.2/10.6/12.9 vs N-CHROME 8.3/9.1/10.0 — gap grows with cores"
            ],
        )

    groups = []
    for cores in (4, 8, 16):
        groups.extend(suites[cores])
    return ExperimentPlan("fig12", _flat(*groups), assemble)


def fig12(runner: Runner) -> ExperimentResult:
    """Fig. 12: concurrency-feedback ablation (CHROME vs N-CHROME)."""
    return runner.run_plan(fig12_plan(runner.scale))


# --- Fig. 13: GAP (unseen) workloads ----------------------------------------------


def fig13_plan(scale: ExperimentScale) -> ExperimentPlan:
    traces = scale.limit_workloads(list(GAP_TRACES))
    suites = {}
    for cores in (4, 8, 16):
        use = traces if cores == 4 else traces[: max(2, len(traces) // 2)]
        suites[cores] = _suite_jobs(scale, use, cores, SCHEMES)

    def assemble(results: JobResults) -> ExperimentResult:
        rows = []
        for cores in (4, 8, 16):
            baselines, runs = suites[cores]
            suite = _suite_metrics(baselines, runs, results)
            rows.append([f"{cores}c"] + [_geomean_speedup(suite, s) for s in SCHEMES])
        return ExperimentResult(
            experiment_id="fig13",
            title="GAP workloads (not used for tuning): speedup over LRU (%)",
            columns=["cores", *SCHEMES],
            rows=rows,
            notes=["paper: CHROME 9.5/12.1/16.0 for 4/8/16 cores; CARE second best"],
        )

    groups = []
    for cores in (4, 8, 16):
        groups.extend(suites[cores])
    return ExperimentPlan("fig13", _flat(*groups), assemble)


def fig13(runner: Runner) -> ExperimentResult:
    """Fig. 13: GAP graph workloads at 4/8/16 cores."""
    return runner.run_plan(fig13_plan(runner.scale))


# --- Fig. 14: alternative prefetching schemes ----------------------------------------


def fig14_plan(scale: ExperimentScale) -> ExperimentPlan:
    workloads = _suite_workloads(scale)
    prefetchers = ("stride_streamer", "ipcp")
    suites = {
        prefetch: _suite_jobs(scale, workloads, 4, SCHEMES, prefetch)
        for prefetch in prefetchers
    }

    def assemble(results: JobResults) -> ExperimentResult:
        rows = []
        for prefetch in prefetchers:
            baselines, runs = suites[prefetch]
            suite = _suite_metrics(baselines, runs, results)
            rows.append([prefetch] + [_geomean_speedup(suite, s) for s in SCHEMES])
        return ExperimentResult(
            experiment_id="fig14",
            title="Speedup under alternative prefetchers, 4-core (%)",
            columns=["prefetch", *SCHEMES],
            rows=rows,
            notes=[
                "paper: stride+streamer CHROME 5.9 vs Mockingjay 5.2; IPCP CHROME 7.2 vs 5.7"
            ],
        )

    groups = []
    for prefetch in prefetchers:
        groups.extend(suites[prefetch])
    return ExperimentPlan("fig14", _flat(*groups), assemble)


def fig14(runner: Runner) -> ExperimentResult:
    """Fig. 14: stride+streamer and IPCP prefetch configurations."""
    return runner.run_plan(fig14_plan(runner.scale))


# --- Table VII: EQ FIFO size sweep ---------------------------------------------------


def tab7_plan(scale: ExperimentScale) -> ExperimentPlan:
    workloads = _suite_workloads(scale)
    workloads = workloads[: max(3, len(workloads) // 2)]
    fifo_sizes = (12, 16, 20, 24, 28, 32, 36)
    baselines = {name: _homo_job(scale, name, 4, "lru") for name in workloads}
    runs = {
        (fifo, name): _homo_job(
            scale, name, 4, PolicySpec.chrome_variant(eq_fifo_size=fifo)
        )
        for fifo in fifo_sizes
        for name in workloads
    }

    def assemble(results: JobResults) -> ExperimentResult:
        rows = []
        for fifo in fifo_sizes:
            speedups, upksas = [], []
            for name in workloads:
                base = results[baselines[name]]
                result = results[runs[(fifo, name)]]
                speedups.append(weighted_speedup(result.ipcs, base.ipcs))
                upksas.append(result.extra["policy_telemetry"]["upksa"])
            rows.append(
                [
                    fifo,
                    speedup_percent(geometric_mean(speedups)),
                    sum(upksas) / len(upksas),
                    eq_overhead_kb(fifo),
                ]
            )
        return ExperimentResult(
            experiment_id="tab7",
            title="EQ FIFO size sweep (4-core SPEC homogeneous)",
            columns=["fifo_size", "speedup_pct", "upksa", "eq_overhead_kb"],
            rows=rows,
            notes=[
                "paper: speedup peaks at 28 (9.2%); UPKSA falls 911->759; overhead 5.4->16.3 KB",
            ],
        )

    return ExperimentPlan("tab7", _flat(baselines, runs), assemble)


def tab7(runner: Runner) -> ExperimentResult:
    """Table VII: EQ FIFO depth sweep (speedup, UPKSA, overhead)."""
    return runner.run_plan(tab7_plan(runner.scale))


# --- Fig. 15: feature ablation -------------------------------------------------------


def fig15_plan(scale: ExperimentScale) -> ExperimentPlan:
    workloads = _suite_workloads(scale)
    variants = [
        ("pc_only", ("pc_sig",)),
        ("pn_only", ("page",)),
        ("pc+pn", ("pc_sig", "page")),
    ]
    baselines = {name: _homo_job(scale, name, 4, "lru") for name in workloads}
    runs = {
        (label, name): _homo_job(
            scale, name, 4, PolicySpec.chrome_variant(features=features)
        )
        for label, features in variants
        for name in workloads
    }

    def assemble(results: JobResults) -> ExperimentResult:
        rows = []
        for label, _features in variants:
            speedups = []
            for name in workloads:
                base = results[baselines[name]]
                result = results[runs[(label, name)]]
                speedups.append(weighted_speedup(result.ipcs, base.ipcs))
            rows.append([label, speedup_percent(geometric_mean(speedups))])
        return ExperimentResult(
            experiment_id="fig15",
            title="CHROME feature ablation, 4-core SPEC homogeneous (%)",
            columns=["features", "speedup_pct"],
            rows=rows,
            notes=["paper: PC-only 7.2%, PN-only 3.6%, PC+PN 9.2%"],
        )

    return ExperimentPlan("fig15", _flat(baselines, runs), assemble)


def fig15(runner: Runner) -> ExperimentResult:
    """Fig. 15: state-feature ablation (PC / PN / PC+PN)."""
    return runner.run_plan(fig15_plan(runner.scale))


# --- Fig. 16: hyper-parameter sensitivity ---------------------------------------------


def fig16_plan(scale: ExperimentScale) -> ExperimentPlan:
    workloads = _suite_workloads(scale)
    workloads = workloads[: max(3, len(workloads) // 2)]
    sweeps = [
        ("alpha", (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 0.5)),
        ("gamma", (1e-4, 1e-3, 1e-2, 1e-1, 0.5, 0.9)),
        ("epsilon", (0.0, 1e-4, 1e-3, 1e-2, 1e-1)),
    ]
    baselines = {name: _homo_job(scale, name, 4, "lru") for name in workloads}
    runs = {
        (param, value, name): _homo_job(
            scale, name, 4, PolicySpec.chrome_variant(**{param: value})
        )
        for param, values in sweeps
        for value in values
        for name in workloads
    }

    def assemble(results: JobResults) -> ExperimentResult:
        rows = []
        for param, values in sweeps:
            for value in values:
                speedups = []
                for name in workloads:
                    base = results[baselines[name]]
                    result = results[runs[(param, value, name)]]
                    speedups.append(weighted_speedup(result.ipcs, base.ipcs))
                rows.append([param, value, speedup_percent(geometric_mean(speedups))])
        return ExperimentResult(
            experiment_id="fig16",
            title="CHROME hyper-parameter sensitivity, 4-core (%)",
            columns=["parameter", "value", "speedup_pct"],
            rows=rows,
            notes=["paper optima: alpha ~1e-3..5e-2, gamma ~1e-1..0.37, epsilon 1e-3"],
        )

    return ExperimentPlan("fig16", _flat(baselines, runs), assemble)


def fig16(runner: Runner) -> ExperimentResult:
    """Fig. 16: hyper-parameter sensitivity sweeps."""
    return runner.run_plan(fig16_plan(runner.scale))


# --- Tables III & IV: storage overhead (analytic — zero simulation jobs) -------------


def tab3_plan(scale: ExperimentScale) -> ExperimentPlan:
    def assemble(results: JobResults) -> ExperimentResult:
        breakdown = chrome_overhead()
        rows = [
            ["q-table", round(breakdown.qtable_kb, 1)],
            ["eq", round(breakdown.eq_kb, 1)],
            ["metadata(epv)", round(breakdown.metadata_kb, 1)],
            ["total", round(breakdown.total_kb, 1)],
            [
                "fraction_of_12MB_llc_pct",
                round(100 * overhead_fraction_of_llc(breakdown), 2),
            ],
        ]
        return ExperimentResult(
            experiment_id="tab3",
            title="CHROME storage overhead (KB)",
            columns=["component", "kb"],
            rows=rows,
            notes=["paper: 32 + 12.7 + 48 = 92.7 KB (0.75% of 12MB LLC)"],
        )

    return ExperimentPlan("tab3", (), assemble)


def tab3(runner: Runner) -> ExperimentResult:
    """Table III: CHROME storage budget (analytic, exact)."""
    return runner.run_plan(tab3_plan(runner.scale))


def tab4_plan(scale: ExperimentScale) -> ExperimentPlan:
    def assemble(results: JobResults) -> ExperimentResult:
        rows = [
            [
                s.scheme,
                "yes" if s.holistic else "no",
                "yes" if s.concurrency_aware else "no",
                s.overhead_kb,
                s.source,
            ]
            for s in overhead_comparison()
        ]
        return ExperimentResult(
            experiment_id="tab4",
            title="Storage overhead comparison (4-core, 12-way 12MB LLC)",
            columns=["scheme", "holistic", "concurrency", "overhead_kb", "source"],
            rows=rows,
            notes=["paper: 146 / 254 / 170.6 / 130.5 / 92.7 KB — CHROME smallest"],
        )

    return ExperimentPlan("tab4", (), assemble)


def tab4(runner: Runner) -> ExperimentResult:
    """Table IV: storage overhead across schemes (analytic)."""
    return runner.run_plan(tab4_plan(runner.scale))


# --- registration -------------------------------------------------------------------

for _id, _fn, _plan in (
    ("fig1", fig1, fig1_plan),
    ("fig2", fig2, fig2_plan),
    ("fig3", fig3, fig3_plan),
    ("fig6", fig6, fig6_plan),
    ("fig7", fig7, fig7_plan),
    ("fig8", fig8, fig8_plan),
    ("fig9", fig9, fig9_plan),
    ("fig10", fig10, fig10_plan),
    ("fig11", fig11, fig11_plan),
    ("fig12", fig12, fig12_plan),
    ("fig13", fig13, fig13_plan),
    ("fig14", fig14, fig14_plan),
    ("fig15", fig15, fig15_plan),
    ("fig16", fig16, fig16_plan),
    ("tab3", tab3, tab3_plan),
    ("tab4", tab4, tab4_plan),
    ("tab7", tab7, tab7_plan),
):
    register_experiment(_id, _fn, plan=_plan)


def _register_ablations() -> None:
    """Deprecated shim: ablations now register eagerly when
    :mod:`repro.experiments` (or this module's package) is imported."""
    from . import ablations  # noqa: F401  (import triggers registration)


def run_experiment(experiment_id: str, runner: Runner | None = None) -> ExperimentResult:
    """Regenerate one paper artifact (or ablation) by id."""
    _register_ablations()
    try:
        fn = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return fn(runner or Runner())
