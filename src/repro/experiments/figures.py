"""Experiment implementations — one per paper table/figure.

Each function takes a :class:`~repro.experiments.runner.Runner` and
returns an :class:`~repro.experiments.report.ExperimentResult` holding
the same rows/series the paper reports.  The registry at the bottom
maps experiment ids (``fig1`` .. ``fig16``, ``tab3``/``tab4``/``tab7``)
to implementations; the benchmark harness and CLI both drive it.

Runs are scaled by :class:`ExperimentScale` (env-overridable); shapes,
not absolute numbers, are the reproduction target (see DESIGN.md §5).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from ..core.overhead import (
    chrome_overhead,
    eq_overhead_kb,
    overhead_comparison,
    overhead_fraction_of_llc,
)
from ..sim.replacement import PAPER_SCHEMES
from ..traces.gap import GAP_TRACES
from ..traces.mixes import random_mix_names
from ..traces.spec import ALL_SPEC_WORKLOADS, representative_workloads
from .metrics import MixMetrics, geometric_mean, speedup_percent, weighted_speedup
from .report import ExperimentResult
from .runner import Runner, chrome_with, scaled_sampled_sets

SCHEMES: Tuple[str, ...] = tuple(PAPER_SCHEMES)

ExperimentFn = Callable[[Runner], ExperimentResult]


# --- shared suite runs (Figs. 6-9 reuse one set of simulations) --------------


#: Truncation priority for reduced suites: ordered so any prefix spans
#: the behaviour regimes (irregular chase, loop/stride partial fit,
#: pure stream, random+scan pollution, cache-friendly, phased, ...).
SUITE_PRIORITY: Tuple[str, ...] = (
    "xalancbmk06",
    "mcf17",
    "cam417",
    "libquantum06",
    "soplex06",
    "zeusmp06",
    "astar06",
    "gromacs06",
    "milc06",
    "leslie3d06",
    "omnetpp17",
    "gcc06",
    "hmmer06",
    "wrf06",
    "GemsFDTD06",
    "lbm17",
    "xz17",
    "bwaves06",
    "gcc17",
    "pop217",
    "fotonik3d17",
    "mcf06",
    "cactuBSSN17",
    "xalancbmk17",
    "wrf17",
    "roms17",
    "bwaves17",
)


def _suite_workloads(runner: Runner) -> List[str]:
    limit = runner.scale.workload_limit
    if limit and limit < len(SUITE_PRIORITY):
        return list(SUITE_PRIORITY[:limit])
    return list(ALL_SPEC_WORKLOADS)


def spec_homogeneous_suite(
    runner: Runner,
    num_cores: int = 4,
    schemes: Sequence[str] = SCHEMES,
    prefetch: str = "nl_stride",
    workloads: Sequence[str] | None = None,
) -> Dict[str, Dict[str, MixMetrics]]:
    """Run every scheme on homogeneous mixes of each workload.

    Results are cached on the runner so Figs. 6, 7, 8 and 9 share one
    set of simulations (they are different views of the same runs)."""
    names = list(workloads if workloads is not None else _suite_workloads(runner))
    cache_key = (num_cores, tuple(schemes), prefetch, tuple(names))
    cache = getattr(runner, "_suite_cache", None)
    if cache is None:
        cache = {}
        runner._suite_cache = cache
    if cache_key in cache:
        return cache[cache_key]
    out: Dict[str, Dict[str, MixMetrics]] = {}
    for name in names:
        mix_key, traces = runner.make_homogeneous(name, num_cores)
        out[name] = runner.compare(schemes, mix_key, traces, prefetch=prefetch)
    cache[cache_key] = out
    return out


def _geomean_speedup(
    suite: Dict[str, Dict[str, MixMetrics]], scheme: str
) -> float:
    return speedup_percent(
        geometric_mean([m[scheme].weighted_speedup for m in suite.values()])
    )


# --- Fig. 1: 16-core homogeneous headline comparison -------------------------


def fig1(runner: Runner) -> ExperimentResult:
    """Fig. 1: 16-core homogeneous headline comparison."""
    workloads = _suite_workloads(runner)
    workloads = workloads[: max(2, len(workloads) // 2)]  # 16-core runs are heavy
    suite = spec_homogeneous_suite(runner, num_cores=16, workloads=workloads)
    rows = [[s, _geomean_speedup(suite, s)] for s in SCHEMES]
    return ExperimentResult(
        experiment_id="fig1",
        title="Speedup over LRU, 16-core homogeneous SPEC mixes (%)",
        columns=["scheme", "speedup_pct"],
        rows=rows,
        notes=[
            "paper: Hawkeye 6.8, Glider 6.2, Mockingjay 8.2, CARE 10.2, CHROME 12.9",
            f"workloads: {', '.join(workloads)}",
        ],
    )


# --- Fig. 2: unused evicted blocks under Glider ----------------------------------


def fig2(runner: Runner) -> ExperimentResult:
    """Fig. 2: unused-evicted-block analysis under Glider."""
    workloads = _suite_workloads(runner)
    rows = []
    fractions, again_fractions, prefetch_fractions = [], [], []
    for name in workloads:
        mix_key, traces = runner.make_homogeneous(name, 4)
        result = runner.run("glider", traces)
        mgmt = result.llc_mgmt
        unused = mgmt.unused_eviction_fraction
        again = mgmt.unused_requested_again_fraction
        prefetch = mgmt.unused_eviction_prefetch_fraction
        rows.append(
            [name, 100 * unused, 100 * unused * again, 100 * unused * (1 - again), 100 * prefetch]
        )
        fractions.append(unused)
        again_fractions.append(unused * again)
        prefetch_fractions.append(prefetch)
    n = len(workloads)
    rows.append(
        [
            "mean",
            100 * sum(fractions) / n,
            100 * sum(again_fractions) / n,
            100 * (sum(fractions) - sum(again_fractions)) / n,
            100 * sum(prefetch_fractions) / n,
        ]
    )
    return ExperimentResult(
        experiment_id="fig2",
        title="Blocks evicted unused under Glider, 4-core (%)",
        columns=[
            "workload",
            "unused_pct",
            "requested_again_pct",
            "never_again_pct",
            "from_prefetch_pct",
        ],
        rows=rows,
        notes=["paper means: 83.7% unused (28.0 reused later / 55.7 never), 70.0% from prefetch"],
    )


# --- Fig. 3: static schemes under two prefetch configurations ---------------------


def fig3(runner: Runner) -> ExperimentResult:
    """Fig. 3: static schemes under two prefetch configurations."""
    schemes = ("hawkeye", "glider", "mockingjay")
    workloads = representative_workloads()
    workloads = runner.scale.limit_workloads(workloads)
    rows = []
    for prefetch in ("nl_stride", "stride_streamer"):
        for name in workloads:
            mix_key, traces = runner.make_homogeneous(name, 4)
            metrics = runner.compare(schemes, mix_key, traces, prefetch=prefetch)
            rows.append(
                [prefetch, name]
                + [metrics[s].speedup_percent for s in schemes]
            )
    return ExperimentResult(
        experiment_id="fig3",
        title="Static schemes vs prefetch configuration, 4-core (%)",
        columns=["prefetch", "workload", *schemes],
        rows=rows,
        notes=["paper: Mockingjay underperforms Glider across (b) stride+streamer"],
    )


# --- Figs. 6-9: the 4-core SPEC homogeneous suite --------------------------------


def fig6(runner: Runner) -> ExperimentResult:
    """Fig. 6: per-workload 4-core homogeneous speedups."""
    suite = spec_homogeneous_suite(runner, num_cores=4)
    rows = [
        [name] + [suite[name][s].speedup_percent for s in SCHEMES]
        for name in suite
    ]
    rows.append(["geomean"] + [_geomean_speedup(suite, s) for s in SCHEMES])
    return ExperimentResult(
        experiment_id="fig6",
        title="Speedup over LRU, 4-core SPEC homogeneous mixes (%)",
        columns=["workload", *SCHEMES],
        rows=rows,
        notes=["paper geomeans: Hawkeye 5.7, Glider 5.6, Mockingjay 7.6, CARE 7.6, CHROME 9.2"],
    )


def fig7(runner: Runner) -> ExperimentResult:
    """Fig. 7: LLC demand miss ratios (same runs as Fig. 6)."""
    suite = spec_homogeneous_suite(runner, num_cores=4)
    rows = [
        [name] + [100 * suite[name][s].demand_miss_ratio for s in SCHEMES]
        for name in suite
    ]
    rows.append(
        ["mean"]
        + [
            100
            * sum(suite[n][s].demand_miss_ratio for n in suite)
            / len(suite)
            for s in SCHEMES
        ]
    )
    return ExperimentResult(
        experiment_id="fig7",
        title="LLC demand miss ratio, 4-core SPEC homogeneous mixes (%)",
        columns=["workload", *SCHEMES],
        rows=rows,
        notes=["paper means: Hawkeye 75.9, Glider 75.7, Mockingjay 73.6, CARE 72.4, CHROME 71.1"],
    )


def fig8(runner: Runner) -> ExperimentResult:
    """Fig. 8: effective prefetch hit ratios (same runs as Fig. 6)."""
    suite = spec_homogeneous_suite(runner, num_cores=4)
    rows = [
        [name] + [100 * suite[name][s].ephr for s in SCHEMES] for name in suite
    ]
    rows.append(
        ["mean"]
        + [100 * sum(suite[n][s].ephr for n in suite) / len(suite) for s in SCHEMES]
    )
    return ExperimentResult(
        experiment_id="fig8",
        title="Effective prefetch hit ratio, 4-core SPEC homogeneous mixes (%)",
        columns=["workload", *SCHEMES],
        rows=rows,
        notes=["paper means: Hawkeye 27.9, Glider 23.0, Mockingjay 33.2, CARE 22.9, CHROME 41.4"],
    )


def fig9(runner: Runner) -> ExperimentResult:
    """Fig. 9: bypass coverage/efficiency, Mockingjay vs CHROME."""
    suite = spec_homogeneous_suite(runner, num_cores=4)
    schemes = ("mockingjay", "chrome")
    rows = []
    for name in suite:
        row: List[object] = [name]
        for s in schemes:
            row += [
                100 * suite[name][s].bypass_coverage,
                100 * suite[name][s].bypass_efficiency,
            ]
        rows.append(row)
    mean_row: List[object] = ["mean"]
    for s in schemes:
        mean_row += [
            100 * sum(suite[n][s].bypass_coverage for n in suite) / len(suite),
            100 * sum(suite[n][s].bypass_efficiency for n in suite) / len(suite),
        ]
    rows.append(mean_row)
    return ExperimentResult(
        experiment_id="fig9",
        title="Bypass coverage and efficiency, 4-core SPEC homogeneous mixes (%)",
        columns=[
            "workload",
            "mockingjay_coverage",
            "mockingjay_efficiency",
            "chrome_coverage",
            "chrome_efficiency",
        ],
        rows=rows,
        notes=["paper means (CHROME): 41.5% coverage, 70.8% efficiency"],
    )


# --- Fig. 10: 4-core heterogeneous mixes ------------------------------------------


def fig10(runner: Runner) -> ExperimentResult:
    """Fig. 10: random heterogeneous 4-core mixes, ascending s-curve."""
    schemes = ("hawkeye", "glider", "mockingjay", "chrome")
    mixes = random_mix_names(runner.scale.hetero_mixes, 4)
    per_mix: List[Tuple[str, Dict[str, MixMetrics]]] = []
    for i, names in enumerate(mixes):
        mix_key, traces = runner.make_heterogeneous(names, seed=100 + i)
        metrics = runner.compare(schemes, mix_key, traces)
        per_mix.append(("+".join(names), metrics))
    per_mix.sort(key=lambda item: item[1]["chrome"].weighted_speedup)
    rows = [
        [label] + [m[s].speedup_percent for s in schemes] for label, m in per_mix
    ]
    rows.append(
        ["geomean"]
        + [
            speedup_percent(
                geometric_mean([m[s].weighted_speedup for _, m in per_mix])
            )
            for s in schemes
        ]
    )
    best = sum(
        1
        for _, m in per_mix
        if m["chrome"].weighted_speedup
        >= max(m[s].weighted_speedup for s in schemes)
    )
    return ExperimentResult(
        experiment_id="fig10",
        title="Weighted speedup, 4-core heterogeneous mixes (%) — ascending in CHROME",
        columns=["mix", *schemes],
        rows=rows,
        notes=[
            "paper geomeans: Hawkeye 6.7, Glider 7.4, Mockingjay 8.6, CHROME 9.6",
            f"CHROME best in {best}/{len(per_mix)} mixes (paper: 119/150)",
        ],
    )


# --- Fig. 11: scalability ----------------------------------------------------------


def fig11(runner: Runner) -> ExperimentResult:
    """Fig. 11: scalability across 4/8/16 cores, homo + hetero."""
    rows = []
    workloads = _suite_workloads(runner)
    small = workloads[: max(2, len(workloads) // 2)]
    for cores in (4, 8, 16):
        use = workloads if cores == 4 else small
        suite = spec_homogeneous_suite(runner, num_cores=cores, workloads=use)
        rows.append([f"homo-{cores}c"] + [_geomean_speedup(suite, s) for s in SCHEMES])
    hetero_count = max(2, runner.scale.hetero_mixes // 4)
    for cores in (4, 8, 16):
        mixes = random_mix_names(hetero_count, cores, seed=7 + cores)
        speedups: Dict[str, List[float]] = {s: [] for s in SCHEMES}
        for i, names in enumerate(mixes):
            mix_key, traces = runner.make_heterogeneous(names, seed=200 + i)
            metrics = runner.compare(SCHEMES, mix_key, traces)
            for s in SCHEMES:
                speedups[s].append(metrics[s].weighted_speedup)
        rows.append(
            [f"hetero-{cores}c"]
            + [speedup_percent(geometric_mean(speedups[s])) for s in SCHEMES]
        )
    return ExperimentResult(
        experiment_id="fig11",
        title="Scalability: speedup over LRU for 4/8/16 cores (%)",
        columns=["config", *SCHEMES],
        rows=rows,
        notes=[
            "paper homo: CHROME 9.2/10.6/12.9; CARE 7.6/8.6/10.2 for 4/8/16 cores",
            "paper hetero: CHROME 9.6/12.9/14.4; CHROME margin grows with cores",
        ],
    )


# --- Fig. 12: CHROME vs N-CHROME ---------------------------------------------------


def fig12(runner: Runner) -> ExperimentResult:
    """Fig. 12: concurrency-feedback ablation (CHROME vs N-CHROME)."""
    workloads = _suite_workloads(runner)
    small = workloads[: max(2, len(workloads) // 2)]
    rows = []
    for cores in (4, 8, 16):
        use = workloads if cores == 4 else small
        suite = spec_homogeneous_suite(
            runner,
            num_cores=cores,
            schemes=("chrome", "n-chrome"),
            workloads=use,
        )
        rows.append(
            [
                f"{cores}c",
                _geomean_speedup(suite, "chrome"),
                _geomean_speedup(suite, "n-chrome"),
            ]
        )
    return ExperimentResult(
        experiment_id="fig12",
        title="CHROME vs N-CHROME (no concurrency feedback), speedup (%)",
        columns=["cores", "chrome", "n-chrome"],
        rows=rows,
        notes=["paper: CHROME 9.2/10.6/12.9 vs N-CHROME 8.3/9.1/10.0 — gap grows with cores"],
    )


# --- Fig. 13: GAP (unseen) workloads ----------------------------------------------


def fig13(runner: Runner) -> ExperimentResult:
    """Fig. 13: GAP graph workloads at 4/8/16 cores."""
    traces = runner.scale.limit_workloads(list(GAP_TRACES))
    rows = []
    for cores in (4, 8, 16):
        use = traces if cores == 4 else traces[: max(2, len(traces) // 2)]
        suite = spec_homogeneous_suite(runner, num_cores=cores, workloads=use)
        rows.append([f"{cores}c"] + [_geomean_speedup(suite, s) for s in SCHEMES])
    return ExperimentResult(
        experiment_id="fig13",
        title="GAP workloads (not used for tuning): speedup over LRU (%)",
        columns=["cores", *SCHEMES],
        rows=rows,
        notes=["paper: CHROME 9.5/12.1/16.0 for 4/8/16 cores; CARE second best"],
    )


# --- Fig. 14: alternative prefetching schemes ----------------------------------------


def fig14(runner: Runner) -> ExperimentResult:
    """Fig. 14: stride+streamer and IPCP prefetch configurations."""
    workloads = _suite_workloads(runner)
    rows = []
    for prefetch in ("stride_streamer", "ipcp"):
        suite = spec_homogeneous_suite(
            runner, num_cores=4, prefetch=prefetch, workloads=workloads
        )
        rows.append([prefetch] + [_geomean_speedup(suite, s) for s in SCHEMES])
    return ExperimentResult(
        experiment_id="fig14",
        title="Speedup under alternative prefetchers, 4-core (%)",
        columns=["prefetch", *SCHEMES],
        rows=rows,
        notes=["paper: stride+streamer CHROME 5.9 vs Mockingjay 5.2; IPCP CHROME 7.2 vs 5.7"],
    )


# --- Table VII: EQ FIFO size sweep ---------------------------------------------------


def tab7(runner: Runner) -> ExperimentResult:
    """Table VII: EQ FIFO depth sweep (speedup, UPKSA, overhead)."""
    workloads = _suite_workloads(runner)
    workloads = workloads[: max(3, len(workloads) // 2)]
    rows = []
    for fifo in (12, 16, 20, 24, 28, 32, 36):
        speedups, upksas = [], []
        for name in workloads:
            mix_key, traces = runner.make_homogeneous(name, 4)
            base = runner.baseline(mix_key, traces)
            result = runner.run(
                chrome_with(
                    eq_fifo_size=fifo,
                    sampled_sets=scaled_sampled_sets(runner.scale.machine_scale),
                ),
                traces,
            )
            speedups.append(weighted_speedup(result.ipcs, base.ipcs))
            upksas.append(result.extra["policy_telemetry"]["upksa"])
        rows.append(
            [
                fifo,
                speedup_percent(geometric_mean(speedups)),
                sum(upksas) / len(upksas),
                eq_overhead_kb(fifo),
            ]
        )
    return ExperimentResult(
        experiment_id="tab7",
        title="EQ FIFO size sweep (4-core SPEC homogeneous)",
        columns=["fifo_size", "speedup_pct", "upksa", "eq_overhead_kb"],
        rows=rows,
        notes=[
            "paper: speedup peaks at 28 (9.2%); UPKSA falls 911->759; overhead 5.4->16.3 KB",
        ],
    )


# --- Fig. 15: feature ablation -------------------------------------------------------


def fig15(runner: Runner) -> ExperimentResult:
    """Fig. 15: state-feature ablation (PC / PN / PC+PN)."""
    workloads = _suite_workloads(runner)
    variants = [
        ("pc_only", ("pc_sig",)),
        ("pn_only", ("page",)),
        ("pc+pn", ("pc_sig", "page")),
    ]
    rows = []
    for label, features in variants:
        speedups = []
        for name in workloads:
            mix_key, traces = runner.make_homogeneous(name, 4)
            base = runner.baseline(mix_key, traces)
            result = runner.run(
                chrome_with(
                    features=features,
                    sampled_sets=scaled_sampled_sets(runner.scale.machine_scale),
                ),
                traces,
            )
            speedups.append(weighted_speedup(result.ipcs, base.ipcs))
        rows.append([label, speedup_percent(geometric_mean(speedups))])
    return ExperimentResult(
        experiment_id="fig15",
        title="CHROME feature ablation, 4-core SPEC homogeneous (%)",
        columns=["features", "speedup_pct"],
        rows=rows,
        notes=["paper: PC-only 7.2%, PN-only 3.6%, PC+PN 9.2%"],
    )


# --- Fig. 16: hyper-parameter sensitivity ---------------------------------------------


def fig16(runner: Runner) -> ExperimentResult:
    """Fig. 16: hyper-parameter sensitivity sweeps."""
    workloads = _suite_workloads(runner)
    workloads = workloads[: max(3, len(workloads) // 2)]
    sweeps = [
        ("alpha", (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 0.5)),
        ("gamma", (1e-4, 1e-3, 1e-2, 1e-1, 0.5, 0.9)),
        ("epsilon", (0.0, 1e-4, 1e-3, 1e-2, 1e-1)),
    ]
    rows = []
    for param, values in sweeps:
        for value in values:
            speedups = []
            for name in workloads:
                mix_key, traces = runner.make_homogeneous(name, 4)
                base = runner.baseline(mix_key, traces)
                result = runner.run(
                    chrome_with(
                        sampled_sets=scaled_sampled_sets(runner.scale.machine_scale),
                        **{param: value},
                    ),
                    traces,
                )
                speedups.append(weighted_speedup(result.ipcs, base.ipcs))
            rows.append([param, value, speedup_percent(geometric_mean(speedups))])
    return ExperimentResult(
        experiment_id="fig16",
        title="CHROME hyper-parameter sensitivity, 4-core (%)",
        columns=["parameter", "value", "speedup_pct"],
        rows=rows,
        notes=["paper optima: alpha ~1e-3..5e-2, gamma ~1e-1..0.37, epsilon 1e-3"],
    )


# --- Tables III & IV: storage overhead -----------------------------------------------


def tab3(runner: Runner) -> ExperimentResult:
    """Table III: CHROME storage budget (analytic, exact)."""
    breakdown = chrome_overhead()
    rows = [
        ["q-table", round(breakdown.qtable_kb, 1)],
        ["eq", round(breakdown.eq_kb, 1)],
        ["metadata(epv)", round(breakdown.metadata_kb, 1)],
        ["total", round(breakdown.total_kb, 1)],
        ["fraction_of_12MB_llc_pct", round(100 * overhead_fraction_of_llc(breakdown), 2)],
    ]
    return ExperimentResult(
        experiment_id="tab3",
        title="CHROME storage overhead (KB)",
        columns=["component", "kb"],
        rows=rows,
        notes=["paper: 32 + 12.7 + 48 = 92.7 KB (0.75% of 12MB LLC)"],
    )


def tab4(runner: Runner) -> ExperimentResult:
    """Table IV: storage overhead across schemes (analytic)."""
    rows = [
        [s.scheme, "yes" if s.holistic else "no", "yes" if s.concurrency_aware else "no", s.overhead_kb, s.source]
        for s in overhead_comparison()
    ]
    return ExperimentResult(
        experiment_id="tab4",
        title="Storage overhead comparison (4-core, 12-way 12MB LLC)",
        columns=["scheme", "holistic", "concurrency", "overhead_kb", "source"],
        rows=rows,
        notes=["paper: 146 / 254 / 170.6 / 130.5 / 92.7 KB — CHROME smallest"],
    )


EXPERIMENTS: Dict[str, ExperimentFn] = {
    "fig1": fig1,
    "fig2": fig2,
    "fig3": fig3,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "tab3": tab3,
    "tab4": tab4,
    "tab7": tab7,
}


def _register_ablations() -> None:
    """Fold the beyond-the-paper ablation studies into the registry.

    Imported lazily to avoid a circular import (ablations reuses this
    module's suite helpers)."""
    from .ablations import ABLATIONS

    for experiment_id, fn in ABLATIONS.items():
        EXPERIMENTS.setdefault(experiment_id, fn)


def run_experiment(experiment_id: str, runner: Runner | None = None) -> ExperimentResult:
    """Regenerate one paper artifact (or ablation) by id."""
    if experiment_id not in EXPERIMENTS:
        _register_ablations()
    try:
        fn = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return fn(runner or Runner())
