"""Ablation experiments beyond the paper's own sensitivity studies.

The paper ablates concurrency awareness (N-CHROME, Fig. 12), state
features (Fig. 15), EQ depth (Table VII) and hyper-parameters
(Fig. 16).  DESIGN.md calls out four further design choices this module
studies:

* ``abl_bypass``   — holistic bypassing: CHROME with the BYPASS action
  removed (replacement-only RL agent);
* ``abl_prefetch_rewards`` — demand/prefetch reward differentiation:
  collapse R^P onto R^D (objective 2 of Sec. IV-C disabled);
* ``abl_tiebreak`` — cold-start arg-max tie-break direction
  (insert-first, the repo default, vs bypass-first as a literal reading
  of the action encoding);
* ``abl_sampling`` — sampled-set training density (the scaled-run
  fidelity knob this reproduction adds).

Plus ``extended_baselines``: the classical policies (random, SRRIP,
DRRIP, SHiP++) the paper omits, for context.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence

from ..core.chrome import ChromePolicy
from ..core.config import (
    ACTION_BYPASS,
    ACTION_EPV_HIGH,
    ACTION_EPV_LOW,
    ACTION_EPV_MED,
    ChromeConfig,
)
from ..core.rewards import RewardConfig
from .metrics import geometric_mean, speedup_percent, weighted_speedup
from .report import ExperimentResult
from .runner import Runner, scaled_sampled_sets
from .figures import _suite_workloads
from .registry import register_experiment


class NoBypassChromePolicy(ChromePolicy):
    """CHROME restricted to replacement actions (no holistic bypass)."""

    name = "chrome-nobypass"

    def should_bypass(self, info):  # type: ignore[override]
        action = self._decide(info, hit=False)
        if action == ACTION_BYPASS:
            # Illegal here: fall back to distant-priority insertion.
            action = ACTION_EPV_HIGH
        self._pending_fill = (info.block_addr, action)
        return False


class BypassFirstChromePolicy(ChromePolicy):
    """CHROME whose cold-state tie-break prefers BYPASS (the pre-fix
    behaviour): demonstrates the cold-start bypass spiral."""

    name = "chrome-bypassfirst"

    def __init__(self, config=None) -> None:
        super().__init__(config)
        self._miss_actions = (
            ACTION_BYPASS,
            ACTION_EPV_LOW,
            ACTION_EPV_MED,
            ACTION_EPV_HIGH,
        )


def _chrome_cfg(runner: Runner, **overrides) -> ChromeConfig:
    return replace(
        ChromeConfig(),
        sampled_sets=scaled_sampled_sets(runner.scale.machine_scale),
        **overrides,
    )


def _suite_geomean(
    runner: Runner, policy_factory, workloads: Sequence[str], num_cores: int = 4
) -> float:
    speedups: List[float] = []
    for name in workloads:
        mix_key, traces = runner.make_homogeneous(name, num_cores)
        base = runner.baseline(mix_key, traces)
        result = runner.run(policy_factory(), traces)
        speedups.append(weighted_speedup(result.ipcs, base.ipcs))
    return speedup_percent(geometric_mean(speedups))


def abl_bypass(runner: Runner) -> ExperimentResult:
    workloads = _suite_workloads(runner.scale)
    rows = [
        ["chrome", _suite_geomean(runner, lambda: ChromePolicy(_chrome_cfg(runner)), workloads)],
        [
            "chrome-nobypass",
            _suite_geomean(
                runner, lambda: NoBypassChromePolicy(_chrome_cfg(runner)), workloads
            ),
        ],
    ]
    return ExperimentResult(
        experiment_id="abl_bypass",
        title="Ablation: holistic bypassing (4-core SPEC homogeneous, %)",
        columns=["variant", "speedup_pct"],
        rows=rows,
        notes=["expectation: removing the bypass action forfeits pollution wins"],
    )


def abl_prefetch_rewards(runner: Runner) -> ExperimentResult:
    workloads = _suite_workloads(runner.scale)
    undifferentiated = RewardConfig(
        r_ac_prefetch=RewardConfig().r_ac_demand,
        r_in_prefetch=RewardConfig().r_in_demand,
    )
    rows = [
        ["chrome", _suite_geomean(runner, lambda: ChromePolicy(_chrome_cfg(runner)), workloads)],
        [
            "chrome-flat-prefetch-rewards",
            _suite_geomean(
                runner,
                lambda: ChromePolicy(_chrome_cfg(runner, rewards=undifferentiated)),
                workloads,
            ),
        ],
    ]
    return ExperimentResult(
        experiment_id="abl_prefetch_rewards",
        title="Ablation: demand/prefetch reward differentiation (%)",
        columns=["variant", "speedup_pct"],
        rows=rows,
        notes=["objective 2 of Sec. IV-C: demand retention should outrank prefetch"],
    )


def abl_tiebreak(runner: Runner) -> ExperimentResult:
    workloads = _suite_workloads(runner.scale)
    rows = [
        [
            "insert-first (repo default)",
            _suite_geomean(runner, lambda: ChromePolicy(_chrome_cfg(runner)), workloads),
        ],
        [
            "bypass-first",
            _suite_geomean(
                runner, lambda: BypassFirstChromePolicy(_chrome_cfg(runner)), workloads
            ),
        ],
    ]
    return ExperimentResult(
        experiment_id="abl_tiebreak",
        title="Ablation: cold-state arg-max tie-break direction (%)",
        columns=["variant", "speedup_pct"],
        rows=rows,
        notes=["bypass-first can enter a self-reinforcing bypass spiral at short scale"],
    )


def abl_sampling(runner: Runner) -> ExperimentResult:
    workloads = _suite_workloads(runner.scale)
    workloads = workloads[: max(3, len(workloads) // 2)]
    full = scaled_sampled_sets(runner.scale.machine_scale)
    rows = []
    for sampled in sorted({16, 64, max(64, full // 4), full}):
        factory = lambda sampled=sampled: ChromePolicy(
            replace(ChromeConfig(), sampled_sets=sampled)
        )
        rows.append([sampled, _suite_geomean(runner, factory, workloads)])
    return ExperimentResult(
        experiment_id="abl_sampling",
        title="Ablation: sampled-set training density (%)",
        columns=["sampled_sets", "speedup_pct"],
        rows=rows,
        notes=[
            "the paper's 64 sets assume full-length runs; scaled runs need "
            "proportionally denser sampling to preserve training density"
        ],
    )


def extended_baselines(runner: Runner) -> ExperimentResult:
    workloads = _suite_workloads(runner.scale)
    rows = []
    for scheme in ("random", "srrip", "drrip", "ship++", "chrome"):
        speedups = []
        for name in workloads:
            mix_key, traces = runner.make_homogeneous(name, 4)
            metrics = runner.compare([scheme], mix_key, traces)
            speedups.append(metrics[scheme].weighted_speedup)
        rows.append([scheme, speedup_percent(geometric_mean(speedups))])
    return ExperimentResult(
        experiment_id="extended_baselines",
        title="Extended baselines vs CHROME (4-core SPEC homogeneous, %)",
        columns=["scheme", "speedup_pct"],
        rows=rows,
        notes=["classical policies omitted from the paper's comparison"],
    )


ABLATIONS: Dict[str, object] = {
    "abl_bypass": abl_bypass,
    "abl_prefetch_rewards": abl_prefetch_rewards,
    "abl_tiebreak": abl_tiebreak,
    "abl_sampling": abl_sampling,
    "extended_baselines": extended_baselines,
}

# Eager registration: importing repro.experiments is enough to make the
# ablations addressable by id (no private bootstrap call needed).
for _experiment_id, _fn in ABLATIONS.items():
    register_experiment(_experiment_id, _fn, overwrite=False)
