"""Evaluation metrics (Sec. VI and the per-figure definitions).

The paper reports *normalized weighted speedup over LRU*, the standard
shared-cache metric [9], [12], [43]: for a mix, each core's IPC under
the studied scheme is normalized to its IPC under LRU on the same mix,
and the normalized values are averaged.  Aggregates across workloads
use the geometric mean, as in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..sim.multicore import SystemResult


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; tolerates empty input (returns 1.0)."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 1.0
    return math.exp(sum(math.log(v) for v in filtered) / len(filtered))


def weighted_speedup(
    scheme_ipcs: Sequence[float], baseline_ipcs: Sequence[float]
) -> float:
    """Normalized weighted speedup: mean of per-core IPC ratios."""
    if len(scheme_ipcs) != len(baseline_ipcs):
        raise ValueError("core counts differ between scheme and baseline")
    ratios = []
    for scheme, base in zip(scheme_ipcs, baseline_ipcs):
        if base <= 0:
            continue
        ratios.append(scheme / base)
    if not ratios:
        return 1.0
    return sum(ratios) / len(ratios)


def speedup_percent(ws: float) -> float:
    """Express a weighted speedup as the paper's percent-over-LRU."""
    return (ws - 1.0) * 100.0


@dataclass(frozen=True)
class MixMetrics:
    """Per-(mix, scheme) summary derived from two simulation runs."""

    scheme: str
    weighted_speedup: float
    demand_miss_ratio: float
    ephr: float
    bypass_coverage: float
    bypass_efficiency: float
    unused_eviction_fraction: float
    unused_prefetch_fraction: float
    unused_requested_again_fraction: float
    prefetcher_accuracy: float
    upksa: float

    @property
    def speedup_percent(self) -> float:
        return speedup_percent(self.weighted_speedup)


def summarize(result: SystemResult, baseline: SystemResult) -> MixMetrics:
    """Build :class:`MixMetrics` from a scheme run and its LRU baseline."""
    mgmt = result.llc_mgmt
    telemetry = result.extra.get("policy_telemetry", {})
    return MixMetrics(
        scheme=result.policy_name,
        weighted_speedup=weighted_speedup(result.ipcs, baseline.ipcs),
        demand_miss_ratio=result.llc_stats.demand_miss_ratio,
        ephr=mgmt.ephr if mgmt else 0.0,
        bypass_coverage=mgmt.bypass_coverage if mgmt else 0.0,
        bypass_efficiency=mgmt.bypass_efficiency if mgmt else 0.0,
        unused_eviction_fraction=mgmt.unused_eviction_fraction if mgmt else 0.0,
        unused_prefetch_fraction=(
            mgmt.unused_eviction_prefetch_fraction if mgmt else 0.0
        ),
        unused_requested_again_fraction=(
            mgmt.unused_requested_again_fraction if mgmt else 0.0
        ),
        prefetcher_accuracy=result.prefetcher_accuracy,
        upksa=float(telemetry.get("upksa", 0.0)),
    )
