"""On-disk memoization of completed simulation jobs.

Results are keyed by a content hash of the full job spec plus
:data:`~repro.experiments.jobspec.CODE_VERSION`, so a warm cache makes
re-runs and cross-figure overlaps free while any change to the spec (or
a simulator-semantics version bump) transparently invalidates the
entry.  Corrupt or unreadable entries are treated as misses — the cache
can never change results, only skip work.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional

from ..sim.multicore import SystemResult
from .jobspec import CODE_VERSION, SimJob, job_fingerprint


class ResultCache:
    """A directory of pickled :class:`SystemResult`, one file per job."""

    def __init__(self, root: str | os.PathLike, code_version: str = CODE_VERSION):
        self.root = Path(root)
        self.code_version = code_version
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError):
            raise ValueError(
                f"cache dir {str(self.root)!r} exists and is not a directory"
            ) from None

    def path(self, job: SimJob) -> Path:
        return self.root / f"{job_fingerprint(job, self.code_version)}.pkl"

    def get(self, job: SimJob) -> Optional[SystemResult]:
        path = self.path(job)
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:
            # A truncated/corrupt entry is a miss, never an error.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, job: SimJob, result: SystemResult) -> None:
        path = self.path(job)
        # Atomic publish so concurrent runs sharing a cache dir never
        # observe a half-written entry.
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def prune(self, max_entries: int) -> int:
        """Trim the cache to at most ``max_entries`` entries.

        Oldest entries (by modification time — a disk hit does not
        refresh it, so this is insertion order for practical purposes)
        are deleted first; mtime ties break on filename, so the
        eviction order is fully deterministic even on filesystems with
        coarse timestamps (entries written within one tick).  Returns
        the number of entries removed; entries deleted concurrently by
        another process are skipped, never raised.
        """
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        entries = []
        for path in self.root.glob("*.pkl"):
            try:
                entries.append((path.stat().st_mtime, path.name, path))
            except OSError:
                continue  # vanished mid-scan
        removed = 0
        excess = len(entries) - max_entries
        if excess <= 0:
            return 0
        for _, _, path in sorted(entries)[:excess]:
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.pkl"))
