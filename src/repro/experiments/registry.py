"""Public experiment registry.

Experiments register themselves here at import time (importing
:mod:`repro.experiments` is enough — no private bootstrap calls), and
the CLI, benchmark harness and library users all go through the same
three entry points:

* :func:`register_experiment` — add (or override) an experiment by id,
  optionally with a declarative :class:`~repro.experiments.engine.ExperimentPlan`
  builder so the parallel engine can schedule it;
* :func:`available_experiments` — sorted ids;
* :func:`get_experiment` / :func:`get_plan` — look up the runner-based
  callable and (when declared) the plan builder.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import ExperimentPlan
    from .report import ExperimentResult
    from .runner import ExperimentScale, Runner

ExperimentFn = Callable[["Runner"], "ExperimentResult"]
PlanFn = Callable[["ExperimentScale"], "ExperimentPlan"]

#: id -> runner-based implementation (the historical interface).
EXPERIMENTS: Dict[str, ExperimentFn] = {}

#: id -> plan builder, for experiments the parallel engine can schedule.
PLANS: Dict[str, PlanFn] = {}


def register_experiment(
    experiment_id: str,
    fn: ExperimentFn,
    *,
    plan: Optional[PlanFn] = None,
    overwrite: bool = True,
) -> None:
    """Register an experiment id (last registration wins by default)."""
    if not overwrite and experiment_id in EXPERIMENTS:
        return
    EXPERIMENTS[experiment_id] = fn
    if plan is not None:
        PLANS[experiment_id] = plan
    elif overwrite:
        PLANS.pop(experiment_id, None)


def available_experiments() -> List[str]:
    """Sorted ids of every registered experiment."""
    return sorted(EXPERIMENTS)


def get_experiment(experiment_id: str) -> ExperimentFn:
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {available_experiments()}"
        ) from None


def get_plan(experiment_id: str) -> Optional[PlanFn]:
    """The plan builder for an id, or None for runner-only experiments."""
    return PLANS.get(experiment_id)
