"""Per-job progress/timing lines for the experiment engine.

The engine reports where every job's result came from — ``run`` (a
fresh simulation), ``disk`` (the on-disk result cache) or ``memo``
(already completed earlier in this process, e.g. shared between
figures) — with wall-clock timing, so a ``chrome-repro run all`` prints
a live account of the dedup/cache wins.
"""

from __future__ import annotations

import sys
from typing import Optional, TextIO

from .jobspec import SimJob


class ProgressReporter:
    """Writes one line per completed job plus a batch summary."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._total = 0
        self._done = 0

    def begin(self, experiment_id: str, total_jobs: int) -> None:
        self._total = total_jobs
        self._done = 0
        if total_jobs:
            self._emit(f"[{experiment_id}] {total_jobs} job(s)")

    def job_done(self, job: SimJob, source: str, seconds: float) -> None:
        self._done += 1
        if source == "memo":
            # Memo hits are free and frequent (shared suites); they are
            # accounted for in the batch summary instead of per-line.
            return
        width = len(str(self._total))
        self._emit(
            f"  [{self._done:>{width}}/{self._total}] "
            f"{source:<4} {seconds:6.2f}s  {job.label}"
        )

    def batch_summary(
        self, experiment_id: str, executed: int, disk_hits: int, memo_hits: int,
        seconds: float,
    ) -> None:
        if self._total:
            self._emit(
                f"[{experiment_id}] done in {seconds:.1f}s "
                f"({executed} run, {disk_hits} disk, {memo_hits} memo)"
            )

    def _emit(self, line: str) -> None:
        print(line, file=self.stream, flush=True)


class NullProgress(ProgressReporter):
    """Progress sink that prints nothing (library/test default)."""

    def _emit(self, line: str) -> None:  # pragma: no cover - trivially silent
        pass
