"""Job-based parallel execution layer for the experiment harness.

The engine takes the :class:`~repro.experiments.jobspec.SimJob` specs a
figure declares (its :class:`ExperimentPlan`), deduplicates them against
everything already completed this process (so e.g. the per-mix LRU
baseline and the Fig. 6-9 shared suite run exactly once across *all*
figures), consults the optional on-disk
:class:`~repro.experiments.result_cache.ResultCache`, and schedules the
remaining simulations across a ``multiprocessing`` worker pool.

Determinism guarantee: results are bit-identical for ``--jobs 1`` and
``--jobs 8``.  Each job carries its own RNG seeds inside the spec,
workers never share mutable policy state, and assembly consumes results
keyed by job (never by completion order).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..sim.multicore import SystemResult
from .jobspec import SimJob, execute_job
from .progress import NullProgress, ProgressReporter
from .report import ExperimentResult
from .result_cache import ResultCache

AssembleFn = Callable[[Mapping[SimJob, SystemResult]], ExperimentResult]


@dataclass(frozen=True)
class ExperimentPlan:
    """A figure, declaratively: its jobs plus a pure assembly step.

    ``assemble`` must be pure — it may only read the completed results
    (and values closed over at plan-build time), never run simulations.
    """

    experiment_id: str
    jobs: Tuple[SimJob, ...]
    assemble: AssembleFn


@dataclass
class EngineStats:
    """Where results came from, accumulated over the engine's lifetime."""

    executed: int = 0
    disk_hits: int = 0
    memo_hits: int = 0

    @property
    def total(self) -> int:
        return self.executed + self.disk_hits + self.memo_hits


def _pool_run(job: SimJob) -> Tuple[SimJob, SystemResult, float]:
    start = time.perf_counter()
    result = execute_job(job)
    return job, result, time.perf_counter() - start


def _fork_context():
    # fork shares the already-imported interpreter (cheap startup);
    # fall back to the platform default where fork is unavailable.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


class Engine:
    """Schedules simulation jobs across workers, with dedup + caching."""

    def __init__(
        self,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        progress: Optional[ProgressReporter] = None,
    ) -> None:
        self.workers = max(1, workers if workers is not None else os.cpu_count() or 1)
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.progress = progress or NullProgress()
        self.stats = EngineStats()
        self._memo: Dict[SimJob, SystemResult] = {}

    # --- job execution ----------------------------------------------------------

    def run_jobs(
        self, jobs: Sequence[SimJob], experiment_id: str = "jobs"
    ) -> Dict[SimJob, SystemResult]:
        """Complete every job (order-independent), returning job -> result."""
        unique: List[SimJob] = list(dict.fromkeys(jobs))
        self.progress.begin(experiment_id, len(unique))
        start = time.perf_counter()
        results: Dict[SimJob, SystemResult] = {}
        pending: List[SimJob] = []
        executed = disk_hits = memo_hits = 0

        for job in unique:
            memoized = self._memo.get(job)
            if memoized is not None:
                results[job] = memoized
                memo_hits += 1
                self.progress.job_done(job, "memo", 0.0)
                continue
            if self.cache is not None:
                cached = self.cache.get(job)
                if cached is not None:
                    self._memo[job] = cached
                    results[job] = cached
                    disk_hits += 1
                    self.progress.job_done(job, "disk", 0.0)
                    continue
            pending.append(job)

        if pending:
            executed = len(pending)
            for job, result, seconds in self._execute(pending):
                self._memo[job] = result
                results[job] = result
                if self.cache is not None:
                    self.cache.put(job, result)
                self.progress.job_done(job, "run", seconds)

        self.stats.executed += executed
        self.stats.disk_hits += disk_hits
        self.stats.memo_hits += memo_hits
        self.progress.batch_summary(
            experiment_id, executed, disk_hits, memo_hits,
            time.perf_counter() - start,
        )
        return results

    def _execute(self, pending: Sequence[SimJob]):
        if self.workers <= 1 or len(pending) <= 1:
            for job in pending:
                yield _pool_run(job)
            return
        ctx = _fork_context()
        with ctx.Pool(processes=min(self.workers, len(pending))) as pool:
            yield from pool.imap_unordered(_pool_run, pending)

    # --- plans ------------------------------------------------------------------

    def run_plan(self, plan: ExperimentPlan) -> ExperimentResult:
        """Complete a plan's jobs, then assemble its paper artifact."""
        results = self.run_jobs(plan.jobs, experiment_id=plan.experiment_id)
        return plan.assemble(results)
