"""Job-based parallel execution layer for the experiment harness.

The engine takes the :class:`~repro.experiments.jobspec.SimJob` specs a
figure declares (its :class:`ExperimentPlan`), deduplicates them against
everything already completed this process (so e.g. the per-mix LRU
baseline and the Fig. 6-9 shared suite run exactly once across *all*
figures), consults the optional on-disk
:class:`~repro.experiments.result_cache.ResultCache`, and schedules the
remaining simulations across a ``multiprocessing`` worker pool.

Determinism guarantee: results are bit-identical for ``--jobs 1`` and
``--jobs 8``.  Each job carries its own RNG seeds inside the spec,
workers never share mutable policy state, and assembly consumes results
keyed by job (never by completion order).
"""

from __future__ import annotations

import functools
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..obs import ObsConfig
from ..sim.multicore import SystemResult
from .jobspec import SimJob, execute_job
from .progress import NullProgress, ProgressReporter
from .report import ExperimentResult
from .result_cache import ResultCache

AssembleFn = Callable[[Mapping[SimJob, SystemResult]], ExperimentResult]


@dataclass(frozen=True)
class ExperimentPlan:
    """A figure, declaratively: its jobs plus a pure assembly step.

    ``assemble`` must be pure — it may only read the completed results
    (and values closed over at plan-build time), never run simulations.
    """

    experiment_id: str
    jobs: Tuple[SimJob, ...]
    assemble: AssembleFn


@dataclass
class EngineStats:
    """Where results came from, accumulated over the engine's lifetime."""

    executed: int = 0
    disk_hits: int = 0
    memo_hits: int = 0

    @property
    def total(self) -> int:
        return self.executed + self.disk_hits + self.memo_hits


def _pool_run(
    job: SimJob, obs: Optional[ObsConfig] = None
) -> Tuple[SimJob, SystemResult, float]:
    start = time.perf_counter()
    result = execute_job(job, obs=obs)
    return job, result, time.perf_counter() - start


def _fork_context():
    # fork shares the already-imported interpreter (cheap startup);
    # fall back to the platform default where fork is unavailable.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


class Engine:
    """Schedules simulation jobs across workers, with dedup + caching."""

    def __init__(
        self,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        progress: Optional[ProgressReporter] = None,
        obs: Optional[ObsConfig] = None,
    ) -> None:
        self.workers = max(1, workers if workers is not None else os.cpu_count() or 1)
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.progress = progress or NullProgress()
        self.stats = EngineStats()
        self._memo: Dict[SimJob, SystemResult] = {}
        # Observability: the ObsConfig (picklable) is forwarded to
        # worker processes, which export per-job artifacts themselves;
        # the engine's own session records scheduling — wall-clock job
        # spans, memo/disk-cache hits, batch summaries.  Disk-cache
        # hits skip execution entirely, so they leave no per-job
        # artifacts (only the engine's "disk" marker).
        self.obs_config = obs
        self._obs = obs.session("engine") if obs is not None else None
        self._obs_t0 = time.perf_counter()
        self._obs_done = 0
        if self._obs is not None:
            self._obs.tracer.name_thread(0, "engine")
            for lane in range(1, self.workers + 1):
                self._obs.tracer.name_thread(lane, f"worker{lane - 1}")

    # --- job execution ----------------------------------------------------------

    def run_jobs(
        self, jobs: Sequence[SimJob], experiment_id: str = "jobs"
    ) -> Dict[SimJob, SystemResult]:
        """Complete every job (order-independent), returning job -> result."""
        unique: List[SimJob] = list(dict.fromkeys(jobs))
        self.progress.begin(experiment_id, len(unique))
        start = time.perf_counter()
        results: Dict[SimJob, SystemResult] = {}
        pending: List[SimJob] = []
        executed = disk_hits = memo_hits = 0

        for job in unique:
            memoized = self._memo.get(job)
            if memoized is not None:
                results[job] = memoized
                memo_hits += 1
                self.progress.job_done(job, "memo", 0.0)
                if self._obs is not None:
                    self._obs_job(job, "memo", 0.0)
                continue
            if self.cache is not None:
                cached = self.cache.get(job)
                if cached is not None:
                    self._memo[job] = cached
                    results[job] = cached
                    disk_hits += 1
                    self.progress.job_done(job, "disk", 0.0)
                    if self._obs is not None:
                        self._obs_job(job, "disk", 0.0)
                    continue
            pending.append(job)

        if pending:
            executed = len(pending)
            for job, result, seconds in self._execute(pending):
                self._memo[job] = result
                results[job] = result
                if self.cache is not None:
                    self.cache.put(job, result)
                self.progress.job_done(job, "run", seconds)
                if self._obs is not None:
                    self._obs_job(job, "run", seconds)

        elapsed = time.perf_counter() - start
        self.stats.executed += executed
        self.stats.disk_hits += disk_hits
        self.stats.memo_hits += memo_hits
        self.progress.batch_summary(
            experiment_id, executed, disk_hits, memo_hits, elapsed
        )
        if self._obs is not None:
            self._obs.timeline.record(
                "engine_batch",
                experiment=experiment_id,
                jobs=len(unique),
                executed=executed,
                disk_hits=disk_hits,
                memo_hits=memo_hits,
                seconds=elapsed,
            )
        return results

    def _execute(self, pending: Sequence[SimJob]):
        if self.workers <= 1 or len(pending) <= 1:
            for job in pending:
                yield _pool_run(job, self.obs_config)
            return
        ctx = _fork_context()
        run = functools.partial(_pool_run, obs=self.obs_config)
        with ctx.Pool(processes=min(self.workers, len(pending))) as pool:
            yield from pool.imap_unordered(run, pending)

    # --- observability (engine-side scheduling record) ----------------------------

    def _obs_job(self, job, source: str, seconds: float) -> None:
        """One completed job on the engine's wall-clock trace."""
        obs = self._obs
        now_us = (time.perf_counter() - self._obs_t0) * 1e6
        obs.timeline.record(
            "engine_job", label=job.label, source=source, seconds=seconds
        )
        if source == "run":
            # Completion-order lanes: the fork pool doesn't report which
            # worker ran a job, so lanes show concurrency shape, not
            # worker identity.
            lane = self._obs_done % self.workers + 1
            self._obs_done += 1
            obs.tracer.complete(
                job.label, now_us - seconds * 1e6, seconds * 1e6, tid=lane
            )
        else:
            obs.tracer.instant(f"{source}_hit", now_us, args={"label": job.label})
        obs.registry.counter(f"engine.jobs_{source}").inc()

    def export_obs(self) -> Optional[dict]:
        """Write the engine session's artifacts (None with obs off)."""
        if self._obs is None:
            return None
        return self._obs.export()

    # --- plans ------------------------------------------------------------------

    def run_plan(self, plan: ExperimentPlan) -> ExperimentResult:
        """Complete a plan's jobs, then assemble its paper artifact."""
        results = self.run_jobs(plan.jobs, experiment_id=plan.experiment_id)
        return plan.assemble(results)
