"""Experiment runner: (mix, policy, prefetch config) -> metrics.

The runner owns the bookkeeping every figure needs: building the
simulated machine, running the LRU baseline for normalization (cached
per mix so comparisons share one baseline run), and summarizing results
into :class:`~repro.experiments.metrics.MixMetrics`.

Run sizes are governed by :class:`ExperimentScale`; the defaults are a
laptop-friendly reduction of the paper's 50M-warmup + 200M-instruction
runs and can be overridden through environment variables:

* ``REPRO_SCALE`` — machine/working-set scale factor (default 1/16);
* ``REPRO_ACCESSES`` — measured memory accesses per core;
* ``REPRO_WARMUP`` — warmup accesses per core;
* ``REPRO_WORKLOADS`` — cap on workloads per figure (0 = all);
* ``REPRO_MIXES`` — heterogeneous mixes for Fig. 10-style sweeps.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.chrome import ChromePolicy
from ..core.config import ChromeConfig
from ..sim.multicore import MultiCoreSystem, SystemConfig, SystemResult
from ..sim.replacement import make_policy
from ..sim.replacement.base import ReplacementPolicy
from ..traces.mixes import heterogeneous_mix, homogeneous_mix
from ..traces.trace import Trace
from .metrics import MixMetrics, summarize


def _env_float(name: str, default: float, minimum_exclusive: float = 0.0) -> float:
    """Parse a float env override; empty/unset falls back to the default.

    Typos raise a clear error naming the variable instead of a bare
    ``ValueError``, and non-positive values are rejected (every scale
    knob is a strictly positive quantity).
    """
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"environment variable {name}={raw!r} is not a valid number"
        ) from None
    if value <= minimum_exclusive:
        raise ValueError(
            f"environment variable {name}={raw!r} must be > {minimum_exclusive:g}"
        )
    return value


def _env_int(name: str, default: int, minimum: int = 1) -> int:
    """Parse an integer env override; empty/unset falls back to the default.

    Rejects non-integers (e.g. ``REPRO_ACCESSES=24k``) with an error
    naming the variable, and values below ``minimum`` (count caps where
    0 means "no cap" pass ``minimum=0``).
    """
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"environment variable {name}={raw!r} is not a valid integer"
        ) from None
    if value < minimum:
        raise ValueError(
            f"environment variable {name}={raw!r} must be >= {minimum}"
        )
    return value


@dataclass(frozen=True)
class ExperimentScale:
    """Run-size knobs shared by every experiment."""

    machine_scale: float = 1.0 / 16.0
    accesses_per_core: int = 24_000
    warmup_per_core: int = 6_000
    workload_limit: int = 8  # 0 = all workloads
    hetero_mixes: int = 12

    @classmethod
    def from_env(cls) -> "ExperimentScale":
        base = cls()
        return cls(
            machine_scale=_env_float("REPRO_SCALE", base.machine_scale),
            accesses_per_core=_env_int("REPRO_ACCESSES", base.accesses_per_core),
            # Warmup may legitimately be disabled (0); the workload cap
            # uses 0 as the documented "all workloads" sentinel.
            warmup_per_core=_env_int("REPRO_WARMUP", base.warmup_per_core, minimum=0),
            workload_limit=_env_int("REPRO_WORKLOADS", base.workload_limit, minimum=0),
            hetero_mixes=_env_int("REPRO_MIXES", base.hetero_mixes),
        )

    def with_overrides(self, **overrides) -> "ExperimentScale":
        """A copy with the given fields replaced; ``None`` values are
        ignored (so CLI args can be forwarded verbatim)."""
        clean = {k: v for k, v in overrides.items() if v is not None}
        return replace(self, **clean) if clean else self

    def limit_workloads(self, names: Sequence[str]) -> List[str]:
        if self.workload_limit and self.workload_limit < len(names):
            # Even spread keeps suite diversity when truncating.
            step = len(names) / self.workload_limit
            return [names[int(i * step)] for i in range(self.workload_limit)]
        return list(names)


PolicyFactory = Callable[[], ReplacementPolicy]

#: sampled training sets at the paper's full machine scale (Sec. V-D)
SAMPLED_SETS_FULL_SCALE = 64


def resolve_policy(
    policy: str | PolicyFactory | ReplacementPolicy,
    machine_scale: float = 1.0,
) -> ReplacementPolicy:
    """Accept a registry name, factory, or ready policy instance.

    When the machine is scaled down, every sampling-trained scheme
    (Hawkeye, Glider, Mockingjay, CARE, CHROME) gets its sampled-set
    count scaled *up* by the same factor: the paper's constant 64 sets
    yields a fixed number of training observations per instruction at
    full scale, and a 1/16-scale run must preserve that training
    density or every learning scheme is unfairly under-trained.  The
    hardware-overhead tables (III, IV, VII) always use the full-scale
    64-set geometry.
    """
    if isinstance(policy, ReplacementPolicy):
        return policy
    if not isinstance(policy, str):
        return policy()
    sampled = scaled_sampled_sets(machine_scale)
    if policy == "chrome":
        from dataclasses import replace as _replace

        return ChromePolicy(_replace(ChromeConfig(), sampled_sets=sampled))
    if policy == "n-chrome":
        from dataclasses import replace as _replace

        from ..core.chrome import make_nchrome_policy

        return make_nchrome_policy(_replace(ChromeConfig(), sampled_sets=sampled))
    instance = make_policy(policy)
    if hasattr(instance, "_sampled_target"):
        instance._sampled_target = sampled
    return instance


def scaled_sampled_sets(machine_scale: float) -> int:
    """Training-density-preserving sampled-set count for a scaled run."""
    if machine_scale >= 1.0:
        return SAMPLED_SETS_FULL_SCALE
    return int(SAMPLED_SETS_FULL_SCALE / machine_scale)


class Runner:
    """Runs simulations and caches LRU baselines per mix.

    Every Runner owns an :class:`~repro.experiments.engine.Engine`
    (serial by default; pass a shared multi-worker engine to
    parallelize).  String-named policy runs on mixes built by this
    runner route through the engine, so figures, ablations and ad-hoc
    comparisons all share one pool of completed simulations.
    """

    def __init__(
        self,
        scale: Optional[ExperimentScale] = None,
        engine: Optional[object] = None,
    ) -> None:
        self.scale = scale or ExperimentScale.from_env()
        self._engine = engine
        self._baseline_cache: Dict[Tuple, SystemResult] = {}

    @property
    def engine(self):
        if self._engine is None:
            from .engine import Engine  # local import breaks the cycle

            self._engine = Engine(workers=1)
        return self._engine

    def run_plan(self, plan):
        """Execute a declarative experiment plan on this runner's engine."""
        return self.engine.run_plan(plan)

    def _job_from_mix_key(self, mix_key: Tuple, policy: str, prefetch: str):
        """Rebuild the SimJob equivalent of a make_* mix key, if possible."""
        from .jobspec import MixSpec, job_for

        try:
            if mix_key[0] == "homo":
                _, name, num_cores, seed = mix_key
                mix = MixSpec.homogeneous(name, num_cores, seed=seed)
            elif mix_key[0] == "hetero":
                _, names, seed = mix_key
                mix = MixSpec.heterogeneous(tuple(names), seed=seed)
            else:
                return None
        except (ValueError, TypeError, IndexError):
            return None
        return job_for(self.scale, mix, policy, prefetch=prefetch)

    # --- mix construction -------------------------------------------------------

    def make_homogeneous(
        self, name: str, num_cores: int, seed: int = 0
    ) -> Tuple[Tuple, List[Trace]]:
        total = self.scale.accesses_per_core + self.scale.warmup_per_core
        traces = homogeneous_mix(
            name, num_cores, total, seed=seed, scale=self.scale.machine_scale
        )
        key = ("homo", name, num_cores, seed)
        return key, traces

    def make_heterogeneous(
        self, names: Sequence[str], seed: int = 0
    ) -> Tuple[Tuple, List[Trace]]:
        total = self.scale.accesses_per_core + self.scale.warmup_per_core
        traces = heterogeneous_mix(
            names, total, seed=seed, scale=self.scale.machine_scale
        )
        key = ("hetero", tuple(names), seed)
        return key, traces

    # --- execution ------------------------------------------------------------------

    def run(
        self,
        policy: str | PolicyFactory | ReplacementPolicy,
        traces: Sequence[Trace],
        prefetch: str = "nl_stride",
        num_cores: Optional[int] = None,
    ) -> SystemResult:
        """One simulation of ``traces`` under ``policy``."""
        cores = num_cores or len(traces)
        config = SystemConfig(num_cores=cores, scale=self.scale.machine_scale)
        system = MultiCoreSystem(
            config,
            llc_policy=resolve_policy(policy, self.scale.machine_scale),
            prefetch_config=prefetch,
        )
        return system.run(
            traces,
            max_accesses_per_core=self.scale.accesses_per_core
            + self.scale.warmup_per_core,
            warmup_accesses=self.scale.warmup_per_core,
        )

    def baseline(
        self, mix_key: Tuple, traces: Sequence[Trace], prefetch: str = "nl_stride"
    ) -> SystemResult:
        """The LRU run for a mix (cached — every scheme shares it)."""
        cache_key = (mix_key, prefetch, self.scale)
        result = self._baseline_cache.get(cache_key)
        if result is None:
            job = self._job_from_mix_key(mix_key, "lru", prefetch)
            if job is not None:
                # Through the engine: shared with figure plans and the
                # on-disk result cache, not just this runner.
                result = self.engine.run_jobs([job], experiment_id="baseline")[job]
            else:
                result = self.run("lru", traces, prefetch=prefetch)
            self._baseline_cache[cache_key] = result
        return result

    def compare(
        self,
        policies: Sequence[str | PolicyFactory | ReplacementPolicy],
        mix_key: Tuple,
        traces: Sequence[Trace],
        prefetch: str = "nl_stride",
    ) -> Dict[str, MixMetrics]:
        """Run each policy on the mix; metrics normalized to shared LRU."""
        base = self.baseline(mix_key, traces, prefetch=prefetch)
        named = [p for p in policies if isinstance(p, str)]
        jobs = {}
        for name in named:
            job = self._job_from_mix_key(mix_key, name, prefetch)
            if job is not None:
                jobs[name] = job
        results = (
            self.engine.run_jobs(list(jobs.values()), experiment_id="compare")
            if jobs
            else {}
        )
        out: Dict[str, MixMetrics] = {}
        for policy in policies:
            if isinstance(policy, str) and policy in jobs:
                result = results[jobs[policy]]
            else:
                instance = resolve_policy(policy, self.scale.machine_scale)
                result = self.run(instance, traces, prefetch=prefetch)
            out[result.policy_name] = summarize(result, base)
        return out


def chrome_with(
    *,
    features: Optional[Tuple[str, ...]] = None,
    eq_fifo_size: Optional[int] = None,
    alpha: Optional[float] = None,
    gamma: Optional[float] = None,
    epsilon: Optional[float] = None,
    sampled_sets: Optional[int] = None,
) -> ChromePolicy:
    """Convenience factory for CHROME variants used in the sensitivity
    studies (Figs. 15-16, Table VII)."""
    config = ChromeConfig()
    overrides = {}
    if sampled_sets is not None:
        overrides["sampled_sets"] = sampled_sets
    if features is not None:
        overrides["features"] = features
    if eq_fifo_size is not None:
        overrides["eq_fifo_size"] = eq_fifo_size
    if alpha is not None:
        overrides["alpha"] = alpha
    if gamma is not None:
        overrides["gamma"] = gamma
    if epsilon is not None:
        overrides["epsilon"] = epsilon
    if overrides:
        config = replace(config, **overrides)
    return ChromePolicy(config)
