"""Experiment runner: (mix, policy, prefetch config) -> metrics.

The runner owns the bookkeeping every figure needs: building the
simulated machine, running the LRU baseline for normalization (cached
per mix so comparisons share one baseline run), and summarizing results
into :class:`~repro.experiments.metrics.MixMetrics`.

Run sizes are governed by :class:`ExperimentScale`; the defaults are a
laptop-friendly reduction of the paper's 50M-warmup + 200M-instruction
runs and can be overridden through environment variables:

* ``REPRO_SCALE`` — machine/working-set scale factor (default 1/16);
* ``REPRO_ACCESSES`` — measured memory accesses per core;
* ``REPRO_WARMUP`` — warmup accesses per core;
* ``REPRO_WORKLOADS`` — cap on workloads per figure (0 = all);
* ``REPRO_MIXES`` — heterogeneous mixes for Fig. 10-style sweeps.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.chrome import ChromePolicy
from ..core.config import ChromeConfig
from ..sim.multicore import MultiCoreSystem, SystemConfig, SystemResult
from ..sim.replacement import make_policy
from ..sim.replacement.base import ReplacementPolicy
from ..traces.mixes import heterogeneous_mix, homogeneous_mix
from ..traces.trace import Trace
from .metrics import MixMetrics, summarize


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    return float(raw) if raw else default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    return int(raw) if raw else default


@dataclass(frozen=True)
class ExperimentScale:
    """Run-size knobs shared by every experiment."""

    machine_scale: float = 1.0 / 16.0
    accesses_per_core: int = 24_000
    warmup_per_core: int = 6_000
    workload_limit: int = 8  # 0 = all workloads
    hetero_mixes: int = 12

    @classmethod
    def from_env(cls) -> "ExperimentScale":
        base = cls()
        return cls(
            machine_scale=_env_float("REPRO_SCALE", base.machine_scale),
            accesses_per_core=_env_int("REPRO_ACCESSES", base.accesses_per_core),
            warmup_per_core=_env_int("REPRO_WARMUP", base.warmup_per_core),
            workload_limit=_env_int("REPRO_WORKLOADS", base.workload_limit),
            hetero_mixes=_env_int("REPRO_MIXES", base.hetero_mixes),
        )

    def limit_workloads(self, names: Sequence[str]) -> List[str]:
        if self.workload_limit and self.workload_limit < len(names):
            # Even spread keeps suite diversity when truncating.
            step = len(names) / self.workload_limit
            return [names[int(i * step)] for i in range(self.workload_limit)]
        return list(names)


PolicyFactory = Callable[[], ReplacementPolicy]

#: sampled training sets at the paper's full machine scale (Sec. V-D)
SAMPLED_SETS_FULL_SCALE = 64


def resolve_policy(
    policy: str | PolicyFactory | ReplacementPolicy,
    machine_scale: float = 1.0,
) -> ReplacementPolicy:
    """Accept a registry name, factory, or ready policy instance.

    When the machine is scaled down, every sampling-trained scheme
    (Hawkeye, Glider, Mockingjay, CARE, CHROME) gets its sampled-set
    count scaled *up* by the same factor: the paper's constant 64 sets
    yields a fixed number of training observations per instruction at
    full scale, and a 1/16-scale run must preserve that training
    density or every learning scheme is unfairly under-trained.  The
    hardware-overhead tables (III, IV, VII) always use the full-scale
    64-set geometry.
    """
    if isinstance(policy, ReplacementPolicy):
        return policy
    if not isinstance(policy, str):
        return policy()
    sampled = scaled_sampled_sets(machine_scale)
    if policy == "chrome":
        from dataclasses import replace as _replace

        return ChromePolicy(_replace(ChromeConfig(), sampled_sets=sampled))
    if policy == "n-chrome":
        from dataclasses import replace as _replace

        from ..core.chrome import make_nchrome_policy

        return make_nchrome_policy(_replace(ChromeConfig(), sampled_sets=sampled))
    instance = make_policy(policy)
    if hasattr(instance, "_sampled_target"):
        instance._sampled_target = sampled
    return instance


def scaled_sampled_sets(machine_scale: float) -> int:
    """Training-density-preserving sampled-set count for a scaled run."""
    if machine_scale >= 1.0:
        return SAMPLED_SETS_FULL_SCALE
    return int(SAMPLED_SETS_FULL_SCALE / machine_scale)


class Runner:
    """Runs simulations and caches LRU baselines per mix."""

    def __init__(self, scale: Optional[ExperimentScale] = None) -> None:
        self.scale = scale or ExperimentScale.from_env()
        self._baseline_cache: Dict[Tuple, SystemResult] = {}

    # --- mix construction -------------------------------------------------------

    def make_homogeneous(
        self, name: str, num_cores: int, seed: int = 0
    ) -> Tuple[Tuple, List[Trace]]:
        total = self.scale.accesses_per_core + self.scale.warmup_per_core
        traces = homogeneous_mix(
            name, num_cores, total, seed=seed, scale=self.scale.machine_scale
        )
        key = ("homo", name, num_cores, seed)
        return key, traces

    def make_heterogeneous(
        self, names: Sequence[str], seed: int = 0
    ) -> Tuple[Tuple, List[Trace]]:
        total = self.scale.accesses_per_core + self.scale.warmup_per_core
        traces = heterogeneous_mix(
            names, total, seed=seed, scale=self.scale.machine_scale
        )
        key = ("hetero", tuple(names), seed)
        return key, traces

    # --- execution ------------------------------------------------------------------

    def run(
        self,
        policy: str | PolicyFactory | ReplacementPolicy,
        traces: Sequence[Trace],
        prefetch: str = "nl_stride",
        num_cores: Optional[int] = None,
    ) -> SystemResult:
        """One simulation of ``traces`` under ``policy``."""
        cores = num_cores or len(traces)
        config = SystemConfig(num_cores=cores, scale=self.scale.machine_scale)
        system = MultiCoreSystem(
            config,
            llc_policy=resolve_policy(policy, self.scale.machine_scale),
            prefetch_config=prefetch,
        )
        return system.run(
            traces,
            max_accesses_per_core=self.scale.accesses_per_core
            + self.scale.warmup_per_core,
            warmup_accesses=self.scale.warmup_per_core,
        )

    def baseline(
        self, mix_key: Tuple, traces: Sequence[Trace], prefetch: str = "nl_stride"
    ) -> SystemResult:
        """The LRU run for a mix (cached — every scheme shares it)."""
        cache_key = (mix_key, prefetch, self.scale)
        result = self._baseline_cache.get(cache_key)
        if result is None:
            result = self.run("lru", traces, prefetch=prefetch)
            self._baseline_cache[cache_key] = result
        return result

    def compare(
        self,
        policies: Sequence[str | PolicyFactory | ReplacementPolicy],
        mix_key: Tuple,
        traces: Sequence[Trace],
        prefetch: str = "nl_stride",
    ) -> Dict[str, MixMetrics]:
        """Run each policy on the mix; metrics normalized to shared LRU."""
        base = self.baseline(mix_key, traces, prefetch=prefetch)
        out: Dict[str, MixMetrics] = {}
        for policy in policies:
            instance = resolve_policy(policy, self.scale.machine_scale)
            result = self.run(instance, traces, prefetch=prefetch)
            out[result.policy_name] = summarize(result, base)
        return out


def chrome_with(
    *,
    features: Optional[Tuple[str, ...]] = None,
    eq_fifo_size: Optional[int] = None,
    alpha: Optional[float] = None,
    gamma: Optional[float] = None,
    epsilon: Optional[float] = None,
    sampled_sets: Optional[int] = None,
) -> ChromePolicy:
    """Convenience factory for CHROME variants used in the sensitivity
    studies (Figs. 15-16, Table VII)."""
    config = ChromeConfig()
    overrides = {}
    if sampled_sets is not None:
        overrides["sampled_sets"] = sampled_sets
    if features is not None:
        overrides["features"] = features
    if eq_fifo_size is not None:
        overrides["eq_fifo_size"] = eq_fifo_size
    if alpha is not None:
        overrides["alpha"] = alpha
    if gamma is not None:
        overrides["gamma"] = gamma
    if epsilon is not None:
        overrides["epsilon"] = epsilon
    if overrides:
        config = replace(config, **overrides)
    return ChromePolicy(config)
