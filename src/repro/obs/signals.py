"""Windowed control signals derived from serve-layer recorders.

PR 5 introduced the obs *telemetry* surface; this module is the same
measurements consumed the other way — as **control inputs**.  A
:class:`SignalReader` watches one or more live
:class:`~repro.serve.metrics.MetricsRecorder` instances (one for a
single service, one per shard for a fleet) and, at fixed request
boundaries, emits a :class:`WindowSignals` snapshot of what happened
*inside that window*: byte/object hit ratios, the window p99, and the
error/shed/breaker-denied fractions.

Everything is computed from cumulative-counter deltas and a slice of
the recorder's raw latency list, so reading a window:

* never mutates service state (the zero-impact contract the ops layer
  inherits from obs);
* is a pure function of the recorder contents at the boundary — the
  boundary itself is a fixed global sequence number, so the same run
  produces the same window signals at any client count;
* aggregates fleets exactly: counters sum across recorders and the
  window p99 is taken over the sorted union of the per-shard latency
  slices (the same no-percentile-of-percentiles discipline as
  :func:`repro.cluster.cluster._aggregate_fleet`).

The :mod:`repro.ops` guardrail and shadow-comparison logic are the
consumers; the obs timeline records the same rows as ``ops_window``
entries when a session is attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..serve.metrics import MetricsRecorder, percentile

#: cumulative ServeMetrics counters a window differences
_DELTA_FIELDS = (
    "requests",
    "hits",
    "bytes_requested",
    "bytes_hit",
    "errors",
    "shed",
    "breaker_denied",
)


@dataclass
class WindowSignals:
    """What one request window looked like (deltas, not cumulatives)."""

    requests: int = 0
    hits: int = 0
    bytes_requested: int = 0
    bytes_hit: int = 0
    errors: int = 0
    shed: int = 0
    breaker_denied: int = 0
    p99_ms: float = 0.0

    @property
    def object_hit(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def byte_hit(self) -> float:
        if not self.bytes_requested:
            return 0.0
        return self.bytes_hit / self.bytes_requested

    @property
    def error_fraction(self) -> float:
        return self.errors / self.requests if self.requests else 0.0

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    @property
    def breaker_denied_fraction(self) -> float:
        return self.breaker_denied / self.requests if self.requests else 0.0

    def as_row(self) -> Dict[str, object]:
        """Flat dict form for ops windows / obs timeline rows."""
        return {
            "requests": self.requests,
            "byte_hit": self.byte_hit,
            "object_hit": self.object_hit,
            "p99_ms": self.p99_ms,
            "error_fraction": self.error_fraction,
            "shed_fraction": self.shed_fraction,
            "breaker_denied_fraction": self.breaker_denied_fraction,
        }


class SignalReader:
    """Differencing reader over live recorders: one window per read.

    Construction snapshots the recorders' current cumulative state;
    each :meth:`read` returns the signals for everything recorded since
    the previous read (or construction) and advances the baseline.
    Warmup traffic never reaches the recorders, so pre-measurement
    windows read back as all-zero — callers treat ``requests == 0`` as
    "nothing to evaluate".
    """

    def __init__(self, recorders: Sequence[MetricsRecorder]) -> None:
        if not recorders:
            raise ValueError("SignalReader needs at least one recorder")
        self._recorders = list(recorders)
        self._prev_counts = [self._counts(r) for r in self._recorders]
        self._prev_latency = [r.latency_count() for r in self._recorders]

    @staticmethod
    def _counts(recorder: MetricsRecorder) -> Dict[str, int]:
        m = recorder.metrics
        return {name: getattr(m, name) for name in _DELTA_FIELDS}

    def read(self) -> WindowSignals:
        """Signals for the window since the last read (exact deltas)."""
        sig = WindowSignals()
        latencies: List[float] = []
        for i, recorder in enumerate(self._recorders):
            counts = self._counts(recorder)
            prev = self._prev_counts[i]
            for name in _DELTA_FIELDS:
                setattr(sig, name, getattr(sig, name) + counts[name] - prev[name])
            self._prev_counts[i] = counts
            start = self._prev_latency[i]
            window = recorder.latency_samples(start)
            self._prev_latency[i] = start + len(window)
            latencies.extend(window)
        if latencies:
            latencies.sort()
            sig.p99_ms = percentile(latencies, 0.99)
        return sig
