"""Epoch-aligned timeline recorder with JSONL export.

A timeline is an append-only list of flat dict rows, each tagged with
a ``kind`` (``sim_epoch``, ``serve_window``, ``sim_summary``, ...) and
the recorder's ``source`` label, so streams from many parallel jobs
concatenate into one aggregatable JSONL file.  Rows carry *virtual*
time (cycles or virtual milliseconds), never wall-clock, so a
timeline is as deterministic as the run that produced it.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Iterator, List


class TimelineRecorder:
    """Append-only row store; one per instrumented run."""

    __slots__ = ("source", "rows")

    def __init__(self, source: str = "run") -> None:
        self.source = source
        self.rows: List[Dict[str, object]] = []

    def record(self, kind: str, **fields: object) -> None:
        """Append one row. ``kind`` and ``source`` lead every row."""
        row: Dict[str, object] = {"kind": kind, "source": self.source}
        row.update(fields)
        self.rows.append(row)

    def __len__(self) -> int:
        return len(self.rows)

    def of_kind(self, kind: str) -> List[Dict[str, object]]:
        return [row for row in self.rows if row["kind"] == kind]

    def to_jsonl(self) -> str:
        """One compact JSON object per line (empty string if no rows)."""
        if not self.rows:
            return ""
        return "\n".join(
            json.dumps(row, sort_keys=True, default=_json_default)
            for row in self.rows
        ) + "\n"


def _json_default(value: object) -> object:
    """Last-resort encoder: telemetry dicts may hold odd value types."""
    return repr(value)


def iter_jsonl(text: str) -> Iterator[Dict[str, object]]:
    """Parse a JSONL stream back into rows (blank lines skipped)."""
    for line in text.splitlines():
        line = line.strip()
        if line:
            yield json.loads(line)


def merge_jsonl(streams: Iterable[str]) -> str:
    """Concatenate JSONL streams (the cross-job aggregation primitive)."""
    return "".join(stream for stream in streams if stream)
