"""Obs session: one registry + timeline + tracer, and the artifacts.

:class:`ObsConfig` is the frozen, picklable spec that crosses process
boundaries (the engine forwards it to worker processes, each of which
builds its own :class:`ObsSession` and exports under its job's label).
:class:`ObsSession` is the live bundle instrumented code holds.

Artifact layout, per exported label, inside ``out_dir``::

    <label>.timeline.jsonl   epoch/window rows (JSONL stream)
    <label>.trace.json       Chrome trace format (chrome://tracing)
    <label>.counters.json    registry snapshot (counters/gauges/histograms)

Labels are sanitized to filesystem-safe slugs; streams from many jobs
aggregate by concatenating the ``*.timeline.jsonl`` files (see
:func:`repro.obs.timeline.merge_jsonl` and :mod:`repro.obs.report`).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from .registry import Registry
from .timeline import TimelineRecorder
from .tracer import SpanTracer

_SLUG_RE = re.compile(r"[^A-Za-z0-9._-]+")


def slugify(label: str) -> str:
    """A filesystem-safe artifact name component."""
    slug = _SLUG_RE.sub("_", label.strip()) or "run"
    return slug[:120]


@dataclass(frozen=True)
class ObsConfig:
    """Picklable observability spec (what, not the live state)."""

    out_dir: str
    #: serve-layer sampling window (timeline row every N requests)
    serve_window: int = 256

    def session(self, source: str) -> "ObsSession":
        return ObsSession(self, source=source)


class ObsSession:
    """The live instrument bundle one run writes into."""

    def __init__(self, config: ObsConfig, source: str = "run") -> None:
        self.config = config
        self.source = source
        self.registry = Registry(enabled=True)
        self.timeline = TimelineRecorder(source=source)
        self.tracer = SpanTracer(process=source)

    # --- export -----------------------------------------------------------------

    def export(self, label: Optional[str] = None) -> Dict[str, Path]:
        """Write the three artifacts; returns ``{artifact: path}``.

        Empty artifacts (no rows / no events / no instruments) are
        still written so a run with obs enabled always leaves a
        parseable record behind.
        """
        out_dir = Path(self.config.out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        slug = slugify(label or self.source)
        paths = {
            "timeline": out_dir / f"{slug}.timeline.jsonl",
            "trace": out_dir / f"{slug}.trace.json",
            "counters": out_dir / f"{slug}.counters.json",
        }
        paths["timeline"].write_text(self.timeline.to_jsonl())
        paths["trace"].write_text(self.tracer.to_json())
        paths["counters"].write_text(
            json.dumps(self.registry.snapshot(), indent=1, sort_keys=True) + "\n"
        )
        return paths


def discover_artifacts(out_dir: str) -> Dict[str, List[Path]]:
    """Artifact files under ``out_dir``, grouped by type and sorted."""
    root = Path(out_dir)
    return {
        "timeline": sorted(root.glob("*.timeline.jsonl")),
        "trace": sorted(root.glob("*.trace.json")),
        "counters": sorted(root.glob("*.counters.json")),
    }
