"""``repro.obs`` — unified, opt-in telemetry for every layer.

The paper's system is debugged through its measured feedback (C-AMAT
epochs, obstruction flags, reward mixes, Q-table health — Secs. II-C,
IV-C), and the serving/engine layers have the same need one level up
(breaker state, degraded fractions, per-job scheduling).  This package
gives all of them one substrate:

* :class:`~repro.obs.registry.Registry` — named counters, gauges and
  fixed-bucket histograms with a testable no-op mode;
* :class:`~repro.obs.timeline.TimelineRecorder` — epoch-aligned rows
  (one dict per epoch/window) exported as a JSONL stream the engine
  can aggregate across parallel jobs;
* :class:`~repro.obs.tracer.SpanTracer` — span/instant/counter events
  exported as Chrome-trace-format JSON, loadable in ``chrome://tracing``
  or Perfetto;
* :class:`~repro.obs.session.ObsSession` — one registry + timeline +
  tracer bundle with an ``export()`` that writes all three artifacts;
  :class:`~repro.obs.session.ObsConfig` is the picklable spec that
  crosses worker-process boundaries;
* :mod:`~repro.obs.report` — the ``obs-report`` summarizer that turns
  an artifact directory back into answers;
* :mod:`~repro.obs.signals` — windowed :class:`~repro.obs.signals.SignalReader`
  over live serve recorders: the same measurements consumed as *control
  inputs* (byte-hit, window p99, error/shed/breaker fractions) by the
  :mod:`repro.ops` guardrail/shadow layer.

**Zero-overhead-when-off contract:** observability is strictly opt-in.
Instrumented call sites hold an ``Optional[ObsSession]`` that is
``None`` by default and guard every hook with a single ``is not None``
check (or, for the simulator, register nothing on the C-AMAT epoch
observer list).  With obs disabled the committed determinism goldens
reproduce byte-for-byte and the perf smoke stays inside its tolerance;
``tests/test_obs.py`` pins both halves of the contract.
"""

from .registry import Counter, Gauge, Histogram, NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM, Registry
from .session import ObsConfig, ObsSession
from .signals import SignalReader, WindowSignals
from .timeline import TimelineRecorder
from .tracer import SpanTracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "Registry",
    "ObsConfig",
    "ObsSession",
    "SignalReader",
    "TimelineRecorder",
    "SpanTracer",
    "WindowSignals",
]
