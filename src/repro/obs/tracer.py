"""Span-based event tracer exporting Chrome trace format.

The JSON this produces loads directly in ``chrome://tracing`` or
Perfetto (fitting, for a CHROME reproduction): complete spans
(``ph: "X"``), instant markers (``ph: "i"``) and counter series
(``ph: "C"``), grouped by process/thread labels via metadata events.

Timestamps are microseconds.  Simulator spans map virtual cycles (or
virtual milliseconds) onto the timestamp axis; engine spans use
wall-clock seconds relative to the tracer's construction.  The two
kinds live in different processes (``pid`` lanes) of the same trace,
so mixing them never misleads.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional


class SpanTracer:
    """Collects trace events; one per instrumented run."""

    __slots__ = ("process", "events", "_thread_names")

    def __init__(self, process: str = "repro") -> None:
        self.process = process
        self.events: List[dict] = []
        self._thread_names: Dict[int, str] = {}

    def name_thread(self, tid: int, name: str) -> None:
        """Label a thread lane (e.g. one lane per core or per tenant)."""
        self._thread_names[tid] = name

    def complete(
        self,
        name: str,
        ts_us: float,
        dur_us: float,
        tid: int = 0,
        args: Optional[dict] = None,
    ) -> None:
        """A complete span: ``[ts_us, ts_us + dur_us)`` on lane ``tid``."""
        event = {"name": name, "ph": "X", "ts": ts_us, "dur": dur_us, "tid": tid}
        if args:
            event["args"] = args
        self.events.append(event)

    def instant(
        self, name: str, ts_us: float, tid: int = 0, args: Optional[dict] = None
    ) -> None:
        """A zero-duration marker (epoch close, breaker trip, ...)."""
        event = {"name": name, "ph": "i", "ts": ts_us, "tid": tid, "s": "t"}
        if args:
            event["args"] = args
        self.events.append(event)

    def counter(self, name: str, ts_us: float, values: Dict[str, float]) -> None:
        """A counter sample — renders as a stacked area track."""
        self.events.append(
            {"name": name, "ph": "C", "ts": ts_us, "tid": 0, "args": dict(values)}
        )

    def to_chrome_trace(self, pid: int = 1) -> dict:
        """The ``{"traceEvents": [...]}`` object Chrome/Perfetto load."""
        events: List[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": self.process},
            }
        ]
        for tid in sorted(self._thread_names):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": self._thread_names[tid]},
                }
            )
        for event in self.events:
            out = dict(event)
            out["pid"] = pid
            events.append(out)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_json(self, pid: int = 1) -> str:
        return json.dumps(self.to_chrome_trace(pid=pid), sort_keys=True)
