"""Named-instrument registry: counters, gauges, histograms.

Instruments are deliberately minimal — plain Python attribute updates,
no locks (every instrumented site runs on one thread or inside the
serve layer's sequenced section), no timestamps (time belongs to the
timeline and tracer).  The registry exists so artifacts list every
instrument a run touched under stable, sorted names.

The **no-op path**: a registry built with ``enabled=False`` hands out
shared null instruments whose mutators do nothing and whose
``snapshot()`` is empty.  Call sites can therefore keep an
unconditional ``registry.counter("x").inc()`` in cold code; hot paths
instead guard on the owning session being ``None`` (see
:mod:`repro.obs`'s zero-overhead contract).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing integer-or-float total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-write-wins value (occupancy, rate, fraction)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


#: default histogram bucket upper bounds (latencies in ms / cycles
#: scaled down; callers with other shapes pass their own bounds)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0
)


class Histogram:
    """Fixed-bound bucket histogram with count/sum/min/max."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        idx = 0
        for bound in self.bounds:
            if value <= bound:
                break
            idx += 1
        self.bucket_counts[idx] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }


class _NullCounter(Counter):
    """Shared do-nothing counter (disabled-registry fast path)."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:  # noqa: D102 - no-op
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:  # noqa: D102 - no-op
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:  # noqa: D102 - no-op
        pass


NULL_COUNTER = _NullCounter("null")
NULL_GAUGE = _NullGauge("null")
NULL_HISTOGRAM = _NullHistogram("null")


class Registry:
    """Create-or-get instrument store with a sorted snapshot.

    With ``enabled=False`` every accessor returns the shared null
    instrument of the right type and ``snapshot()`` is ``{}`` — the
    registry allocates nothing and remembers nothing.
    """

    __slots__ = ("enabled", "_instruments")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, cls, *args):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = cls(name, *args)
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"instrument {name!r} already registered as "
                f"{type(instrument).__name__}, requested {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        return self._get(name, Gauge)

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        return self._get(name, Histogram, bounds)

    def set_gauges(self, prefix: str, values: dict) -> None:
        """Bulk-set ``{prefix}.{key}`` gauges from a flat numeric dict."""
        if not self.enabled:
            return
        for key, value in values.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                self.gauge(f"{prefix}.{key}").set(value)

    def snapshot(self) -> dict:
        """``name -> instrument snapshot``, names sorted for stability."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }
