"""Summarize the artifacts an obs-enabled run left behind.

One obs directory may hold artifacts from many sessions — the engine's
scheduling record plus one per executed job (worker processes export
their own; see :func:`repro.experiments.jobspec.execute_job`).  This
module aggregates across all of them: counter totals, per-stream
timeline digests (final C-AMAT / obstruction / reward mix for
simulations, hit ratios / breaker state / degradation for serve runs,
job provenance for the engine), and trace-file event counts.

``python -m repro.cli obs-report DIR`` (or ``tools/obs_report.py DIR``)
prints :func:`render` of :func:`summarize`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List

from .session import discover_artifacts
from .timeline import iter_jsonl


def _digest_rows(rows: List[dict]) -> dict:
    """Per-stream digest: row kinds plus the headline final numbers."""
    kinds: Dict[str, int] = {}
    for row in rows:
        kind = row.get("kind", "?")
        kinds[kind] = kinds.get(kind, 0) + 1
    digest: dict = {"rows": len(rows), "kinds": dict(sorted(kinds.items()))}
    for row in rows:
        kind = row.get("kind")
        if kind == "sim_summary":
            cam = row.get("camat_summary") or {}
            digest["sim"] = {
                "policy": row.get("policy"),
                "epochs": row.get("epochs_closed"),
                "camat": cam.get("per_core_camat"),
                "obstructed_epoch_fraction": cam.get(
                    "per_core_obstructed_epoch_fraction"
                ),
                "dram_row_hit_rate": row.get("dram_row_hit_rate"),
                "reward_mix": {
                    k[len("reward_") :]: v
                    for k, v in (row.get("policy_telemetry") or {}).items()
                    if k.startswith("reward_")
                },
                "q_health": row.get("q_health"),
            }
        elif kind == "serve_summary":
            digest["serve"] = {
                "policy": row.get("policy"),
                "workload": row.get("workload"),
                "requests": row.get("requests"),
                "object_hit_ratio": row.get("object_hit_ratio"),
                "p99_latency_ms": row.get("p99_latency_ms"),
                "errors": row.get("errors"),
                "degraded_fraction": row.get("degraded_fraction"),
                "breaker_opens": row.get("breaker_opens"),
                "breaker_states": row.get("breaker_states"),
            }
        elif kind == "engine_batch":
            batches = digest.setdefault("engine", {"batches": 0, "jobs": 0})
            batches["batches"] += 1
            batches["jobs"] += row.get("jobs", 0)
    return digest


def summarize(out_dir: str) -> dict:
    """Aggregate every artifact under ``out_dir`` into one dict."""
    import json

    artifacts = discover_artifacts(out_dir)
    streams: Dict[str, dict] = {}
    epoch_rows = window_rows = 0
    for path in artifacts["timeline"]:
        rows = list(iter_jsonl(path.read_text()))
        name = path.name[: -len(".timeline.jsonl")]
        digest = _digest_rows(rows)
        streams[name] = digest
        epoch_rows += digest["kinds"].get("sim_epoch", 0)
        window_rows += digest["kinds"].get("serve_window", 0)

    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    for path in artifacts["counters"]:
        snapshot = json.loads(path.read_text())
        for name, inst in snapshot.items():
            if inst.get("type") == "counter":
                counters[name] = counters.get(name, 0) + inst.get("value", 0)
            elif inst.get("type") == "gauge":
                gauges[name] = inst.get("value", 0.0)  # last file wins

    traces: Dict[str, int] = {}
    for path in artifacts["trace"]:
        trace = json.loads(path.read_text())
        traces[path.name] = len(trace.get("traceEvents", []))

    return {
        "out_dir": str(Path(out_dir)),
        "sessions": len(artifacts["timeline"]),
        "sim_epoch_rows": epoch_rows,
        "serve_window_rows": window_rows,
        "streams": dict(sorted(streams.items())),
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "traces": dict(sorted(traces.items())),
    }


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, list):
        return "[" + ", ".join(_fmt(v) for v in value) + "]"
    return str(value)


def render(summary: dict) -> str:
    """Human-readable report (one obs directory)."""
    lines = [
        f"obs report: {summary['out_dir']}",
        f"  sessions: {summary['sessions']}  "
        f"sim epochs: {summary['sim_epoch_rows']}  "
        f"serve windows: {summary['serve_window_rows']}",
    ]
    for name, digest in summary["streams"].items():
        kinds = ", ".join(f"{k}x{v}" for k, v in digest["kinds"].items())
        lines.append(f"  [{name}] {digest['rows']} rows ({kinds})")
        sim = digest.get("sim")
        if sim:
            mix = sim.get("reward_mix") or {}
            mix_text = " ".join(f"{k}={_fmt(v)}" for k, v in sorted(mix.items()))
            q = sim.get("q_health") or {}
            lines.append(
                f"    sim {sim.get('policy')}: epochs={sim.get('epochs')} "
                f"camat={_fmt(sim.get('camat'))} "
                f"obstructed={_fmt(sim.get('obstructed_epoch_fraction'))} "
                f"dram_row_hit={_fmt(sim.get('dram_row_hit_rate'))}"
            )
            if mix_text:
                lines.append(f"    reward mix: {mix_text}")
            if q:
                lines.append(
                    f"    q-table: entries={q.get('q_entries')} "
                    f"coverage={_fmt(q.get('q_coverage'))} "
                    f"saturation={_fmt(q.get('q_saturation'))}"
                )
        serve = digest.get("serve")
        if serve:
            lines.append(
                f"    serve {serve.get('policy')}/{serve.get('workload')}: "
                f"requests={serve.get('requests')} "
                f"hit_ratio={_fmt(serve.get('object_hit_ratio'))} "
                f"p99={_fmt(serve.get('p99_latency_ms'))}ms "
                f"errors={serve.get('errors')} "
                f"degraded={_fmt(serve.get('degraded_fraction'))} "
                f"breaker_opens={serve.get('breaker_opens')}"
            )
            states = serve.get("breaker_states")
            if states:
                state_text = " ".join(f"t{t}={s}" for t, s in states.items())
                lines.append(f"    breakers: {state_text}")
        eng = digest.get("engine")
        if eng:
            lines.append(
                f"    engine: {eng['batches']} batches, {eng['jobs']} jobs"
            )
    if summary["counters"]:
        lines.append("  counters (summed across sessions):")
        for name, value in summary["counters"].items():
            lines.append(f"    {name} = {_fmt(value)}")
    if summary["gauges"]:
        lines.append("  gauges (last value):")
        for name, value in summary["gauges"].items():
            lines.append(f"    {name} = {_fmt(value)}")
    if summary["traces"]:
        lines.append("  chrome traces:")
        for name, events in summary["traces"].items():
            lines.append(f"    {name}: {events} events")
    if summary["sessions"] == 0:
        lines.append("  (no artifacts found — was the run started with --obs?)")
    return "\n".join(lines)
