"""CHROME reproduction: concurrency-aware holistic cache management
with online reinforcement learning (HPCA 2024).

Layout:

* :mod:`repro.core` — CHROME itself (RL agent, Q-table, EQ, rewards,
  features, overhead model);
* :mod:`repro.sim` — the trace-driven multi-core memory-system
  simulator plus every comparator policy and prefetcher;
* :mod:`repro.traces` — SPEC-like synthetic workloads, GAP graph
  kernels, and multi-programmed mix builders;
* :mod:`repro.experiments` — the harness regenerating every table and
  figure of the paper's evaluation.

Quick start::

    from repro import ChromePolicy, MultiCoreSystem, SystemConfig
    from repro.traces import homogeneous_mix

    traces = homogeneous_mix("mcf06", num_cores=4, num_accesses=50_000,
                             scale=1 / 16)
    system = MultiCoreSystem(SystemConfig(num_cores=4, scale=1 / 16),
                             llc_policy=ChromePolicy())
    result = system.run(traces, warmup_accesses=10_000)
    print(result.ipcs, result.llc_stats.demand_miss_ratio)
"""

from .core import (
    ChromeConfig,
    ChromePolicy,
    EvaluationQueue,
    FeatureExtractor,
    QTable,
    RewardConfig,
    chrome_overhead,
    make_nchrome_policy,
    overhead_comparison,
)
from .experiments import (
    Engine,
    ExperimentPlan,
    ExperimentScale,
    MixSpec,
    PolicySpec,
    ResultCache,
    Runner,
    SimJob,
    available_experiments,
    register_experiment,
    resolve_policy,
    run_experiment,
)
from .sim import (
    CAMATMonitor,
    Cache,
    DRAMModel,
    MultiCoreSystem,
    SystemConfig,
    SystemResult,
)
from .sim.replacement import PAPER_SCHEMES, POLICY_REGISTRY, make_policy
from .traces import (
    ALL_SPEC_WORKLOADS,
    GAP_TRACES,
    Trace,
    build_gap_trace,
    build_spec_trace,
    heterogeneous_mix,
    homogeneous_mix,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_SPEC_WORKLOADS",
    "CAMATMonitor",
    "Cache",
    "ChromeConfig",
    "ChromePolicy",
    "DRAMModel",
    "Engine",
    "EvaluationQueue",
    "ExperimentPlan",
    "ExperimentScale",
    "FeatureExtractor",
    "MixSpec",
    "PolicySpec",
    "ResultCache",
    "SimJob",
    "GAP_TRACES",
    "MultiCoreSystem",
    "PAPER_SCHEMES",
    "POLICY_REGISTRY",
    "QTable",
    "RewardConfig",
    "Runner",
    "SystemConfig",
    "SystemResult",
    "Trace",
    "available_experiments",
    "build_gap_trace",
    "build_spec_trace",
    "chrome_overhead",
    "heterogeneous_mix",
    "homogeneous_mix",
    "make_nchrome_policy",
    "make_policy",
    "overhead_comparison",
    "register_experiment",
    "resolve_policy",
    "run_experiment",
    "__version__",
]
