"""CHROME reproduction: concurrency-aware holistic cache management
with online reinforcement learning (HPCA 2024).

Layout:

* :mod:`repro.core` — CHROME itself (RL agent, Q-table, EQ, rewards,
  features, overhead model);
* :mod:`repro.sim` — the trace-driven multi-core memory-system
  simulator plus every comparator policy and prefetcher;
* :mod:`repro.traces` — SPEC-like synthetic workloads, GAP graph
  kernels, and multi-programmed mix builders;
* :mod:`repro.experiments` — the harness regenerating every table and
  figure of the paper's evaluation.

* :mod:`repro.serve` — the object-cache serving layer driven by the
  CHROME agent (chaos + graceful degradation included);
* :mod:`repro.cluster` — the serving layer scaled out: a consistent-
  hash fleet of serve shards with Q-table federation;
* :mod:`repro.obs` — opt-in observability (timelines, Chrome traces,
  counters);
* :mod:`repro.env` — the Environment protocol: the shared
  :class:`AgentCore` RL driver plus one adapter per domain (sim,
  serve, cluster, and the toy DRAM-row existence proof).

This module is the *versioned facade*: everything in ``__all__`` is
the stable public surface — new subsystems extend it, minor releases
never remove from it.

Quick start::

    from repro import ChromePolicy, MultiCoreSystem, SystemConfig
    from repro.traces import homogeneous_mix

    traces = homogeneous_mix("mcf06", num_cores=4, num_accesses=50_000,
                             scale=1 / 16)
    system = MultiCoreSystem(SystemConfig(num_cores=4, scale=1 / 16),
                             llc_policy=ChromePolicy())
    result = system.run(traces, warmup_accesses=10_000)
    print(result.ipcs, result.llc_stats.demand_miss_ratio)

Serving-layer quick start: see ``examples/cluster_quickstart.py`` and
the README's cluster section.
"""

from .cluster import (
    ClusterJob,
    ClusterMetrics,
    ClusterService,
    HashRing,
    run_cluster,
)
from .core import (
    ChromeConfig,
    ChromePolicy,
    EvaluationQueue,
    FeatureExtractor,
    QTable,
    RewardConfig,
    chrome_overhead,
    make_nchrome_policy,
    overhead_comparison,
)
from .core.persistence import restore_agent, save_agent
from .env import (
    AgentCore,
    EnvJob,
    Environment,
    Observation,
    available_environments,
    build_environment,
    register_environment,
)
from .obs import ObsConfig
from .experiments import (
    Engine,
    ExperimentPlan,
    ExperimentScale,
    MixSpec,
    PolicySpec,
    ResultCache,
    Runner,
    SimJob,
    available_experiments,
    register_experiment,
    resolve_policy,
    run_experiment,
)
from .sim import (
    CAMATMonitor,
    Cache,
    DRAMModel,
    MultiCoreSystem,
    SystemConfig,
    SystemResult,
)
from .serve import (
    CacheService,
    ServeJob,
    ServeMetrics,
    ServiceConfig,
    run_configured,
    run_service,
)
from .sim.replacement import PAPER_SCHEMES, POLICY_REGISTRY, make_policy
from .traces import (
    ALL_SPEC_WORKLOADS,
    GAP_TRACES,
    Trace,
    build_gap_trace,
    build_spec_trace,
    heterogeneous_mix,
    homogeneous_mix,
)

__version__ = "1.2.0"

__all__ = [
    "ALL_SPEC_WORKLOADS",
    "AgentCore",
    "CAMATMonitor",
    "Cache",
    "CacheService",
    "ChromeConfig",
    "ChromePolicy",
    "ClusterJob",
    "ClusterMetrics",
    "ClusterService",
    "DRAMModel",
    "Engine",
    "EnvJob",
    "Environment",
    "EvaluationQueue",
    "ExperimentPlan",
    "ExperimentScale",
    "FeatureExtractor",
    "HashRing",
    "MixSpec",
    "ObsConfig",
    "Observation",
    "PolicySpec",
    "ResultCache",
    "SimJob",
    "GAP_TRACES",
    "MultiCoreSystem",
    "PAPER_SCHEMES",
    "POLICY_REGISTRY",
    "QTable",
    "RewardConfig",
    "Runner",
    "ServeJob",
    "ServeMetrics",
    "ServiceConfig",
    "SystemConfig",
    "SystemResult",
    "Trace",
    "available_environments",
    "available_experiments",
    "build_environment",
    "build_gap_trace",
    "build_spec_trace",
    "chrome_overhead",
    "heterogeneous_mix",
    "homogeneous_mix",
    "make_nchrome_policy",
    "make_policy",
    "overhead_comparison",
    "register_environment",
    "register_experiment",
    "resolve_policy",
    "restore_agent",
    "run_cluster",
    "run_configured",
    "run_experiment",
    "run_service",
    "save_agent",
    "__version__",
]
