"""CHROME's reward structure (Sec. IV-C, Table II).

Four reward families, each split by provenance or system feedback:

* ``R_AC``  — the action's address was requested again and **hit**
  (split demand/prefetch: the current request's type);
* ``R_IN``  — the address was requested again but **missed** (the
  action evicted/bypassed it too eagerly) — negative;
* ``R_AC-NR`` — the address was *not* re-requested within the temporal
  window and the action had (correctly) de-prioritized it: a bypass on
  a miss, or assigning the highest EPV on a hit.  Split by whether the
  acting core was LLC-obstructed (OB) or not (NOB);
* ``R_IN-NR`` — the address was not re-requested but the action had
  (incorrectly) retained it — negative, again split OB/NOB.

The OB variants are larger in magnitude: relieving an obstructed core
of useless cached blocks matters more (Sec. IV-C, objective 4).
N-CHROME (Sec. VII-C) collapses OB onto NOB.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class RewardConfig:
    """Reward values; defaults are the tuned values of Table II."""

    r_ac_demand: float = 20.0
    r_ac_prefetch: float = 5.0
    r_in_demand: float = -20.0
    r_in_prefetch: float = -5.0
    r_ac_nr_obstructed: float = 28.0
    r_ac_nr_normal: float = 10.0
    r_in_nr_obstructed: float = -22.0
    r_in_nr_normal: float = -10.0

    def accurate(self, is_prefetch: bool) -> float:
        """R_AC: the re-request hit — the action kept the right block."""
        return self.r_ac_prefetch if is_prefetch else self.r_ac_demand

    def inaccurate(self, is_prefetch: bool) -> float:
        """R_IN: the re-request missed — the action dropped a live block."""
        return self.r_in_prefetch if is_prefetch else self.r_in_demand

    def accurate_no_rerequest(self, obstructed: bool) -> float:
        """R_AC-NR: no re-request and the action de-prioritized the block."""
        return self.r_ac_nr_obstructed if obstructed else self.r_ac_nr_normal

    def inaccurate_no_rerequest(self, obstructed: bool) -> float:
        """R_IN-NR: no re-request but the action retained the block."""
        return self.r_in_nr_obstructed if obstructed else self.r_in_nr_normal

    def without_concurrency_awareness(self) -> "RewardConfig":
        """The N-CHROME reward set (Sec. VII-C): OB collapsed onto NOB,
        with R_AC-NR = 10 and R_IN-NR = -10 for every core."""
        return replace(
            self,
            r_ac_nr_obstructed=self.r_ac_nr_normal,
            r_in_nr_obstructed=self.r_in_nr_normal,
        )
