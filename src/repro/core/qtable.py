"""CHROME's feature-sliced Q-table (Sec. V-C, Fig. 5).

A monolithic Q-table over the full (PC signature x page number) state
space would be enormous, so CHROME:

1. **partitions by feature** — one table section per state feature,
   holding Q-values for *feature-action* pairs; the state-action
   Q-value is the **max** over its features' Q-values, so every action
   is driven by the feature that is most confident about it;
2. **slices each feature table into sub-tables** — each sub-table is
   indexed by a different hash of the feature (XOR with a per-sub-table
   constant, then fold), and stores a *partial* Q-value; the
   feature-action Q-value is the **sum** of its partial values.  This
   trades collisions for storage, balancing resolution against
   generalization exactly like Pythia's feature tables.

Hardware stores 16-bit fixed-point Q-values; we quantize to the same
grid (``fraction_bits`` fractional bits) after every update so learning
dynamics match the implementable design.

Implementation note: storage is plain nested lists, not numpy — the
rows are 4 elements wide and are touched once per LLC access, where
list indexing is several times faster than small-array numpy ops.
Row indices (4 hashes per feature value) are memoized.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..sim.address import mix_hash
from .config import NUM_ACTIONS, ChromeConfig

# Per-sub-table XOR constants (arbitrary but fixed, like the RTL would bake in).
_SUBTABLE_XOR = (
    0x0000000000000000,
    0x5555555555555555,
    0x3333333333333333,
    0x0F0F0F0F0F0F0F0F,
    0x00FF00FF00FF00FF,
    0xFFFF0000FFFF0000,
    0x0F0F0F0F00000000,
    0x9E3779B97F4A7C15,
)


class QTable:
    """Q-value storage for all observed feature-action pairs."""

    def __init__(self, num_features: int, config: ChromeConfig) -> None:
        if config.num_subtables > len(_SUBTABLE_XOR):
            raise ValueError(f"at most {len(_SUBTABLE_XOR)} sub-tables supported")
        self.config = config
        self.num_features = num_features
        self.num_subtables = config.num_subtables
        self.rows = config.rows_per_subtable
        self._row_mask = self.rows - 1
        if self.rows & self._row_mask:
            raise ValueError("rows per sub-table must be a power of two")
        self._quantum = 1.0 / (1 << config.q_fixed_point_fraction_bits)
        limit = (1 << (config.q_value_bits - 1)) * self._quantum
        self._clamp = (-limit, limit - self._quantum)
        init = config.optimistic_q / self.num_subtables
        init = round(init / self._quantum) * self._quantum
        # tables[feature][subtable][row] -> [q per action]
        self._tables: List[List[List[List[float]]]] = [
            [
                [[init] * NUM_ACTIONS for _ in range(self.rows)]
                for _ in range(self.num_subtables)
            ]
            for _ in range(num_features)
        ]
        # feature value -> per-sub-table row indices (hashing is pure, so
        # the cache is exact; it is bounded by the feature bit-widths).
        self._index_cache: Dict[int, Tuple[int, ...]] = {}
        # (feature, value) -> live references to its sub-table rows; rows
        # are mutated in place by apply_delta, so the cache stays valid.
        self._row_cache: Dict[Tuple[int, int], Tuple[List[float], ...]] = {}
        self.lookups = 0
        self.updates = 0

    # --- indexing (pipeline stages 1-2 of Fig. 5) -----------------------------

    def _row_indices(self, feature_value: int) -> Tuple[int, ...]:
        cached = self._index_cache.get(feature_value)
        if cached is None:
            mask = self._row_mask
            cached = tuple(
                mix_hash(feature_value ^ _SUBTABLE_XOR[k]) & mask
                for k in range(self.num_subtables)
            )
            if len(self._index_cache) < (1 << 21):
                self._index_cache[feature_value] = cached
        return cached

    # --- lookup (stages 3-5) ------------------------------------------------------

    def _rows_for(self, feature_idx: int, feature_value: int) -> Tuple[List[float], ...]:
        key = (feature_idx, feature_value)
        rows = self._row_cache.get(key)
        if rows is None:
            tables = self._tables[feature_idx]
            rows = tuple(
                tables[k][idx] for k, idx in enumerate(self._row_indices(feature_value))
            )
            if len(self._row_cache) < (1 << 21):
                self._row_cache[key] = rows
        return rows

    def feature_q_values(self, feature_idx: int, feature_value: int) -> List[float]:
        """Q(f, A) for every action: sum of the sub-tables' partial values."""
        rows = self._rows_for(feature_idx, feature_value)
        first = rows[0]
        acc = list(first)
        for row in rows[1:]:
            for a in range(NUM_ACTIONS):
                acc[a] += row[a]
        return acc

    def q_values(self, state: Sequence[int]) -> List[float]:
        """Q(S, A) for every action: max over the state's features."""
        self.lookups += 1
        best = self.feature_q_values(0, state[0])
        for f in range(1, self.num_features):
            other = self.feature_q_values(f, state[f])
            for a in range(NUM_ACTIONS):
                if other[a] > best[a]:
                    best[a] = other[a]
        return best

    def q(self, state: Sequence[int], action: int) -> float:
        return self.q_values(state)[action]

    def best_action(self, state: Sequence[int], legal: Sequence[int]) -> int:
        """Arg-max over legal actions (fixed-order tie-break)."""
        values = self.q_values(state)
        best_action, best_value = legal[0], values[legal[0]]
        for action in legal[1:]:
            if values[action] > best_value:
                best_action, best_value = action, values[action]
        return best_action

    # --- update ------------------------------------------------------------------

    def apply_delta(self, state: Sequence[int], action: int, delta: float) -> None:
        """Move Q(S, A) by ``delta``.

        Each feature's Q(f, A) moves by the full delta (both features
        witnessed the decision), spread evenly over its sub-tables so
        the partial values sum to the new target; results are quantized
        to the 16-bit fixed-point grid.
        """
        self.updates += 1
        share = delta / self.num_subtables
        lo, hi = self._clamp
        q = self._quantum
        for f in range(self.num_features):
            for row in self._rows_for(f, state[f]):
                value = row[action] + share
                value = round(value / q) * q
                if value < lo:
                    value = lo
                elif value > hi:
                    value = hi
                row[action] = value

    # --- introspection ---------------------------------------------------------------

    def storage_bits(self) -> int:
        """Exactly Table III's Q-table row: features x sub-tables x
        entries x 16 bits."""
        return (
            self.num_features
            * self.num_subtables
            * self.rows
            * NUM_ACTIONS
            * self.config.q_value_bits
        )

    def snapshot_stats(self) -> dict:
        values = [
            v
            for feature in self._tables
            for subtable in feature
            for row in subtable
            for v in row
        ]
        return {
            "lookups": self.lookups,
            "updates": self.updates,
            "q_min": min(values),
            "q_max": max(values),
            "q_mean": sum(values) / len(values),
        }
