"""CHROME's feature-sliced Q-table (Sec. V-C, Fig. 5).

A monolithic Q-table over the full (PC signature x page number) state
space would be enormous, so CHROME:

1. **partitions by feature** — one table section per state feature,
   holding Q-values for *feature-action* pairs; the state-action
   Q-value is the **max** over its features' Q-values, so every action
   is driven by the feature that is most confident about it;
2. **slices each feature table into sub-tables** — each sub-table is
   indexed by a different hash of the feature (XOR with a per-sub-table
   constant, then fold), and stores a *partial* Q-value; the
   feature-action Q-value is the **sum** of its partial values.  This
   trades collisions for storage, balancing resolution against
   generalization exactly like Pythia's feature tables.

Hardware stores 16-bit fixed-point Q-values; we quantize to the same
grid (``fraction_bits`` fractional bits) after every update so learning
dynamics match the implementable design.

Implementation note: storage here is plain nested lists, not numpy.
For *per-access* scalar ops — one 4-wide row touched per LLC access —
list indexing beats small-array numpy dispatch by several times, and
this class is the golden reference every committed artifact was
generated with.  That advantage inverts for *batched* kernels: the
opt-in numpy backend (:mod:`repro.core.qtable_np`, selected via
:mod:`repro.core.backend` / DESIGN.md §9) decides and trains whole
trace chunks per dispatch, bit-identically, several times faster than
the scalar loop.  Row indices (4 hashes per feature value) are
memoized.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..sim.address import mix_hash
from .config import NUM_ACTIONS, ChromeConfig

# Per-sub-table XOR constants (arbitrary but fixed, like the RTL would bake in).
_SUBTABLE_XOR = (
    0x0000000000000000,
    0x5555555555555555,
    0x3333333333333333,
    0x0F0F0F0F0F0F0F0F,
    0x00FF00FF00FF00FF,
    0xFFFF0000FFFF0000,
    0x0F0F0F0F00000000,
    0x9E3779B97F4A7C15,
)


class QTable:
    """Q-value storage for all observed feature-action pairs."""

    __slots__ = (
        "config",
        "num_features",
        "num_subtables",
        "rows",
        "_row_mask",
        "_quantum",
        "_clamp",
        "_init_q",
        "_tables",
        "_index_cache",
        "_row_caches",
        "lookups",
        "updates",
    )

    def __init__(self, num_features: int, config: ChromeConfig) -> None:
        if config.num_subtables > len(_SUBTABLE_XOR):
            raise ValueError(f"at most {len(_SUBTABLE_XOR)} sub-tables supported")
        self.config = config
        self.num_features = num_features
        self.num_subtables = config.num_subtables
        self.rows = config.rows_per_subtable
        self._row_mask = self.rows - 1
        if self.rows & self._row_mask:
            raise ValueError("rows per sub-table must be a power of two")
        self._quantum = 1.0 / (1 << config.q_fixed_point_fraction_bits)
        limit = (1 << (config.q_value_bits - 1)) * self._quantum
        self._clamp = (-limit, limit - self._quantum)
        init = config.optimistic_q / self.num_subtables
        init = round(init / self._quantum) * self._quantum
        self._init_q = init
        # tables[feature][subtable][row] -> [q per action]
        self._tables: List[List[List[List[float]]]] = [
            [
                [[init] * NUM_ACTIONS for _ in range(self.rows)]
                for _ in range(self.num_subtables)
            ]
            for _ in range(num_features)
        ]
        # feature value -> per-sub-table row indices (hashing is pure, so
        # the cache is exact; it is bounded by the feature bit-widths).
        self._index_cache: Dict[int, Tuple[int, ...]] = {}
        # Per-feature: value -> live references to its sub-table rows;
        # rows are mutated in place by apply_delta, so the caches stay
        # valid.  One dict per feature keeps the keys plain ints (no
        # tuple allocation per lookup on the hot path).
        self._row_caches: List[Dict[int, Tuple[List[float], ...]]] = [
            {} for _ in range(num_features)
        ]
        self.lookups = 0
        self.updates = 0

    # --- indexing (pipeline stages 1-2 of Fig. 5) -----------------------------

    def _row_indices(self, feature_value: int) -> Tuple[int, ...]:
        cached = self._index_cache.get(feature_value)
        if cached is None:
            mask = self._row_mask
            cached = tuple(
                mix_hash(feature_value ^ _SUBTABLE_XOR[k]) & mask
                for k in range(self.num_subtables)
            )
            if len(self._index_cache) < (1 << 21):
                self._index_cache[feature_value] = cached
        return cached

    # --- lookup (stages 3-5) ------------------------------------------------------

    def _rows_for(self, feature_idx: int, feature_value: int) -> Tuple[List[float], ...]:
        cache = self._row_caches[feature_idx]
        rows = cache.get(feature_value)
        if rows is None:
            tables = self._tables[feature_idx]
            rows = tuple(
                tables[k][idx] for k, idx in enumerate(self._row_indices(feature_value))
            )
            if len(cache) < (1 << 20):
                cache[feature_value] = rows
        return rows

    def feature_q_values(self, feature_idx: int, feature_value: int) -> List[float]:
        """Q(f, A) for every action: sum of the sub-tables' partial values."""
        rows = self._rows_for(feature_idx, feature_value)
        first = rows[0]
        acc = list(first)
        for row in rows[1:]:
            for a in range(NUM_ACTIONS):
                acc[a] += row[a]
        return acc

    def q_values(self, state: Sequence[int]) -> List[float]:
        """Q(S, A) for every action: max over the state's features.

        Fused read path: walks each feature's sub-table rows once,
        accumulating the per-action sums in scalars and folding the
        feature-max in place — no intermediate per-feature lists.  The
        accumulation order matches :meth:`feature_q_values` exactly, so
        results are bit-identical to the unfused form.
        """
        self.lookups += 1
        if NUM_ACTIONS == 4:
            row_caches = self._row_caches
            value = state[0]
            rows = row_caches[0].get(value)
            if rows is None:
                rows = self._rows_for(0, value)
            first = rows[0]
            b0 = first[0]
            b1 = first[1]
            b2 = first[2]
            b3 = first[3]
            for k in range(1, len(rows)):
                row = rows[k]
                b0 += row[0]
                b1 += row[1]
                b2 += row[2]
                b3 += row[3]
            for f in range(1, self.num_features):
                value = state[f]
                rows = row_caches[f].get(value)
                if rows is None:
                    rows = self._rows_for(f, value)
                first = rows[0]
                a0 = first[0]
                a1 = first[1]
                a2 = first[2]
                a3 = first[3]
                for k in range(1, len(rows)):
                    row = rows[k]
                    a0 += row[0]
                    a1 += row[1]
                    a2 += row[2]
                    a3 += row[3]
                if a0 > b0:
                    b0 = a0
                if a1 > b1:
                    b1 = a1
                if a2 > b2:
                    b2 = a2
                if a3 > b3:
                    b3 = a3
            return [b0, b1, b2, b3]
        best = self.feature_q_values(0, state[0])
        for f in range(1, self.num_features):
            other = self.feature_q_values(f, state[f])
            for a in range(NUM_ACTIONS):
                if other[a] > best[a]:
                    best[a] = other[a]
        return best

    def q(self, state: Sequence[int], action: int) -> float:
        """Q(S, a) for one action, without materializing the full row.

        Sums only the requested action's column per feature (same
        accumulation order as :meth:`q_values`, so bit-identical) and
        takes the max across features.
        """
        self.lookups += 1
        rows_for = self._rows_for
        best: float | None = None
        for f in range(self.num_features):
            rows = rows_for(f, state[f])
            if len(rows) == 4:  # default sub-table count, unrolled
                total = rows[0][action] + rows[1][action] + rows[2][action] + rows[3][action]
            else:
                total = rows[0][action]
                for k in range(1, len(rows)):
                    total += rows[k][action]
            if best is None or total > best:
                best = total
        assert best is not None
        return best

    def best_action(self, state: Sequence[int], legal: Sequence[int]) -> int:
        """Arg-max over legal actions (fixed-order tie-break).

        The 4-action case fuses the :meth:`q_values` accumulation with
        the arg-max (same order, bit-identical results) so the decision
        costs one frame and no intermediate list.
        """
        if NUM_ACTIONS == 4:
            self.lookups += 1
            row_caches = self._row_caches
            value = state[0]
            rows = row_caches[0].get(value)
            if rows is None:
                rows = self._rows_for(0, value)
            if len(rows) == 4:  # default sub-table count, fully unrolled
                # Left-associative sums: same accumulation order as the
                # loop form below, so results stay bit-identical.
                r0, r1, r2, r3 = rows
                b0 = r0[0] + r1[0] + r2[0] + r3[0]
                b1 = r0[1] + r1[1] + r2[1] + r3[1]
                b2 = r0[2] + r1[2] + r2[2] + r3[2]
                b3 = r0[3] + r1[3] + r2[3] + r3[3]
                for f in range(1, self.num_features):
                    value = state[f]
                    rows = row_caches[f].get(value)
                    if rows is None:
                        rows = self._rows_for(f, value)
                    r0, r1, r2, r3 = rows
                    a0 = r0[0] + r1[0] + r2[0] + r3[0]
                    a1 = r0[1] + r1[1] + r2[1] + r3[1]
                    a2 = r0[2] + r1[2] + r2[2] + r3[2]
                    a3 = r0[3] + r1[3] + r2[3] + r3[3]
                    if a0 > b0:
                        b0 = a0
                    if a1 > b1:
                        b1 = a1
                    if a2 > b2:
                        b2 = a2
                    if a3 > b3:
                        b3 = a3
                values = (b0, b1, b2, b3)
                best_action = legal[0]
                best_value = values[best_action]
                for action in legal[1:]:
                    v = values[action]
                    if v > best_value:
                        best_action = action
                        best_value = v
                return best_action
            first = rows[0]
            b0 = first[0]
            b1 = first[1]
            b2 = first[2]
            b3 = first[3]
            for k in range(1, len(rows)):
                row = rows[k]
                b0 += row[0]
                b1 += row[1]
                b2 += row[2]
                b3 += row[3]
            for f in range(1, self.num_features):
                value = state[f]
                rows = row_caches[f].get(value)
                if rows is None:
                    rows = self._rows_for(f, value)
                first = rows[0]
                a0 = first[0]
                a1 = first[1]
                a2 = first[2]
                a3 = first[3]
                for k in range(1, len(rows)):
                    row = rows[k]
                    a0 += row[0]
                    a1 += row[1]
                    a2 += row[2]
                    a3 += row[3]
                if a0 > b0:
                    b0 = a0
                if a1 > b1:
                    b1 = a1
                if a2 > b2:
                    b2 = a2
                if a3 > b3:
                    b3 = a3
            values = (b0, b1, b2, b3)
            best_action = legal[0]
            best_value = values[best_action]
            for action in legal[1:]:
                v = values[action]
                if v > best_value:
                    best_action = action
                    best_value = v
            return best_action
        values = self.q_values(state)
        best_action, best_value = legal[0], values[legal[0]]
        for action in legal[1:]:
            if values[action] > best_value:
                best_action, best_value = action, values[action]
        return best_action

    # --- update ------------------------------------------------------------------

    def apply_delta(self, state: Sequence[int], action: int, delta: float) -> None:
        """Move Q(S, A) by ``delta``.

        Each feature's Q(f, A) moves by the full delta (both features
        witnessed the decision), spread evenly over its sub-tables so
        the partial values sum to the new target; results are quantized
        to the 16-bit fixed-point grid.
        """
        self.updates += 1
        share = delta / self.num_subtables
        lo, hi = self._clamp
        q = self._quantum
        rows_for = self._rows_for
        for f in range(self.num_features):
            for row in rows_for(f, state[f]):
                value = row[action] + share
                value = round(value / q) * q
                if value < lo:
                    value = lo
                elif value > hi:
                    value = hi
                row[action] = value

    # --- batch surface (reference loops; the numpy backend vectorizes these) ------

    def best_actions(self, states, legal: Sequence[int]) -> List[int]:
        """Reference batch decide: the definitional per-record loop.

        :class:`~repro.core.qtable_np.QTableNumpy` overrides this with
        a vectorized kernel; keeping the loop here lets chunk-grained
        callers use one code path on either backend.
        """
        return [self.best_action(s, legal) for s in states]

    def apply_deltas(
        self,
        states: Sequence[Sequence[int]],
        actions: Sequence[int],
        deltas: Sequence[float],
    ) -> None:
        """Reference batch update: sequential per-record loop."""
        for state, action, delta in zip(states, actions, deltas):
            self.apply_delta(state, action, delta)

    # --- persistence -----------------------------------------------------------------

    def state_dict(self) -> dict:
        """Complete, JSON-serializable learned state.

        Stores the raw per-sub-table partial values (plain floats —
        JSON round-trips Python floats exactly), the geometry needed to
        validate a load, and the lookup/update counters.
        """
        return {
            "version": 1,
            "num_features": self.num_features,
            "num_subtables": self.num_subtables,
            "rows": self.rows,
            "num_actions": NUM_ACTIONS,
            "tables": [
                [[list(row) for row in subtable] for subtable in feature]
                for feature in self._tables
            ],
            "lookups": self.lookups,
            "updates": self.updates,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (bit-identical q_values).

        The table geometry must match this instance's construction; the
        memoized row caches are rebuilt lazily, so restored values are
        served on the very next lookup.
        """
        if state.get("version") != 1:
            raise ValueError(f"unsupported QTable state version {state.get('version')!r}")
        expected = {
            "num_features": self.num_features,
            "num_subtables": self.num_subtables,
            "rows": self.rows,
            "num_actions": NUM_ACTIONS,
        }
        mismatched = {
            k: (state.get(k), v) for k, v in expected.items() if state.get(k) != v
        }
        if mismatched:
            raise ValueError(f"QTable geometry mismatch on load: {mismatched}")
        tables = state["tables"]
        self._tables = [
            [[list(row) for row in subtable] for subtable in feature]
            for feature in tables
        ]
        # Row caches hold live references into the replaced tables.
        self._row_caches = [{} for _ in range(self.num_features)]
        self.lookups = int(state.get("lookups", 0))
        self.updates = int(state.get("updates", 0))

    # --- introspection ---------------------------------------------------------------

    def storage_bits(self) -> int:
        """Exactly Table III's Q-table row: features x sub-tables x
        entries x 16 bits."""
        return (
            self.num_features
            * self.num_subtables
            * self.rows
            * NUM_ACTIONS
            * self.config.q_value_bits
        )

    def health_stats(self) -> dict:
        """Coverage/saturation walk for observability.

        *Coverage* is the fraction of stored Q-entries that have moved
        off their optimistic-initialization value — how much of the
        table the workload has actually trained.  *Saturation* is the
        fraction pinned at the fixed-point clamp bounds — entries whose
        updates are being clipped (a hyperparameter health signal).
        Walks every entry, so callers sample this at run boundaries,
        not per epoch.
        """
        init = self._init_q
        lo, hi = self._clamp
        total = touched = saturated = 0
        for feature in self._tables:
            for subtable in feature:
                for row in subtable:
                    for v in row:
                        if v != init:
                            touched += 1
                        if v <= lo or v >= hi:
                            saturated += 1
                    total += len(row)
        return {
            "q_entries": total,
            "q_coverage": touched / total if total else 0.0,
            "q_saturation": saturated / total if total else 0.0,
            "lookups": self.lookups,
            "updates": self.updates,
        }

    def snapshot_stats(self) -> dict:
        """Streaming min/max/mean over every stored Q-value.

        Walks the tables row by row instead of materializing the full
        value list (features x sub-tables x rows x actions floats); the
        accumulation visits values in the same order as the old
        list-comprehension form, so the mean is bit-identical.
        """
        q_min = q_max = None
        total = 0.0
        count = 0
        for feature in self._tables:
            for subtable in feature:
                for row in subtable:
                    for v in row:
                        total += v
                        if q_min is None:
                            q_min = q_max = v
                        elif v < q_min:
                            q_min = v
                        elif v > q_max:
                            q_max = v
                    count += len(row)
        return {
            "lookups": self.lookups,
            "updates": self.updates,
            "q_min": q_min,
            "q_max": q_max,
            "q_mean": total / count,
        }
