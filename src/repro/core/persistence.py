"""Version-tagged JSON persistence for trained CHROME agents.

Both agents in the repo — the LLC :class:`~repro.core.chrome.ChromePolicy`
and the serving layer's :class:`~repro.serve.agent.ServeAgent` — expose
the same trio of learned state: a :class:`~repro.core.qtable.QTable`, an
exploration RNG, and a :class:`~repro.core.config.ChromeConfig`.  The
helpers here snapshot that trio to JSON so a table trained in one
context (e.g. the LLC simulator, or a long serve run) can warm-start
another.

Why JSON and not pickle: snapshots survive refactors of the agent
classes, diff readably, and Python's float repr round-trips exactly —
``json.loads(json.dumps(x)) == x`` bit-for-bit — so a restored Q-table
is *bit-identical* to the saved one (the round-trip test pins this).

Each snapshot carries ``version`` and ``kind`` tags; restore refuses
mismatched kinds/geometry instead of silently mislearning.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict

SNAPSHOT_VERSION = 1


def _config_fingerprint(config) -> Dict[str, Any]:
    """The config fields a Q-table snapshot must agree on to be loadable."""
    return {
        "num_subtables": config.num_subtables,
        "subtable_entries": config.subtable_entries,
        "q_fixed_point_fraction_bits": config.q_fixed_point_fraction_bits,
        "q_value_bits": config.q_value_bits,
        "alpha": config.alpha,
        "gamma": config.gamma,
        "epsilon": config.epsilon,
    }


def _rng_state_to_json(state) -> list:
    """``random.Random.getstate()`` -> JSON-safe structure."""
    version, internal, gauss = state
    return [version, list(internal), gauss]


def _rng_state_from_json(data) -> tuple:
    version, internal, gauss = data
    return (version, tuple(internal), gauss)


def agent_state(agent, kind: str) -> Dict[str, Any]:
    """Snapshot an agent (anything with ``qtable``, ``_rng``, ``config``)."""
    return {
        "version": SNAPSHOT_VERSION,
        "kind": kind,
        "config": _config_fingerprint(agent.config),
        "qtable": agent.qtable.state_dict(),
        "rng_state": _rng_state_to_json(agent._rng.getstate()),
    }


def _iter_leaves(values):
    """Yield every scalar leaf of an arbitrarily nested list."""
    for value in values:
        if isinstance(value, list):
            yield from _iter_leaves(value)
        else:
            yield value


def _validate_qtable_grid(agent, qtable_state: Dict[str, Any]) -> None:
    """Refuse snapshots whose values fall off the live fixed-point grid.

    The config fingerprint pins the grid's *parameters*, but a snapshot
    produced by a different build (or corrupted in transit) can still
    carry values that are not representable on this config's
    ``quantum``-spaced, ``q_value_bits``-clamped lattice.  The scalar
    :class:`~repro.core.qtable.QTable` would load them silently and
    then drift — every subsequent update rounds *deltas*, not totals,
    so an off-grid table never converges back onto the lattice and the
    scalar/numpy backends stop agreeing.  Rejecting here turns that
    silent corruption into an immediate, explicit error (the numpy
    backend already enforces this inside ``load_state_dict``; this
    check makes the contract backend-independent).
    """
    config = agent.config
    quantum = 1.0 / (1 << config.q_fixed_point_fraction_bits)
    limit = (1 << (config.q_value_bits - 1)) * quantum
    lo, hi = -limit, limit - quantum
    for value in _iter_leaves(qtable_state.get("tables", [])):
        tick = round(value / quantum)
        if tick * quantum != value:
            raise ValueError(
                f"snapshot Q-value {value!r} is off the live fixed-point "
                f"grid (quantum={quantum!r}); refusing to load — the "
                "snapshot was produced under a different "
                "q_fixed_point_fraction_bits or is corrupt"
            )
        if value < lo or value > hi:
            raise ValueError(
                f"snapshot Q-value {value!r} exceeds the live clamp "
                f"[{lo!r}, {hi!r}] (q_value_bits={config.q_value_bits}); "
                "refusing to load"
            )


def load_agent_state(agent, state: Dict[str, Any], kind: str) -> None:
    """Restore a snapshot into a live agent (geometry-checked)."""
    if state.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"unsupported agent snapshot version {state.get('version')!r} "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    if state.get("kind") != kind:
        raise ValueError(
            f"snapshot kind {state.get('kind')!r} does not match {kind!r} "
            "(an LLC agent snapshot cannot warm-start a serve agent "
            "directly, and vice versa)"
        )
    expected = _config_fingerprint(agent.config)
    saved = state.get("config", {})
    mismatched = {
        k: (saved.get(k), v) for k, v in expected.items() if saved.get(k) != v
    }
    if mismatched:
        raise ValueError(f"agent config mismatch on restore: {mismatched}")
    _validate_qtable_grid(agent, state["qtable"])
    agent.qtable.load_state_dict(state["qtable"])
    rng_state = state.get("rng_state")
    if rng_state is not None:
        agent._rng.setstate(_rng_state_from_json(rng_state))


def save_agent(agent, path: str | os.PathLike, kind: str) -> None:
    """Write an agent snapshot atomically (tmp file + rename)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(json.dumps(agent_state(agent, kind)))
    os.replace(tmp, target)


def restore_agent(agent, path: str | os.PathLike, kind: str) -> None:
    """Load a snapshot written by :func:`save_agent` into ``agent``."""
    state = json.loads(Path(path).read_text())
    load_agent_state(agent, state, kind)
