"""CHROME — the paper's primary contribution.

Public surface:

* :class:`ChromePolicy` / :func:`make_nchrome_policy` — the RL agent as
  an LLC replacement policy;
* :class:`ChromeConfig` / :class:`RewardConfig` — Table II parameters;
* :class:`QTable`, :class:`EvaluationQueue` — the two hardware
  structures (Secs. V-C, V-D);
* :class:`FeatureExtractor` and :data:`FEATURE_REGISTRY` — Table I
  program features;
* :func:`chrome_overhead` / :func:`overhead_comparison` — Tables III/IV.
"""

from .chrome import ChromePolicy, make_nchrome_policy
from .config import (
    ACTION_BYPASS,
    ACTION_EPV_HIGH,
    ACTION_EPV_LOW,
    ACTION_EPV_MED,
    ACTION_NAMES,
    ACTION_TO_EPV,
    EPV_MAX,
    HIT_ACTIONS,
    MISS_ACTIONS,
    NUM_ACTIONS,
    ChromeConfig,
)
from .eq import EQEntry, EvaluationQueue, hash_block_address
from .features import DEFAULT_FEATURES, FEATURE_REGISTRY, FeatureContext, FeatureExtractor
from .overhead import (
    OverheadBreakdown,
    SchemeOverhead,
    chrome_overhead,
    eq_overhead_kb,
    overhead_comparison,
    overhead_fraction_of_llc,
)
from .qtable import QTable
from .rewards import RewardConfig

__all__ = [
    "ACTION_BYPASS",
    "ACTION_EPV_HIGH",
    "ACTION_EPV_LOW",
    "ACTION_EPV_MED",
    "ACTION_NAMES",
    "ACTION_TO_EPV",
    "EPV_MAX",
    "HIT_ACTIONS",
    "MISS_ACTIONS",
    "NUM_ACTIONS",
    "ChromeConfig",
    "ChromePolicy",
    "DEFAULT_FEATURES",
    "EQEntry",
    "EvaluationQueue",
    "FEATURE_REGISTRY",
    "FeatureContext",
    "FeatureExtractor",
    "OverheadBreakdown",
    "QTable",
    "RewardConfig",
    "SchemeOverhead",
    "chrome_overhead",
    "eq_overhead_kb",
    "hash_block_address",
    "make_nchrome_policy",
    "overhead_comparison",
    "overhead_fraction_of_llc",
]
