"""The Evaluation Queue (EQ) — CHROME's action-outcome recorder
(Secs. V-A, V-D; Table III).

CHROME cannot judge an action when it takes it; the verdict arrives
later, when (or if) the block's address is requested again.  The EQ
holds each recent action on a *sampled* set until its outcome is known:

* organized as **64 independent FIFO queues**, one per sampled set,
  each holding **28 entries** (the Table VII sweep varies this);
* each entry stores the state vector, the 2-bit action, a trigger bit
  (was the action taken on a hit or a miss), a 16-bit hashed block
  address, and the assigned reward (58 bits total per Table III);
* a re-request that matches an entry's address assigns R_AC/R_IN;
* an entry evicted without a reward gets an NR reward, judged with the
  concurrency feedback current at eviction time;
* every eviction triggers one SARSA update pairing the evicted entry
  (S_t, A_t) with the queue's new head (S_{t+1}, A_{t+1}).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..sim.address import fold_hash

ADDR_HASH_BITS = 16


def hash_block_address(block_addr: int) -> int:
    """The 16-bit hashed address an EQ entry stores (Table III)."""
    return fold_hash(block_addr, ADDR_HASH_BITS)


@dataclass(slots=True)
class EQEntry:
    """One recorded action awaiting evaluation."""

    state: Tuple[int, ...]
    action: int
    trigger_hit: bool
    hashed_addr: int
    core: int
    reward: Optional[float] = None

    @property
    def has_reward(self) -> bool:
        return self.reward is not None


class EvaluationQueue:
    """Per-sampled-set FIFO queues of recent CHROME actions."""

    __slots__ = (
        "num_queues",
        "fifo_size",
        "_queues",
        "_addr_counts",
        "inserts",
        "evictions",
        "reward_matches",
    )

    def __init__(self, num_queues: int, fifo_size: int) -> None:
        if fifo_size <= 1:
            raise ValueError("EQ FIFOs need at least 2 entries for SARSA pairs")
        self.num_queues = num_queues
        self.fifo_size = fifo_size
        self._queues: List[Deque[EQEntry]] = [deque() for _ in range(num_queues)]
        # Per-queue hashed-address multiset: find() can prove "no match"
        # without scanning the FIFO (the common case — most accesses are
        # not re-requests of a recently recorded action).
        self._addr_counts: List[Dict[int, int]] = [{} for _ in range(num_queues)]
        self.inserts = 0
        self.evictions = 0
        self.reward_matches = 0

    def find(self, queue_idx: int, hashed_addr: int) -> Optional[EQEntry]:
        """Newest-first search for an entry recorded for this address."""
        if hashed_addr not in self._addr_counts[queue_idx]:
            return None
        queue = self._queues[queue_idx]
        for entry in reversed(queue):
            if entry.hashed_addr == hashed_addr:
                return entry
        return None

    def insert(
        self, queue_idx: int, entry: EQEntry
    ) -> Tuple[Optional[EQEntry], Optional[EQEntry]]:
        """Append ``entry``; if the FIFO is full, evict the oldest.

        Returns ``(evicted_entry, new_head)`` — the SARSA pair — or
        ``(None, None)`` when the queue had room.
        """
        queue = self._queues[queue_idx]
        counts = self._addr_counts[queue_idx]
        self.inserts += 1
        evicted = None
        if len(queue) >= self.fifo_size:
            evicted = queue.popleft()
            self.evictions += 1
            gone = evicted.hashed_addr
            remaining = counts[gone] - 1
            if remaining:
                counts[gone] = remaining
            else:
                del counts[gone]
        queue.append(entry)
        added = entry.hashed_addr
        counts[added] = counts.get(added, 0) + 1
        head = queue[0] if evicted is not None else None
        return evicted, head

    def occupancy(self, queue_idx: int) -> int:
        return len(self._queues[queue_idx])

    def storage_bits(self, state_bits: int = 33) -> int:
        """Table III's EQ row: queues x entries x 58 bits
        (state 33 + action 2 + reward 6 + hashed address 16 + trigger 1)."""
        entry_bits = state_bits + 2 + 6 + ADDR_HASH_BITS + 1
        return self.num_queues * self.fifo_size * entry_bits
