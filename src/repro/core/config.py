"""CHROME configuration: hyper-parameters, geometry, and actions.

The defaults reproduce Table II (tuned reward values and
hyper-parameters) and Table III (structure geometry: Q-table with
2 features x 4 sub-tables x 2048 entries x 16 bits; EQ with 64 queues
x 28 entries).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from .features import DEFAULT_FEATURES
from .rewards import RewardConfig

# --- action space (Sec. IV-B) ------------------------------------------------
#
# On a miss CHROME picks one of four actions: bypass the LLC, or insert
# with one of three Eviction Priority Values.  On a hit it updates the
# block's EPV to one of the three levels (bypass is illegal).  The
# 2-bit encoding matches the EQ entry layout of Table III.

ACTION_BYPASS = 0
ACTION_EPV_LOW = 1  # EPV 0: keep longest
ACTION_EPV_MED = 2  # EPV 1
ACTION_EPV_HIGH = 3  # EPV 2: first in line for eviction (EPV_H)

NUM_ACTIONS = 4
#: legal-action orderings double as the arg-max tie-break preference:
#: a cold state (all-equal optimistic Q) behaves like LRU — insert at
#: low eviction priority — and only bypasses after positive evidence.
MISS_ACTIONS: Tuple[int, ...] = (
    ACTION_EPV_LOW,
    ACTION_EPV_MED,
    ACTION_EPV_HIGH,
    ACTION_BYPASS,
)
HIT_ACTIONS: Tuple[int, ...] = (ACTION_EPV_LOW, ACTION_EPV_MED, ACTION_EPV_HIGH)

#: EPV assigned by each non-bypass action.
ACTION_TO_EPV = {ACTION_EPV_LOW: 0, ACTION_EPV_MED: 1, ACTION_EPV_HIGH: 2}
EPV_MAX = 2  # highest eviction priority (2-bit EPV in Table III)

ACTION_NAMES = {
    ACTION_BYPASS: "bypass",
    ACTION_EPV_LOW: "epv_low",
    ACTION_EPV_MED: "epv_med",
    ACTION_EPV_HIGH: "epv_high",
}


@dataclass(frozen=True)
class ChromeConfig:
    """Complete CHROME parameterization.

    Attributes mirror the paper:
        alpha/gamma/epsilon: tuned SARSA hyper-parameters (Table II).
        features: state-vector composition (Sec. IV-A; Fig. 15 ablates).
        num_subtables/subtable_entries: Q-table slicing (Sec. V-C).
        sampled_sets/eq_fifo_size: EQ organization (Sec. V-D; Table VII
            sweeps ``eq_fifo_size``).
        q_fixed_point_bits: Q-values are 16-bit fixed point in hardware;
            we quantize to the same grid for fidelity.
    """

    alpha: float = 0.0498
    gamma: float = 0.3679
    epsilon: float = 0.001
    rewards: RewardConfig = field(default_factory=RewardConfig)
    features: Tuple[str, ...] = DEFAULT_FEATURES
    num_subtables: int = 4
    subtable_entries: int = 2048  # rows x actions per sub-table
    sampled_sets: int = 64
    eq_fifo_size: int = 28
    q_fixed_point_fraction_bits: int = 6
    q_value_bits: int = 16
    seed: int = 0x5EED
    #: Q-table execution backend: "scalar" (golden reference), "numpy"
    #: (vectorized batch kernels), or None to defer to the validated
    #: ``REPRO_BACKEND`` env var.  Purely a performance knob — both
    #: backends are bit-identical (DESIGN.md §9), so this field never
    #: enters cache keys or persistence fingerprints.
    backend: Optional[str] = None

    @property
    def optimistic_q(self) -> float:
        """Initial Q-value, 1/(1-gamma) — optimism drives early
        exploration (Sec. V-B)."""
        return 1.0 / (1.0 - self.gamma)

    @property
    def rows_per_subtable(self) -> int:
        rows = self.subtable_entries // NUM_ACTIONS
        if rows * NUM_ACTIONS != self.subtable_entries:
            raise ValueError("subtable_entries must be a multiple of NUM_ACTIONS")
        return rows

    def as_nchrome(self) -> "ChromeConfig":
        """N-CHROME (Sec. VII-C): identical workflow, concurrency-blind
        rewards."""
        return replace(self, rewards=self.rewards.without_concurrency_awareness())
