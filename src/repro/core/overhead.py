"""Storage-overhead models (Tables III, IV, and VII's overhead row).

Table III's CHROME budget is pure arithmetic over the documented
structure geometry, so we reproduce it exactly:

* Q-Table: 2 features x 4 sub-tables x 2048 entries x 16 bits = 32 KB;
* EQ: 64 queues x 28 entries x 58 bits = 12.7 KB;
* metadata: 2-bit EPV per LLC block (12 MB / 64 B = 196608 blocks) = 48 KB;
* total: 92.7 KB (0.75% of a 12 MB LLC).

Table IV compares against the published overheads of the four
state-of-the-art schemes at the same 4-core / 12-way / 12 MB LLC
configuration; those totals come from the respective papers and are
kept as published constants, with CHROME computed from first
principles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .config import ChromeConfig
from .eq import ADDR_HASH_BITS

KB = 8 * 1024  # bits per KB

#: bits per EQ entry (Table III): state 33 + action 2 + reward 6 +
#: hashed address 16 + trigger 1 = 58
EQ_STATE_BITS = 33
EQ_ENTRY_BITS = EQ_STATE_BITS + 2 + 6 + ADDR_HASH_BITS + 1
EPV_BITS = 2


@dataclass(frozen=True)
class OverheadBreakdown:
    """CHROME storage budget, in bits, per Table III's three rows."""

    qtable_bits: int
    eq_bits: int
    metadata_bits: int

    @property
    def total_bits(self) -> int:
        return self.qtable_bits + self.eq_bits + self.metadata_bits

    @property
    def qtable_kb(self) -> float:
        return self.qtable_bits / KB

    @property
    def eq_kb(self) -> float:
        return self.eq_bits / KB

    @property
    def metadata_kb(self) -> float:
        return self.metadata_bits / KB

    @property
    def total_kb(self) -> float:
        return self.total_bits / KB


def chrome_overhead(
    config: ChromeConfig | None = None,
    llc_size_bytes: int = 12 * 1024 * 1024,
    block_size: int = 64,
    num_features: int | None = None,
) -> OverheadBreakdown:
    """Compute Table III for an arbitrary CHROME configuration.

    The defaults give the paper's numbers: 32 KB + 12.7 KB + 48 KB =
    92.7 KB for the 4-core, 12 MB LLC system.
    """
    cfg = config or ChromeConfig()
    features = num_features if num_features is not None else len(cfg.features)
    qtable_bits = features * cfg.num_subtables * cfg.subtable_entries * cfg.q_value_bits
    eq_bits = cfg.sampled_sets * cfg.eq_fifo_size * EQ_ENTRY_BITS
    llc_blocks = llc_size_bytes // block_size
    metadata_bits = llc_blocks * EPV_BITS
    return OverheadBreakdown(qtable_bits, eq_bits, metadata_bits)


def eq_overhead_kb(fifo_size: int, num_queues: int = 64) -> float:
    """EQ storage for a given FIFO depth (Table VII's overhead row)."""
    return num_queues * fifo_size * EQ_ENTRY_BITS / KB


@dataclass(frozen=True)
class SchemeOverhead:
    """One Table IV row."""

    scheme: str
    holistic: bool
    concurrency_aware: bool
    overhead_kb: float
    source: str  # "computed" or "published"


def overhead_comparison(
    config: ChromeConfig | None = None,
) -> List[SchemeOverhead]:
    """Table IV: storage overhead across schemes (4-core, 12-way 12 MB LLC).

    Competitor totals are the figures their papers report at this
    configuration; CHROME's is computed by :func:`chrome_overhead`.
    """
    chrome_kb = chrome_overhead(config).total_kb
    return [
        SchemeOverhead("hawkeye", False, False, 146.0, "published"),
        SchemeOverhead("glider", False, False, 254.0, "published"),
        SchemeOverhead("mockingjay", True, False, 170.6, "published"),
        SchemeOverhead("care", False, True, 130.5, "published"),
        SchemeOverhead("chrome", True, True, round(chrome_kb, 1), "computed"),
    ]


def overhead_fraction_of_llc(
    breakdown: OverheadBreakdown, llc_size_bytes: int = 12 * 1024 * 1024
) -> float:
    """CHROME's overhead as a fraction of LLC capacity (0.75% in the paper)."""
    return breakdown.total_bits / (llc_size_bytes * 8)
