"""Program-feature extraction for CHROME's state vector (Sec. IV-A).

Table I lists the candidate features (control-flow, data-access, and
combinations).  After feature selection the paper settles on a
2-dimensional state ``S_t = (PC_t, PN_t)``:

* **PC signature** — the load PC hashed together with the hit/miss
  outcome of the current access, an ``is_prefetch`` bit (so demand and
  prefetch behaviour is learned independently), and the core id (so
  per-core behaviour is separable in multi-core mixes);
* **page number** — the physical page of the access, a data-access
  feature complementing the control-flow PC.

Every feature is folded to ``FEATURE_BITS`` bits, giving the 33-bit
two-feature state the EQ stores (Table III: state 33 bits — 17-bit PC
signature + 16-bit page number).

The registry also implements the remaining Table I features so the
feature-ablation experiment (Fig. 15) and downstream users can compose
alternative state vectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from ..sim.address import fold_hash, page_number, page_offset

PC_SIG_BITS = 17
PAGE_BITS_FEATURE = 16
GENERIC_BITS = 16


@dataclass(frozen=True)
class FeatureContext:
    """Inputs available when the state vector is built (one LLC access)."""

    pc: int
    address: int
    core: int
    hit: bool
    is_prefetch: bool
    last_pcs: Tuple[int, ...] = ()
    last_deltas: Tuple[int, ...] = ()


FeatureFn = Callable[[FeatureContext], int]


def pc_signature(ctx: FeatureContext) -> int:
    """Hashed PC signature with hit/miss, is_prefetch and core folded in."""
    raw = (ctx.pc << 3) | (ctx.core & 0x1) << 2 | (1 if ctx.is_prefetch else 0) << 1 | (
        1 if ctx.hit else 0
    )
    raw ^= ctx.core << 40  # full core id disambiguation ('PC+core', Sec. IV-A)
    return fold_hash(raw, PC_SIG_BITS)


def page_number_feature(ctx: FeatureContext) -> int:
    """Physical page number (data-access feature, Table I)."""
    return fold_hash(page_number(ctx.address) ^ (ctx.core << 48), PAGE_BITS_FEATURE)


def address_feature(ctx: FeatureContext) -> int:
    """Block address (data-access feature, Table I)."""
    return fold_hash((ctx.address >> 6) ^ (ctx.core << 48), GENERIC_BITS)


def page_offset_feature(ctx: FeatureContext) -> int:
    """Block-granular page offset (data-access feature)."""
    return fold_hash(page_offset(ctx.address) >> 6, GENERIC_BITS)


def address_delta_feature(ctx: FeatureContext) -> int:
    """Most recent address delta (data-access feature)."""
    delta = ctx.last_deltas[-1] if ctx.last_deltas else 0
    return fold_hash(delta & ((1 << 32) - 1), GENERIC_BITS)


def delta_sequence_feature(ctx: FeatureContext) -> int:
    """Hash of the last 4 address deltas (Table I)."""
    acc = 0
    for d in ctx.last_deltas[-4:]:
        acc = (acc * 1000003) ^ (d & ((1 << 24) - 1))
    return fold_hash(acc, GENERIC_BITS)


def pc_sequence_feature(ctx: FeatureContext) -> int:
    """Hash of the last 4 PCs (control-flow feature)."""
    acc = 0
    for pc in ctx.last_pcs[-4:]:
        acc = (acc * 1000003) ^ pc
    return fold_hash(acc, GENERIC_BITS)


def pc_plus_delta_feature(ctx: FeatureContext) -> int:
    """PC combined with the last delta (combination)."""
    delta = ctx.last_deltas[-1] if ctx.last_deltas else 0
    return fold_hash((ctx.pc << 20) ^ (delta & ((1 << 20) - 1)), GENERIC_BITS)


def pc_plus_page_feature(ctx: FeatureContext) -> int:
    """PC combined with the page number (combination)."""
    return fold_hash((ctx.pc << 24) ^ page_number(ctx.address), GENERIC_BITS)


def pc_plus_offset_feature(ctx: FeatureContext) -> int:
    """PC combined with the page offset (combination)."""
    return fold_hash((ctx.pc << 12) ^ (page_offset(ctx.address) >> 6), GENERIC_BITS)


#: All Table I features, by name.  CHROME's default state is
#: ("pc_sig", "page") per Sec. IV-A's feature-selection outcome.
FEATURE_REGISTRY: Dict[str, FeatureFn] = {
    "pc_sig": pc_signature,
    "page": page_number_feature,
    "address": address_feature,
    "page_offset": page_offset_feature,
    "delta": address_delta_feature,
    "delta_seq": delta_sequence_feature,
    "pc_seq": pc_sequence_feature,
    "pc_delta": pc_plus_delta_feature,
    "pc_page": pc_plus_page_feature,
    "pc_offset": pc_plus_offset_feature,
}

DEFAULT_FEATURES: Tuple[str, ...] = ("pc_sig", "page")


#: features whose value depends on access history (sequences/deltas)
_HISTORY_FEATURES = frozenset({"pc_seq", "delta", "delta_seq", "pc_delta"})

_CACHE_LIMIT = 1 << 20


@dataclass(slots=True)
class FeatureExtractor:
    """Builds CHROME's state vector from a configured feature list.

    Maintains the short per-core control-flow/data-access history that
    the sequence/delta features of Table I require, and memoizes the
    (pure) hash computations of the default features — the extractor
    runs once per LLC access, so this is on the simulator's hot path.
    """

    feature_names: Sequence[str] = DEFAULT_FEATURES
    history_length: int = 4
    _fns: List[FeatureFn] = field(default_factory=list)
    _pc_history: Dict[int, List[int]] = field(default_factory=dict)
    _addr_history: Dict[int, List[int]] = field(default_factory=dict)
    _needs_history: bool = False
    _default_fast: bool = False
    #: memo caches keyed by packed ints (see extract) — no per-lookup
    #: tuple allocation on the hot path
    _pc_sig_cache: Dict[int, int] = field(default_factory=dict)
    _page_cache: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        unknown = [n for n in self.feature_names if n not in FEATURE_REGISTRY]
        if unknown:
            raise KeyError(
                f"unknown features {unknown}; available: {sorted(FEATURE_REGISTRY)}"
            )
        self._fns = [FEATURE_REGISTRY[n] for n in self.feature_names]
        self._needs_history = any(n in _HISTORY_FEATURES for n in self.feature_names)
        self._default_fast = tuple(self.feature_names) == ("pc_sig", "page")

    def _pc_sig_fill(
        self, key: int, pc: int, core: int, hit: bool, is_prefetch: bool
    ) -> int:
        value = pc_signature(FeatureContext(pc, 0, core, hit, is_prefetch))
        if len(self._pc_sig_cache) < _CACHE_LIMIT:
            self._pc_sig_cache[key] = value
        return value

    def _page_fill(self, key: int, address: int, core: int) -> int:
        value = page_number_feature(FeatureContext(0, address, core, False, False))
        if len(self._page_cache) < _CACHE_LIMIT:
            self._page_cache[key] = value
        return value

    def extract(
        self, pc: int, address: int, core: int, hit: bool, is_prefetch: bool
    ) -> Tuple[int, ...]:
        """Return the state vector for one LLC access and update history."""
        if self._default_fast:
            # Packed int keys: unique while core < 2**32; the two flag
            # bits sit below the core field.
            sig_key = (((pc << 32) | core) << 2) | (hit << 1) | (
                1 if is_prefetch else 0
            )
            sig = self._pc_sig_cache.get(sig_key)
            if sig is None:
                sig = self._pc_sig_fill(sig_key, pc, core, hit, is_prefetch)
            page_key = ((address >> 12) << 32) | core
            page = self._page_cache.get(page_key)
            if page is None:
                page = self._page_fill(page_key, address, core)
            return (sig, page)
        if self._needs_history:
            pcs = self._pc_history.setdefault(core, [])
            addrs = self._addr_history.setdefault(core, [])
            seq = addrs + [address]  # delta features include the current access
            deltas = tuple(seq[i + 1] - seq[i] for i in range(len(seq) - 1))
            last_pcs = tuple(pcs)
        else:
            pcs = addrs = None
            deltas = ()
            last_pcs = ()
        ctx = FeatureContext(
            pc=pc,
            address=address,
            core=core,
            hit=hit,
            is_prefetch=is_prefetch,
            last_pcs=last_pcs,
            last_deltas=deltas,
        )
        state = tuple(fn(ctx) for fn in self._fns)
        if self._needs_history:
            pcs.append(pc)
            addrs.append(address)
            if len(pcs) > self.history_length:
                del pcs[0]
            if len(addrs) > self.history_length + 1:
                del addrs[0]
        return state

    @property
    def num_features(self) -> int:
        return len(self._fns)
