"""Execution-backend selection for the Q-table (scalar vs. numpy).

The repo ships two interchangeable Q-table implementations:

* :class:`~repro.core.qtable.QTable` — the **scalar** reference:
  plain nested lists, unrolled per-access loops, the golden-pinned
  semantics every committed artifact was generated with;
* :class:`~repro.core.qtable_np.QTableNumpy` — the **numpy** backend:
  each feature's sub-tables live in one ``(num_subtables, rows,
  NUM_ACTIONS)`` integer-tick array on the same 16-bit fixed-point
  grid, with vectorized batch kernels for chunk-grained sweeps.

Both produce bit-identical results (see DESIGN.md §9 for the
exactness argument and ``tests/test_backend_differential.py`` for the
golden gate), so the backend is purely a performance knob: it never
changes metrics, goldens, or cache keys.

Selection precedence, resolved at construction time:

1. an explicit ``ChromeConfig.backend`` / ``SystemConfig.backend`` /
   ``ServiceConfig.backend`` value;
2. the ``REPRO_BACKEND`` environment variable (validated — a typo
   fails fast instead of silently running the default);
3. the default, ``"scalar"``.
"""

from __future__ import annotations

import os
from typing import Optional

#: recognized backend names (the CLI and env validation share this)
VALID_BACKENDS = ("scalar", "numpy")

_ENV_VAR = "REPRO_BACKEND"


def resolve_backend(backend: Optional[str] = None) -> str:
    """Return the effective backend name (explicit > env > default).

    Raises ``ValueError`` for unknown names and for ``numpy`` when
    numpy is not importable, so a misconfigured run fails loudly at
    construction instead of silently measuring the wrong thing.
    """
    source = "backend"
    if backend is None:
        backend = os.environ.get(_ENV_VAR)
        source = _ENV_VAR
    if backend is None or not str(backend).strip():
        return "scalar"
    name = str(backend).strip().lower()
    if name not in VALID_BACKENDS:
        raise ValueError(
            f"invalid {source} {backend!r}: choose from {VALID_BACKENDS}"
        )
    if name == "numpy":
        try:
            import numpy  # noqa: F401
        except ImportError as exc:  # pragma: no cover - numpy ships in CI
            raise ValueError(
                "backend 'numpy' requested but numpy is not installed"
            ) from exc
    return name


def make_qtable(num_features: int, config):
    """Build the Q-table implementation selected by ``config.backend``.

    Both classes expose the same surface (per-access ops, batch
    helpers, ``state_dict``/``load_state_dict``, introspection), and
    their snapshots are interchangeable, so callers never branch on
    the backend after construction.
    """
    kind = resolve_backend(getattr(config, "backend", None))
    if kind == "numpy":
        from .qtable_np import QTableNumpy

        return QTableNumpy(num_features, config)
    from .qtable import QTable

    return QTable(num_features, config)
