"""CHROME — the RL-based holistic LLC management agent (Secs. IV & V).

This module implements Algorithm 1 end to end as an LLC
:class:`~repro.sim.replacement.base.ReplacementPolicy`:

* **RL decision task** — every LLC demand/prefetch access becomes a
  state vector (PC signature + page number); the agent picks the
  Q-maximal legal action (epsilon-greedy): on a miss, bypass or insert
  with one of three EPVs; on a hit, set the block's EPV;
* **RL training task** — actions on the 64 sampled sets are recorded in
  the per-set EQ FIFOs; re-requests assign R_AC/R_IN rewards; entries
  evicted without a reward get the NR rewards, judged with the live
  LLC-obstruction flags from the C-AMAT monitor; every EQ eviction
  performs one SARSA update pairing the evicted entry with the queue's
  new head.

Eviction among cached blocks follows the EPVs: the victim is the block
with the highest eviction priority, oldest-first among ties.

``N-CHROME`` (Sec. VII-C) is the same agent with concurrency-blind
rewards; build it with :func:`make_nchrome_policy` or
``ChromeConfig.as_nchrome()``.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence, Tuple

from ..sim.access import AccessInfo
from ..sim.block import CacheBlock
from ..sim.camat import CAMATMonitor
from ..sim.replacement.base import ReplacementPolicy
from ..sim.replacement.optgen import choose_sampled_sets
from .config import (
    ACTION_BYPASS,
    ACTION_EPV_HIGH,
    ACTION_TO_EPV,
    EPV_MAX,
    HIT_ACTIONS,
    MISS_ACTIONS,
    ChromeConfig,
)
from .backend import make_qtable
from .eq import EQEntry, EvaluationQueue, hash_block_address
from .features import FeatureExtractor


class ChromePolicy(ReplacementPolicy):
    """Concurrency-aware holistic RL cache management."""

    name = "chrome"

    def __init__(self, config: Optional[ChromeConfig] = None) -> None:
        super().__init__()
        self.config = config or ChromeConfig()
        self.features = FeatureExtractor(self.config.features)
        self.qtable = make_qtable(self.features.num_features, self.config)
        self.eq = EvaluationQueue(self.config.sampled_sets, self.config.eq_fifo_size)
        self._rng = random.Random(self.config.seed)
        # Hot-path hoists: the bound RNG method and the (construction-
        # time) exploration rate, saving attribute chains per decision.
        self._rand = self._rng.random
        self._epsilon = self.config.epsilon
        self._rewards = self.config.rewards
        # Legal-action orderings (first element wins arg-max ties);
        # instance attributes so variants/ablations can reorder them.
        self._miss_actions: Tuple[int, ...] = MISS_ACTIONS
        self._hit_actions: Tuple[int, ...] = HIT_ACTIONS
        self._camat: Optional[CAMATMonitor] = None
        self._sampled_queue: Dict[int, int] = {}
        # Action chosen by should_bypass(), consumed by the fill that follows.
        self._pending_fill: Optional[Tuple[int, int]] = None  # (block, action)
        # telemetry
        self.sampled_accesses = 0
        self.decisions = 0
        self.explorations = 0
        self.bypass_decisions = 0
        # reward-family mix (Sec. IV-C): how training signal splits
        # between re-request rewards (R_AC/R_IN) and the OB/NOB
        # no-re-request rewards assigned at EQ eviction.
        self.rewards_accurate = 0
        self.rewards_inaccurate = 0
        self.rewards_nr_accurate = 0
        self.rewards_nr_inaccurate = 0
        self.rewards_nr_obstructed = 0

    # --- wiring -----------------------------------------------------------------

    def attach(self, num_sets: int, num_ways: int) -> None:
        super().attach(num_sets, num_ways)
        sampled = sorted(choose_sampled_sets(num_sets, self.config.sampled_sets))
        self._sampled_queue = {s: i for i, s in enumerate(sampled)}
        if len(sampled) != self.eq.num_queues:
            self.eq = EvaluationQueue(len(sampled), self.config.eq_fifo_size)

    def bind_camat(self, monitor: CAMATMonitor) -> None:
        """Receive the C-AMAT monitor supplying LLC-obstruction flags."""
        self._camat = monitor

    # --- the RL decision + training pipeline ------------------------------------

    def _decide(self, info: AccessInfo, hit: bool) -> int:
        """Lines 2-38 of Algorithm 1 for one LLC access."""
        queue_idx = self._sampled_queue.get(info.set_index)
        hashed = hash_block_address(info.block_addr) if queue_idx is not None else 0

        if queue_idx is not None:
            self.sampled_accesses += 1
            # Lines 3-8: reward a matching earlier action.
            entry = self.eq.find(queue_idx, hashed)
            if entry is not None and entry.reward is None:
                self.eq.reward_matches += 1
                rewards = self._rewards
                if hit:
                    entry.reward = rewards.accurate(info.is_prefetch)
                    self.rewards_accurate += 1
                else:
                    entry.reward = rewards.inaccurate(info.is_prefetch)
                    self.rewards_inaccurate += 1

        # Line 9: extract the state vector.
        state = self.features.extract(
            info.pc, info.address, info.core, hit, info.is_prefetch
        )

        # Lines 10-19: epsilon-greedy action selection over legal actions.
        legal = self._hit_actions if hit else self._miss_actions
        self.decisions += 1
        if self._rand() < self._epsilon:
            action = legal[self._rng.randrange(len(legal))]
            self.explorations += 1
        else:
            action = self.qtable.best_action(state, legal)

        # Lines 21-38: record the action on sampled sets; learn on eviction.
        if queue_idx is not None:
            new_entry = EQEntry(
                state=state,
                action=action,
                trigger_hit=hit,
                hashed_addr=hashed,
                core=info.core,
            )
            evicted, head = self.eq.insert(queue_idx, new_entry)
            if evicted is not None and head is not None:
                if not evicted.has_reward:
                    evicted.reward = self._no_rerequest_reward(evicted)
                self._sarsa_update(evicted, head)
        return action

    def _no_rerequest_reward(self, entry: EQEntry) -> float:
        """NR rewards (lines 24-34): praise actions that de-prioritized a
        block nobody asked for again, penalize actions that retained it;
        magnitudes scale with the acting core's LLC obstruction."""
        rewards = self._rewards
        obstructed = (
            self._camat.is_obstructed(entry.core) if self._camat is not None else False
        )
        if obstructed:
            self.rewards_nr_obstructed += 1
        if entry.trigger_hit:
            deprioritized = entry.action == ACTION_EPV_HIGH
        else:
            deprioritized = entry.action == ACTION_BYPASS
        if deprioritized:
            self.rewards_nr_accurate += 1
            return rewards.accurate_no_rerequest(obstructed)
        self.rewards_nr_inaccurate += 1
        return rewards.inaccurate_no_rerequest(obstructed)

    def _sarsa_update(self, evicted: EQEntry, head: EQEntry) -> None:
        """Line 38: Q(S1,A1) += alpha [R + gamma Q(S2,A2) - Q(S1,A1)]."""
        cfg = self.config
        q_next = self.qtable.q(head.state, head.action)
        q_cur = self.qtable.q(evicted.state, evicted.action)
        assert evicted.reward is not None
        delta = cfg.alpha * (evicted.reward + cfg.gamma * q_next - q_cur)
        self.qtable.apply_delta(evicted.state, evicted.action, delta)

    # --- ReplacementPolicy hooks ------------------------------------------------

    def should_bypass(self, info: AccessInfo) -> bool:
        """Miss path: choose among bypass / insert-with-EPV."""
        action = self._decide(info, hit=False)
        if action == ACTION_BYPASS:
            self.bypass_decisions += 1
            self._pending_fill = None
            return True
        self._pending_fill = (info.block_addr, action)
        return False

    def on_fill(self, info: AccessInfo, blocks: Sequence[CacheBlock], way: int) -> None:
        if info.is_writeback:
            # Writebacks are not RL-managed: park them at highest priority.
            blocks[way].epv = EPV_MAX
            return
        pending = self._pending_fill
        self._pending_fill = None
        if pending is not None and pending[0] == info.block_addr:
            blocks[way].epv = ACTION_TO_EPV[pending[1]]
        else:
            blocks[way].epv = EPV_MAX

    def on_hit(self, info: AccessInfo, blocks: Sequence[CacheBlock], way: int) -> None:
        if info.is_writeback:
            return
        action = self._decide(info, hit=True)
        blocks[way].epv = ACTION_TO_EPV[action]

    def find_victim(self, info: AccessInfo, blocks: Sequence[CacheBlock]) -> int:
        """Highest EPV first; LRU among equals."""
        first = blocks[0]
        best_way = 0
        best_epv = first.epv
        best_touch = first.last_touch
        # Enumerate from way 0: the self-comparison is a no-op (equal EPV,
        # equal touch), and iterating beats indexing on this 16-wide scan.
        for way, block in enumerate(blocks):
            epv = block.epv
            if epv > best_epv:
                best_way = way
                best_epv = epv
                best_touch = block.last_touch
            elif epv == best_epv:
                touch = block.last_touch
                if touch < best_touch:
                    best_way = way
                    best_touch = touch
        return best_way

    # --- persistence --------------------------------------------------------------

    def save(self, path) -> None:
        """Snapshot the trained agent (Q-table + RNG) to JSON.

        The snapshot is version-tagged and geometry-checked on restore;
        floats round-trip exactly, so a restored agent's ``q_values``
        are bit-identical to the saved ones (see
        :mod:`repro.core.persistence`).
        """
        from .persistence import save_agent

        save_agent(self, path, kind="chrome-agent")

    def restore(self, path) -> None:
        """Load a snapshot written by :meth:`save` into this agent."""
        from .persistence import restore_agent

        restore_agent(self, path, kind="chrome-agent")

    # --- reporting ---------------------------------------------------------------

    def reward_mix(self) -> dict:
        """Cumulative reward-family counts (the obs timeline samples
        this each epoch; deltas between epochs give the per-epoch mix)."""
        return {
            "accurate": self.rewards_accurate,
            "inaccurate": self.rewards_inaccurate,
            "nr_accurate": self.rewards_nr_accurate,
            "nr_inaccurate": self.rewards_nr_inaccurate,
            "nr_obstructed": self.rewards_nr_obstructed,
        }

    def telemetry(self) -> dict:
        """Run counters used by the experiments (UPKSA for Table VII,
        exploration/bypass rates, Q-value health)."""
        upksa = (
            1000.0 * self.qtable.updates / self.sampled_accesses
            if self.sampled_accesses
            else 0.0
        )
        mix = self.reward_mix()
        return {
            "decisions": self.decisions,
            "explorations": self.explorations,
            "bypass_decisions": self.bypass_decisions,
            "sampled_accesses": self.sampled_accesses,
            "q_updates": self.qtable.updates,
            "upksa": upksa,
            "eq_reward_matches": self.eq.reward_matches,
            **{f"reward_{k}": v for k, v in mix.items()},
            **self.qtable.snapshot_stats(),
        }

    def storage_overhead_bits(self) -> int:
        qtable = self.qtable.storage_bits()
        eq = self.eq.storage_bits()
        metadata = self.num_sets * self.num_ways * 2  # 2-bit EPV per block
        return qtable + eq + metadata


def make_nchrome_policy(config: Optional[ChromeConfig] = None) -> ChromePolicy:
    """Build N-CHROME: CHROME minus concurrency-aware rewards (Sec. VII-C)."""
    base = config or ChromeConfig()
    policy = ChromePolicy(base.as_nchrome())
    policy.name = "n-chrome"
    return policy
