"""CHROME — the RL-based holistic LLC management agent (Secs. IV & V).

This module implements Algorithm 1 end to end as an LLC
:class:`~repro.sim.replacement.base.ReplacementPolicy`:

* **RL decision task** — every LLC demand/prefetch access becomes a
  state vector (PC signature + page number); the agent picks the
  Q-maximal legal action (epsilon-greedy): on a miss, bypass or insert
  with one of three EPVs; on a hit, set the block's EPV;
* **RL training task** — actions on the 64 sampled sets are recorded in
  the per-set EQ FIFOs; re-requests assign R_AC/R_IN rewards; entries
  evicted without a reward get the NR rewards, judged with the live
  LLC-obstruction flags from the C-AMAT monitor; every EQ eviction
  performs one SARSA update pairing the evicted entry with the queue's
  new head.

The decision/training pipeline itself lives in
:class:`~repro.env.driver.AgentCore` — this class is the LLC *binding*
of that shared driver: it supplies the (PC, page) feature extraction,
maps LLC sets to sampled units, wires the C-AMAT monitor in as the
obstruction source, and translates actions into block EPVs.  The serve
layer binds the identical driver to object-cache requests
(:class:`~repro.serve.agent.ServeAgent`); see ``DESIGN.md`` §11.

Eviction among cached blocks follows the EPVs: the victim is the block
with the highest eviction priority, oldest-first among ties.

``N-CHROME`` (Sec. VII-C) is the same agent with concurrency-blind
rewards; build it with :func:`make_nchrome_policy` or
``ChromeConfig.as_nchrome()``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..env.driver import AgentCore
from ..sim.access import AccessInfo
from ..sim.block import CacheBlock
from ..sim.camat import CAMATMonitor
from ..sim.replacement.base import ReplacementPolicy
from .config import (
    ACTION_BYPASS,
    ACTION_TO_EPV,
    EPV_MAX,
    ChromeConfig,
)
from .features import FeatureExtractor


class ChromePolicy(ReplacementPolicy, AgentCore):
    """Concurrency-aware holistic RL cache management."""

    name = "chrome"

    def __init__(self, config: Optional[ChromeConfig] = None) -> None:
        ReplacementPolicy.__init__(self)
        config = config or ChromeConfig()
        self.features = FeatureExtractor(config.features)
        # Process-independent seeding: the exploration RNG is a pure
        # function of the config seed.
        AgentCore.__init__(self, config, self.features.num_features, config.seed)
        # Action chosen by should_bypass(), consumed by the fill that follows.
        self._pending_fill: Optional[Tuple[int, int]] = None  # (block, action)

    # --- wiring -----------------------------------------------------------------

    def attach(self, num_sets: int, num_ways: int) -> None:
        super().attach(num_sets, num_ways)
        self.attach_sampled(num_sets)

    def bind_camat(self, monitor: CAMATMonitor) -> None:
        """Receive the C-AMAT monitor supplying LLC-obstruction flags."""
        self.bind_obstruction(monitor)

    # --- the RL decision + training pipeline ------------------------------------

    @property
    def sampled_accesses(self) -> int:
        """LLC spelling of the shared sampled-step counter."""
        return self.sampled_steps

    def _decide(self, info: AccessInfo, hit: bool) -> int:
        """Lines 2-38 of Algorithm 1 for one LLC access.

        The LLC binding of :meth:`~repro.env.driver.AgentCore.rl_decide`:
        state extraction here, everything else in the shared driver.
        """
        state = self.features.extract(
            info.pc, info.address, info.core, hit, info.is_prefetch
        )
        return self.rl_decide(
            state, info.set_index, info.block_addr, hit, info.is_prefetch,
            info.core,
        )

    # --- ReplacementPolicy hooks ------------------------------------------------

    def should_bypass(self, info: AccessInfo) -> bool:
        """Miss path: choose among bypass / insert-with-EPV."""
        action = self._decide(info, hit=False)
        if action == ACTION_BYPASS:
            self.bypass_decisions += 1
            self._pending_fill = None
            return True
        self._pending_fill = (info.block_addr, action)
        return False

    def on_fill(self, info: AccessInfo, blocks: Sequence[CacheBlock], way: int) -> None:
        if info.is_writeback:
            # Writebacks are not RL-managed: park them at highest priority.
            blocks[way].epv = EPV_MAX
            return
        pending = self._pending_fill
        self._pending_fill = None
        if pending is not None and pending[0] == info.block_addr:
            blocks[way].epv = ACTION_TO_EPV[pending[1]]
        else:
            blocks[way].epv = EPV_MAX

    def on_hit(self, info: AccessInfo, blocks: Sequence[CacheBlock], way: int) -> None:
        if info.is_writeback:
            return
        action = self._decide(info, hit=True)
        blocks[way].epv = ACTION_TO_EPV[action]

    def find_victim(self, info: AccessInfo, blocks: Sequence[CacheBlock]) -> int:
        """Highest EPV first; LRU among equals."""
        first = blocks[0]
        best_way = 0
        best_epv = first.epv
        best_touch = first.last_touch
        # Enumerate from way 0: the self-comparison is a no-op (equal EPV,
        # equal touch), and iterating beats indexing on this 16-wide scan.
        for way, block in enumerate(blocks):
            epv = block.epv
            if epv > best_epv:
                best_way = way
                best_epv = epv
                best_touch = block.last_touch
            elif epv == best_epv:
                touch = block.last_touch
                if touch < best_touch:
                    best_way = way
                    best_touch = touch
        return best_way

    # --- persistence --------------------------------------------------------------

    def save(self, path) -> None:
        """Snapshot the trained agent (Q-table + RNG) to JSON.

        The snapshot is version-tagged and geometry-checked on restore;
        floats round-trip exactly, so a restored agent's ``q_values``
        are bit-identical to the saved ones (see
        :mod:`repro.core.persistence`).
        """
        from .persistence import save_agent

        save_agent(self, path, kind="chrome-agent")

    def restore(self, path) -> None:
        """Load a snapshot written by :meth:`save` into this agent."""
        from .persistence import restore_agent

        restore_agent(self, path, kind="chrome-agent")

    # --- reporting ---------------------------------------------------------------

    def telemetry(self) -> dict:
        """Run counters used by the experiments (UPKSA for Table VII,
        exploration/bypass rates, Q-value health)."""
        upksa = (
            1000.0 * self.qtable.updates / self.sampled_steps
            if self.sampled_steps
            else 0.0
        )
        mix = self.reward_mix()
        return {
            "decisions": self.decisions,
            "explorations": self.explorations,
            "bypass_decisions": self.bypass_decisions,
            "sampled_accesses": self.sampled_steps,
            "q_updates": self.qtable.updates,
            "upksa": upksa,
            "eq_reward_matches": self.eq.reward_matches,
            **{f"reward_{k}": v for k, v in mix.items()},
            **self.qtable.snapshot_stats(),
        }

    def storage_overhead_bits(self) -> int:
        qtable = self.qtable.storage_bits()
        eq = self.eq.storage_bits()
        metadata = self.num_sets * self.num_ways * 2  # 2-bit EPV per block
        return qtable + eq + metadata


def make_nchrome_policy(config: Optional[ChromeConfig] = None) -> ChromePolicy:
    """Build N-CHROME: CHROME minus concurrency-aware rewards (Sec. VII-C)."""
    base = config or ChromeConfig()
    policy = ChromePolicy(base.as_nchrome())
    policy.name = "n-chrome"
    return policy
