"""Numpy-backed Q-table: integer ticks on the 16-bit fixed-point grid.

Drop-in replacement for :class:`~repro.core.qtable.QTable` (select it
with ``backend="numpy"`` / ``REPRO_BACKEND=numpy``; see
:mod:`repro.core.backend`).  Each feature's sub-tables are one
``(num_subtables, rows, NUM_ACTIONS)`` integer array whose entries are
*ticks* — Q-values divided by the fixed-point quantum ``2^-f`` — so
the whole table is the same 16-bit lattice the scalar reference
quantizes onto, stored exactly.

**Why the backends are bit-identical** (DESIGN.md §9 has the full
argument):

* a stored value is always ``tick * q`` with ``q = 2^-f`` a power of
  two, so converting between ticks and floats is exact both ways;
* sub-table partial sums (≤ 8 values, each < 2^10 in magnitude on a
  2^-6 grid) never exceed float64's 53-bit significand, so the scalar
  path's float sums equal ``(sum of ticks) * q`` exactly — lookups,
  arg-maxes and SARSA targets agree to the last bit;
* the scalar update ``round((value + share) / q) * q`` equals
  ``rint(tick + share/q)`` in ticks, because scaling by ``1/q``
  commutes with IEEE rounding and both ``round`` and ``np.rint``
  round half to even.

Per-access calls (``best_action`` / ``apply_delta`` on one state) go
through numpy element access and are *slower* than the scalar table's
unrolled list code — that trade is the point: this backend exists for
the **batch kernels** (``best_actions`` / ``apply_deltas``), which
decide and train whole chunks per numpy dispatch.  ``apply_deltas``
preserves sequential semantics exactly: records whose table cells
collide are split into ordered collision-free sub-batches, so each
cell sees the same chain of quantized updates the scalar loop applies.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..sim.batch import batch_mix_hash
from .config import NUM_ACTIONS, ChromeConfig
from .qtable import _SUBTABLE_XOR

_U64 = np.uint64


class QTableNumpy:
    """Vectorized Q-value storage, interchangeable with the scalar table."""

    __slots__ = (
        "config",
        "num_features",
        "num_subtables",
        "rows",
        "_row_mask",
        "_quantum",
        "_inv_quantum",
        "_clamp",
        "_init_q",
        "_init_tick",
        "_lo_tick",
        "_hi_tick",
        "_dtype",
        "_ticks",
        "_views",
        "_xor_u64",
        "_cell_base",
        "_index_cache",
        "_batch_row_cache",
        "lookups",
        "updates",
    )

    def __init__(self, num_features: int, config: ChromeConfig) -> None:
        if config.num_subtables > len(_SUBTABLE_XOR):
            raise ValueError(f"at most {len(_SUBTABLE_XOR)} sub-tables supported")
        self.config = config
        self.num_features = num_features
        self.num_subtables = config.num_subtables
        self.rows = config.rows_per_subtable
        self._row_mask = self.rows - 1
        if self.rows & self._row_mask:
            raise ValueError("rows per sub-table must be a power of two")
        self._quantum = 1.0 / (1 << config.q_fixed_point_fraction_bits)
        self._inv_quantum = float(1 << config.q_fixed_point_fraction_bits)
        limit = (1 << (config.q_value_bits - 1)) * self._quantum
        self._clamp = (-limit, limit - self._quantum)
        self._lo_tick = -(1 << (config.q_value_bits - 1))
        self._hi_tick = (1 << (config.q_value_bits - 1)) - 1
        if config.q_value_bits <= 16:
            self._dtype = np.int16
        elif config.q_value_bits <= 32:
            self._dtype = np.int32
        else:
            self._dtype = np.int64
        init = config.optimistic_q / self.num_subtables
        init = round(init / self._quantum) * self._quantum
        self._init_q = init
        self._init_tick = round(init * self._inv_quantum)
        self._ticks = np.full(
            (num_features, self.num_subtables, self.rows, NUM_ACTIONS),
            self._init_tick,
            dtype=self._dtype,
        )
        self._views = [self._ticks[f] for f in range(num_features)]
        # Sub-table XOR constants as a uint64 row for the batched hash.
        self._xor_u64 = np.array(
            _SUBTABLE_XOR[: self.num_subtables], dtype=_U64
        )
        # Flat-cell base per (feature, sub-table) pair: cell id of
        # (f, k, row, action) is ((f*K + k)*R + row)*A + action.
        fk = np.arange(num_features * self.num_subtables, dtype=np.int64)
        self._cell_base = (fk * self.rows).reshape(
            1, num_features, self.num_subtables
        )
        # Same exact memo as the scalar table: hashing is pure.
        self._index_cache: dict = {}
        # Batch analogue of the scalar row caches: callers that sweep
        # the same state array repeatedly (epoch loops, benches) get
        # their row indices back without re-hashing.  Keyed by array
        # identity and guarded by a weakref, so a recycled id() can
        # never alias a dead array.
        self._batch_row_cache: dict = {}
        self.lookups = 0
        self.updates = 0

    # --- indexing -----------------------------------------------------------------

    def _row_indices(self, feature_value: int) -> Tuple[int, ...]:
        cached = self._index_cache.get(feature_value)
        if cached is None:
            from ..sim.address import mix_hash

            mask = self._row_mask
            cached = tuple(
                mix_hash(feature_value ^ _SUBTABLE_XOR[k]) & mask
                for k in range(self.num_subtables)
            )
            if len(self._index_cache) < (1 << 21):
                self._index_cache[feature_value] = cached
        return cached

    def _batch_rows(self, values: np.ndarray) -> np.ndarray:
        """Sub-table row indices for a uint64 value array (vectorized).

        ``values`` has shape ``(..., )``; the result adds a trailing
        sub-table axis: ``(..., num_subtables)`` of int64 rows.
        """
        hashed = batch_mix_hash(values[..., None] ^ self._xor_u64)
        return (hashed & _U64(self._row_mask)).astype(np.int64)

    def _batch_rows_cached(self, values: np.ndarray) -> np.ndarray:
        """Memoized :meth:`_batch_rows` for repeatedly-swept arrays."""
        key = id(values)
        hit = self._batch_row_cache.get(key)
        if hit is not None:
            ref, rows = hit
            if ref() is values:
                return rows
        rows = self._batch_rows(values)
        # Only non-writeable owning arrays are memoized: immutability
        # makes the cached rows permanently valid, and the weakref
        # pins the identity for as long as the entry can hit.
        if (
            not values.flags.writeable
            and values.base is None
            and len(self._batch_row_cache) < 4096
        ):
            import weakref

            try:
                self._batch_row_cache[key] = (weakref.ref(values), rows)
            except TypeError:  # pragma: no cover - non-weakref array subtype
                pass
        return rows

    # --- per-access operations (parity with the scalar table) ---------------------

    def _feature_sums(self, feature_idx: int, feature_value: int) -> List[int]:
        """Per-action tick sums over one feature's sub-table rows."""
        view = self._views[feature_idx]
        idxs = self._row_indices(feature_value)
        row = view[0, idxs[0]].tolist()
        s0, s1, s2, s3 = row[0], row[1], row[2], row[3]
        for k in range(1, self.num_subtables):
            row = view[k, idxs[k]].tolist()
            s0 += row[0]
            s1 += row[1]
            s2 += row[2]
            s3 += row[3]
        return [s0, s1, s2, s3]

    def feature_q_values(self, feature_idx: int, feature_value: int) -> List[float]:
        q = self._quantum
        return [s * q for s in self._feature_sums(feature_idx, feature_value)]

    def q_values(self, state: Sequence[int]) -> List[float]:
        self.lookups += 1
        best = self._feature_sums(0, state[0])
        for f in range(1, self.num_features):
            other = self._feature_sums(f, state[f])
            for a in range(NUM_ACTIONS):
                if other[a] > best[a]:
                    best[a] = other[a]
        q = self._quantum
        return [s * q for s in best]

    def q(self, state: Sequence[int], action: int) -> float:
        self.lookups += 1
        best = None
        for f in range(self.num_features):
            view = self._views[f]
            idxs = self._row_indices(state[f])
            total = int(view[0, idxs[0], action])
            for k in range(1, self.num_subtables):
                total += int(view[k, idxs[k], action])
            if best is None or total > best:
                best = total
        assert best is not None
        return best * self._quantum

    def best_action(self, state: Sequence[int], legal: Sequence[int]) -> int:
        self.lookups += 1
        best = self._feature_sums(0, state[0])
        for f in range(1, self.num_features):
            other = self._feature_sums(f, state[f])
            for a in range(NUM_ACTIONS):
                if other[a] > best[a]:
                    best[a] = other[a]
        best_action = legal[0]
        best_value = best[best_action]
        for action in legal[1:]:
            v = best[action]
            if v > best_value:
                best_action = action
                best_value = v
        return best_action

    def apply_delta(self, state: Sequence[int], action: int, delta: float) -> None:
        self.updates += 1
        share_ticks = (delta / self.num_subtables) * self._inv_quantum
        lo, hi = self._lo_tick, self._hi_tick
        for f in range(self.num_features):
            view = self._views[f]
            for k, idx in enumerate(self._row_indices(state[f])):
                tick = round(int(view[k, idx, action]) + share_ticks)
                if tick < lo:
                    tick = lo
                elif tick > hi:
                    tick = hi
                view[k, idx, action] = tick

    # --- batch kernels ------------------------------------------------------------

    @staticmethod
    def _as_state_array(states) -> np.ndarray:
        """``(N, num_features)`` uint64 view of a batch of states.

        Accepts an ndarray (used as-is after an exact dtype cast) or
        any sequence of state tuples.  Raises ``OverflowError`` /
        ``TypeError`` / ``ValueError`` for values outside uint64 —
        callers fall back to the per-access path.
        """
        if isinstance(states, np.ndarray):
            return states.astype(_U64, copy=False)
        return np.asarray(states, dtype=_U64)

    def best_actions(self, states, legal: Sequence[int]) -> List[int]:
        """Vectorized arg-max decisions for a whole chunk of states.

        Equivalent to ``[best_action(s, legal) for s in states]`` —
        decisions read the table, never write it, so batching changes
        nothing.  Ties break toward the earliest legal action, exactly
        the scalar preference (``np.argmax`` keeps the first maximum).
        ``states`` may be a sequence of tuples or a ``(N, F)`` array.
        """
        n = len(states)
        if n == 0:
            return []
        try:
            values = self._as_state_array(states)
        except (OverflowError, TypeError, ValueError):
            return [self.best_action(s, legal) for s in states]
        self.lookups += n
        per_action = self._batch_tick_sums(values)
        legal_arr = np.asarray(legal, dtype=np.int64)
        picks = np.argmax(per_action[:, legal_arr], axis=1)
        return legal_arr[picks].tolist()

    def batch_q_values(self, states) -> np.ndarray:
        """``(len(states), NUM_ACTIONS)`` float Q-values (exact floats)."""
        values = self._as_state_array(states)
        self.lookups += len(states)
        return self._batch_tick_sums(values) * self._quantum

    def _batch_tick_sums(self, values: np.ndarray) -> np.ndarray:
        """Max-over-features of summed sub-table ticks: ``(N, A)`` ints."""
        rows = self._batch_rows_cached(values)  # (N, F, K)
        if self._dtype is np.int16 and NUM_ACTIONS == 4:
            # Each 4-action int16 row is one aligned 8-byte word, so a
            # whole row gathers as a single int64 and its action lanes
            # reappear via a view — 4x fewer gathered elements.
            packed = self._ticks.view(np.int64)[..., 0]  # (F, K, R)
            flat = packed.reshape(-1)
            words = flat[(self._cell_base + rows).reshape(-1)]
            gathered = words.view(np.int16).reshape(rows.shape + (NUM_ACTIONS,))
        else:
            f_idx = np.arange(self.num_features).reshape(1, -1, 1)
            k_idx = np.arange(self.num_subtables).reshape(1, 1, -1)
            gathered = self._ticks[f_idx, k_idx, rows]  # (N, F, K, A)
        # Unrolled sum over the sub-table axis: a strided widening
        # reduce (`sum(axis=2, dtype=int64)`) is ~10x slower than K-1
        # contiguous adds, and int32 cannot overflow (|tick| < 2^15,
        # K <= 8).
        acc = gathered[:, :, 0].astype(np.int32)
        for k in range(1, self.num_subtables):
            acc += gathered[:, :, k]
        return acc.max(axis=1)

    def apply_deltas(
        self,
        states: Sequence[Sequence[int]],
        actions: Sequence[int],
        deltas: Sequence[float],
    ) -> None:
        """Vectorized ``apply_delta`` over a batch, sequential semantics.

        ``apply_delta`` touches cells independently (each gets ``+
        share``, quantize, clamp), so a batch flattens to (cell, share)
        pairs and correctness only requires that pairs hitting the
        *same* cell apply in record order.  A stable sort by cell id
        numbers each pair with its occurrence index along its cell's
        chain; pass ``o`` then flushes every chain's ``o``-th link in
        one fused gather → rint → clip → scatter (within a pass all
        cells are distinct, and links ``< o`` are already applied).
        The pass count is the deepest cell chain — 1 for collision-free
        batches — so every cell sees the exact ordered chain of
        quantized updates the scalar loop would apply.
        """
        n = len(states)
        if n == 0:
            return
        try:
            values = self._as_state_array(states)
        except (OverflowError, TypeError, ValueError):
            for state, action, delta in zip(states, actions, deltas):
                self.apply_delta(state, action, delta)
            return
        self.updates += n
        fk = self.num_features * self.num_subtables
        rows = self._batch_rows_cached(values)  # (N, F, K)
        action_arr = np.asarray(actions, dtype=np.int64)
        cells = (
            (self._cell_base + rows) * NUM_ACTIONS
            + action_arr[:, None, None]
        ).reshape(n, fk)
        shares = (
            np.asarray(deltas, dtype=np.float64) / self.num_subtables
        ) * self._inv_quantum
        flat = self._ticks.reshape(-1)
        lo, hi = self._lo_tick, self._hi_tick
        dtype = self._dtype
        pair_cells = cells.reshape(-1)
        pair_shares = np.repeat(shares, fk)

        def flush(sel) -> None:
            idx = pair_cells if sel is None else pair_cells[sel]
            sh = pair_shares if sel is None else pair_shares[sel]
            ticks = flat[idx].astype(np.float64)
            ticks += sh
            flat[idx] = np.clip(np.rint(ticks), lo, hi).astype(dtype)

        # Chain positions: stable-sort pairs by cell, so equal-cell
        # runs keep record order; a pair's offset inside its run is its
        # occurrence index along that cell's update chain.  Narrow keys
        # make numpy's radix argsort ~13x faster, and every cell id of
        # a default-geometry table (2*4*512*4 = 16384 cells) fits int16.
        if flat.size <= 0x7FFF:
            order = np.argsort(pair_cells.astype(np.int16), kind="stable")
        else:
            order = np.argsort(pair_cells, kind="stable")
        sorted_cells = pair_cells[order]
        m = sorted_cells.size
        starts = np.empty(m, dtype=bool)
        starts[0] = True
        np.not_equal(sorted_cells[1:], sorted_cells[:-1], out=starts[1:])
        start_pos = np.flatnonzero(starts)
        run_len = np.diff(start_pos, append=m)
        max_occ = int(run_len.max()) - 1
        if max_occ == 0:  # no cell repeats: one fused flush
            flush(None)
            return
        for o in range(max_occ + 1):
            # The o-th link of every chain at least o+1 long.
            flush(order[start_pos[run_len > o] + o])

    # --- persistence --------------------------------------------------------------

    def state_dict(self) -> dict:
        """Scalar-compatible snapshot (same version-1 float format).

        Tick→float conversion is exact (power-of-two quantum), so a
        snapshot taken here loads into the scalar table — and back —
        with bit-identical Q-values.
        """
        values = self._ticks.astype(np.float64) * self._quantum
        return {
            "version": 1,
            "num_features": self.num_features,
            "num_subtables": self.num_subtables,
            "rows": self.rows,
            "num_actions": NUM_ACTIONS,
            "tables": values.tolist(),
            "lookups": self.lookups,
            "updates": self.updates,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a scalar- or numpy-produced :meth:`state_dict`.

        Beyond the scalar table's geometry checks, values must sit on
        the fixed-point grid within the clamp range — anything the repo
        produces does (updates quantize, federation merges snap), and
        rejecting off-grid floats keeps the backends interchangeable
        instead of silently diverging.
        """
        if state.get("version") != 1:
            raise ValueError(f"unsupported QTable state version {state.get('version')!r}")
        expected = {
            "num_features": self.num_features,
            "num_subtables": self.num_subtables,
            "rows": self.rows,
            "num_actions": NUM_ACTIONS,
        }
        mismatched = {
            k: (state.get(k), v) for k, v in expected.items() if state.get(k) != v
        }
        if mismatched:
            raise ValueError(f"QTable geometry mismatch on load: {mismatched}")
        shape = (self.num_features, self.num_subtables, self.rows, NUM_ACTIONS)
        try:
            values = np.asarray(state["tables"], dtype=np.float64)
        except ValueError as exc:
            raise ValueError(f"malformed QTable state: {exc}") from exc
        if values.shape != shape:
            raise ValueError(
                f"QTable geometry mismatch on load: tables shape "
                f"{values.shape} != {shape}"
            )
        ticks = np.rint(values * self._inv_quantum)
        if not np.array_equal(ticks * self._quantum, values):
            raise ValueError(
                "QTable state holds values off the fixed-point grid; "
                "the numpy backend stores exact ticks (quantum "
                f"{self._quantum})"
            )
        if ticks.size and (ticks.min() < self._lo_tick or ticks.max() > self._hi_tick):
            raise ValueError("QTable state exceeds the fixed-point clamp range")
        self._ticks = ticks.astype(self._dtype)
        self._views = [self._ticks[f] for f in range(self.num_features)]
        self.lookups = int(state.get("lookups", 0))
        self.updates = int(state.get("updates", 0))

    # --- introspection ------------------------------------------------------------

    def storage_bits(self) -> int:
        return (
            self.num_features
            * self.num_subtables
            * self.rows
            * NUM_ACTIONS
            * self.config.q_value_bits
        )

    def health_stats(self) -> dict:
        ticks = self._ticks
        total = int(ticks.size)
        touched = int((ticks != self._init_tick).sum())
        saturated = int(
            ((ticks <= self._lo_tick) | (ticks >= self._hi_tick)).sum()
        )
        return {
            "q_entries": total,
            "q_coverage": touched / total if total else 0.0,
            "q_saturation": saturated / total if total else 0.0,
            "lookups": self.lookups,
            "updates": self.updates,
        }

    def snapshot_stats(self) -> dict:
        # The scalar table's streaming float sum is exact (every
        # partial sum is an on-grid multiple far below 2^53), so
        # summing ticks as integers reproduces its mean bit-for-bit.
        ticks = self._ticks
        count = int(ticks.size)
        total = float(int(ticks.sum(dtype=np.int64))) * self._quantum
        return {
            "lookups": self.lookups,
            "updates": self.updates,
            "q_min": int(ticks.min()) * self._quantum,
            "q_max": int(ticks.max()) * self._quantum,
            "q_mean": total / count,
        }
