"""Command-line entry point: regenerate paper artifacts.

Usage::

    chrome-repro list
    chrome-repro run fig6 [--scale 0.0625 --accesses 24000 ...]
    chrome-repro run all

Every experiment prints the same rows/series as the corresponding paper
table or figure (see DESIGN.md §4 for the index).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .experiments.figures import EXPERIMENTS, _register_ablations, run_experiment
from .experiments.report import render
from .experiments.runner import ExperimentScale, Runner


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="chrome-repro",
        description="Regenerate CHROME (HPCA 2024) tables and figures",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id (fig1..fig16, tab3/4/7, all)")
    run.add_argument("--scale", type=float, help="machine/working-set scale factor")
    run.add_argument("--accesses", type=int, help="measured accesses per core")
    run.add_argument("--warmup", type=int, help="warmup accesses per core")
    run.add_argument("--workloads", type=int, help="workload cap per figure (0=all)")
    run.add_argument("--mixes", type=int, help="heterogeneous mixes for fig10/11")
    return parser


def _scale_from_args(args: argparse.Namespace) -> ExperimentScale:
    base = ExperimentScale.from_env()
    return ExperimentScale(
        machine_scale=args.scale if args.scale is not None else base.machine_scale,
        accesses_per_core=(
            args.accesses if args.accesses is not None else base.accesses_per_core
        ),
        warmup_per_core=(
            args.warmup if args.warmup is not None else base.warmup_per_core
        ),
        workload_limit=(
            args.workloads if args.workloads is not None else base.workload_limit
        ),
        hetero_mixes=args.mixes if args.mixes is not None else base.hetero_mixes,
    )


def _run_cli(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    _register_ablations()
    if args.command == "list":
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0

    scale = _scale_from_args(args)
    targets = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if any(t not in EXPERIMENTS for t in targets):
        unknown = [t for t in targets if t not in EXPERIMENTS]
        print(f"unknown experiment(s): {unknown}", file=sys.stderr)
        print(f"available: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    runner = Runner(scale)
    for target in targets:
        start = time.time()
        result = run_experiment(target, runner)
        print(render(result))
        print(f"[{target} took {time.time() - start:.1f}s]\n")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Console entry point (handles downstream pipe closure gracefully)."""
    try:
        return _run_cli(argv)
    except BrokenPipeError:
        # e.g. `chrome-repro list | head` — downstream closed the pipe.
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
