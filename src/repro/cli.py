"""Command-line entry point: regenerate paper artifacts.

Usage::

    chrome-repro list
    chrome-repro run fig6 [--jobs 8 --cache-dir .repro-cache]
    chrome-repro run all [--scale 0.0625 --accesses 24000 ...]

Every experiment prints the same rows/series as the corresponding paper
table or figure (see DESIGN.md §4 for the index).  Simulations are
scheduled as declarative jobs on the parallel experiment engine:
``--jobs N`` fans independent simulations out across worker processes
(results are bit-identical to ``--jobs 1``), and ``--cache-dir``
memoizes completed jobs on disk so re-runs and cross-figure overlaps
are free.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from .experiments.engine import Engine
from .experiments.figures import run_experiment
from .experiments.progress import ProgressReporter
from .experiments.registry import available_experiments
from .experiments.report import render
from .experiments.runner import ExperimentScale, Runner


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="chrome-repro",
        description="Regenerate CHROME (HPCA 2024) tables and figures",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id (fig1..fig16, tab3/4/7, all)")
    run.add_argument("--scale", type=float, help="machine/working-set scale factor")
    run.add_argument("--accesses", type=int, help="measured accesses per core")
    run.add_argument("--warmup", type=int, help="warmup accesses per core")
    run.add_argument("--workloads", type=int, help="workload cap per figure (0=all)")
    run.add_argument("--mixes", type=int, help="heterogeneous mixes for fig10/11")
    run.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for simulation jobs (default: all CPU cores)",
    )
    run.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="on-disk result cache; warm re-runs execute zero simulations",
    )
    run.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-job progress/timing lines on stderr",
    )
    run.add_argument(
        "--obs",
        action="store_true",
        help="record repro.obs telemetry (timelines, Chrome traces, counters)",
    )
    run.add_argument(
        "--obs-dir",
        default=None,
        metavar="DIR",
        help="artifact directory for --obs (default obs-artifacts; implies --obs)",
    )
    run.add_argument(
        "--backend",
        default=None,
        choices=["scalar", "numpy"],
        help="Q-table execution backend (bit-identical results; numpy "
        "vectorizes batch sweeps — see DESIGN.md §9)",
    )

    report = sub.add_parser(
        "obs-report", help="summarize the artifacts of an obs-enabled run"
    )
    report.add_argument(
        "obs_dir", nargs="?", default="obs-artifacts",
        help="obs artifact directory (default obs-artifacts)",
    )

    cluster = sub.add_parser(
        "cluster", help="run one sharded cache fleet and print its metrics"
    )
    cluster.add_argument(
        "--shards", type=int, default=4, help="number of cache shards"
    )
    cluster.add_argument(
        "--replication", type=int, default=2, help="ring replication factor"
    )
    cluster.add_argument(
        "--policy", default="chrome", help="serve policy for every shard"
    )
    cluster.add_argument(
        "--workload", default="zipf_scan", help="request workload"
    )
    cluster.add_argument(
        "--requests", type=int, default=20000, help="measured requests"
    )
    cluster.add_argument(
        "--warmup", type=int, default=4000, help="warmup requests"
    )
    cluster.add_argument(
        "--capacity-mb", type=int, default=16, help="TOTAL fleet capacity (MiB)"
    )
    cluster.add_argument(
        "--clients", type=int, default=8, help="concurrent driver clients"
    )
    cluster.add_argument(
        "--seed", type=int, default=0, help="workload/ring/agent seed"
    )
    cluster.add_argument(
        "--federate-every", type=int, default=0, metavar="N",
        help="merge shard Q-tables every N requests (0 = isolated shards)",
    )
    cluster.add_argument(
        "--hotkey-window", type=int, default=0, metavar="N",
        help="hot-key detection window in requests (0 = off)",
    )
    cluster.add_argument(
        "--kill-shard", type=int, default=-1, metavar="I",
        help="kill shard I for the middle quarter of the run",
    )
    _add_obs_backend_args(cluster)

    ops = sub.add_parser(
        "ops",
        help="run one service/fleet under the live-operations control loop",
    )
    ops.add_argument(
        "--policy", default="chrome", help="champion serve policy"
    )
    ops.add_argument(
        "--workload", default="phases", help="request workload"
    )
    ops.add_argument(
        "--requests", type=int, default=20000, help="measured requests"
    )
    ops.add_argument(
        "--warmup", type=int, default=4000, help="warmup requests"
    )
    ops.add_argument(
        "--capacity-mb", type=int, default=4, help="cache capacity (MiB)"
    )
    ops.add_argument(
        "--clients", type=int, default=8, help="concurrent driver clients"
    )
    ops.add_argument(
        "--seed", type=int, default=0, help="workload/agent seed"
    )
    ops.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="cluster fleet of N shards (0 = single service)",
    )
    ops.add_argument(
        "--window", type=int, default=0, metavar="N",
        help="ops evaluation window in requests (default: run/16)",
    )
    ops.add_argument(
        "--challenger", default="", metavar="POLICY",
        help="shadow-evaluate POLICY against the champion's traffic",
    )
    ops.add_argument(
        "--promote-after", type=int, default=0, metavar="N",
        help="hot-swap the challenger in after N winning windows (0 = never)",
    )
    ops.add_argument(
        "--min-byte-hit", type=float, default=-1.0, metavar="R",
        help="guardrail: trip when the byte-hit EWMA falls below R",
    )
    ops.add_argument(
        "--max-p99", type=float, default=0.0, metavar="MS",
        help="guardrail: trip when a window's p99 exceeds MS virtual ms",
    )
    ops.add_argument(
        "--snapshot-every", type=int, default=4, metavar="N",
        help="push a last-known-good snapshot every N healthy windows",
    )
    ops.add_argument(
        "--degrade-at", type=int, default=-1, metavar="W",
        help="inject a simulated bad deploy at the end of window W",
    )
    _add_obs_backend_args(ops)
    return parser


def _add_obs_backend_args(sub: argparse.ArgumentParser) -> None:
    """The telemetry/backend flags every run-style subcommand shares."""
    sub.add_argument(
        "--obs",
        action="store_true",
        help="record repro.obs telemetry (timelines, Chrome traces, counters)",
    )
    sub.add_argument(
        "--obs-dir",
        default=None,
        metavar="DIR",
        help="artifact directory for --obs (default obs-artifacts; implies --obs)",
    )
    sub.add_argument(
        "--backend",
        default=None,
        choices=["scalar", "numpy"],
        help="Q-table execution backend (bit-identical results; numpy "
        "vectorizes batch sweeps — see DESIGN.md §9)",
    )


def _apply_backend(backend: Optional[str]) -> None:
    """Propagate --backend to every layer via the validated env var.

    Jobs cross process boundaries as frozen specs whose ``backend``
    fields default to None (= defer to ``REPRO_BACKEND``), so the env
    var is exactly the right channel: worker processes inherit it, and
    :func:`repro.core.backend.resolve_backend` validates it at every
    construction site.
    """
    if backend is not None:
        from .core.backend import resolve_backend

        os.environ["REPRO_BACKEND"] = resolve_backend(backend)


def _obs_config_from_args(args: argparse.Namespace):
    """ObsConfig when --obs/--obs-dir requested, else None (all subcommands)."""
    if not (getattr(args, "obs", False) or args.obs_dir is not None):
        return None
    from .obs import ObsConfig

    return ObsConfig(out_dir=args.obs_dir or "obs-artifacts")


def _cluster_job_from_args(args: argparse.Namespace):
    """Build the ClusterJob the ``cluster`` subcommand describes.

    Split from the command so tests can assert that every CLI flag
    lands in the frozen job spec; raises ValueError on bad arguments.
    """
    from .cluster import ClusterJob

    if args.shards < 1 or args.replication < 1:
        raise ValueError("--shards/--replication must be >= 1")
    kill_fault_params = ()
    if args.kill_shard >= 0:
        if args.kill_shard >= args.shards:
            raise ValueError(
                f"--kill-shard {args.kill_shard} out of range "
                f"(fleet has {args.shards} shards)"
            )
        # One outage window sized to ~25% of the virtual horizon (0.5 ms
        # inter-arrival), jitter-placed inside the run.
        horizon_ms = (args.requests + args.warmup) * 0.5
        kill_fault_params = (
            ("seed", 3),
            ("outage_every_ms", round(horizon_ms, 3)),
            ("outage_duration_ms", round(horizon_ms / 4.0, 3)),
        )
    return ClusterJob(
        workload=args.workload,
        policy=args.policy,
        num_requests=args.requests,
        warmup_requests=args.warmup,
        capacity_bytes=args.capacity_mb << 20,
        num_segments=64,
        num_shards=args.shards,
        replication=args.replication,
        num_clients=args.clients,
        seed=args.seed,
        federate_every=args.federate_every,
        hotkey_window=args.hotkey_window,
        kill_shard=args.kill_shard if kill_fault_params else -1,
        kill_fault_params=kill_fault_params,
    )


def _run_cluster_command(args: argparse.Namespace) -> int:
    try:
        job = _cluster_job_from_args(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    obs_config = _obs_config_from_args(args)
    start = time.time()
    metrics = job.execute(obs=obs_config)
    fleet = metrics.fleet
    print(f"fleet: {args.shards} shards x {args.policy} on {args.workload}")
    print(
        f"  requests {fleet.requests}  object_hit "
        f"{100.0 * fleet.object_hit_ratio:.2f}%  byte_hit "
        f"{100.0 * fleet.byte_hit_ratio:.2f}%  p99 "
        f"{fleet.p99_latency_ms:.2f}ms"
    )
    print(
        f"  ring: routed {metrics.routed}  reroutes {metrics.reroutes}  "
        f"changes {metrics.ring_changes}  unroutable {metrics.unroutable}"
    )
    print(
        f"  federation rounds {metrics.federations}  hot_splits "
        f"{metrics.hot_splits}  hot_evictions {metrics.hot_evictions}"
    )
    for idx, m in enumerate(metrics.per_shard):
        print(
            f"  shard {idx}: requests {m.requests}  byte_hit "
            f"{100.0 * m.byte_hit_ratio:.2f}%  evictions {m.evictions}"
        )
    print(f"[cluster run took {time.time() - start:.1f}s]")
    if obs_config is not None:
        print(
            f"[obs artifacts in {obs_config.out_dir}; summarize with "
            f"`chrome-repro obs-report {obs_config.out_dir}`]",
            file=sys.stderr,
        )
    return 0


def _ops_job_from_args(args: argparse.Namespace):
    """Build the OpsJob the ``ops`` subcommand describes."""
    from .ops import OpsConfig
    from .ops.jobs import OpsJob

    if args.shards < 0:
        raise ValueError("--shards must be >= 0")
    window = args.window or max(50, (args.requests + args.warmup) // 16)
    ops_config = OpsConfig(
        window=window,
        challenger_policy=args.challenger,
        promote_after=args.promote_after,
        max_p99_ms=args.max_p99,
        min_byte_hit_ewma=args.min_byte_hit,
        snapshot_every=args.snapshot_every,
        degrade_at_window=args.degrade_at,
    )
    return OpsJob(
        workload=args.workload,
        policy=args.policy,
        num_requests=args.requests,
        warmup_requests=args.warmup,
        capacity_bytes=args.capacity_mb << 20,
        num_segments=64,
        num_clients=args.clients,
        seed=args.seed,
        ops_params=ops_config.params(),
        num_shards=args.shards,
    )


def _run_ops_command(args: argparse.Namespace) -> int:
    try:
        job = _ops_job_from_args(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    obs_config = _obs_config_from_args(args)
    start = time.time()
    result = job.execute(obs=obs_config)
    champion = result.champion
    fleet = champion.fleet if job.num_shards else champion
    tier = f"{job.num_shards}-shard fleet" if job.num_shards else "service"
    print(f"ops: {job.policy} {tier} on {job.workload}")
    print(
        f"  champion: requests {fleet.requests}  object_hit "
        f"{100.0 * fleet.object_hit_ratio:.2f}%  byte_hit "
        f"{100.0 * fleet.byte_hit_ratio:.2f}%  p99 "
        f"{fleet.p99_latency_ms:.2f}ms"
    )
    if result.challenger is not None:
        ch = result.challenger
        print(
            f"  challenger ({ch.policy}, shadow): object_hit "
            f"{100.0 * ch.object_hit_ratio:.2f}%  byte_hit "
            f"{100.0 * ch.byte_hit_ratio:.2f}%  p99 "
            f"{ch.p99_latency_ms:.2f}ms"
        )
    print(
        f"  ops: {len(result.windows)} windows  snapshots "
        f"{result.snapshots}  promotions {result.promotions}  trips "
        f"{result.trips}  rollbacks {result.rollbacks}  degradations "
        f"{result.degradations}"
    )
    for event in result.events:
        extra = {
            k: v
            for k, v in event.items()
            if k not in ("version", "kind", "window", "seq", "now_ms")
        }
        print(
            f"  event: {event['kind']} @ window {event['window']} "
            f"(seq {event['seq']}, {event['now_ms']:.1f}ms) {extra}"
        )
    print(f"[ops run took {time.time() - start:.1f}s]")
    if obs_config is not None:
        print(
            f"[obs artifacts in {obs_config.out_dir}; summarize with "
            f"`chrome-repro obs-report {obs_config.out_dir}`]",
            file=sys.stderr,
        )
    return 0


def _scale_from_args(args: argparse.Namespace) -> ExperimentScale:
    return ExperimentScale.from_env().with_overrides(
        machine_scale=args.scale,
        accesses_per_core=args.accesses,
        warmup_per_core=args.warmup,
        workload_limit=args.workloads,
        hetero_mixes=args.mixes,
    )


def _run_cli(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    _apply_backend(getattr(args, "backend", None))
    if args.command == "cluster":
        return _run_cluster_command(args)
    if args.command == "ops":
        return _run_ops_command(args)
    if args.command == "obs-report":
        from .obs.report import render as render_obs, summarize

        print(render_obs(summarize(args.obs_dir)))
        return 0
    experiments = available_experiments()
    if args.command == "list":
        for experiment_id in experiments:
            print(experiment_id)
        return 0

    try:
        scale = _scale_from_args(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    targets = experiments if args.experiment == "all" else [args.experiment]
    unknown = [t for t in targets if t not in experiments]
    if unknown:
        print(f"unknown experiment(s): {unknown}", file=sys.stderr)
        print(f"available: {experiments}", file=sys.stderr)
        return 2

    workers = args.jobs if args.jobs is not None else os.cpu_count() or 1
    if workers < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    progress = None if args.quiet else ProgressReporter(sys.stderr)
    obs_config = None
    if args.obs or args.obs_dir is not None:
        from .obs import ObsConfig

        obs_config = ObsConfig(out_dir=args.obs_dir or "obs-artifacts")
    try:
        engine = Engine(
            workers=workers,
            cache_dir=args.cache_dir,
            progress=progress,
            obs=obs_config,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # One runner for the whole invocation: every experiment (plan-based
    # figure or runner-based ablation) shares the engine's job pool.
    runner = Runner(scale, engine=engine)
    for target in targets:
        start = time.time()
        result = run_experiment(target, runner)
        print(render(result))
        print(f"[{target} took {time.time() - start:.1f}s]\n")
    stats = engine.stats
    if not args.quiet and stats.total:
        print(
            f"[engine: {stats.total} jobs — {stats.executed} simulated, "
            f"{stats.disk_hits} disk-cache hits, {stats.memo_hits} memo hits]",
            file=sys.stderr,
        )
    if obs_config is not None:
        engine.export_obs()
        print(
            f"[obs artifacts in {obs_config.out_dir}; summarize with "
            f"`chrome-repro obs-report {obs_config.out_dir}`]",
            file=sys.stderr,
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Console entry point (handles downstream pipe closure gracefully)."""
    try:
        return _run_cli(argv)
    except BrokenPipeError:
        # e.g. `chrome-repro list | head` — downstream closed the pipe.
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
