"""Setuptools shim.

Kept alongside pyproject.toml so `pip install -e .` works on
environments whose setuptools predates PEP 660 editable installs
(offline boxes without the `wheel` package).
"""

from setuptools import setup

setup()
