"""Unit tests for the SPEC-like workload registry (Table VI)."""

import pytest

from repro.traces.spec import (
    ALL_SPEC_WORKLOADS,
    SPEC06_WORKLOADS,
    SPEC17_WORKLOADS,
    WORKLOADS,
    build_spec_trace,
    representative_workloads,
)


def test_suite_counts_match_table_vi():
    assert len(SPEC06_WORKLOADS) == 14  # Table VI lists 14 SPEC06 workloads
    assert len(SPEC17_WORKLOADS) == 13  # and 13 SPEC17 workloads
    assert len(ALL_SPEC_WORKLOADS) == 27


def test_expected_workloads_present():
    for name in ("mcf06", "libquantum06", "xalancbmk06", "lbm17", "omnetpp17", "xz17"):
        assert name in WORKLOADS


def test_every_workload_builds_and_yields():
    for name in ALL_SPEC_WORKLOADS:
        trace = build_spec_trace(name, 200, seed=1, scale=1 / 64)
        recs = list(trace)
        assert len(recs) == 200, name
        assert all(r.address >= 0 and r.pc > 0 for r in recs), name


def test_unknown_workload_raises():
    with pytest.raises(KeyError):
        build_spec_trace("doom3", 100)


def test_traces_are_deterministic_per_seed():
    a = list(build_spec_trace("gcc06", 300, seed=7, scale=1 / 64))
    b = list(build_spec_trace("gcc06", 300, seed=7, scale=1 / 64))
    assert a == b


def test_different_seeds_differ():
    a = list(build_spec_trace("soplex06", 300, seed=1, scale=1 / 64))
    b = list(build_spec_trace("soplex06", 300, seed=2, scale=1 / 64))
    assert a != b


def test_workloads_have_distinct_characters():
    """Different workloads must produce different address streams —
    guard against copy-paste parameterization."""
    footprints = {}
    for name in ("libquantum06", "mcf06", "hmmer06", "lbm17"):
        recs = list(build_spec_trace(name, 2000, seed=1, scale=1 / 64))
        blocks = {r.address >> 6 for r in recs}
        footprints[name] = len(blocks)
    # streaming libquantum touches ~unique blocks; hmmer's loop reuses few
    assert footprints["libquantum06"] > footprints["hmmer06"]
    assert footprints["mcf06"] > footprints["hmmer06"]


def test_scale_shrinks_footprint():
    big = {r.address >> 6 for r in build_spec_trace("mcf06", 3000, seed=1, scale=1.0)}
    small = {
        r.address >> 6 for r in build_spec_trace("mcf06", 3000, seed=1, scale=1 / 64)
    }
    assert len(small) < len(big)


def test_writes_present_in_write_heavy_workloads():
    recs = list(build_spec_trace("lbm17", 2000, seed=1, scale=1 / 64))
    assert any(r.is_write for r in recs)


def test_metadata_describes_workload():
    trace = build_spec_trace("wrf06", 10, seed=0)
    assert trace.metadata["suite"] == "spec06"
    assert "description" in trace.metadata


def test_representative_workloads_subset():
    reps = representative_workloads()
    assert len(reps) == 8
    assert all(r in ALL_SPEC_WORKLOADS for r in reps)
