"""Unit tests for the Mockingjay policy (reuse-distance ETR + bypass)."""

from repro.sim.access import DEMAND, PREFETCH, WRITEBACK, AccessInfo
from repro.sim.cache import Cache
from repro.sim.replacement.mockingjay import (
    ETR_GRANULARITY,
    ETR_MAX,
    INF_RD,
    MockingjayPolicy,
)


def _info(block, pc=0x400, type_=DEMAND):
    return AccessInfo(pc=pc, address=block << 6, block_addr=block, core=0, type=type_)


def _cache(ways=2, sets=4, sampled=4, bypass=True):
    policy = MockingjayPolicy(sampled_sets=sampled, bypass=bypass)
    cache = Cache(
        name="llc", size_bytes=64 * ways * sets, ways=ways, latency=1.0, policy=policy
    )
    return cache, policy


def test_rdp_trains_toward_observed_distance():
    _, policy = _cache()
    sig = policy._signature(_info(0))
    policy._train_rd(sig, 4)
    first = policy._rdp[sig]
    for _ in range(8):
        policy._train_rd(sig, 4)
    assert policy._rdp[sig] <= first
    assert policy._rdp[sig] >= 4


def test_rdp_saturates_at_inf():
    _, policy = _cache()
    sig = policy._signature(_info(0))
    for _ in range(32):
        policy._train_rd(sig, INF_RD)
    assert policy._rdp[sig] == INF_RD


def test_sampler_measures_reuse_distance():
    cache, policy = _cache(ways=2, sets=4, sampled=4)
    pc = 0x500
    # Touch block 0, then 3 other blocks, then block 0 again: RD = 4.
    sequence = [0, 4, 8, 12, 0]
    for b in sequence:
        info = _info(b, pc=pc)
        hit, _ = cache.access(info)
        if not hit and not cache.decide_bypass(info):
            cache.fill(_info(b, pc=pc))
    sig = policy._signature(_info(0, pc=pc))
    assert sig in policy._rdp
    assert policy._rdp[sig] < INF_RD


def test_sampler_eviction_trains_infinite():
    cache, policy = _cache(ways=1, sets=1, sampled=1)
    pc = 0x600
    # Stream > 2x ways distinct blocks: the sampler evicts stale entries,
    # training their signature toward INF.
    for b in range(16):
        info = _info(b, pc=pc)
        hit, _ = cache.access(info)
        if not hit and not cache.decide_bypass(info):
            cache.fill(_info(b, pc=pc))
    sig = policy._signature(_info(0, pc=pc))
    assert policy._rdp[sig] > INF_RD // 2


def test_bypass_when_predicted_never_reused():
    _, policy = _cache(sampled=0)
    sig = policy._signature(_info(0))
    policy._rdp[sig] = INF_RD
    info = _info(0)
    info.set_index = 0
    assert policy.should_bypass(info) is True


def test_no_bypass_for_near_reuse():
    _, policy = _cache(sampled=0)
    sig = policy._signature(_info(0))
    policy._rdp[sig] = 1
    info = _info(0)
    info.set_index = 0
    # victim score is ETR_MAX (cold set), incoming ETR ~1: cache it.
    assert policy.should_bypass(info) is False


def test_bypass_disabled_variant():
    _, policy = _cache(sampled=0, bypass=False)
    sig = policy._signature(_info(0))
    policy._rdp[sig] = INF_RD
    info = _info(0)
    info.set_index = 0
    assert policy.should_bypass(info) is False


def test_writebacks_never_bypass_and_get_max_etr():
    cache, policy = _cache()
    wb = _info(0, type_=WRITEBACK)
    assert cache.decide_bypass(wb) is False
    cache.fill(wb, dirty=True)
    way = cache._tag_maps[0][0]
    assert policy._etr[0][way] == ETR_MAX


def test_victim_has_largest_abs_etr():
    cache, policy = _cache(ways=3, sets=1)
    for b in range(3):
        cache.fill(_info(b))
    policy._etr[0] = [2, -9, 5]
    info = _info(3)
    info.set_index = 0
    assert policy.find_victim(info, cache.blocks_in_set(0)) == 1


def test_aging_decrements_etr():
    cache, policy = _cache(ways=2, sets=1, sampled=0)
    cache.fill(_info(0))
    before = policy._etr[0][cache._tag_maps[0][0]]
    cache.access(_info(2))  # miss in same set ages via on_fill below
    cache.fill(_info(2))
    after = policy._etr[0][cache._tag_maps[0][0]]
    assert after <= before


def test_hit_resets_etr_to_prediction():
    cache, policy = _cache(ways=2, sets=4, sampled=0)
    cache.fill(_info(0))
    sig = policy._signature(_info(0))
    policy._rdp[sig] = 8 * ETR_GRANULARITY
    cache.access(_info(0))
    way = cache._tag_maps[0][0]
    assert policy._etr[0][way] == 8


def test_prefetch_signature_distinct():
    _, policy = _cache()
    assert policy._signature(_info(0, type_=DEMAND)) != policy._signature(
        _info(0, type_=PREFETCH)
    )
