"""Unit tests for the serving layer: workloads, store, policies,
agent facade, and the concurrent service's determinism guarantees."""

import pytest

from repro.serve.agent import (
    BackendObstructionMonitor,
    ChromeServePolicy,
    ServeFeatureExtractor,
)
from repro.serve.metrics import percentile
from repro.serve.policies import (
    SERVE_POLICIES,
    GDSFServePolicy,
    LFUServePolicy,
    LRUServePolicy,
    S3FIFOServePolicy,
    make_serve_policy,
)
from repro.serve.service import (
    CacheService,
    LatencyConfig,
    replay_requests,
    run_service,
)
from repro.serve.store import ObjectStore
from repro.serve.workloads import (
    WORKLOADS,
    Request,
    build_workload,
    object_size,
)

# --- workloads ----------------------------------------------------------------


def test_workloads_are_deterministic():
    for name in WORKLOADS:
        a = build_workload(name, 400, seed=9)
        b = build_workload(name, 400, seed=9)
        assert a == b, name
        assert len(a) == 400, name


def test_workloads_differ_across_seeds():
    for name in WORKLOADS:
        assert build_workload(name, 400, seed=1) != build_workload(
            name, 400, seed=2
        ), name


def test_object_size_is_a_pure_function_of_key():
    stream = build_workload("multitenant", 2000, seed=4)
    seen = {}
    for req in stream:
        assert req.size == object_size(req.key)
        assert seen.setdefault(req.key, req.size) == req.size
        assert req.size > 0


def test_zipf_scan_interleaves_one_shot_keys():
    stream = build_workload("zipf_scan", 3000, seed=5)
    scan_keys = [r.key for r in stream if (r.key >> 40) & 0xFF == 1]
    assert scan_keys, "no scan burst in 3000 requests"
    assert len(scan_keys) == len(set(scan_keys))  # scans never repeat


def test_multitenant_assigns_all_tenants():
    stream = build_workload("multitenant", 2000, seed=6, num_tenants=4)
    tenants = {r.tenant for r in stream}
    assert tenants == {0, 1, 2, 3}
    # tenant 0 owns the largest share
    counts = sorted(tenants, key=lambda t: -sum(r.tenant == t for r in stream))
    assert counts[0] == 0


def test_refresh_requests_are_marked():
    stream = build_workload("zipf", 2000, seed=7, refresh_fraction=0.2)
    assert any(r.is_refresh for r in stream)
    assert all(not r.is_refresh for r in build_workload(
        "zipf", 500, seed=7, refresh_fraction=0.0
    ))


def test_unknown_workload_errors():
    with pytest.raises(KeyError, match="unknown workload"):
        build_workload("nope", 10)


# --- object store -------------------------------------------------------------


def _store(policy=None, capacity=1 << 16, segments=4):
    return ObjectStore(capacity, segments, policy or LRUServePolicy())


def test_store_hit_after_admit():
    store = _store()
    req = Request(key=1, size=100)
    assert not store.lookup(req)
    assert store.admit(req)
    assert store.lookup(req)
    assert store.hits == 1 and store.admissions == 1


def test_store_respects_segment_byte_budget():
    store = _store(capacity=4096, segments=4)  # 1 KiB per segment
    for key in range(200):
        req = Request(key=key, size=300)
        store.lookup(req) or store.admit(req)
    for seg_bytes in store._segment_bytes:
        assert seg_bytes <= store.segment_capacity
    assert store.evictions > 0


def test_store_forces_bypass_of_oversized_objects():
    class NeverAsk(LRUServePolicy):
        def admit(self, req, seg_idx):  # pragma: no cover - must not run
            raise AssertionError("policy consulted for an unfittable object")

    store = _store(policy=NeverAsk(), capacity=4096, segments=4)
    assert not store.admit(Request(key=1, size=5000))
    assert store.forced_bypasses == 1


def test_store_rejects_bad_geometry():
    with pytest.raises(ValueError):
        ObjectStore(1 << 16, 3, LRUServePolicy())  # not a power of two


# --- policies -----------------------------------------------------------------


def _fill(store, keys_sizes):
    for key, size in keys_sizes:
        store.admit(Request(key=key, size=size))


def test_lru_evicts_least_recently_used():
    store = _store(policy=LRUServePolicy(), capacity=4, segments=1)
    # segment capacity 4 bytes; 1-byte objects
    _fill(store, [(k, 1) for k in range(4)])
    store.lookup(Request(key=0, size=1))  # 0 is now the most recent
    store.admit(Request(key=9, size=1))  # must evict key 1 (coldest)
    assert store.contains(0) and store.contains(9)
    assert not store.contains(1)


def test_lfu_evicts_least_frequent():
    store = _store(policy=LFUServePolicy(), capacity=4, segments=1)
    _fill(store, [(k, 1) for k in range(4)])
    for _ in range(3):
        for key in (0, 1, 2):
            store.lookup(Request(key=key, size=1))
    store.admit(Request(key=9, size=1))  # key 3 has freq 1 -> victim
    assert not store.contains(3)
    assert store.contains(0) and store.contains(9)


def test_gdsf_prefers_evicting_cold_over_hot():
    store = _store(policy=GDSFServePolicy(), capacity=4, segments=1)
    _fill(store, [(k, 1) for k in range(4)])
    for _ in range(4):
        for key in (0, 1, 2):
            store.lookup(Request(key=key, size=1))
    store.admit(Request(key=9, size=1))
    assert not store.contains(3)


def test_gdsf_unit_cost_prefers_small_objects():
    # two objects, same freq: unit cost makes the large one cheapest to evict
    store = _store(policy=GDSFServePolicy(cost="unit"), capacity=40, segments=1)
    _fill(store, [(1, 10), (2, 30)])
    store.admit(Request(key=3, size=20))  # must evict; 2 has lowest H
    assert store.contains(1) and store.contains(3)
    assert not store.contains(2)


def test_gdsf_rejects_unknown_cost():
    with pytest.raises(ValueError):
        GDSFServePolicy(cost="banana")


def test_s3fifo_filters_one_hit_wonders():
    store = _store(policy=S3FIFOServePolicy(), capacity=1000, segments=1)
    hot = [(k, 40) for k in range(10)]
    _fill(store, hot)
    for _ in range(3):
        for key, _size in hot:
            store.lookup(Request(key=key, size=40))
    # a flood of one-hit objects must not displace the re-referenced set
    for key in range(100, 180):
        store.admit(Request(key=key, size=40))
    survivors = sum(1 for key, _ in hot if store.contains(key))
    assert survivors >= 8


def test_s3fifo_ghost_readmits_to_main():
    policy = S3FIFOServePolicy()
    store = _store(policy=policy, capacity=200, segments=1)
    store.admit(Request(key=1, size=60))
    for key in range(2, 12):  # push key 1 out through the small queue
        store.admit(Request(key=key, size=60))
    assert not store.contains(1)
    store.admit(Request(key=1, size=60))  # ghost hit -> straight to main
    assert 1 in policy._main[0]


def test_make_serve_policy_registry():
    for name in ("lru", "lfu", "gdsf", "s3fifo", "chrome"):
        assert name in SERVE_POLICIES
        assert make_serve_policy(name).name == name
    with pytest.raises(KeyError, match="unknown serve policy"):
        make_serve_policy("nope")


# --- agent facade -------------------------------------------------------------


def test_feature_extractor_is_stable_and_bounded():
    fx = ServeFeatureExtractor()
    a = fx.extract(123, 4096, tenant=1, hit=False, is_refresh=False)
    # extract is called once per request, so the frequency feature is
    # deliberately stateful: a repeat of the same request advances the
    # per-key count while every other feature stays put
    b = fx.extract(123, 4096, tenant=1, hit=False, is_refresh=False)
    assert (a[0], a[1], a[3]) == (b[0], b[1], b[3])
    assert a[2] != b[2]
    assert a != fx.extract(123, 4096, tenant=1, hit=True, is_refresh=False)
    assert 0 <= a[0] < (1 << 17) and 0 <= a[1] < (1 << 16)
    # size feature depends only on the log2 bucket
    same_bucket = fx.extract(123, 4097, tenant=1, hit=False, is_refresh=False)
    assert a[1] == same_bucket[1]
    # region feature depends only on the key's 1024-key page (x tenant)
    same_region = fx.extract(124, 4096, tenant=1, hit=False, is_refresh=False)
    other_region = fx.extract(99_123, 4096, tenant=1, hit=False, is_refresh=False)
    assert a[3] == same_region[3]
    assert a[3] != other_region[3]


def test_frequency_class_exact_then_log2():
    fc = ServeFeatureExtractor.freq_class
    assert [fc(n) for n in range(1, 8)] == list(range(1, 8))
    assert fc(8) == fc(15) == 9          # one octave per bucket above 8
    assert fc(16) == fc(31) == 10
    assert fc(7) != fc(8)


def test_obstruction_monitor_flags_slow_tenants():
    monitor = BackendObstructionMonitor(baseline_ms=6.0, threshold=1.35)
    assert not monitor.is_obstructed(0)
    for _ in range(200):
        monitor.observe(0, 30.0)
        monitor.observe(1, 6.0)
    assert monitor.is_obstructed(0)
    assert not monitor.is_obstructed(1)


def test_chrome_serve_policy_trains_on_sampled_segments():
    requests = build_workload("zipf_scan", 4000, seed=3)
    policy = ChromeServePolicy(seed=4)
    metrics = run_service(requests, policy, 1 << 20, 64, num_clients=1)
    tel = metrics.telemetry
    assert tel["q_updates"] > 0
    assert tel["sampled_requests"] > 0
    assert tel["decisions"] == policy.agent.decisions


def test_chrome_serve_beats_lru_on_byte_hit_ratio():
    """The headline acceptance property at a test-sized scale (the
    committed benchmark pins it at full default scale)."""
    results = {}
    for name in ("lru", "chrome"):
        requests = build_workload("zipf_scan", 8000, seed=3)
        results[name] = run_service(
            requests,
            make_serve_policy(name),
            16 << 20,  # the default-scale store geometry
            128,
            num_clients=4,
            warmup_requests=1500,
        )
    assert results["chrome"].byte_hit_ratio > results["lru"].byte_hit_ratio


# --- service determinism ------------------------------------------------------


def _metrics_key(m):
    return (
        m.requests,
        m.hits,
        m.bytes_requested,
        m.bytes_hit,
        m.backend_fetches,
        m.evictions,
        repr(m.mean_latency_ms),
        repr(m.p99_latency_ms),
        tuple(sorted((t, tm.hits) for t, tm in m.per_tenant.items())),
    )


@pytest.mark.parametrize("policy_name", ["lru", "chrome"])
def test_num_clients_never_changes_results(policy_name):
    requests = build_workload("multitenant", 2500, seed=8)
    baseline = None
    for clients in (1, 2, 7):
        metrics = run_service(
            requests,
            make_serve_policy(
                policy_name, **({"seed": 5} if policy_name == "chrome" else {})
            ),
            1 << 20,
            32,
            num_clients=clients,
            warmup_requests=500,
        )
        key = _metrics_key(metrics)
        if baseline is None:
            baseline = key
        else:
            assert key == baseline, f"num_clients={clients} diverged"


def test_async_driver_matches_sync_replay():
    requests = build_workload("zipf", 1500, seed=10)
    stores = []
    for _ in range(2):
        store = ObjectStore(1 << 20, 32, LRUServePolicy())
        stores.append(store)
    sync_service = CacheService(stores[0])
    replay_requests(sync_service, requests)

    import asyncio

    from repro.serve.service import _drive

    async_service = CacheService(stores[1])
    asyncio.run(_drive(async_service, requests, num_clients=5))
    assert stores[0].hits == stores[1].hits
    assert stores[0]._segment_bytes == stores[1]._segment_bytes
    assert repr(sync_service.backend.bytes_fetched) == repr(
        async_service.backend.bytes_fetched
    )


def test_warmup_requests_excluded_from_metrics():
    requests = build_workload("zipf", 1000, seed=12)
    full = run_service(requests, LRUServePolicy(), 1 << 20, 16, num_clients=1)
    warm = run_service(
        requests, LRUServePolicy(), 1 << 20, 16, num_clients=1,
        warmup_requests=400,
    )
    assert full.requests == 1000
    assert warm.requests == 600
    assert warm.object_hit_ratio >= full.object_hit_ratio  # warmed cache


def test_latency_model_penalizes_queueing():
    cfg = LatencyConfig()
    from repro.serve.service import Backend

    backend = Backend(cfg)
    first, out0 = backend.fetch(1024, now_ms=0.0)
    second, out1 = backend.fetch(1024, now_ms=0.0)
    assert out0 == 0 and out1 == 1
    assert second > first  # queue penalty
    later, out2 = backend.fetch(1024, now_ms=1e9)
    assert out2 == 0 and repr(later) == repr(first)


def test_percentile_nearest_rank():
    values = [float(v) for v in range(1, 101)]
    # Nearest-rank: value at 1-indexed rank ceil(f * n).
    assert percentile(values, 0.5) == 50.0
    assert percentile(values, 0.99) == 99.0
    assert percentile(values, 1.0) == 100.0
    assert percentile(values, 0.0) == 1.0
    assert percentile([], 0.99) == 0.0
    # p99 of a small sample must not collapse onto the max.
    assert percentile([1.0, 2.0], 0.5) == 1.0
    assert percentile([1.0] * 99 + [1000.0], 0.99) == 1.0


# --- percentile: randomized property test vs the brute-force definition -------

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    _HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships with the image
    _HAVE_HYPOTHESIS = False


def _brute_force_nearest_rank(sorted_values, fraction):
    """The definition, written independently: smallest sample whose
    cumulative share of the distribution is >= ``fraction``."""
    n = len(sorted_values)
    for i, value in enumerate(sorted_values):
        if (i + 1) / n >= fraction:
            return value
    return sorted_values[-1]


if _HAVE_HYPOTHESIS:

    @settings(max_examples=300, deadline=None)
    @given(
        values=st.lists(
            st.floats(
                min_value=0.0,
                max_value=1e6,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=400,
        ),
        fraction=st.one_of(
            st.floats(min_value=0.0, max_value=1.0),
            st.sampled_from([0.0, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0]),
        ),
    )
    def test_percentile_matches_brute_force(values, fraction):
        ordered = sorted(values)
        assert percentile(ordered, fraction) == _brute_force_nearest_rank(
            ordered, fraction
        )
